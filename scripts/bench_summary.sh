#!/usr/bin/env bash
# Aggregates every committed BENCH_*.json at the repo root into one
# readable table: which benches have results, their headline numbers,
# and when each file last changed. Read-only — regenerating a bench is
# its binary's job (`cargo run -p bench --bin <name>`).
set -euo pipefail
cd "$(dirname "$0")/.."

shopt -s nullglob
files=(BENCH_*.json)
if [ ${#files[@]} -eq 0 ]; then
    echo "no BENCH_*.json files at the repo root" >&2
    exit 1
fi

python3 - "${files[@]}" <<'EOF'
import json, subprocess, sys

def changed(path):
    try:
        out = subprocess.run(
            ["git", "log", "-1", "--format=%cs", "--", path],
            capture_output=True, text=True, check=True).stdout.strip()
        return out or "uncommitted"
    except Exception:
        return "?"

def fmt(v, nd=2):
    return f"{v:,.{nd}f}" if isinstance(v, float) else f"{v:,}"

def headline(name, d):
    """One line of the numbers a reviewer checks first, per bench."""
    try:
        if name == "BENCH_net.json":
            w = d["wire"]
            lines = [
                f"slowdown tcp/in-process: {fmt(d['slowdown']['ratio'])}x plain, "
                f"{fmt(d['slowdown']['compressed_ratio'])}x compressed "
                f"(budget {d['slowdown']['budget']}x)",
                f"wire bytes: {fmt(w['bytes_tx'] + w['bytes_rx'])} plain -> "
                f"{fmt(w['compressed_bytes_tx'] + w['compressed_bytes_rx'])} compressed "
                f"({fmt(w['reduction_total'])}x reduction)",
                f"mean return: {fmt(d['tcp_multi_process']['mean_return'])} plain, "
                f"{fmt(d['tcp_compressed']['mean_return'])} compressed",
            ]
            return lines
        if name == "BENCH_codec.json":
            return [
                f"{s['stage']}: {fmt(s['bytes_in'])} -> {fmt(s['bytes_out'])} B "
                f"({s['bytes_in'] / max(s['bytes_out'], 1):.2f}x), "
                f"enc {fmt(s['encode_ns_per_elem'])} / dec {fmt(s['decode_ns_per_elem'])} ns/elem"
                for s in d["stages"]
            ]
        if name == "BENCH_c10k.json":
            return [
                f"{r['transport']} @ {fmt(r['conns'])}: {fmt(r['held'])} held, "
                f"{fmt(r['rss_per_conn_bytes'], 0)} B/conn, ping p99 {fmt(r['ping_p99_us'], 1)} us"
                for r in d.get("scenarios", [])
            ] or None
        if name == "BENCH_obs.json":
            o = d["overhead"]
            return [f"telemetry overhead: {o['fraction'] * 100:.1f}% (budget {o['budget'] * 100:.0f}%)"]
        if name == "BENCH_chaos.json":
            return [
                f"eval return: {fmt(d['fault_free']['eval_return'])} fault-free, "
                f"{fmt(d['chaos']['eval_return'])} under chaos "
                f"(retention {fmt(d['chaos']['retention'])}), "
                f"{fmt(d['faults']['injected_events'])} faults injected",
            ]
        if name == "BENCH_fragments.json":
            return [
                f"fragment vs legacy Ape-X: {fmt(d['throughput_ratio'])}x throughput "
                f"({fmt(d['fragment']['frames_per_sec'], 0)} vs "
                f"{fmt(d['legacy']['frames_per_sec'], 0)} frames/s, "
                f"budget <= {d['max_overhead'] * 100:.0f}% overhead)",
            ]
        if name == "BENCH_elastic.json":
            r = d["run"]
            p = d["phases"]
            wide = next(k for k in p if k.startswith("wide_"))
            return [
                f"elastic 2->6->3: {fmt(p['plateau_2w_updates_per_s'])} -> "
                f"{fmt(p[wide])} updates/s after scale-up, "
                f"{fmt(r['evictions'])} eviction(s), epoch {fmt(r['cluster_epoch'])}",
                f"zero-loss: {fmt(r['samples_inserted'])} inserted >= "
                f"{fmt(r['samples_reported'])} reported over {len(d['throughput_trace'])} "
                f"trace points",
            ]
        if name == "BENCH_kernels.json":
            n = len(d) if isinstance(d, list) else len(d.get("kernels", d))
            return [f"{n} kernel entries"]
    except (KeyError, TypeError, ZeroDivisionError) as e:
        return [f"(unrecognized layout: {e})"]
    return None

for path in sys.argv[1:]:
    with open(path) as f:
        try:
            data = json.load(f)
        except json.JSONDecodeError as e:
            print(f"{path}: INVALID JSON ({e})")
            continue
    print(f"{path}  (last committed {changed(path)})")
    for line in headline(path, data) or ["(no headline extractor; see file)"]:
        print(f"  {line}")
    print()
EOF
