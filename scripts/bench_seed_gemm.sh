#!/usr/bin/env bash
# Measures the pre-kernel-engine GEMM baseline: the seed's naive matmul
# loop (including its `aval == 0.0` skip branch), built the way the seed
# built it — plain `rustc -O`, no `-C target-cpu=native`, so the SSE2
# x86-64 baseline the seed binaries actually ran.
#
# Prints the best-of-30 time for 256x256x256 in ms. Export the value as
# RLGRAPH_SEED_GEMM_MS before running `kernel_bench` to record the
# engine-vs-seed speedup in BENCH_kernels.json:
#
#   export RLGRAPH_SEED_GEMM_MS=$(scripts/bench_seed_gemm.sh)
#   ./target/release/kernel_bench
set -euo pipefail

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/seed_gemm.rs" <<'EOF'
use std::time::Instant;

// The seed's matmul inner loops, verbatim, on raw slices.
#[inline(never)]
fn seed_matmul(m: usize, k: usize, n: usize, av: &[f32], bv: &[f32], out: &mut [f32]) {
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let brow = &bv[p * n..(p + 1) * n];
            for j in 0..n {
                orow[j] += aval * brow[j];
            }
        }
    }
}

fn main() {
    let (m, k, n) = (256usize, 256, 256);
    let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 % 101) as f32 - 50.0) / 50.0).collect();
    let b: Vec<f32> = (0..k * n).map(|i| ((i * 53 % 97) as f32 - 48.0) / 48.0).collect();
    let mut out = vec![0.0f32; m * n];
    seed_matmul(m, k, n, &a, &b, &mut out); // warmup
    let mut best = f64::MAX;
    for _ in 0..30 {
        out.iter_mut().for_each(|v| *v = 0.0);
        let t = Instant::now();
        seed_matmul(m, k, n, &a, &b, &mut out);
        best = best.min(t.elapsed().as_secs_f64());
    }
    assert!(out.iter().sum::<f32>().is_finite());
    println!("{:.3}", best * 1e3);
}
EOF

# Deliberately no target-cpu flags: reproduce the seed's build environment.
RUSTFLAGS="" rustc -O -o "$tmp/seed_gemm" "$tmp/seed_gemm.rs"
"$tmp/seed_gemm"
