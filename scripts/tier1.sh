#!/usr/bin/env bash
# Tier-1 gate: release build, test suite, serving smoke test, clippy
# (deny warnings), rustfmt.
#
# With registry access the standard invocations work directly. In the
# offline container the third-party crates cannot be resolved, so the
# std-only stand-ins under offline-stubs/ are injected via the
# [patch.crates-io] config file (see offline-stubs/README.md). The serde
# stubs implement real JSON round-trips, so the full test suite must
# pass in both modes.
set -euo pipefail
cd "$(dirname "$0")/.."

CONFIG=()
OFFLINE=()
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
    echo "tier1: registry unavailable — building against offline-stubs/" >&2
    CONFIG=(--config offline-stubs/patch.toml)
    OFFLINE=(--offline)
fi

cargo "${CONFIG[@]}" build --release "${OFFLINE[@]}"
cargo "${CONFIG[@]}" test -q "${OFFLINE[@]}"

# Exercise the serving path end to end (batched act + hot weight swap).
cargo "${CONFIG[@]}" run --release "${OFFLINE[@]}" --example serve_smoke

# Kernel engine: parity + determinism suite, then a does-it-run bench smoke
# (tiny shapes, writes nothing).
cargo "${CONFIG[@]}" test -q "${OFFLINE[@]}" -p rlgraph-tensor --test kernel_parity
cargo "${CONFIG[@]}" run --release "${OFFLINE[@]}" -p bench --bin kernel_bench -- --smoke

# Fault tolerance: chaos engine smoke (tiny fault plan, asserts the
# same-seed determinism contract, writes nothing).
cargo "${CONFIG[@]}" run --release "${OFFLINE[@]}" -p bench --bin chaos_bench -- --smoke

# Fragment executor: legacy vs fragment-built Ape-X at an equal wall
# budget (the <=5% overhead threshold is full-mode only; smoke is a
# does-it-run gate over both paths).
timeout 300 cargo "${CONFIG[@]}" run --release "${OFFLINE[@]}" -p bench --bin fragment_bench -- --smoke

# Network transport: multi-process Ape-X over loopback TCP (the example
# launches 2 real worker processes), then the net bench smoke covering
# process launch + RPC + wire codec + TCP serving. Socket tests that
# wedge must fail the gate fast, so both run under a hard timeout.
timeout 300 cargo "${CONFIG[@]}" run --release "${OFFLINE[@]}" --example net_apex
timeout 300 cargo "${CONFIG[@]}" run --release "${OFFLINE[@]}" -p bench --bin net_bench -- --smoke

# Wire compression: codec bench smoke runs the full quantize / delta /
# LZ encode-decode matrix with its error-bound asserts (writes nothing).
timeout 300 cargo "${CONFIG[@]}" run --release "${OFFLINE[@]}" -p bench --bin codec_bench -- --smoke

# Telemetry plane: obs bench smoke — runs the Ape-X TCP runtime with the
# recorder off and on, asserts the cluster report and merged trace are
# produced (the <5% overhead threshold is full-mode only).
timeout 300 cargo "${CONFIG[@]}" run --release "${OFFLINE[@]}" -p bench --bin obs_bench -- --smoke

# Elastic cluster: membership + scripted scale-up/down + chaos SIGKILL
# over real worker processes; asserts eviction by missed-beat timeout
# and zero lost transitions (writes nothing in smoke mode).
timeout 300 cargo "${CONFIG[@]}" run --release "${OFFLINE[@]}" -p bench --bin elastic_bench -- --smoke

# Reactor: c10k bench smoke (<=256 connections) — re-execs a server
# child per stack under rlimits, verifies the reactor holds the whole
# herd and matches blocking latency. Hard timeout: a wedged event loop
# must fail the gate, not hang it.
timeout 300 cargo "${CONFIG[@]}" run --release "${OFFLINE[@]}" -p bench --bin c10k_bench -- --smoke

# The redesigned public API must stay documented: fail on rustdoc warnings.
RUSTDOCFLAGS="-D warnings" cargo "${CONFIG[@]}" doc --no-deps "${OFFLINE[@]}" --workspace

# clippy is an external subcommand: the --config override must come after it
cargo clippy "${CONFIG[@]}" --workspace "${OFFLINE[@]}" -- -D warnings
cargo fmt --check
echo "tier1: all checks passed"
