#!/usr/bin/env bash
# Tier-1 gate: release build, test suite, clippy (deny warnings), rustfmt.
#
# With registry access the standard invocations work directly. In the
# offline container the third-party crates cannot be resolved, so the
# std-only stand-ins under offline-stubs/ are injected via the
# [patch.crates-io] config file (see offline-stubs/README.md). The serde
# stub has no real JSON deserializer, so a fixed set of deserialization
# round-trip tests fails offline; those (and only those) are tolerated.
set -euo pipefail
cd "$(dirname "$0")/.."

CONFIG=()
OFFLINE=()
offline=0
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
    echo "tier1: registry unavailable — building against offline-stubs/" >&2
    CONFIG=(--config offline-stubs/patch.toml)
    OFFLINE=(--offline)
    offline=1
fi

cargo "${CONFIG[@]}" build --release "${OFFLINE[@]}"

# Deserialization round-trips broken by the offline serde_json stub
# (`from_str` is unavailable); see CHANGES.md.
EXPECTED_OFFLINE_FAILURES='config::tests::dqn_config_declarative_json
config::tests::dqn_config_json_roundtrip
dqn::tests::weights_roundtrip_via_model_export
optim::tests::spec_defaults_and_slots
spec::tests::json_roundtrip
serde_roundtrip
space::tests::serde_roundtrip
weights_transfer_across_backends'

test_log=$(mktemp)
trap 'rm -f "$test_log"' EXIT
if ! cargo "${CONFIG[@]}" test -q "${OFFLINE[@]}" --no-fail-fast >"$test_log" 2>&1; then
    failed=$(sed -n '/^failures:$/,/^$/p' "$test_log" | grep -E '^    \S+$' | sort -u | sed 's/^    //')
    unexpected=$(grep -Fxv "$EXPECTED_OFFLINE_FAILURES" <<<"$failed" || true)
    if [[ $offline -eq 0 || -n $unexpected ]]; then
        cat "$test_log"
        echo "tier1: unexpected test failures:" >&2
        echo "${unexpected:-$failed}" >&2
        exit 1
    fi
    echo "tier1: only the expected offline serde-stub failures occurred:" >&2
    echo "$failed" | sed 's/^/tier1:   /' >&2
fi

# clippy is an external subcommand: the --config override must come after it
cargo clippy "${CONFIG[@]}" --workspace "${OFFLINE[@]}" -- -D warnings
cargo fmt --check
echo "tier1: all checks passed"
