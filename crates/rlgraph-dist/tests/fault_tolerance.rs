//! Integration tests for the fault-tolerance subsystem: recovery
//! determinism as a property over fault-plan seeds and rates, learner
//! checkpoint round-trips through a real agent, scheduled injections,
//! and quorum degradation — all through the public `rlgraph-dist` API.

use proptest::prelude::*;
use rlgraph_agents::{Backend, DqnAgent, DqnConfig};
use rlgraph_dist::{run_apex_chaos, ChaosApexConfig, FaultKind, FaultPlan, LearnerCheckpoint};
use rlgraph_envs::{Env, RandomEnv};
use rlgraph_nn::{Activation, NetworkSpec};

fn tiny_agent() -> DqnConfig {
    DqnConfig {
        backend: Backend::Static,
        network: NetworkSpec::mlp(&[8], Activation::Tanh),
        memory_capacity: 256,
        batch_size: 8,
        n_step: 2,
        target_sync_every: 50,
        seed: 7,
        ..DqnConfig::default()
    }
}

fn env_factory(w: usize, e: usize) -> Box<dyn Env> {
    Box::new(RandomEnv::new(&[4], 2, 20, (w * 10 + e) as u64))
}

fn chaos_config(plan: FaultPlan, steps: u64) -> ChaosApexConfig {
    ChaosApexConfig::builder()
        .agent(tiny_agent())
        .num_workers(2)
        .envs_per_worker(2)
        .task_size(24)
        .num_shards(2)
        .steps(steps)
        .weight_sync_interval(4)
        .checkpoint_every(Some(4))
        .fault_plan(plan)
        .build()
        .expect("chaos config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any fault-plan seed and any (reasonable) rate combination gives
    /// bit-identical fault schedules and run statistics across repeats.
    #[test]
    fn recovery_is_deterministic_for_any_seed(
        seed in any::<u64>(),
        crash in 0.05f64..0.4,
        stall in 0.0f64..0.2,
        drop in 0.0f64..0.3,
    ) {
        let plan = || {
            FaultPlan::builder(seed)
                .worker_crash_rate(crash)
                .shard_stall(stall, 3)
                .weight_drop_rate(drop)
                .build()
                .unwrap()
        };
        let (s1, r1) = run_apex_chaos(chaos_config(plan(), 10), env_factory).unwrap();
        let (s2, r2) = run_apex_chaos(chaos_config(plan(), 10), env_factory).unwrap();
        prop_assert_eq!(&r1.events, &r2.events);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(s1.env_frames, s2.env_frames);
        prop_assert_eq!(s1.updates, s2.updates);
        prop_assert_eq!(s1.losses, s2.losses);
        prop_assert_eq!(s1.reward_timeline, s2.reward_timeline);
    }
}

/// A checkpoint captured from a run restores into a fresh agent with the
/// full variable set — policy, target, optimizer slots — intact, and
/// survives the JSON serialization round trip unchanged.
#[test]
fn checkpoint_round_trips_through_agent_and_json() {
    let (_, report) = run_apex_chaos(chaos_config(FaultPlan::disabled(), 12), env_factory).unwrap();
    let ckpt = report.final_checkpoint.expect("run banks a final checkpoint");
    assert!(ckpt.updates > 0, "learner should have updated");
    assert!(ckpt.payload_elems() > 0);
    assert_eq!(ckpt.shard_watermarks.len(), 2);

    // restore into a fresh agent: every variable must match the snapshot
    let probe = env_factory(0, 0);
    let mut fresh =
        DqnAgent::new(tiny_agent(), &probe.state_space(), &probe.action_space()).unwrap();
    ckpt.restore(&mut fresh).unwrap();
    assert_eq!(fresh.num_updates(), ckpt.updates);
    assert_eq!(fresh.export_variables(), ckpt.variables);

    // text round trip is lossless
    let reparsed = LearnerCheckpoint::from_json(&ckpt.to_json()).unwrap();
    assert_eq!(reparsed, ckpt);
}

/// `FaultPlanBuilder::inject_at` fires exactly once, at the scheduled
/// coordinates, and shows up in the run's event log.
#[test]
fn scheduled_faults_fire_at_their_step() {
    let plan = FaultPlan::builder(0)
        .inject_at(5, FaultKind::WorkerCrash, 1)
        .shard_stall(0.0, 2)
        .inject_at(7, FaultKind::ShardStall, 0)
        .build()
        .unwrap();
    let (_, report) = run_apex_chaos(chaos_config(plan, 12), env_factory).unwrap();
    assert_eq!(report.worker_crashes, 1);
    assert_eq!(report.worker_restarts, 1);
    assert_eq!(report.shard_stalls, 1);
    let crash = report.events.iter().find(|e| e.kind == FaultKind::WorkerCrash).unwrap();
    assert_eq!((crash.step, crash.target), (5, 1));
    let stall = report.events.iter().find(|e| e.kind == FaultKind::ShardStall).unwrap();
    assert_eq!((stall.step, stall.target), (7, 0));
}

/// Losing a shard within quorum degrades gracefully (learning continues);
/// losing quorum halts updates without erroring the run.
#[test]
fn quorum_loss_degrades_without_erroring() {
    let in_quorum = ChaosApexConfig::builder()
        .agent(tiny_agent())
        .num_workers(1)
        .envs_per_worker(2)
        .task_size(32)
        .num_shards(3)
        .shard_quorum(2)
        .steps(12)
        .kill_shards(vec![2])
        .build()
        .unwrap();
    let (stats, report) = run_apex_chaos(in_quorum, env_factory).unwrap();
    assert!(stats.updates > 0, "two healthy shards meet quorum");
    assert_eq!(report.degraded_steps, 0);

    let below_quorum = ChaosApexConfig::builder()
        .agent(tiny_agent())
        .num_workers(1)
        .envs_per_worker(2)
        .task_size(32)
        .num_shards(3)
        .shard_quorum(2)
        .steps(8)
        .kill_shards(vec![0, 1])
        .build()
        .unwrap();
    let (stats, report) = run_apex_chaos(below_quorum, env_factory).unwrap();
    assert_eq!(stats.updates, 0, "below quorum the learner must pause");
    assert_eq!(report.degraded_steps, 8);
}

#[test]
fn supervisor_panic_dumps_flight_recorder() {
    use rlgraph_dist::{RetryPolicy, Supervisor};
    use rlgraph_obs::Recorder;
    use std::time::Duration;

    let recorder = Recorder::wall();
    recorder.enable_flight(256);
    let path = std::env::temp_dir().join(format!("rlgraph-flight-{}.txt", std::process::id()));
    let policy = RetryPolicy::builder()
        .max_attempts(2)
        .base_delay(Duration::from_micros(100))
        .max_delay(Duration::from_millis(1))
        .build()
        .unwrap();
    let mut sup = Supervisor::with_recorder(policy, recorder.clone()).with_flight_dump(&path);
    let rec = recorder.clone();
    sup.spawn("doomed", move |_stop| {
        {
            let _span = rec.span("doomed.work");
        }
        rec.flight_note("doomed.state", "about to blow");
        panic!("kaboom");
    });
    let report = sup.join();
    assert_eq!(report.total_panics(), 2, "both attempts panicked");
    let dump = std::fs::read_to_string(&path).expect("flight dump written on panic");
    let _ = std::fs::remove_file(&path);
    assert!(dump.contains("flight recorder dump"), "header missing:\n{}", dump);
    assert!(dump.contains("doomed.work"), "span missing:\n{}", dump);
    assert!(dump.contains("about to blow"), "note missing:\n{}", dump);
    assert!(dump.contains("kaboom"), "panic reason missing:\n{}", dump);
}
