//! Same-seed parity: the fragment-built drivers must reproduce the
//! legacy hand-woven drivers, and placements must not change behavior.
//!
//! The contract (ISSUE: fragment executor acceptance): with a fixed
//! per-worker task budget and weight sync disabled, a run's collected
//! trajectory stream is a pure function of the seed — so the legacy and
//! fragment paths must produce identical update counts, identical frame
//! and sample totals, and bit-identical recorded returns. For IMPALA the
//! learner consumes exactly one queue record per update, so a rollout
//! budget equal to the update budget drains exactly and the loss
//! sequence itself must be bit-identical.

use rlgraph_agents::{Backend, DqnConfig, ImpalaConfig};
use rlgraph_dist::fragment::{default_apex_placement, run_apex_fragments, Placement, PlacementMap};
use rlgraph_dist::{
    run_apex_legacy, run_impala_legacy, ApexRunConfig, ApexRunStats, ImpalaDriverConfig,
};
use rlgraph_envs::{Env, RandomEnv};
use rlgraph_nn::{Activation, NetworkSpec};
use std::time::Duration;

fn env_factory(w: usize, e: usize) -> Box<dyn Env> {
    Box::new(RandomEnv::new(&[4], 2, 20, (w * 10 + e) as u64))
}

fn apex_parity_config() -> ApexRunConfig {
    ApexRunConfig::builder()
        .agent(DqnConfig {
            backend: Backend::Static,
            network: NetworkSpec::mlp(&[8], Activation::Tanh),
            memory_capacity: 512,
            batch_size: 8,
            n_step: 2,
            target_sync_every: 50,
            seed: 17,
            ..DqnConfig::default()
        })
        // One worker, no weight syncs within budget: the trajectory
        // stream is a pure function of the seed.
        .num_workers(1)
        .envs_per_worker(2)
        .task_size(64)
        .num_shards(1)
        .weight_sync_interval(1_000_000)
        .run_duration(Duration::from_secs(30))
        .max_updates(Some(12))
        .max_tasks_per_worker(Some(4))
        .build()
        .unwrap()
}

fn returns_of(stats: &ApexRunStats) -> Vec<f32> {
    // Timestamps are wall-clock and differ run to run; the return
    // sequence itself is the determinism contract.
    stats.reward_timeline.iter().map(|(_, r)| *r).collect()
}

#[test]
fn apex_fragment_path_matches_legacy_per_seed() {
    let legacy = run_apex_legacy(apex_parity_config(), env_factory).unwrap();
    let fragment =
        run_apex_fragments(apex_parity_config(), default_apex_placement(), env_factory).unwrap();

    assert_eq!(legacy.updates, 12, "update budget must bind");
    assert_eq!(fragment.updates, legacy.updates);
    assert_eq!(fragment.env_frames, legacy.env_frames);
    assert_eq!(fragment.samples_collected, legacy.samples_collected);
    assert_eq!(
        returns_of(&fragment),
        returns_of(&legacy),
        "recorded returns must be bit-identical"
    );
}

#[test]
fn apex_placement_swap_preserves_behavior_per_seed() {
    // Same declaration, replay moved onto the caller thread: behavioral
    // equality is what makes placement a pure physical concern.
    let threaded =
        run_apex_fragments(apex_parity_config(), default_apex_placement(), env_factory).unwrap();
    let inline_replay = run_apex_fragments(
        apex_parity_config(),
        default_apex_placement().place("replay", Placement::InThread),
        env_factory,
    )
    .unwrap();

    assert_eq!(inline_replay.updates, threaded.updates);
    assert_eq!(inline_replay.env_frames, threaded.env_frames);
    assert_eq!(inline_replay.samples_collected, threaded.samples_collected);
    assert_eq!(returns_of(&inline_replay), returns_of(&threaded));
}

#[test]
fn apex_fragment_runs_under_explicit_placement_map() {
    // The same config also runs when every stage is spelled out — the
    // map API, not just the default, is part of the contract.
    let placement = PlacementMap::new()
        .place("rollout", Placement::ActorThread)
        .place("replay", Placement::InThread)
        .place("learn", Placement::InThread)
        .place("broadcast", Placement::InThread);
    let stats = run_apex_fragments(apex_parity_config(), placement, env_factory).unwrap();
    assert_eq!(stats.updates, 12);
}

fn impala_parity_config() -> ImpalaDriverConfig {
    ImpalaDriverConfig::builder()
        .agent(ImpalaConfig {
            backend: Backend::Static,
            network: NetworkSpec::mlp(&[8], Activation::Tanh),
            rollout_len: 5,
            queue_capacity: 4,
            seed: 23,
            ..ImpalaConfig::default()
        })
        .num_actors(1)
        .envs_per_actor(2)
        // Rollout budget == update budget: the learner consumes exactly
        // one queue record per update, so the run drains exactly.
        .max_rollouts_per_actor(Some(10))
        .max_updates(Some(10))
        .weight_sync_interval(1_000_000)
        .max_weight_lag(1_000_000)
        .run_duration(Duration::from_secs(30))
        .build()
        .unwrap()
}

#[test]
fn impala_fragment_path_matches_legacy_per_seed() {
    let legacy = run_impala_legacy(impala_parity_config(), env_factory).unwrap();
    let fragment = rlgraph_dist::fragment::run_impala_fragments(
        impala_parity_config(),
        rlgraph_dist::fragment::default_impala_placement(),
        env_factory,
    )
    .unwrap();

    assert_eq!(legacy.updates, 10, "update budget must bind");
    assert_eq!(fragment.updates, legacy.updates);
    assert_eq!(fragment.env_frames, legacy.env_frames);
    assert_eq!(fragment.losses, legacy.losses, "loss sequence must be bit-identical");
}
