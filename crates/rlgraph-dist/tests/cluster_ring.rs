//! Property tests for the consistent-hash ring (DESIGN.md §16),
//! through the public `rlgraph-dist` API: assignment determinism,
//! bounded load skew across realistic shard counts, and the defining
//! consistent-hashing property — joins and leaves move only the keys
//! they must.

use proptest::prelude::*;
use rlgraph_dist::cluster::{HashRing, DEFAULT_VNODES};
use std::collections::HashMap;

const KEYS: u64 = 4096;

fn load_counts(ring: &HashRing, keys: u64) -> HashMap<u32, u64> {
    let mut counts = HashMap::new();
    for k in 0..keys {
        *counts.entry(ring.assign(k).expect("non-empty ring")).or_insert(0) += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Assignment is a pure function of the node set: two rings built
    /// over the same nodes — in any insertion order — agree on every
    /// key, so workers and the coordinator never need to gossip
    /// placements.
    #[test]
    fn assignment_is_deterministic_across_insertion_orders(
        n in 1u32..64,
        rotate in 0usize..64,
        keys in proptest::collection::vec(any::<u64>(), 32..64),
    ) {
        let forward = HashRing::with_nodes(n);
        let mut ids: Vec<u32> = (0..n).collect();
        let len = ids.len();
        ids.rotate_left(rotate % len);
        let rotated = HashRing::new(&ids, DEFAULT_VNODES);
        for k in keys {
            prop_assert_eq!(forward.assign(k), rotated.assign(k));
        }
    }

    /// Load balance: with the default virtual-node count, no shard's
    /// share strays past 3x/0.2x of fair across 1..64 shards. The wide
    /// bound is deliberate — vnode hashing has real variance at high
    /// node counts — but it rules out the pathological skews (one
    /// shard taking half the ring) that plain modulo-with-holes or a
    /// low-vnode ring produce.
    #[test]
    fn load_stays_within_bound(n in 1u32..64) {
        let ring = HashRing::with_nodes(n);
        let counts = load_counts(&ring, KEYS);
        prop_assert_eq!(counts.len() as u32, n, "every shard owns some keys");
        let fair = KEYS as f64 / n as f64;
        for (node, c) in counts {
            let ratio = c as f64 / fair;
            prop_assert!(
                (0.2..=3.0).contains(&ratio),
                "shard {} holds {:.2}x fair share ({} of {} keys over {} shards)",
                node, ratio, c, KEYS, n
            );
        }
    }

    /// A join steals roughly 1/(n+1) of the keyspace and every stolen
    /// key lands on the new node; keys that do not move keep their
    /// exact owner. This is the property that makes mid-run scale-up
    /// cheap: shards never exchange data they both keep.
    #[test]
    fn join_moves_only_what_the_new_node_takes(n in 1u32..32) {
        let before = HashRing::with_nodes(n);
        let after = before.with_node(n);
        let mut moved = 0u64;
        for k in 0..KEYS {
            let a = before.assign(k).unwrap();
            let b = after.assign(k).unwrap();
            if a != b {
                prop_assert_eq!(b, n, "a moved key must land on the joiner");
                moved += 1;
            }
        }
        let expected = KEYS as f64 / (n + 1) as f64;
        prop_assert!(
            (moved as f64) < expected * 3.0 + 32.0,
            "join moved {} keys, expected about {:.0}",
            moved, expected
        );
        prop_assert!(moved > 0, "the joiner must take some keys");
    }

    /// A leave relocates exactly the departed node's keys; everyone
    /// else's assignment is untouched.
    #[test]
    fn leave_moves_only_the_departed_nodes_keys(n in 2u32..32, gone in 0u32..32) {
        let gone = gone % n;
        let before = HashRing::with_nodes(n);
        let after = before.without_node(gone);
        for k in 0..KEYS {
            let a = before.assign(k).unwrap();
            let b = after.assign(k).unwrap();
            if a != gone {
                prop_assert_eq!(a, b, "key {} moved although its owner stayed", k);
            } else {
                prop_assert!(b != gone, "key {} still routes to the departed node", k);
            }
        }
    }

    /// Failover routing agrees with the successor list: skipping a
    /// down node lands each key on its first live successor, so the
    /// spill target is predictable from the ring alone.
    #[test]
    fn filtered_assignment_matches_successors(n in 2u32..16, down in 0u32..16) {
        let down = down % n;
        let ring = HashRing::with_nodes(n);
        for k in 0..256u64 {
            let filtered = ring.assign_filtered(k, |node| node != down).unwrap();
            let expect = ring
                .successors(k, n as usize)
                .into_iter()
                .find(|&node| node != down)
                .unwrap();
            prop_assert_eq!(filtered, expect);
        }
    }
}
