//! Actor supervision: restart-on-failure with bounded backoff.
//!
//! A [`Supervisor`] owns a set of named actors (worker threads). Each
//! actor's body runs inside an in-thread restart loop: a panic or a
//! retryable error triggers a backoff-delayed restart (fresh invocation
//! of the body closure), a fatal error or exhausted restart budget stops
//! the actor for good, and a clean `Ok(())` return ends it normally.
//! This is the one-for-one supervision strategy of Erlang/OTP scoped to
//! the distributed-RL actors here (Ape-X workers, IMPALA actors, policy
//! replicas): restarts are per-actor, never cascading.
//!
//! The restart loop runs *inside* the actor's own thread so a restart
//! costs no thread spawn and the supervisor never blocks on a crashed
//! child; all coordination is a shared stop flag plus per-actor atomics
//! that [`Supervisor::join`] folds into a [`SupervisionReport`].

use crate::retry::{RetryPolicy, Sleep, ThreadSleeper};
use rlgraph_core::{RlError, RlResult};
use rlgraph_obs::Recorder;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How a supervised actor ultimately ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActorOutcome {
    /// The body returned `Ok(())`.
    Completed,
    /// The supervisor's stop flag was raised.
    Stopped,
    /// The body kept failing past `max_restarts`; last failure attached.
    GaveUp(String),
    /// A fatal error made restarting pointless.
    Fatal(String),
    /// Still running (only visible in a snapshot before `join`).
    Running,
}

/// Final per-actor accounting.
#[derive(Debug, Clone)]
pub struct ActorReport {
    /// the actor's name
    pub name: String,
    /// completed body invocations beyond the first (i.e. recoveries)
    pub restarts: u64,
    /// failures that were panics rather than typed errors
    pub panics: u64,
    /// how the actor ended
    pub outcome: ActorOutcome,
}

/// Aggregated result of a supervision run.
#[derive(Debug, Clone)]
pub struct SupervisionReport {
    /// per-actor reports, in spawn order
    pub actors: Vec<ActorReport>,
}

impl SupervisionReport {
    /// Total restarts across all actors.
    pub fn total_restarts(&self) -> u64 {
        self.actors.iter().map(|a| a.restarts).sum()
    }

    /// Total panics across all actors.
    pub fn total_panics(&self) -> u64 {
        self.actors.iter().map(|a| a.panics).sum()
    }

    /// Whether every actor either completed or was stopped cleanly.
    pub fn all_healthy(&self) -> bool {
        self.actors
            .iter()
            .all(|a| matches!(a.outcome, ActorOutcome::Completed | ActorOutcome::Stopped))
    }
}

struct ActorSlot {
    name: String,
    restarts: Arc<AtomicU64>,
    panics: Arc<AtomicU64>,
    handle: JoinHandle<ActorOutcome>,
}

/// Supervises a set of actor threads with restart-on-failure semantics.
///
/// ```
/// use rlgraph_dist::{RetryPolicy, Supervisor};
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let mut sup = Supervisor::new(RetryPolicy::builder()
///     .max_attempts(3)
///     .base_delay(Duration::from_micros(100))
///     .build()
///     .unwrap());
/// let tries = Arc::new(AtomicU32::new(0));
/// let t = tries.clone();
/// sup.spawn("flaky-worker", move |_stop| {
///     // fail twice, then succeed — the supervisor restarts us
///     if t.fetch_add(1, Ordering::SeqCst) < 2 {
///         Err(rlgraph_dist::RlError::MailboxFull { capacity: 8 })
///     } else {
///         Ok(())
///     }
/// });
/// let report = sup.join();
/// assert!(report.all_healthy());
/// assert_eq!(report.actors[0].restarts, 2);
/// ```
pub struct Supervisor {
    policy: RetryPolicy,
    stop: Arc<AtomicBool>,
    recorder: Recorder,
    flight_dump: Option<std::path::PathBuf>,
    slots: Vec<ActorSlot>,
}

impl Supervisor {
    /// Creates a supervisor whose restart backoff/budget follows `policy`
    /// (`max_attempts` bounds body invocations per actor, the delays pace
    /// restarts).
    pub fn new(policy: RetryPolicy) -> Self {
        Self::with_recorder(policy, Recorder::disabled())
    }

    /// Like [`Supervisor::new`], recording `supervisor.restarts`,
    /// `supervisor.panics`, `supervisor.gave_up` counters and a
    /// `supervisor.recovery_us` histogram (time from failure to the
    /// restarted body running).
    pub fn with_recorder(policy: RetryPolicy, recorder: Recorder) -> Self {
        Supervisor {
            policy,
            stop: Arc::new(AtomicBool::new(false)),
            recorder,
            flight_dump: None,
            slots: Vec::new(),
        }
    }

    /// Writes the recorder's flight-ring post-mortem to `path` whenever
    /// an actor panics (latest crash wins). Without a path, the dump
    /// goes to stderr. Either way it only fires when the recorder's
    /// flight ring is enabled ([`Recorder::enable_flight`]).
    #[must_use]
    pub fn with_flight_dump(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.flight_dump = Some(path.into());
        self
    }

    /// The shared stop flag; raise it (or call [`Supervisor::stop`]) to
    /// ask all actors to wind down.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    /// Asks every actor to stop at its next flag check.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Spawns a supervised actor. The body runs until it returns; on
    /// `Err(retryable/degraded)` or panic it is re-invoked after backoff,
    /// up to the policy's attempt budget. The body receives the stop flag
    /// and should poll it in its work loop.
    pub fn spawn<F>(&mut self, name: &str, mut body: F)
    where
        F: FnMut(&AtomicBool) -> RlResult<()> + Send + 'static,
    {
        let restarts = Arc::new(AtomicU64::new(0));
        let panics = Arc::new(AtomicU64::new(0));
        let slot_restarts = restarts.clone();
        let slot_panics = panics.clone();
        let stop = self.stop.clone();
        let policy = self.policy.clone();
        let actor_name = name.to_string();
        let restarts_ctr = self.recorder.counter("supervisor.restarts");
        let panics_ctr = self.recorder.counter("supervisor.panics");
        let gave_up_ctr = self.recorder.counter("supervisor.gave_up");
        let recovery_us = self.recorder.histogram("supervisor.recovery_us");
        let recorder = self.recorder.clone();
        let flight_path = self.flight_dump.clone();
        let handle = std::thread::Builder::new()
            .name(format!("sup-{}", name))
            .spawn(move || {
                let sleeper = ThreadSleeper::new();
                let mut attempt: u32 = 0;
                loop {
                    if stop.load(Ordering::SeqCst) {
                        return ActorOutcome::Stopped;
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| body(&stop)));
                    let err = match result {
                        Ok(Ok(())) => return ActorOutcome::Completed,
                        Ok(Err(e)) => e,
                        Err(payload) => {
                            slot_panics.fetch_add(1, Ordering::SeqCst);
                            panics_ctr.inc();
                            let reason = panic_message(payload.as_ref());
                            // Post-mortem: everything the flight ring
                            // retained at the moment of the crash.
                            if let Some(dump) = recorder.flight_render(&format!(
                                "actor '{}' panicked: {}",
                                actor_name, reason
                            )) {
                                match &flight_path {
                                    Some(p) => {
                                        let _ = std::fs::write(p, &dump);
                                    }
                                    None => eprintln!("{}", dump),
                                }
                            }
                            RlError::ActorCrashed { actor: actor_name.clone(), reason }
                        }
                    };
                    // A fatal *typed* error means restarting cannot help;
                    // a panic is treated as restartable (crash-only style).
                    let restartable =
                        !err.is_fatal() || matches!(err, RlError::ActorCrashed { .. });
                    if !restartable {
                        return ActorOutcome::Fatal(err.to_string());
                    }
                    attempt += 1;
                    if attempt >= policy.max_attempts {
                        gave_up_ctr.inc();
                        return ActorOutcome::GaveUp(err.to_string());
                    }
                    let wait = policy.backoff(attempt - 1);
                    let failed_at = sleeper.now();
                    sleeper.sleep(wait);
                    if stop.load(Ordering::SeqCst) {
                        return ActorOutcome::Stopped;
                    }
                    slot_restarts.fetch_add(1, Ordering::SeqCst);
                    restarts_ctr.inc();
                    recovery_us.record((sleeper.now() - failed_at).as_micros() as f64);
                }
            })
            .expect("spawn supervised actor");
        self.slots.push(ActorSlot { name: name.to_string(), restarts, panics, handle });
    }

    /// Snapshot of per-actor restart counts so far (spawn order).
    pub fn restart_counts(&self) -> Vec<(String, u64)> {
        self.slots.iter().map(|s| (s.name.clone(), s.restarts.load(Ordering::SeqCst))).collect()
    }

    /// Waits for all actors to end and returns the final report.
    pub fn join(self) -> SupervisionReport {
        let actors = self
            .slots
            .into_iter()
            .map(|slot| {
                let outcome = slot.handle.join().unwrap_or_else(|payload| {
                    // the restart loop itself panicked (it shouldn't)
                    ActorOutcome::GaveUp(panic_message(payload.as_ref()))
                });
                ActorReport {
                    name: slot.name,
                    restarts: slot.restarts.load(Ordering::SeqCst),
                    panics: slot.panics.load(Ordering::SeqCst),
                    outcome,
                }
            })
            .collect();
        SupervisionReport { actors }
    }

    /// Raises the stop flag, then joins.
    pub fn stop_and_join(self) -> SupervisionReport {
        self.stop();
        self.join()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    fn fast_policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy::builder()
            .max_attempts(max_attempts)
            .base_delay(Duration::from_micros(100))
            .max_delay(Duration::from_millis(1))
            .build()
            .unwrap()
    }

    #[test]
    fn clean_completion_no_restarts() {
        let mut sup = Supervisor::new(fast_policy(4));
        sup.spawn("ok", |_| Ok(()));
        let report = sup.join();
        assert!(report.all_healthy());
        assert_eq!(report.actors[0].outcome, ActorOutcome::Completed);
        assert_eq!(report.total_restarts(), 0);
    }

    #[test]
    fn retryable_failures_restart_until_success() {
        let mut sup = Supervisor::new(fast_policy(5));
        let tries = Arc::new(AtomicU32::new(0));
        let t = tries.clone();
        sup.spawn("flaky", move |_| {
            if t.fetch_add(1, Ordering::SeqCst) < 3 {
                Err(RlError::MailboxFull { capacity: 2 })
            } else {
                Ok(())
            }
        });
        let report = sup.join();
        assert_eq!(report.actors[0].outcome, ActorOutcome::Completed);
        assert_eq!(report.actors[0].restarts, 3);
        assert_eq!(report.actors[0].panics, 0);
        assert_eq!(tries.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panics_are_caught_and_restarted() {
        let mut sup = Supervisor::new(fast_policy(4));
        let tries = Arc::new(AtomicU32::new(0));
        let t = tries.clone();
        sup.spawn("crashy", move |_| {
            if t.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("injected crash");
            }
            Ok(())
        });
        let report = sup.join();
        assert_eq!(report.actors[0].outcome, ActorOutcome::Completed);
        assert_eq!(report.actors[0].panics, 2);
        assert_eq!(report.actors[0].restarts, 2);
    }

    #[test]
    fn fatal_error_stops_without_restart() {
        let mut sup = Supervisor::new(fast_policy(8));
        sup.spawn("doomed", |_| Err(RlError::Shutdown));
        let report = sup.join();
        assert!(matches!(report.actors[0].outcome, ActorOutcome::Fatal(_)));
        assert_eq!(report.total_restarts(), 0);
    }

    #[test]
    fn restart_budget_exhaustion_gives_up() {
        let mut sup = Supervisor::new(fast_policy(3));
        sup.spawn("hopeless", |_| Err(RlError::MailboxFull { capacity: 1 }));
        let report = sup.join();
        match &report.actors[0].outcome {
            ActorOutcome::GaveUp(msg) => assert!(msg.contains("mailbox full")),
            other => panic!("expected GaveUp, got {:?}", other),
        }
        // 3 attempts = initial run + 2 restarts
        assert_eq!(report.actors[0].restarts, 2);
        assert!(!report.all_healthy());
    }

    #[test]
    fn stop_flag_reaches_actors() {
        let mut sup = Supervisor::new(fast_policy(4));
        sup.spawn("looper", move |stop| {
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_micros(200));
            }
            Ok(())
        });
        std::thread::sleep(Duration::from_millis(2));
        let report = sup.stop_and_join();
        assert!(report.all_healthy());
    }
}
