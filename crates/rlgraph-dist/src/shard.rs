//! Replay-shard actors: each hosts one prioritized replay buffer and
//! serves inserts, samples, and priority updates over channels (the
//! paper's "4 instances of replay memories to feed the learner").

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use rlgraph_agents::components::memory::transitions_to_batch;
use rlgraph_core::RlError;
use rlgraph_memory::{PrioritizedReplay, Transition};
use rlgraph_obs::Recorder;
use rlgraph_tensor::Tensor;
use std::thread::JoinHandle;

/// The storage + sampling state of one replay shard, detached from any
/// actor/thread: a prioritized buffer and its seeded sampling RNG.
///
/// `shard_loop` (the threaded actor) and the deterministic chaos
/// engine (`chaos` module) both drive this same core, so fault-injection
/// runs exercise the production replay path rather than a model of it.
pub struct ShardCore {
    mem: PrioritizedReplay<Transition>,
    rng: rand::rngs::StdRng,
}

impl ShardCore {
    /// Creates a shard core with the given buffer capacity, priority
    /// exponent, and RNG seed.
    pub fn new(capacity: usize, alpha: f32, seed: u64) -> Self {
        use rand::SeedableRng;
        ShardCore {
            mem: PrioritizedReplay::new(capacity, alpha),
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Inserts transitions with worker-side initial priorities.
    pub fn insert(&mut self, transitions: Vec<Transition>, priorities: Vec<f32>) {
        for (t, p) in transitions.into_iter().zip(priorities) {
            self.mem.insert_with_priority(t, p);
        }
    }

    /// Samples a batch, or `None` while under-filled (or on a batching
    /// failure).
    pub fn sample(&mut self, batch: usize, beta: f32) -> Option<ShardBatch> {
        if self.mem.len() < batch {
            return None;
        }
        let sample = self.mem.sample(batch, beta, &mut self.rng);
        let tensors = transitions_to_batch(&sample.records).ok()?;
        let weights = Tensor::from_vec(sample.weights, &[batch]).expect("batch shape");
        Some(ShardBatch { tensors, weights, indices: sample.indices })
    }

    /// Applies a learner's post-step priority updates; stale indices
    /// (overwritten slots after wrap-around) are dropped defensively.
    pub fn update_priorities(&mut self, indices: Vec<usize>, priorities: Vec<f32>) {
        let pairs: Vec<(usize, f32)> =
            indices.into_iter().zip(priorities).filter(|(i, _)| *i < self.mem.len()).collect();
        let (idx, pr): (Vec<usize>, Vec<f32>) = pairs.into_iter().unzip();
        self.mem.update_priorities(&idx, &pr);
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// Whether the buffer holds no records.
    pub fn is_empty(&self) -> bool {
        self.mem.len() == 0
    }

    /// The shard's high-water mark: total records ever inserted. This is
    /// what learner checkpoints persist per shard.
    pub fn watermark(&self) -> u64 {
        self.mem.total_inserted()
    }
}

/// A batch served by a shard, with the shard-local slot indices.
#[derive(Debug, Clone)]
pub struct ShardBatch {
    /// `(s, a, r, s2, t)` stacked tensors
    pub tensors: [Tensor; 5],
    /// importance weights `[b]`
    pub weights: Tensor,
    /// shard-local slot indices
    pub indices: Vec<usize>,
}

/// Requests a shard actor serves.
pub enum ShardRequest {
    /// insert post-processed transitions with worker-side priorities
    Insert {
        /// the transitions
        transitions: Vec<Transition>,
        /// per-transition initial priorities
        priorities: Vec<f32>,
    },
    /// sample a batch; replies on the provided channel (None while the
    /// shard holds fewer than `batch` records)
    Sample {
        /// batch size
        batch: usize,
        /// IS exponent
        beta: f32,
        /// reply channel
        reply: Sender<Option<ShardBatch>>,
    },
    /// update priorities after a learner step
    UpdatePriorities {
        /// shard-local indices
        indices: Vec<usize>,
        /// new priorities
        priorities: Vec<f32>,
    },
    /// report the shard's high-water mark (total records ever inserted);
    /// used by learner checkpoints
    Watermark {
        /// reply channel
        reply: Sender<u64>,
    },
    /// stop the actor
    Shutdown,
}

/// Why a non-blocking shard submission was not accepted.
///
/// Carries the rejected request back so callers can decide to retry,
/// block, or shed — saturation is an explicit, typed condition rather
/// than a silent drop.
#[derive(Debug)]
pub enum MailboxError {
    /// The mailbox holds `capacity` pending requests; the actor is
    /// saturated.
    Full {
        /// the mailbox bound
        capacity: usize,
        /// the rejected request, returned for retry/fallback
        request: ShardRequest,
    },
    /// The actor has shut down and will never drain the mailbox.
    Disconnected(ShardRequest),
}

impl std::fmt::Display for MailboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MailboxError::Full { capacity, .. } => {
                write!(f, "shard mailbox full ({} pending requests)", capacity)
            }
            MailboxError::Disconnected(_) => write!(f, "shard actor disconnected"),
        }
    }
}

impl std::error::Error for MailboxError {}

/// Folds a mailbox failure into the unified taxonomy. The rejected
/// request payload is dropped — use the typed [`MailboxError`] directly
/// when the request must be recovered for a retry with the same value.
impl From<MailboxError> for RlError {
    fn from(e: MailboxError) -> Self {
        match e {
            MailboxError::Full { capacity, .. } => RlError::MailboxFull { capacity },
            MailboxError::Disconnected(_) => RlError::disconnected("replay shard"),
        }
    }
}

impl std::fmt::Debug for ShardRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardRequest::Insert { transitions, .. } => {
                write!(f, "Insert({} transitions)", transitions.len())
            }
            ShardRequest::Sample { batch, beta, .. } => {
                write!(f, "Sample(batch={}, beta={})", batch, beta)
            }
            ShardRequest::UpdatePriorities { indices, .. } => {
                write!(f, "UpdatePriorities({} indices)", indices.len())
            }
            ShardRequest::Watermark { .. } => write!(f, "Watermark"),
            ShardRequest::Shutdown => write!(f, "Shutdown"),
        }
    }
}

/// Handle to a running replay-shard actor.
pub struct ReplayShard {
    tx: Sender<ShardRequest>,
    mailbox_capacity: usize,
    handle: Option<JoinHandle<u64>>,
}

impl ReplayShard {
    /// Spawns a shard actor with the given capacity/alpha.
    pub fn spawn(name: String, capacity: usize, alpha: f32, seed: u64) -> Self {
        Self::spawn_with_recorder(name, capacity, alpha, seed, Recorder::disabled())
    }

    /// Like [`ReplayShard::spawn`] with an observability recorder: the
    /// actor records service-time spans/histograms per request kind, its
    /// mailbox depth, and the buffer fill level.
    pub fn spawn_with_recorder(
        name: String,
        capacity: usize,
        alpha: f32,
        seed: u64,
        recorder: Recorder,
    ) -> Self {
        let (tx, rx): (Sender<ShardRequest>, Receiver<ShardRequest>) =
            bounded(Self::DEFAULT_MAILBOX_CAPACITY);
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || shard_loop(rx, capacity, alpha, seed, recorder))
            .expect("spawn shard thread");
        ReplayShard { tx, mailbox_capacity: Self::DEFAULT_MAILBOX_CAPACITY, handle: Some(handle) }
    }

    /// Bound of the actor's request mailbox.
    pub const DEFAULT_MAILBOX_CAPACITY: usize = 256;

    /// The mailbox bound: how many requests may be pending before
    /// submissions block ([`ReplayShard::sender`]) or are rejected
    /// ([`ReplayShard::try_send`]).
    pub fn mailbox_capacity(&self) -> usize {
        self.mailbox_capacity
    }

    /// Requests currently pending in the mailbox.
    pub fn mailbox_depth(&self) -> usize {
        self.tx.len()
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`MailboxError::Full`] (carrying the rejected request and
    /// the mailbox bound) when the actor is saturated, and
    /// [`MailboxError::Disconnected`] when it has shut down.
    pub fn try_send(&self, request: ShardRequest) -> Result<(), MailboxError> {
        self.tx.try_send(request).map_err(|e| match e {
            TrySendError::Full(request) => {
                MailboxError::Full { capacity: self.mailbox_capacity, request }
            }
            TrySendError::Disconnected(request) => MailboxError::Disconnected(request),
        })
    }

    /// The request channel (blocking submission).
    pub fn sender(&self) -> Sender<ShardRequest> {
        self.tx.clone()
    }

    /// The shard's current high-water mark (total records ever inserted),
    /// fetched synchronously; `None` if the actor has shut down.
    pub fn watermark(&self) -> Option<u64> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx.send(ShardRequest::Watermark { reply: reply_tx }).ok()?;
        reply_rx.recv().ok()
    }

    /// Stops the actor and returns the total number of inserted records.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.tx.send(ShardRequest::Shutdown);
        self.handle.take().map(|h| h.join().unwrap_or(0)).unwrap_or(0)
    }
}

impl Drop for ReplayShard {
    fn drop(&mut self) {
        let _ = self.tx.send(ShardRequest::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Metric handles for one shard serving loop. Resolved once (all
/// no-ops under a disabled recorder); the constructors pick the naming
/// scheme:
///
/// * [`ShardServeMetrics::legacy`] — the historical `shard.*` names.
/// * [`ShardServeMetrics::fragment`] — the uniform
///   `frag.<stage>.*` scheme of the fragment executor, with the
///   `shard.*` spellings kept as live back-compat aliases.
#[derive(Clone)]
pub struct ShardServeMetrics {
    /// insert service time (µs)
    pub insert_us: rlgraph_obs::AliasedHistogram,
    /// sample service time (µs)
    pub sample_us: rlgraph_obs::AliasedHistogram,
    /// priority-update service time (µs)
    pub update_us: rlgraph_obs::AliasedHistogram,
    /// pending requests after each dequeue
    pub mailbox_depth: rlgraph_obs::AliasedGauge,
    /// records currently held
    pub fill: rlgraph_obs::AliasedGauge,
}

impl ShardServeMetrics {
    /// Handles under the historical `shard.*` names.
    pub fn legacy(recorder: &Recorder) -> Self {
        ShardServeMetrics {
            insert_us: recorder.histogram_aliased("shard.insert_us", &[]),
            sample_us: recorder.histogram_aliased("shard.sample_us", &[]),
            update_us: recorder.histogram_aliased("shard.update_priorities_us", &[]),
            mailbox_depth: recorder.gauge_aliased("shard.mailbox_depth", &[]),
            fill: recorder.gauge_aliased("shard.size", &[]),
        }
    }

    /// Handles under `frag.<stage>.*` with the `shard.*` names aliased.
    pub fn fragment(recorder: &Recorder, stage: &str) -> Self {
        let name = |metric: &str| format!("frag.{}.{}", stage, metric);
        ShardServeMetrics {
            insert_us: recorder.histogram_aliased(&name("insert_us"), &["shard.insert_us"]),
            sample_us: recorder.histogram_aliased(&name("sample_us"), &["shard.sample_us"]),
            update_us: recorder
                .histogram_aliased(&name("update_priorities_us"), &["shard.update_priorities_us"]),
            mailbox_depth: recorder.gauge_aliased(&name("mailbox_depth"), &["shard.mailbox_depth"]),
            fill: recorder.gauge_aliased(&name("size"), &["shard.size"]),
        }
    }
}

fn shard_loop(
    rx: Receiver<ShardRequest>,
    capacity: usize,
    alpha: f32,
    seed: u64,
    recorder: Recorder,
) -> u64 {
    let core = ShardCore::new(capacity, alpha, seed);
    let metrics = ShardServeMetrics::legacy(&recorder);
    serve_shard(&rx, core, &recorder, &metrics)
}

/// Serves shard requests from `rx` over `core` until `Shutdown` arrives
/// or every sender is gone, then returns the shard's final watermark.
///
/// This is the one replay serving loop: [`ReplayShard`] threads and the
/// fragment executor's replay stage bodies both run it, so placement
/// changes never change request semantics — only the thread the loop
/// runs on and the names its metrics are emitted under.
pub fn serve_shard(
    rx: &Receiver<ShardRequest>,
    mut core: ShardCore,
    recorder: &Recorder,
    m: &ShardServeMetrics,
) -> u64 {
    let (insert_us, sample_us, update_us) = (&m.insert_us, &m.sample_us, &m.update_us);
    let (mailbox_depth, fill) = (&m.mailbox_depth, &m.fill);
    while let Ok(req) = rx.recv() {
        // Depth of the actor's mailbox *after* taking this request: how far
        // producers are running ahead of this shard.
        mailbox_depth.set(rx.len() as f64);
        match req {
            ShardRequest::Insert { transitions, priorities } => {
                let _span = recorder.span("shard.insert");
                let t0 = std::time::Instant::now();
                core.insert(transitions, priorities);
                insert_us.record_duration(t0.elapsed());
                fill.set(core.len() as f64);
            }
            ShardRequest::Sample { batch, beta, reply } => {
                let _span = recorder.span("shard.sample");
                let t0 = std::time::Instant::now();
                let _ = reply.send(core.sample(batch, beta));
                sample_us.record_duration(t0.elapsed());
            }
            ShardRequest::UpdatePriorities { indices, priorities } => {
                let _span = recorder.span("shard.update_priorities");
                let t0 = std::time::Instant::now();
                core.update_priorities(indices, priorities);
                update_us.record_duration(t0.elapsed());
            }
            ShardRequest::Watermark { reply } => {
                let _ = reply.send(core.watermark());
            }
            ShardRequest::Shutdown => break,
        }
    }
    core.watermark()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlgraph_tensor::DType;

    fn transitions(n: usize) -> (Vec<Transition>, Vec<f32>) {
        let ts = (0..n)
            .map(|i| {
                Transition::new(
                    Tensor::full(&[3], i as f32),
                    Tensor::scalar_i64(0),
                    1.0,
                    Tensor::full(&[3], i as f32 + 1.0),
                    false,
                )
            })
            .collect();
        (ts, vec![1.0; n])
    }

    #[test]
    fn insert_then_sample_roundtrip() {
        let shard = ReplayShard::spawn("shard-test".into(), 64, 0.6, 0);
        let (ts, ps) = transitions(16);
        shard.sender().send(ShardRequest::Insert { transitions: ts, priorities: ps }).unwrap();
        let (reply_tx, reply_rx) = bounded(1);
        shard.sender().send(ShardRequest::Sample { batch: 8, beta: 0.4, reply: reply_tx }).unwrap();
        let batch = reply_rx.recv().unwrap().expect("enough data");
        assert_eq!(batch.tensors[0].shape(), &[8, 3]);
        assert_eq!(batch.tensors[4].dtype(), DType::Bool);
        assert_eq!(batch.indices.len(), 8);
        assert_eq!(shard.shutdown(), 16);
    }

    #[test]
    fn sample_underfilled_returns_none() {
        let shard = ReplayShard::spawn("shard-test".into(), 64, 0.6, 0);
        let (reply_tx, reply_rx) = bounded(1);
        shard.sender().send(ShardRequest::Sample { batch: 4, beta: 0.4, reply: reply_tx }).unwrap();
        assert!(reply_rx.recv().unwrap().is_none());
    }

    #[test]
    fn saturated_mailbox_reports_typed_full_error() {
        let shard = ReplayShard::spawn("shard-test".into(), 32, 1.0, 0);
        assert_eq!(shard.mailbox_capacity(), ReplayShard::DEFAULT_MAILBOX_CAPACITY);
        // Wedge the actor: give it a Sample whose reply channel is already
        // full, so its blocking reply-send parks the actor thread while we
        // flood the mailbox.
        let (reply_tx, reply_rx) = bounded(1);
        reply_tx.send(None).unwrap();
        shard.sender().send(ShardRequest::Sample { batch: 4, beta: 0.4, reply: reply_tx }).unwrap();
        let mut full = None;
        for _ in 0..=shard.mailbox_capacity() + 1 {
            match shard
                .try_send(ShardRequest::UpdatePriorities { indices: vec![], priorities: vec![] })
            {
                Ok(()) => {}
                Err(e) => {
                    full = Some(e);
                    break;
                }
            }
        }
        match full.expect("mailbox should saturate") {
            MailboxError::Full { capacity, request } => {
                assert_eq!(capacity, ReplayShard::DEFAULT_MAILBOX_CAPACITY);
                assert!(matches!(request, ShardRequest::UpdatePriorities { .. }));
            }
            other => panic!("expected Full, got {:?}", other),
        }
        // Unwedge and drain.
        assert!(reply_rx.recv().unwrap().is_none());
        assert!(reply_rx.recv().unwrap().is_none());
        shard.shutdown();
    }

    #[test]
    fn watermark_tracks_total_inserts_and_converts_to_rlerror() {
        let shard = ReplayShard::spawn("shard-test".into(), 8, 0.6, 0);
        let (ts, ps) = transitions(12); // capacity 8: wraps, watermark keeps counting
        shard.sender().send(ShardRequest::Insert { transitions: ts, priorities: ps }).unwrap();
        assert_eq!(shard.watermark(), Some(12));
        assert_eq!(shard.shutdown(), 12);

        let full = MailboxError::Full {
            capacity: 4,
            request: ShardRequest::UpdatePriorities { indices: vec![], priorities: vec![] },
        };
        let rl: RlError = full.into();
        assert!(rl.is_retryable());
        assert!(matches!(rl, RlError::MailboxFull { capacity: 4 }));
        let disc = MailboxError::Disconnected(ShardRequest::Shutdown);
        assert!(RlError::from(disc).is_fatal());
    }

    #[test]
    fn shard_core_is_deterministic_per_seed() {
        let mut a = ShardCore::new(32, 0.6, 9);
        let mut b = ShardCore::new(32, 0.6, 9);
        for core in [&mut a, &mut b] {
            let (ts, ps) = transitions(16);
            core.insert(ts, ps);
        }
        let sa = a.sample(8, 0.4).unwrap();
        let sb = b.sample(8, 0.4).unwrap();
        assert_eq!(sa.indices, sb.indices);
        assert_eq!(a.watermark(), 16);
    }

    #[test]
    fn priority_updates_accepted() {
        let shard = ReplayShard::spawn("shard-test".into(), 32, 1.0, 0);
        let (ts, ps) = transitions(8);
        shard.sender().send(ShardRequest::Insert { transitions: ts, priorities: ps }).unwrap();
        shard
            .sender()
            .send(ShardRequest::UpdatePriorities {
                indices: vec![0, 1, 99],
                priorities: vec![10.0, 0.1, 5.0],
            })
            .unwrap();
        // still serving after an update containing a stale index
        let (reply_tx, reply_rx) = bounded(1);
        shard.sender().send(ShardRequest::Sample { batch: 4, beta: 0.0, reply: reply_tx }).unwrap();
        assert!(reply_rx.recv().unwrap().is_some());
        shard.shutdown();
    }
}
