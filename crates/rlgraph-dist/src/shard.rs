//! Replay-shard actors: each hosts one prioritized replay buffer and
//! serves inserts, samples, and priority updates over channels (the
//! paper's "4 instances of replay memories to feed the learner").

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use rlgraph_agents::components::memory::transitions_to_batch;
use rlgraph_memory::{PrioritizedReplay, Transition};
use rlgraph_obs::Recorder;
use rlgraph_tensor::Tensor;
use std::thread::JoinHandle;

/// A batch served by a shard, with the shard-local slot indices.
#[derive(Debug, Clone)]
pub struct ShardBatch {
    /// `(s, a, r, s2, t)` stacked tensors
    pub tensors: [Tensor; 5],
    /// importance weights `[b]`
    pub weights: Tensor,
    /// shard-local slot indices
    pub indices: Vec<usize>,
}

/// Requests a shard actor serves.
pub enum ShardRequest {
    /// insert post-processed transitions with worker-side priorities
    Insert {
        /// the transitions
        transitions: Vec<Transition>,
        /// per-transition initial priorities
        priorities: Vec<f32>,
    },
    /// sample a batch; replies on the provided channel (None while the
    /// shard holds fewer than `batch` records)
    Sample {
        /// batch size
        batch: usize,
        /// IS exponent
        beta: f32,
        /// reply channel
        reply: Sender<Option<ShardBatch>>,
    },
    /// update priorities after a learner step
    UpdatePriorities {
        /// shard-local indices
        indices: Vec<usize>,
        /// new priorities
        priorities: Vec<f32>,
    },
    /// stop the actor
    Shutdown,
}

/// Why a non-blocking shard submission was not accepted.
///
/// Carries the rejected request back so callers can decide to retry,
/// block, or shed — saturation is an explicit, typed condition rather
/// than a silent drop.
#[derive(Debug)]
pub enum MailboxError {
    /// The mailbox holds `capacity` pending requests; the actor is
    /// saturated.
    Full {
        /// the mailbox bound
        capacity: usize,
        /// the rejected request, returned for retry/fallback
        request: ShardRequest,
    },
    /// The actor has shut down and will never drain the mailbox.
    Disconnected(ShardRequest),
}

impl std::fmt::Display for MailboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MailboxError::Full { capacity, .. } => {
                write!(f, "shard mailbox full ({} pending requests)", capacity)
            }
            MailboxError::Disconnected(_) => write!(f, "shard actor disconnected"),
        }
    }
}

impl std::error::Error for MailboxError {}

impl std::fmt::Debug for ShardRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardRequest::Insert { transitions, .. } => {
                write!(f, "Insert({} transitions)", transitions.len())
            }
            ShardRequest::Sample { batch, beta, .. } => {
                write!(f, "Sample(batch={}, beta={})", batch, beta)
            }
            ShardRequest::UpdatePriorities { indices, .. } => {
                write!(f, "UpdatePriorities({} indices)", indices.len())
            }
            ShardRequest::Shutdown => write!(f, "Shutdown"),
        }
    }
}

/// Handle to a running replay-shard actor.
pub struct ReplayShard {
    tx: Sender<ShardRequest>,
    mailbox_capacity: usize,
    handle: Option<JoinHandle<u64>>,
}

impl ReplayShard {
    /// Spawns a shard actor with the given capacity/alpha.
    pub fn spawn(name: String, capacity: usize, alpha: f32, seed: u64) -> Self {
        Self::spawn_with_recorder(name, capacity, alpha, seed, Recorder::disabled())
    }

    /// Like [`ReplayShard::spawn`] with an observability recorder: the
    /// actor records service-time spans/histograms per request kind, its
    /// mailbox depth, and the buffer fill level.
    pub fn spawn_with_recorder(
        name: String,
        capacity: usize,
        alpha: f32,
        seed: u64,
        recorder: Recorder,
    ) -> Self {
        let (tx, rx): (Sender<ShardRequest>, Receiver<ShardRequest>) =
            bounded(Self::DEFAULT_MAILBOX_CAPACITY);
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || shard_loop(rx, capacity, alpha, seed, recorder))
            .expect("spawn shard thread");
        ReplayShard { tx, mailbox_capacity: Self::DEFAULT_MAILBOX_CAPACITY, handle: Some(handle) }
    }

    /// Bound of the actor's request mailbox.
    pub const DEFAULT_MAILBOX_CAPACITY: usize = 256;

    /// The mailbox bound: how many requests may be pending before
    /// submissions block ([`ReplayShard::sender`]) or are rejected
    /// ([`ReplayShard::try_send`]).
    pub fn mailbox_capacity(&self) -> usize {
        self.mailbox_capacity
    }

    /// Requests currently pending in the mailbox.
    pub fn mailbox_depth(&self) -> usize {
        self.tx.len()
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`MailboxError::Full`] (carrying the rejected request and
    /// the mailbox bound) when the actor is saturated, and
    /// [`MailboxError::Disconnected`] when it has shut down.
    pub fn try_send(&self, request: ShardRequest) -> Result<(), MailboxError> {
        self.tx.try_send(request).map_err(|e| match e {
            TrySendError::Full(request) => {
                MailboxError::Full { capacity: self.mailbox_capacity, request }
            }
            TrySendError::Disconnected(request) => MailboxError::Disconnected(request),
        })
    }

    /// The request channel (blocking submission).
    pub fn sender(&self) -> Sender<ShardRequest> {
        self.tx.clone()
    }

    /// Stops the actor and returns the total number of inserted records.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.tx.send(ShardRequest::Shutdown);
        self.handle.take().map(|h| h.join().unwrap_or(0)).unwrap_or(0)
    }
}

impl Drop for ReplayShard {
    fn drop(&mut self) {
        let _ = self.tx.send(ShardRequest::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn shard_loop(
    rx: Receiver<ShardRequest>,
    capacity: usize,
    alpha: f32,
    seed: u64,
    recorder: Recorder,
) -> u64 {
    use rand::SeedableRng;
    let mut mem: PrioritizedReplay<Transition> = PrioritizedReplay::new(capacity, alpha);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Handles resolved once; all no-ops under a disabled recorder.
    let insert_us = recorder.histogram("shard.insert_us");
    let sample_us = recorder.histogram("shard.sample_us");
    let update_us = recorder.histogram("shard.update_priorities_us");
    let mailbox_depth = recorder.gauge("shard.mailbox_depth");
    let fill = recorder.gauge("shard.size");
    while let Ok(req) = rx.recv() {
        // Depth of the actor's mailbox *after* taking this request: how far
        // producers are running ahead of this shard.
        mailbox_depth.set(rx.len() as f64);
        match req {
            ShardRequest::Insert { transitions, priorities } => {
                let _span = recorder.span("shard.insert");
                let t0 = std::time::Instant::now();
                for (t, p) in transitions.into_iter().zip(priorities) {
                    mem.insert_with_priority(t, p);
                }
                insert_us.record_duration(t0.elapsed());
                fill.set(mem.len() as f64);
            }
            ShardRequest::Sample { batch, beta, reply } => {
                let _span = recorder.span("shard.sample");
                let t0 = std::time::Instant::now();
                if mem.len() < batch {
                    let _ = reply.send(None);
                    continue;
                }
                let sample = mem.sample(batch, beta, &mut rng);
                let tensors = match transitions_to_batch(&sample.records) {
                    Ok(t) => t,
                    Err(_) => {
                        let _ = reply.send(None);
                        continue;
                    }
                };
                let weights = Tensor::from_vec(sample.weights, &[batch]).expect("batch shape");
                let _ = reply.send(Some(ShardBatch { tensors, weights, indices: sample.indices }));
                sample_us.record_duration(t0.elapsed());
            }
            ShardRequest::UpdatePriorities { indices, priorities } => {
                let _span = recorder.span("shard.update_priorities");
                let t0 = std::time::Instant::now();
                // indices may reference overwritten slots after wrap-around;
                // clamp defensively
                let pairs: Vec<(usize, f32)> =
                    indices.into_iter().zip(priorities).filter(|(i, _)| *i < mem.len()).collect();
                let (idx, pr): (Vec<usize>, Vec<f32>) = pairs.into_iter().unzip();
                mem.update_priorities(&idx, &pr);
                update_us.record_duration(t0.elapsed());
            }
            ShardRequest::Shutdown => break,
        }
    }
    mem.total_inserted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlgraph_tensor::DType;

    fn transitions(n: usize) -> (Vec<Transition>, Vec<f32>) {
        let ts = (0..n)
            .map(|i| {
                Transition::new(
                    Tensor::full(&[3], i as f32),
                    Tensor::scalar_i64(0),
                    1.0,
                    Tensor::full(&[3], i as f32 + 1.0),
                    false,
                )
            })
            .collect();
        (ts, vec![1.0; n])
    }

    #[test]
    fn insert_then_sample_roundtrip() {
        let shard = ReplayShard::spawn("shard-test".into(), 64, 0.6, 0);
        let (ts, ps) = transitions(16);
        shard.sender().send(ShardRequest::Insert { transitions: ts, priorities: ps }).unwrap();
        let (reply_tx, reply_rx) = bounded(1);
        shard.sender().send(ShardRequest::Sample { batch: 8, beta: 0.4, reply: reply_tx }).unwrap();
        let batch = reply_rx.recv().unwrap().expect("enough data");
        assert_eq!(batch.tensors[0].shape(), &[8, 3]);
        assert_eq!(batch.tensors[4].dtype(), DType::Bool);
        assert_eq!(batch.indices.len(), 8);
        assert_eq!(shard.shutdown(), 16);
    }

    #[test]
    fn sample_underfilled_returns_none() {
        let shard = ReplayShard::spawn("shard-test".into(), 64, 0.6, 0);
        let (reply_tx, reply_rx) = bounded(1);
        shard.sender().send(ShardRequest::Sample { batch: 4, beta: 0.4, reply: reply_tx }).unwrap();
        assert!(reply_rx.recv().unwrap().is_none());
    }

    #[test]
    fn saturated_mailbox_reports_typed_full_error() {
        let shard = ReplayShard::spawn("shard-test".into(), 32, 1.0, 0);
        assert_eq!(shard.mailbox_capacity(), ReplayShard::DEFAULT_MAILBOX_CAPACITY);
        // Wedge the actor: give it a Sample whose reply channel is already
        // full, so its blocking reply-send parks the actor thread while we
        // flood the mailbox.
        let (reply_tx, reply_rx) = bounded(1);
        reply_tx.send(None).unwrap();
        shard.sender().send(ShardRequest::Sample { batch: 4, beta: 0.4, reply: reply_tx }).unwrap();
        let mut full = None;
        for _ in 0..=shard.mailbox_capacity() + 1 {
            match shard
                .try_send(ShardRequest::UpdatePriorities { indices: vec![], priorities: vec![] })
            {
                Ok(()) => {}
                Err(e) => {
                    full = Some(e);
                    break;
                }
            }
        }
        match full.expect("mailbox should saturate") {
            MailboxError::Full { capacity, request } => {
                assert_eq!(capacity, ReplayShard::DEFAULT_MAILBOX_CAPACITY);
                assert!(matches!(request, ShardRequest::UpdatePriorities { .. }));
            }
            other => panic!("expected Full, got {:?}", other),
        }
        // Unwedge and drain.
        assert!(reply_rx.recv().unwrap().is_none());
        assert!(reply_rx.recv().unwrap().is_none());
        shard.shutdown();
    }

    #[test]
    fn priority_updates_accepted() {
        let shard = ReplayShard::spawn("shard-test".into(), 32, 1.0, 0);
        let (ts, ps) = transitions(8);
        shard.sender().send(ShardRequest::Insert { transitions: ts, priorities: ps }).unwrap();
        shard
            .sender()
            .send(ShardRequest::UpdatePriorities {
                indices: vec![0, 1, 99],
                priorities: vec![10.0, 0.1, 5.0],
            })
            .unwrap();
        // still serving after an update containing a stale index
        let (reply_tx, reply_rx) = bounded(1);
        shard.sender().send(ShardRequest::Sample { batch: 4, beta: 0.0, reply: reply_tx }).unwrap();
        assert!(reply_rx.recv().unwrap().is_some());
        shard.shutdown();
    }
}
