//! Distributed execution for rlgraph (paper §4.1, Fig. 4).
//!
//! Two coordination styles, mirroring the paper's:
//!
//! * [`ray`] — centralized control on an actor model: a coordinator spawns
//!   worker actors (each holding a local rlgraph agent and a vector of
//!   environments), replay-shard actors, and a learner loop — the
//!   `RayExecutor` of the paper's Ape-X evaluation (Figs. 6, 7).
//! * [`impala_driver`] — non-centralized, parameter-server style: actors
//!   and learner are independent threads communicating only through a
//!   shared in-graph queue and weight snapshots, the distributed-TF
//!   analogue used for Fig. 9.
//!
//! Both run on OS threads with crossbeam channels standing in for Ray RPC
//! / gRPC; at paper scale (hundreds of workers) throughput is measured on
//! the calibrated discrete-event simulator in `rlgraph-sim` instead (see
//! DESIGN.md).

pub mod chaos;
pub mod checkpoint;
pub mod cluster;
pub mod driver;
pub mod fault;
pub mod fragment;
pub mod impala_driver;
pub mod ray;
pub mod retry;
pub mod shard;
pub mod supervisor;
pub mod sync;

pub use chaos::{run_apex_chaos, ChaosApexConfig, ChaosApexConfigBuilder, ChaosReport};
pub use checkpoint::LearnerCheckpoint;
pub use cluster::{
    Autoscaler, AutoscalerConfig, HashRing, MembershipTable, MembershipView, ScaleDecision,
    ScaleSignals,
};
pub use driver::{DriverCommon, DriverConfigBuilder, RunBudget};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultPlanBuilder};
pub use fragment::{
    apex_graph, default_apex_placement, default_impala_placement, impala_graph, run_apex_fragments,
    run_impala_fragments, EdgePolicy, FragmentCounter, FragmentExecutor, FragmentGraph, Placement,
    PlacementCaps, PlacementMap, RunReport, StageKind,
};
pub use impala_driver::{
    run_impala, run_impala_legacy, ImpalaDriverConfig, ImpalaDriverConfigBuilder, ImpalaRunStats,
};
pub use ray::{run_apex, run_apex_legacy, ApexRunConfig, ApexRunConfigBuilder, ApexRunStats};
pub use retry::{RetryPolicy, RetryPolicyBuilder, Sleep, ThreadSleeper, VirtualSleeper};
pub use rlgraph_core::{RlError, RlResult, Severity};
pub use shard::{MailboxError, ReplayShard, ShardCore, ShardRequest};
pub use supervisor::{ActorOutcome, ActorReport, SupervisionReport, Supervisor};
pub use sync::{snapshot_bytes, SubscriberTable, WeightHub, WeightsSnapshot};
