//! Non-centralized IMPALA driver (distributed-TF analogue, paper Fig. 9).
//!
//! Actors and learner are independent threads that communicate only through
//! the shared in-graph blocking queue (rollouts) and periodic weight
//! snapshots (parameter-server pull) — no central coordination loop.

use crate::fault::{FaultKind, FaultPlan};
use crate::retry::RetryPolicy;
use crate::supervisor::{ActorOutcome, Supervisor};
use crate::sync::WeightHub;
use rlgraph_agents::impala::{ImpalaActor, ImpalaLearner};
use rlgraph_agents::ImpalaConfig;
use rlgraph_core::{CoreError, RlError, RlResult};
use rlgraph_envs::{Env, VectorEnv};
use rlgraph_graph::TensorQueue;
use rlgraph_obs::Recorder;
use rlgraph_spaces::Space;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of an IMPALA run.
///
/// Prefer [`ImpalaDriverConfig::builder`], which validates invariants up
/// front. Struct-literal construction is kept for backward compatibility
/// but **deprecated in favour of the builder** — literals bypass
/// validation.
#[derive(Debug, Clone)]
pub struct ImpalaDriverConfig {
    /// agent configuration
    pub agent: ImpalaConfig,
    /// number of actor threads
    pub num_actors: usize,
    /// vectorised environments per actor
    pub envs_per_actor: usize,
    /// actors refresh weights every k rollouts
    pub weight_sync_interval: u64,
    /// stop after this wall-clock duration
    pub run_duration: Duration,
    /// optional cap on learner updates
    pub max_updates: Option<u64>,
    /// observability recorder (disabled by default; pass an enabled one to
    /// collect actor/learner spans, queue depth, and training gauges)
    pub recorder: Recorder,
    /// seeded fault injection (defaults to [`FaultPlan::disabled`])
    pub fault_plan: FaultPlan,
    /// optional fixed rollout budget per actor: each actor produces
    /// exactly this many rollouts and exits on its own (the stop flag
    /// and queue close are deferred until the actors have finished).
    /// With one actor and no weight syncs this makes the rollout stream
    /// deterministic per seed — the parity suite relies on it. Callers
    /// must size `max_updates` so the learner drains what the actors
    /// produce, or the actors block on a full queue
    pub max_rollouts_per_actor: Option<u64>,
    /// force an off-cadence weight pull when an actor falls more than
    /// this many published versions behind (bounds policy-lag, which
    /// V-trace corrects but only up to a point)
    pub max_weight_lag: u64,
    /// restart budget per supervised actor
    pub max_actor_restarts: u32,
}

impl Default for ImpalaDriverConfig {
    fn default() -> Self {
        ImpalaDriverConfig {
            agent: ImpalaConfig::default(),
            num_actors: 2,
            envs_per_actor: 2,
            weight_sync_interval: 4,
            run_duration: Duration::from_secs(5),
            max_updates: None,
            recorder: Recorder::disabled(),
            fault_plan: FaultPlan::disabled(),
            max_rollouts_per_actor: None,
            max_weight_lag: 16,
            max_actor_restarts: 16,
        }
    }
}

impl ImpalaDriverConfig {
    /// Starts a validating builder seeded with the defaults.
    pub fn builder() -> ImpalaDriverConfigBuilder {
        ImpalaDriverConfigBuilder { draft: ImpalaDriverConfig::default() }
    }
}

/// Validating builder for [`ImpalaDriverConfig`].
#[derive(Debug, Clone)]
pub struct ImpalaDriverConfigBuilder {
    draft: ImpalaDriverConfig,
}

impl ImpalaDriverConfigBuilder {
    /// Agent configuration.
    pub fn agent(mut self, agent: ImpalaConfig) -> Self {
        self.draft.agent = agent;
        self
    }

    /// Number of actor threads. Deprecated spelling of
    /// [`parallelism`](crate::DriverConfigBuilder::parallelism).
    pub fn num_actors(mut self, n: usize) -> Self {
        self.draft.num_actors = n;
        self
    }

    /// Environments per actor.
    pub fn envs_per_actor(mut self, n: usize) -> Self {
        self.draft.envs_per_actor = n;
        self
    }

    /// Weight refresh cadence in rollouts. Deprecated spelling of
    /// [`sync_every`](crate::DriverConfigBuilder::sync_every).
    pub fn weight_sync_interval(mut self, k: u64) -> Self {
        self.draft.weight_sync_interval = k;
        self
    }

    /// Wall-clock run budget. Deprecated spelling of
    /// [`budget`](crate::DriverConfigBuilder::budget).
    pub fn run_duration(mut self, d: Duration) -> Self {
        self.draft.run_duration = d;
        self
    }

    /// Optional learner update cap. Deprecated spelling of
    /// [`budget`](crate::DriverConfigBuilder::budget).
    pub fn max_updates(mut self, cap: Option<u64>) -> Self {
        self.draft.max_updates = cap;
        self
    }

    /// Observability recorder. Deprecated spelling of
    /// [`observe_with`](crate::DriverConfigBuilder::observe_with).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.draft.recorder = recorder;
        self
    }

    /// Seeded fault injection plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.draft.fault_plan = plan;
        self
    }

    /// Optional fixed rollout budget per actor (see
    /// [`ImpalaDriverConfig::max_rollouts_per_actor`]).
    pub fn max_rollouts_per_actor(mut self, cap: Option<u64>) -> Self {
        self.draft.max_rollouts_per_actor = cap;
        self
    }

    /// Policy-lag bound in published weight versions.
    pub fn max_weight_lag(mut self, versions: u64) -> Self {
        self.draft.max_weight_lag = versions;
        self
    }

    /// Restart budget per supervised actor.
    pub fn max_actor_restarts(mut self, n: u32) -> Self {
        self.draft.max_actor_restarts = n;
        self
    }

    /// Validates invariants and produces the config.
    ///
    /// # Errors
    ///
    /// [`RlError::Core`] naming the first violated invariant.
    pub fn build(self) -> RlResult<ImpalaDriverConfig> {
        let c = self.draft;
        let fail = |msg: &str| Err(RlError::Core(CoreError::new(msg)));
        if c.num_actors == 0 || c.envs_per_actor == 0 {
            return fail("impala config: num_actors and envs_per_actor must be positive");
        }
        if c.weight_sync_interval == 0 {
            return fail("impala config: weight_sync_interval must be positive");
        }
        if c.run_duration.is_zero() {
            return fail("impala config: run_duration must be positive");
        }
        if c.max_updates == Some(0) {
            return fail("impala config: max_updates cap of 0 would never run");
        }
        if c.max_rollouts_per_actor == Some(0) {
            return fail("impala config: max_rollouts_per_actor cap of 0 would never collect");
        }
        if c.max_weight_lag == 0 || c.max_actor_restarts == 0 {
            return fail("impala config: max_weight_lag and max_actor_restarts must be positive");
        }
        Ok(c)
    }
}

/// Statistics of an IMPALA run.
#[derive(Debug, Clone, Default)]
pub struct ImpalaRunStats {
    /// environment frames consumed (incl. frame skip)
    pub env_frames: u64,
    /// wall time
    pub wall_time: Duration,
    /// frames per second
    pub frames_per_second: f64,
    /// learner updates
    pub updates: u64,
    /// learner total losses over time
    pub losses: Vec<f32>,
    /// final mean recent episode return (if any episodes completed)
    pub mean_return: Option<f32>,
}

impl crate::fragment::RunReport for ImpalaRunStats {
    fn updates(&self) -> u64 {
        self.updates
    }

    fn wall_time(&self) -> Duration {
        self.wall_time
    }

    fn fragment_counters(&self) -> Vec<crate::fragment::FragmentCounter> {
        vec![
            crate::fragment::FragmentCounter::new("rollout", "env_frames", self.env_frames as f64),
            crate::fragment::FragmentCounter::new("learn", "updates", self.updates as f64),
        ]
    }
}

/// Runs IMPALA: actors produce fused rollouts into the queue, the learner
/// consumes them with V-trace.
///
/// This is a thin wrapper over the fragment executor: the run is
/// declared as a [fragment graph](crate::fragment::impala_graph) and
/// executed under the
/// [default placement](crate::fragment::default_impala_placement). The
/// hand-woven driver it replaced is kept as [`run_impala_legacy`]; the
/// parity suite holds both to same-seed behavioral equality.
///
/// # Errors
///
/// Propagates build errors; an actor that dies for good surfaces as
/// [`RlError::ActorCrashed`].
pub fn run_impala<F>(config: ImpalaDriverConfig, env_factory: F) -> RlResult<ImpalaRunStats>
where
    F: Fn(usize, usize) -> Box<dyn Env> + Send + Sync + 'static,
{
    crate::fragment::run_impala_fragments(
        config,
        crate::fragment::default_impala_placement(),
        env_factory,
    )
}

/// The original hand-woven IMPALA driver (threads and the shared queue
/// wired directly, no fragment layer). Kept as the behavioral reference
/// for the fragment executor's parity suite; prefer [`run_impala`].
///
/// Actors run under a [`Supervisor`]: panics and injected crashes
/// ([`ImpalaDriverConfig::fault_plan`]) restart the actor with backoff
/// (its next rollout re-syncs weights). Policy lag is bounded: an actor
/// more than [`ImpalaDriverConfig::max_weight_lag`] versions stale pulls
/// off-cadence.
///
/// # Errors
///
/// Propagates build errors; an actor that dies for good surfaces as
/// [`RlError::ActorCrashed`].
pub fn run_impala_legacy<F>(config: ImpalaDriverConfig, env_factory: F) -> RlResult<ImpalaRunStats>
where
    F: Fn(usize, usize) -> Box<dyn Env> + Send + Sync + 'static,
{
    let start = Instant::now();
    let recorder = config.recorder.clone();
    let queue = TensorQueue::new("impala-rollouts", config.agent.queue_capacity);
    let frames_total = Arc::new(AtomicU64::new(0));
    let returns: Arc<parking_lot::Mutex<Vec<f32>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let env_factory = Arc::new(env_factory);

    let state_space: Space = env_factory(0, 0).state_space();
    let num_actions = env_factory(0, 0)
        .action_space()
        .num_categories()
        .map_err(|e| RlError::Core(CoreError::from(e)))?;

    // Learner weights published through a versioned hub; actors poll and
    // only touch the snapshot lock when a newer version exists.
    let weight_hub = Arc::new(WeightHub::new());

    let mut supervisor = Supervisor::with_recorder(
        RetryPolicy {
            max_attempts: config.max_actor_restarts,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            multiplier: 2.0,
            deadline: None,
        },
        recorder.clone(),
    );
    for a in 0..config.num_actors {
        let queue = queue.clone();
        let frames_total = frames_total.clone();
        let returns = returns.clone();
        let env_factory = env_factory.clone();
        let weight_hub = weight_hub.clone();
        let mut agent_cfg = config.agent.clone();
        agent_cfg.seed = config.agent.seed.wrapping_add(a as u64 * 6151);
        let envs_per_actor = config.envs_per_actor;
        let sync_every = config.weight_sync_interval;
        let max_lag = config.max_weight_lag;
        let fault_plan = config.fault_plan.clone();
        let max_rollouts = config.max_rollouts_per_actor;
        let rec = recorder.clone();
        // Persist across supervised restarts so injected-fault draws
        // advance instead of re-crashing at the same coordinate.
        let mut rollouts: u64 = 0;
        supervisor.spawn(&format!("impala-actor-{}", a), move |stop| {
            let envs = VectorEnv::new((0..envs_per_actor).map(|e| env_factory(a, e)).collect())
                .map_err(|e| RlError::Core(CoreError::new(e.message())))?;
            let rollout_us = rec.histogram("actor.rollout_us");
            let frames_ctr = rec.counter("actor.frames");
            let reward_gauge = rec.gauge("train.episode_reward");
            let forced_sync_ctr = rec.counter("chaos.forced_syncs");
            let crash_ctr = rec.counter("chaos.worker_crashes");
            let mut actor = ImpalaActor::new(&agent_cfg, envs, queue.clone())?;
            let mut frames_before = 0u64;
            let mut weight_version = 0u64;
            while !stop.load(Ordering::Relaxed)
                && max_rollouts.map(|k| rollouts < k).unwrap_or(true)
            {
                // Scheduled pull every `sync_every` rollouts, plus a
                // forced pull whenever the published version has run
                // more than `max_lag` ahead (bounded staleness).
                let lagging = weight_hub.version().saturating_sub(weight_version) > max_lag;
                if rollouts.is_multiple_of(sync_every) || lagging {
                    if let Some(snap) = weight_hub.poll(weight_version) {
                        let _span = rec.span("actor.weight_sync");
                        if lagging {
                            forced_sync_ctr.inc();
                        }
                        actor.set_weights(&snap.weights)?;
                        weight_version = snap.version;
                    }
                }
                if fault_plan.draw(FaultKind::WorkerCrash, a, rollouts) {
                    rollouts += 1;
                    crash_ctr.inc();
                    return Err(RlError::ActorCrashed {
                        actor: format!("impala-actor-{}", a),
                        reason: "injected fault".into(),
                    });
                }
                let t0 = Instant::now();
                let rollout_res = {
                    let _span = rec.span("actor.rollout");
                    actor.rollout()
                };
                match rollout_res {
                    Ok(()) => rollout_us.record_duration(t0.elapsed()),
                    Err(_) if stop.load(Ordering::Relaxed) => break,
                    Err(e) => return Err(RlError::from(e)),
                }
                rollouts += 1;
                let now = actor.env_frames();
                frames_ctr.add(now - frames_before);
                frames_total.fetch_add(now - frames_before, Ordering::Relaxed);
                frames_before = now;
                if let Some(r) = actor.mean_recent_return(20) {
                    reward_gauge.set(r as f64);
                    returns.lock().push(r);
                }
            }
            Ok(())
        });
    }
    let stop = supervisor.stop_flag();

    // Learner loop.
    let mut learner = ImpalaLearner::new(
        &config.agent,
        state_space,
        num_actions,
        config.envs_per_actor,
        queue.clone(),
    )?;
    let mut losses = Vec::new();
    let learn_us = recorder.histogram("learner.step_us");
    let queue_depth = recorder.gauge("queue.depth");
    let loss_gauge = recorder.gauge("train.loss");
    let updates_ctr = recorder.counter("learner.updates");
    let deadline = start + config.run_duration;
    while Instant::now() < deadline
        && config.max_updates.map(|m| learner.num_updates() < m).unwrap_or(true)
    {
        queue_depth.set(queue.len() as f64);
        let t0 = Instant::now();
        let learn_res = {
            let _span = recorder.span("learner.step");
            learner.learn()
        };
        match learn_res {
            Ok(l) => {
                learn_us.record_duration(t0.elapsed());
                loss_gauge.set(l.total as f64);
                updates_ctr.inc();
                losses.push(l.total);
                weight_hub.publish(learner.get_weights());
            }
            Err(_) => break,
        }
    }

    // Finite rollout budgets exit on their own; raising the stop flag
    // or closing the queue early would truncate them
    // non-deterministically.
    if config.max_rollouts_per_actor.is_none() {
        stop.store(true, Ordering::Relaxed);
        queue.close();
    }
    let report = supervisor.join();
    if config.max_rollouts_per_actor.is_some() {
        queue.close();
    }
    for actor in &report.actors {
        if let ActorOutcome::Fatal(reason) | ActorOutcome::GaveUp(reason) = &actor.outcome {
            return Err(RlError::ActorCrashed {
                actor: actor.name.clone(),
                reason: reason.clone(),
            });
        }
    }

    let wall_time = start.elapsed();
    let env_frames = frames_total.load(Ordering::Relaxed);
    let mean_return = {
        let r = returns.lock();
        r.last().copied()
    };
    Ok(ImpalaRunStats {
        env_frames,
        wall_time,
        frames_per_second: env_frames as f64 / wall_time.as_secs_f64().max(1e-9),
        updates: learner.num_updates(),
        losses,
        mean_return,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlgraph_agents::Backend;
    use rlgraph_envs::RandomEnv;
    use rlgraph_nn::{Activation, NetworkSpec};

    #[test]
    fn builder_validates() {
        assert!(ImpalaDriverConfig::builder().build().is_ok());
        assert!(ImpalaDriverConfig::builder().num_actors(0).build().is_err());
        assert!(ImpalaDriverConfig::builder().weight_sync_interval(0).build().is_err());
        assert!(ImpalaDriverConfig::builder().run_duration(Duration::ZERO).build().is_err());
        assert!(ImpalaDriverConfig::builder().max_weight_lag(0).build().is_err());
    }

    #[test]
    fn impala_survives_injected_actor_crashes() {
        let config = ImpalaDriverConfig::builder()
            .agent(ImpalaConfig {
                backend: Backend::Static,
                network: NetworkSpec::mlp(&[8], Activation::Tanh),
                rollout_len: 4,
                queue_capacity: 4,
                seed: 5,
                ..ImpalaConfig::default()
            })
            .num_actors(2)
            .envs_per_actor(2)
            .weight_sync_interval(2)
            .run_duration(Duration::from_millis(1200))
            .max_updates(Some(15))
            .fault_plan(
                crate::fault::FaultPlan::builder(21).worker_crash_rate(0.25).build().unwrap(),
            )
            .max_actor_restarts(64)
            .build()
            .unwrap();
        let stats =
            run_impala(config, |a, e| Box::new(RandomEnv::new(&[3], 2, 16, (a * 10 + e) as u64)))
                .unwrap();
        assert!(stats.updates > 0, "learner starved by actor crashes");
        assert!(stats.env_frames > 0);
    }

    #[test]
    fn impala_pipeline_runs() {
        let config = ImpalaDriverConfig {
            agent: ImpalaConfig {
                backend: Backend::Static,
                network: NetworkSpec::mlp(&[8], Activation::Tanh),
                rollout_len: 4,
                queue_capacity: 4,
                seed: 2,
                ..ImpalaConfig::default()
            },
            num_actors: 2,
            envs_per_actor: 2,
            weight_sync_interval: 2,
            run_duration: Duration::from_millis(1200),
            max_updates: Some(30),
            ..ImpalaDriverConfig::default()
        };
        let stats =
            run_impala(config, |a, e| Box::new(RandomEnv::new(&[3], 2, 16, (a * 10 + e) as u64)))
                .unwrap();
        assert!(stats.updates > 0, "learner never updated");
        assert!(stats.env_frames > 0);
        assert!(stats.losses.iter().all(|l| l.is_finite()));
        assert!(stats.frames_per_second > 0.0);
    }
}
