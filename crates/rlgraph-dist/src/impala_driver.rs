//! Non-centralized IMPALA driver (distributed-TF analogue, paper Fig. 9).
//!
//! Actors and learner are independent threads that communicate only through
//! the shared in-graph blocking queue (rollouts) and periodic weight
//! snapshots (parameter-server pull) — no central coordination loop.

use crate::sync::WeightHub;
use rlgraph_agents::impala::{ImpalaActor, ImpalaLearner};
use rlgraph_agents::ImpalaConfig;
use rlgraph_core::CoreError;
use rlgraph_envs::{Env, VectorEnv};
use rlgraph_graph::TensorQueue;
use rlgraph_obs::Recorder;
use rlgraph_spaces::Space;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of an IMPALA run.
#[derive(Debug, Clone)]
pub struct ImpalaDriverConfig {
    /// agent configuration
    pub agent: ImpalaConfig,
    /// number of actor threads
    pub num_actors: usize,
    /// vectorised environments per actor
    pub envs_per_actor: usize,
    /// actors refresh weights every k rollouts
    pub weight_sync_interval: u64,
    /// stop after this wall-clock duration
    pub run_duration: Duration,
    /// optional cap on learner updates
    pub max_updates: Option<u64>,
    /// observability recorder (disabled by default; pass an enabled one to
    /// collect actor/learner spans, queue depth, and training gauges)
    pub recorder: Recorder,
}

impl Default for ImpalaDriverConfig {
    fn default() -> Self {
        ImpalaDriverConfig {
            agent: ImpalaConfig::default(),
            num_actors: 2,
            envs_per_actor: 2,
            weight_sync_interval: 4,
            run_duration: Duration::from_secs(5),
            max_updates: None,
            recorder: Recorder::disabled(),
        }
    }
}

/// Statistics of an IMPALA run.
#[derive(Debug, Clone, Default)]
pub struct ImpalaRunStats {
    /// environment frames consumed (incl. frame skip)
    pub env_frames: u64,
    /// wall time
    pub wall_time: Duration,
    /// frames per second
    pub frames_per_second: f64,
    /// learner updates
    pub updates: u64,
    /// learner total losses over time
    pub losses: Vec<f32>,
    /// final mean recent episode return (if any episodes completed)
    pub mean_return: Option<f32>,
}

/// Runs IMPALA: actors produce fused rollouts into the queue, the learner
/// consumes them with V-trace.
///
/// # Errors
///
/// Propagates build errors; actor errors abort the run.
pub fn run_impala<F>(
    config: ImpalaDriverConfig,
    env_factory: F,
) -> rlgraph_core::Result<ImpalaRunStats>
where
    F: Fn(usize, usize) -> Box<dyn Env> + Send + Sync + 'static,
{
    let start = Instant::now();
    let recorder = config.recorder.clone();
    let queue = TensorQueue::new("impala-rollouts", config.agent.queue_capacity);
    let stop = Arc::new(AtomicBool::new(false));
    let frames_total = Arc::new(AtomicU64::new(0));
    let returns: Arc<parking_lot::Mutex<Vec<f32>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let env_factory = Arc::new(env_factory);

    let state_space: Space = env_factory(0, 0).state_space();
    let num_actions = env_factory(0, 0).action_space().num_categories()?;

    // Learner weights published through a versioned hub; actors poll and
    // only touch the snapshot lock when a newer version exists.
    let weight_hub = Arc::new(WeightHub::new());

    let mut actor_handles = Vec::with_capacity(config.num_actors);
    for a in 0..config.num_actors {
        let stop = stop.clone();
        let queue = queue.clone();
        let frames_total = frames_total.clone();
        let returns = returns.clone();
        let env_factory = env_factory.clone();
        let weight_hub = weight_hub.clone();
        let mut agent_cfg = config.agent.clone();
        agent_cfg.seed = config.agent.seed.wrapping_add(a as u64 * 6151);
        let envs_per_actor = config.envs_per_actor;
        let sync_every = config.weight_sync_interval;
        let rec = recorder.clone();
        let handle = std::thread::Builder::new()
            .name(format!("impala-actor-{}", a))
            .spawn(move || -> rlgraph_core::Result<()> {
                let envs = VectorEnv::new((0..envs_per_actor).map(|e| env_factory(a, e)).collect())
                    .map_err(|e| CoreError::new(e.message()))?;
                let rollout_us = rec.histogram("actor.rollout_us");
                let frames_ctr = rec.counter("actor.frames");
                let reward_gauge = rec.gauge("train.episode_reward");
                let mut actor = ImpalaActor::new(&agent_cfg, envs, queue)?;
                let mut rollouts: u64 = 0;
                let mut frames_before = 0u64;
                let mut weight_version = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if rollouts.is_multiple_of(sync_every) {
                        if let Some(snap) = weight_hub.poll(weight_version) {
                            let _span = rec.span("actor.weight_sync");
                            actor.set_weights(&snap.weights)?;
                            weight_version = snap.version;
                        }
                    }
                    let t0 = Instant::now();
                    let rollout_res = {
                        let _span = rec.span("actor.rollout");
                        actor.rollout()
                    };
                    match rollout_res {
                        Ok(()) => rollout_us.record_duration(t0.elapsed()),
                        Err(_) if stop.load(Ordering::Relaxed) => break,
                        Err(e) => return Err(e),
                    }
                    rollouts += 1;
                    let now = actor.env_frames();
                    frames_ctr.add(now - frames_before);
                    frames_total.fetch_add(now - frames_before, Ordering::Relaxed);
                    frames_before = now;
                    if let Some(r) = actor.mean_recent_return(20) {
                        reward_gauge.set(r as f64);
                        returns.lock().push(r);
                    }
                }
                Ok(())
            })
            .expect("spawn actor thread");
        actor_handles.push(handle);
    }

    // Learner loop.
    let mut learner = ImpalaLearner::new(
        &config.agent,
        state_space,
        num_actions,
        config.envs_per_actor,
        queue.clone(),
    )?;
    let mut losses = Vec::new();
    let learn_us = recorder.histogram("learner.step_us");
    let queue_depth = recorder.gauge("queue.depth");
    let loss_gauge = recorder.gauge("train.loss");
    let updates_ctr = recorder.counter("learner.updates");
    let deadline = start + config.run_duration;
    while Instant::now() < deadline
        && config.max_updates.map(|m| learner.num_updates() < m).unwrap_or(true)
    {
        queue_depth.set(queue.len() as f64);
        let t0 = Instant::now();
        let learn_res = {
            let _span = recorder.span("learner.step");
            learner.learn()
        };
        match learn_res {
            Ok(l) => {
                learn_us.record_duration(t0.elapsed());
                loss_gauge.set(l.total as f64);
                updates_ctr.inc();
                losses.push(l.total);
                weight_hub.publish(learner.get_weights());
            }
            Err(_) => break,
        }
    }

    stop.store(true, Ordering::Relaxed);
    queue.close();
    for h in actor_handles {
        match h.join() {
            Ok(res) => res?,
            Err(_) => return Err(CoreError::new("actor thread panicked")),
        }
    }

    let wall_time = start.elapsed();
    let env_frames = frames_total.load(Ordering::Relaxed);
    let mean_return = {
        let r = returns.lock();
        r.last().copied()
    };
    Ok(ImpalaRunStats {
        env_frames,
        wall_time,
        frames_per_second: env_frames as f64 / wall_time.as_secs_f64().max(1e-9),
        updates: learner.num_updates(),
        losses,
        mean_return,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlgraph_agents::Backend;
    use rlgraph_envs::RandomEnv;
    use rlgraph_nn::{Activation, NetworkSpec};

    #[test]
    fn impala_pipeline_runs() {
        let config = ImpalaDriverConfig {
            agent: ImpalaConfig {
                backend: Backend::Static,
                network: NetworkSpec::mlp(&[8], Activation::Tanh),
                rollout_len: 4,
                queue_capacity: 4,
                seed: 2,
                ..ImpalaConfig::default()
            },
            num_actors: 2,
            envs_per_actor: 2,
            weight_sync_interval: 2,
            run_duration: Duration::from_millis(1200),
            max_updates: Some(30),
            ..ImpalaDriverConfig::default()
        };
        let stats =
            run_impala(config, |a, e| Box::new(RandomEnv::new(&[3], 2, 16, (a * 10 + e) as u64)))
                .unwrap();
        assert!(stats.updates > 0, "learner never updated");
        assert!(stats.env_frames > 0);
        assert!(stats.losses.iter().all(|l| l.is_finite()));
        assert!(stats.frames_per_second > 0.0);
    }
}
