//! Learner checkpoint/restore.
//!
//! A [`LearnerCheckpoint`] captures everything the learner needs to
//! resume after a crash with its schedules intact: the update counter
//! (target-sync cadence), the published weight version, the **full**
//! variable set — policy, target network, *and optimizer slots* (Adam
//! moments), via [`DqnAgent::export_variables`] — and each replay
//! shard's high-water mark so recovery can reason about how much
//! experience the buffers had absorbed.
//!
//! Serialization goes through the workspace serde layer to JSON, the
//! same format as `DqnAgent::export_model`, so checkpoints are plain
//! text artifacts that diff and survive the offline-stubs build.

use rlgraph_agents::DqnAgent;
use rlgraph_core::{RlError, RlResult};
use rlgraph_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A point-in-time snapshot of learner state plus shard watermarks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnerCheckpoint {
    /// learner updates performed when the snapshot was taken
    pub updates: u64,
    /// weight version last published to workers
    pub weight_version: u64,
    /// all variables: policy, target, optimizer slots
    pub variables: Vec<(String, Tensor)>,
    /// per-shard total-inserted high-water marks, in shard order
    pub shard_watermarks: Vec<u64>,
}

impl LearnerCheckpoint {
    /// Captures a checkpoint from a learner agent.
    pub fn capture(agent: &DqnAgent, weight_version: u64, shard_watermarks: Vec<u64>) -> Self {
        LearnerCheckpoint {
            updates: agent.num_updates(),
            weight_version,
            variables: agent.export_variables(),
            shard_watermarks,
        }
    }

    /// Restores this snapshot into a (freshly built) learner agent:
    /// variables and update counter both come back, so target-sync and
    /// exploration schedules resume exactly where the checkpoint was cut.
    ///
    /// # Errors
    ///
    /// [`RlError::Checkpoint`] when variables don't match the agent's
    /// graph (wrong architecture or corrupt snapshot).
    pub fn restore(&self, agent: &mut DqnAgent) -> RlResult<()> {
        agent
            .import_variables(&self.variables)
            .map_err(|e| RlError::Checkpoint(format!("variable restore failed: {}", e)))?;
        agent.set_num_updates(self.updates);
        Ok(())
    }

    /// Serializes to a JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialises")
    }

    /// Parses a document produced by [`LearnerCheckpoint::to_json`].
    ///
    /// # Errors
    ///
    /// [`RlError::Checkpoint`] on malformed documents.
    pub fn from_json(json: &str) -> RlResult<Self> {
        serde_json::from_str(json)
            .map_err(|e| RlError::Checkpoint(format!("invalid checkpoint document: {}", e)))
    }

    /// Streams the checkpoint document into any writer — a file, a
    /// `TcpStream`, an in-memory buffer — so checkpoints can be shipped
    /// over the wire without a temp file.
    ///
    /// # Errors
    ///
    /// [`RlError::Checkpoint`] on I/O failure.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> RlResult<()> {
        w.write_all(self.to_json().as_bytes())
            .and_then(|()| w.flush())
            .map_err(|e| RlError::Checkpoint(format!("stream write: {}", e)))
    }

    /// Reads a checkpoint document from any reader (the reader is
    /// consumed to EOF; frame the stream upstream when it carries more
    /// than one document).
    ///
    /// # Errors
    ///
    /// [`RlError::Checkpoint`] on I/O failure or a malformed document.
    pub fn read_from(r: &mut impl std::io::Read) -> RlResult<Self> {
        let mut json = String::new();
        r.read_to_string(&mut json)
            .map_err(|e| RlError::Checkpoint(format!("stream read: {}", e)))?;
        Self::from_json(&json)
    }

    /// Writes the checkpoint to a file (streams via
    /// [`LearnerCheckpoint::write_to`]).
    ///
    /// # Errors
    ///
    /// [`RlError::Checkpoint`] on I/O failure.
    pub fn save(&self, path: &std::path::Path) -> RlResult<()> {
        let mut file = std::fs::File::create(path)
            .map_err(|e| RlError::Checkpoint(format!("create {}: {}", path.display(), e)))?;
        self.write_to(&mut file)
            .map_err(|e| RlError::Checkpoint(format!("write {}: {}", path.display(), e)))
    }

    /// Reads a checkpoint written by [`LearnerCheckpoint::save`]
    /// (streams via [`LearnerCheckpoint::read_from`]).
    ///
    /// # Errors
    ///
    /// [`RlError::Checkpoint`] on I/O failure or a malformed document.
    pub fn load(path: &std::path::Path) -> RlResult<Self> {
        let mut file = std::fs::File::open(path)
            .map_err(|e| RlError::Checkpoint(format!("read {}: {}", path.display(), e)))?;
        Self::read_from(&mut file)
    }

    /// Bytes of tensor payload held (diagnostic; JSON is larger).
    pub fn payload_elems(&self) -> usize {
        self.variables.iter().map(|(_, t)| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_without_agent() {
        let ckpt = LearnerCheckpoint {
            updates: 17,
            weight_version: 5,
            variables: vec![
                ("policy/w".into(), Tensor::from_vec(vec![1.0, -2.5, 3.0], &[3]).unwrap()),
                ("adam/m/policy/w".into(), Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]).unwrap()),
            ],
            shard_watermarks: vec![100, 98, 103],
        };
        let back = LearnerCheckpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.payload_elems(), 6);
    }

    #[test]
    fn malformed_document_is_typed_checkpoint_error() {
        let err = LearnerCheckpoint::from_json("{not json").unwrap_err();
        assert!(matches!(err, RlError::Checkpoint(_)));
        assert!(err.is_fatal());
    }

    #[test]
    fn stream_roundtrip_without_a_path() {
        let ckpt = LearnerCheckpoint {
            updates: 8,
            weight_version: 2,
            variables: vec![("w".into(), Tensor::from_vec(vec![1.5, -0.5], &[2]).unwrap())],
            shard_watermarks: vec![7, 9],
        };
        // Any Write/Read pair works — here an in-memory pipe, the same
        // shape as shipping the document over a socket.
        let mut wire: Vec<u8> = Vec::new();
        ckpt.write_to(&mut wire).unwrap();
        let back = LearnerCheckpoint::read_from(&mut wire.as_slice()).unwrap();
        assert_eq!(back, ckpt);
        // A truncated stream is a typed checkpoint error, not a panic.
        let cut = &wire[..wire.len() / 2];
        assert!(matches!(
            LearnerCheckpoint::read_from(&mut cut.to_vec().as_slice()),
            Err(RlError::Checkpoint(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let ckpt = LearnerCheckpoint {
            updates: 3,
            weight_version: 1,
            variables: vec![("v".into(), Tensor::from_vec(vec![9.0], &[1]).unwrap())],
            shard_watermarks: vec![4],
        };
        let dir = std::env::temp_dir();
        let path = dir.join("rlgraph_ckpt_test.json");
        ckpt.save(&path).unwrap();
        let back = LearnerCheckpoint::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, ckpt);
        assert!(LearnerCheckpoint::load(&dir.join("rlgraph_ckpt_missing.json")).is_err());
    }
}
