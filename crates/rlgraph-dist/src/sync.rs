//! Versioned weight distribution between a learner and inference replicas.
//!
//! [`WeightHub`] is a single-publisher / many-subscriber snapshot slot: the
//! learner publishes immutable [`WeightsSnapshot`]s with monotonically
//! increasing versions, and consumers poll cheaply — a relaxed atomic
//! version check on the hot path, with the lock taken only when a newer
//! snapshot actually exists. Snapshots are `Arc`-shared, so a subscriber
//! holding version *n* never blocks the learner publishing *n+1*, and the
//! learner never blocks a replica mid-inference.

use parking_lot::RwLock;
use rlgraph_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable, versioned set of named weights.
#[derive(Debug, Clone)]
pub struct WeightsSnapshot {
    /// Monotonically increasing version, starting at 1 for the first
    /// publish (version 0 means "nothing published yet").
    pub version: u64,
    /// Named weight tensors, as produced by `GraphExecutor::export_weights`.
    pub weights: Vec<(String, Tensor)>,
}

/// Shared slot through which a learner publishes weight snapshots.
#[derive(Debug)]
pub struct WeightHub {
    /// Version of the snapshot currently in `slot`; checked lock-free.
    version: AtomicU64,
    slot: RwLock<Option<Arc<WeightsSnapshot>>>,
}

impl Default for WeightHub {
    fn default() -> Self {
        Self::new()
    }
}

impl WeightHub {
    /// Creates an empty hub at version 0.
    pub fn new() -> Self {
        WeightHub { version: AtomicU64::new(0), slot: RwLock::new(None) }
    }

    /// Publishes a new snapshot, returning its version.
    pub fn publish(&self, weights: Vec<(String, Tensor)>) -> u64 {
        let mut guard = self.slot.write();
        let version = guard.as_ref().map(|s| s.version).unwrap_or(0) + 1;
        *guard = Some(Arc::new(WeightsSnapshot { version, weights }));
        // Publish the version only after the slot holds the snapshot, so a
        // subscriber observing `version() > seen` always finds it.
        self.version.store(version, Ordering::Release);
        version
    }

    /// Latest published version (0 before the first publish). Lock-free.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Latest snapshot, if any has been published.
    pub fn snapshot(&self) -> Option<Arc<WeightsSnapshot>> {
        self.slot.read().clone()
    }

    /// Returns the latest snapshot only if it is newer than `seen`.
    ///
    /// This is the subscriber fast path: when no new version exists the
    /// call is a single atomic load and never touches the lock.
    pub fn poll(&self, seen: u64) -> Option<Arc<WeightsSnapshot>> {
        if self.version() <= seen {
            return None;
        }
        self.slot.read().clone()
    }
}

/// Per-subscriber state for delta weight sync: the exact snapshot a
/// subscriber holds (the dequantized image of what it last acked).
#[derive(Debug, Clone)]
pub struct SubscriberState {
    /// The snapshot the subscriber currently holds.
    pub held: Arc<WeightsSnapshot>,
    /// Monotonic touch stamp (coordinator-side), for idle eviction.
    last_touch: std::time::Instant,
}

/// Bounded bookkeeping of what each delta-sync subscriber holds
/// (DESIGN.md §14): the coordinator diffs new snapshots against these.
///
/// Memory is bounded two ways. Snapshots are `Arc`-shared — every
/// subscriber at the current version shares one allocation, counted
/// once by [`SubscriberTable::approx_bytes`]. And entries idle longer
/// than the configured window are evicted lazily on the next
/// [`SubscriberTable::sweep`], after which the subscriber simply gets a
/// full snapshot again — eviction can cost a resend, never correctness.
#[derive(Debug)]
pub struct SubscriberTable {
    subs: std::collections::HashMap<u64, SubscriberState>,
    idle_window: std::time::Duration,
}

impl SubscriberTable {
    /// Creates a table evicting subscribers idle longer than `idle_window`.
    pub fn new(idle_window: std::time::Duration) -> Self {
        SubscriberTable { subs: std::collections::HashMap::new(), idle_window }
    }

    /// The snapshot `sub` holds, refreshing its idle clock. `None` for
    /// unknown (or evicted) subscribers — send a full snapshot.
    pub fn touch(&mut self, sub: u64) -> Option<Arc<WeightsSnapshot>> {
        let st = self.subs.get_mut(&sub)?;
        st.last_touch = std::time::Instant::now();
        Some(st.held.clone())
    }

    /// Records that `sub` now holds `held` (it was just sent a full
    /// snapshot or a delta on top of its previous holdings).
    pub fn record(&mut self, sub: u64, held: Arc<WeightsSnapshot>) {
        self.subs.insert(sub, SubscriberState { held, last_touch: std::time::Instant::now() });
    }

    /// Evicts every subscriber idle longer than the window, returning
    /// how many were dropped.
    pub fn sweep(&mut self) -> usize {
        let cutoff = self.idle_window;
        let before = self.subs.len();
        self.subs.retain(|_, st| st.last_touch.elapsed() <= cutoff);
        before - self.subs.len()
    }

    /// Drops one subscriber (e.g. on disconnect). Returns whether it
    /// was present.
    pub fn evict(&mut self, sub: u64) -> bool {
        self.subs.remove(&sub).is_some()
    }

    /// Tracked subscriber count.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Whether no subscribers are tracked.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Approximate retained bytes: each distinct snapshot allocation is
    /// counted once (subscribers at the same version share one `Arc`),
    /// plus a small per-entry overhead. Feeds the
    /// `net.coord.delta_state_bytes` gauge.
    pub fn approx_bytes(&self) -> usize {
        let mut seen = Vec::with_capacity(self.subs.len());
        let mut bytes = 0usize;
        for st in self.subs.values() {
            bytes += 64; // map entry + Arc + stamp, roughly
            let ptr = Arc::as_ptr(&st.held) as usize;
            if seen.contains(&ptr) {
                continue;
            }
            seen.push(ptr);
            bytes += snapshot_bytes(&st.held);
        }
        bytes
    }
}

/// Approximate heap size of a snapshot's tensor data.
pub fn snapshot_bytes(snap: &WeightsSnapshot) -> usize {
    snap.weights
        .iter()
        .map(|(name, t)| {
            let elems: usize = t.shape().iter().product();
            name.len() + 48 + elems * t.dtype().size_bytes()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(tag: f32) -> Vec<(String, Tensor)> {
        vec![("w".to_string(), Tensor::full(&[2], tag))]
    }

    #[test]
    fn subscriber_table_shares_evicts_and_accounts() {
        let mut t = SubscriberTable::new(std::time::Duration::ZERO);
        let snap = Arc::new(WeightsSnapshot { version: 1, weights: w(1.0) });
        t.record(7, snap.clone());
        t.record(9, snap.clone());
        assert_eq!(t.len(), 2);
        // Two subscribers at one version share one snapshot allocation.
        let shared = t.approx_bytes();
        assert!(shared < 2 * snapshot_bytes(&snap) + 128, "bytes {}", shared);
        assert!(t.touch(7).is_some());
        assert!(t.touch(42).is_none(), "unknown subscriber gets a full snapshot");
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(t.sweep(), 2, "zero idle window evicts everything");
        assert!(t.touch(7).is_none(), "evicted subscriber must full-resync");
        assert_eq!(t.approx_bytes(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn versions_are_monotonic() {
        let hub = WeightHub::new();
        assert_eq!(hub.version(), 0);
        assert!(hub.snapshot().is_none());
        assert_eq!(hub.publish(w(1.0)), 1);
        assert_eq!(hub.publish(w(2.0)), 2);
        assert_eq!(hub.version(), 2);
        assert_eq!(hub.snapshot().unwrap().version, 2);
    }

    #[test]
    fn poll_is_quiet_when_current() {
        let hub = WeightHub::new();
        assert!(hub.poll(0).is_none());
        hub.publish(w(1.0));
        let snap = hub.poll(0).expect("new version");
        assert_eq!(snap.version, 1);
        assert!(hub.poll(snap.version).is_none());
    }

    #[test]
    fn old_snapshot_survives_new_publish() {
        let hub = WeightHub::new();
        hub.publish(w(1.0));
        let old = hub.snapshot().unwrap();
        hub.publish(w(2.0));
        // The Arc keeps the old snapshot alive and unchanged.
        assert_eq!(old.version, 1);
        assert_eq!(old.weights[0].1.as_f32().unwrap()[0], 1.0);
        assert_eq!(hub.snapshot().unwrap().version, 2);
    }

    #[test]
    fn concurrent_publish_and_poll() {
        let hub = Arc::new(WeightHub::new());
        let pub_hub = hub.clone();
        let publisher = std::thread::spawn(move || {
            for i in 1..=200 {
                pub_hub.publish(w(i as f32));
            }
        });
        let mut seen = 0u64;
        while seen < 200 {
            if let Some(snap) = hub.poll(seen) {
                assert!(snap.version > seen, "version went backwards");
                // Snapshot contents must match their version tag.
                assert_eq!(snap.weights[0].1.as_f32().unwrap()[0], snap.version as f32);
                seen = snap.version;
            }
        }
        publisher.join().unwrap();
    }
}
