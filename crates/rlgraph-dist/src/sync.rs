//! Versioned weight distribution between a learner and inference replicas.
//!
//! [`WeightHub`] is a single-publisher / many-subscriber snapshot slot: the
//! learner publishes immutable [`WeightsSnapshot`]s with monotonically
//! increasing versions, and consumers poll cheaply — a relaxed atomic
//! version check on the hot path, with the lock taken only when a newer
//! snapshot actually exists. Snapshots are `Arc`-shared, so a subscriber
//! holding version *n* never blocks the learner publishing *n+1*, and the
//! learner never blocks a replica mid-inference.

use parking_lot::RwLock;
use rlgraph_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable, versioned set of named weights.
#[derive(Debug)]
pub struct WeightsSnapshot {
    /// Monotonically increasing version, starting at 1 for the first
    /// publish (version 0 means "nothing published yet").
    pub version: u64,
    /// Named weight tensors, as produced by `GraphExecutor::export_weights`.
    pub weights: Vec<(String, Tensor)>,
}

/// Shared slot through which a learner publishes weight snapshots.
#[derive(Debug)]
pub struct WeightHub {
    /// Version of the snapshot currently in `slot`; checked lock-free.
    version: AtomicU64,
    slot: RwLock<Option<Arc<WeightsSnapshot>>>,
}

impl Default for WeightHub {
    fn default() -> Self {
        Self::new()
    }
}

impl WeightHub {
    /// Creates an empty hub at version 0.
    pub fn new() -> Self {
        WeightHub { version: AtomicU64::new(0), slot: RwLock::new(None) }
    }

    /// Publishes a new snapshot, returning its version.
    pub fn publish(&self, weights: Vec<(String, Tensor)>) -> u64 {
        let mut guard = self.slot.write();
        let version = guard.as_ref().map(|s| s.version).unwrap_or(0) + 1;
        *guard = Some(Arc::new(WeightsSnapshot { version, weights }));
        // Publish the version only after the slot holds the snapshot, so a
        // subscriber observing `version() > seen` always finds it.
        self.version.store(version, Ordering::Release);
        version
    }

    /// Latest published version (0 before the first publish). Lock-free.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Latest snapshot, if any has been published.
    pub fn snapshot(&self) -> Option<Arc<WeightsSnapshot>> {
        self.slot.read().clone()
    }

    /// Returns the latest snapshot only if it is newer than `seen`.
    ///
    /// This is the subscriber fast path: when no new version exists the
    /// call is a single atomic load and never touches the lock.
    pub fn poll(&self, seen: u64) -> Option<Arc<WeightsSnapshot>> {
        if self.version() <= seen {
            return None;
        }
        self.slot.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(tag: f32) -> Vec<(String, Tensor)> {
        vec![("w".to_string(), Tensor::full(&[2], tag))]
    }

    #[test]
    fn versions_are_monotonic() {
        let hub = WeightHub::new();
        assert_eq!(hub.version(), 0);
        assert!(hub.snapshot().is_none());
        assert_eq!(hub.publish(w(1.0)), 1);
        assert_eq!(hub.publish(w(2.0)), 2);
        assert_eq!(hub.version(), 2);
        assert_eq!(hub.snapshot().unwrap().version, 2);
    }

    #[test]
    fn poll_is_quiet_when_current() {
        let hub = WeightHub::new();
        assert!(hub.poll(0).is_none());
        hub.publish(w(1.0));
        let snap = hub.poll(0).expect("new version");
        assert_eq!(snap.version, 1);
        assert!(hub.poll(snap.version).is_none());
    }

    #[test]
    fn old_snapshot_survives_new_publish() {
        let hub = WeightHub::new();
        hub.publish(w(1.0));
        let old = hub.snapshot().unwrap();
        hub.publish(w(2.0));
        // The Arc keeps the old snapshot alive and unchanged.
        assert_eq!(old.version, 1);
        assert_eq!(old.weights[0].1.as_f32().unwrap()[0], 1.0);
        assert_eq!(hub.snapshot().unwrap().version, 2);
    }

    #[test]
    fn concurrent_publish_and_poll() {
        let hub = Arc::new(WeightHub::new());
        let pub_hub = hub.clone();
        let publisher = std::thread::spawn(move || {
            for i in 1..=200 {
                pub_hub.publish(w(i as f32));
            }
        });
        let mut seen = 0u64;
        while seen < 200 {
            if let Some(snap) = hub.poll(seen) {
                assert!(snap.version > seen, "version went backwards");
                // Snapshot contents must match their version tag.
                assert_eq!(snap.weights[0].1.as_f32().unwrap()[0], snap.version as f32);
                seen = snap.version;
            }
        }
        publisher.join().unwrap();
    }
}
