//! The placement layer: mapping each declared fragment onto a physical
//! executor without changing the graph declaration.
//!
//! This is the physical half of the logical/physical split: the same
//! [`FragmentGraph`](super::FragmentGraph) runs with replay inline in
//! the learner thread, on supervised actor threads, or behind remote
//! processes, purely by swapping the [`PlacementMap`].

use super::graph::FragmentGraph;
use rlgraph_core::{CoreError, RlError, RlResult};
use std::collections::HashMap;

/// Where a fragment's replicas execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Placement {
    /// No dedicated execution resource: the fragment runs inline in
    /// the thread of whichever stage calls into it (the driver stage —
    /// usually the learner — anchors the caller thread itself; other
    /// in-thread fragments, like a broadcast stage or inlined replay,
    /// execute inside the driver's loop).
    InThread,
    /// A supervised OS thread per replica (panics and injected faults
    /// restart the replica with backoff); the default for rollout and
    /// replay fragments.
    #[default]
    ActorThread,
    /// A separate OS process per replica, reached over the rlgraph-net
    /// RPC transport (re-exec launch, see `rlgraph-net::proc`). Only
    /// valid under an executor that provides a remote adapter.
    RemoteProcess,
}

impl Placement {
    /// Stable label used in logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Placement::InThread => "in-thread",
            Placement::ActorThread => "actor-thread",
            Placement::RemoteProcess => "remote-process",
        }
    }
}

/// What the executing environment can physically provide; used by
/// [`PlacementMap::validate`] to reject placements the current executor
/// cannot honor.
#[derive(Debug, Clone, Copy)]
pub struct PlacementCaps {
    /// Whether a remote-process adapter (RPC transport + process
    /// launcher) is available.
    pub remote: bool,
}

impl PlacementCaps {
    /// A purely local executor: threads only.
    pub fn local() -> Self {
        PlacementCaps { remote: false }
    }

    /// An executor with a remote-process adapter (the rlgraph-net
    /// runtime).
    pub fn with_remote() -> Self {
        PlacementCaps { remote: true }
    }
}

/// Assignment of fragments to physical executors. Unmapped stages fall
/// back to the default placement ([`Placement::ActorThread`] unless
/// overridden).
#[derive(Debug, Clone, Default)]
pub struct PlacementMap {
    map: HashMap<String, Placement>,
    default: Placement,
}

impl PlacementMap {
    /// An empty map: every stage defaults to
    /// [`Placement::ActorThread`].
    pub fn new() -> Self {
        PlacementMap::default()
    }

    /// An empty map with the given fallback placement.
    pub fn with_default(default: Placement) -> Self {
        PlacementMap { map: HashMap::new(), default }
    }

    /// Assigns a stage to a placement.
    pub fn place(mut self, stage: &str, placement: Placement) -> Self {
        self.map.insert(stage.to_string(), placement);
        self
    }

    /// The placement of a stage (falling back to the default).
    pub fn of(&self, stage: &str) -> Placement {
        self.map.get(stage).copied().unwrap_or(self.default)
    }

    /// Validates this map against a graph and the executor's
    /// capabilities.
    ///
    /// # Errors
    ///
    /// [`RlError::Core`] when a mapped stage is not declared in the
    /// graph, or a [`Placement::RemoteProcess`] assignment is made
    /// without a remote adapter. In-thread placements are always legal:
    /// inline fragments are passive (driven from the caller thread), so
    /// any number of them — and any replica count — can share it.
    pub fn validate(&self, graph: &FragmentGraph, caps: PlacementCaps) -> RlResult<()> {
        let fail = |msg: String| Err(RlError::Core(CoreError::new(msg)));
        for stage in self.map.keys() {
            if graph.stage(stage).is_none() {
                return fail(format!("placement: stage '{}' is not declared in the graph", stage));
            }
        }
        if !caps.remote {
            if let Some(s) =
                graph.stages().iter().find(|s| self.of(&s.name) == Placement::RemoteProcess)
            {
                return fail(format!(
                    "placement: stage '{}' requires a remote-process adapter this executor \
                     does not provide",
                    s.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::graph::StageKind;

    fn graph() -> FragmentGraph {
        FragmentGraph::builder()
            .stage("rollout", StageKind::Rollout, 2)
            .stage("learn", StageKind::Learn, 1)
            .build()
            .unwrap()
    }

    #[test]
    fn defaults_and_overrides_resolve() {
        let p = PlacementMap::new().place("learn", Placement::InThread);
        assert_eq!(p.of("rollout"), Placement::ActorThread);
        assert_eq!(p.of("learn"), Placement::InThread);
        p.validate(&graph(), PlacementCaps::local()).unwrap();
    }

    #[test]
    fn rejects_unknown_stage_and_remote_without_adapter() {
        let g = graph();
        assert!(PlacementMap::new()
            .place("ghost", Placement::InThread)
            .validate(&g, PlacementCaps::local())
            .is_err());
        // several inline fragments sharing the caller thread are fine
        PlacementMap::new()
            .place("rollout", Placement::InThread)
            .place("learn", Placement::InThread)
            .validate(&g, PlacementCaps::local())
            .unwrap();
        let remote = PlacementMap::new().place("rollout", Placement::RemoteProcess);
        assert!(remote.validate(&g, PlacementCaps::local()).is_err());
        remote.validate(&g, PlacementCaps::with_remote()).unwrap();
    }
}
