//! Declarative fragment graphs: typed stage declarations connected by
//! bounded edges.
//!
//! A [`FragmentGraph`] is pure data — the *logical* half of the paper's
//! logical/physical split, extended to distribution the way MSRL's
//! dataflow fragments are: an RL algorithm is partitioned into stages
//! (rollout, replay, learn, broadcast, eval) and the edges between them
//! declare capacity and backpressure policy. Nothing here spawns a
//! thread; the physical mapping lives in
//! [`crate::fragment::PlacementMap`] and the execution machinery in
//! [`crate::fragment::FragmentExecutor`].

use rlgraph_core::{CoreError, RlError, RlResult};

/// The role a fragment plays in an RL dataflow. The kind determines
/// which fault classes a stepped executor injects into the stage
/// (rollout → worker crashes, replay → shard stalls, learn → learner
/// slowdowns) and how per-fragment metrics are labelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Environment interaction: actors/workers producing experience.
    Rollout,
    /// Experience storage and sampling (replay shards, rollout queues).
    Replay,
    /// Gradient computation and weight updates.
    Learn,
    /// Weight distribution from the learner back to rollout fragments.
    Broadcast,
    /// Side-channel evaluation/checkpointing driven by learner progress.
    Eval,
}

impl StageKind {
    /// Stable lowercase label used in metric names (`frag.<label>.*`).
    pub fn label(&self) -> &'static str {
        match self {
            StageKind::Rollout => "rollout",
            StageKind::Replay => "replay",
            StageKind::Learn => "learn",
            StageKind::Broadcast => "broadcast",
            StageKind::Eval => "eval",
        }
    }
}

/// One declared stage: a named fragment with a kind, an initial replica
/// count, and (for elastic stages) the bounds the count may move within
/// at runtime.
#[derive(Debug, Clone)]
pub struct StageDecl {
    /// Unique stage name (also the metric namespace: `frag.<name>.*`).
    pub name: String,
    /// The stage's role in the dataflow.
    pub kind: StageKind,
    /// Parallel replicas of this fragment (workers, shards, ...) at
    /// launch.
    pub replicas: usize,
    /// Floor for runtime scaling; equals `replicas` for fixed stages.
    pub min_replicas: usize,
    /// Ceiling for runtime scaling; equals `replicas` for fixed stages.
    pub max_replicas: usize,
}

impl StageDecl {
    /// True when the replica count may change at runtime.
    pub fn is_elastic(&self) -> bool {
        self.min_replicas != self.max_replicas
    }
}

/// Backpressure policy of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgePolicy {
    /// Bounded queue; producers block (or retry with backoff) when the
    /// consumer's mailbox is full. Experience data is never shed.
    Block,
    /// Latest-value slot; a newer item supersedes delivery of the old
    /// one and publishing never blocks. Used for weight snapshots,
    /// where only the freshest version matters.
    Latest,
}

/// One declared edge: a bounded, backpressured channel between stages.
#[derive(Debug, Clone)]
pub struct EdgeDecl {
    /// Producing stage name.
    pub from: String,
    /// Consuming stage name.
    pub to: String,
    /// Mailbox bound per consumer replica.
    pub capacity: usize,
    /// What happens when the bound is hit.
    pub policy: EdgePolicy,
    /// Legacy metric name this edge's depth gauge stays aliased to
    /// (e.g. `shard.mailbox_depth`), for dashboards predating the
    /// uniform `frag.<stage>.mailbox_depth` scheme.
    pub legacy_alias: Option<String>,
}

/// A validated fragment graph: the declarative description one executor
/// (threaded, stepped, or multi-process) turns into a running pipeline.
#[derive(Debug, Clone)]
pub struct FragmentGraph {
    stages: Vec<StageDecl>,
    edges: Vec<EdgeDecl>,
}

impl FragmentGraph {
    /// Starts an empty graph builder.
    pub fn builder() -> FragmentGraphBuilder {
        FragmentGraphBuilder { stages: Vec::new(), edges: Vec::new() }
    }

    /// Declared stages, in declaration order.
    pub fn stages(&self) -> &[StageDecl] {
        &self.stages
    }

    /// Declared edges, in declaration order.
    pub fn edges(&self) -> &[EdgeDecl] {
        &self.edges
    }

    /// Looks up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageDecl> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Replica count of a stage (0 when undeclared).
    pub fn replicas(&self, name: &str) -> usize {
        self.stage(name).map_or(0, |s| s.replicas)
    }

    /// Looks up the edge between two stages.
    pub fn edge(&self, from: &str, to: &str) -> Option<&EdgeDecl> {
        self.edges.iter().find(|e| e.from == from && e.to == to)
    }

    /// The first declared stage of the given kind, if any.
    pub fn stage_of_kind(&self, kind: StageKind) -> Option<&StageDecl> {
        self.stages.iter().find(|s| s.kind == kind)
    }
}

/// Builder for [`FragmentGraph`]; `build` validates the declaration.
#[derive(Debug, Clone)]
pub struct FragmentGraphBuilder {
    stages: Vec<StageDecl>,
    edges: Vec<EdgeDecl>,
}

impl FragmentGraphBuilder {
    /// Declares a fixed stage: the replica count never changes.
    pub fn stage(mut self, name: &str, kind: StageKind, replicas: usize) -> Self {
        self.stages.push(StageDecl {
            name: name.to_string(),
            kind,
            replicas,
            min_replicas: replicas,
            max_replicas: replicas,
        });
        self
    }

    /// Declares an elastic stage: launches with `replicas` and may be
    /// scaled within `min..=max` at runtime (see
    /// [`crate::fragment::ElasticStage`]).
    pub fn elastic_stage(
        mut self,
        name: &str,
        kind: StageKind,
        replicas: usize,
        min: usize,
        max: usize,
    ) -> Self {
        self.stages.push(StageDecl {
            name: name.to_string(),
            kind,
            replicas,
            min_replicas: min,
            max_replicas: max,
        });
        self
    }

    /// Declares a blocking bounded edge `from → to`.
    pub fn edge(mut self, from: &str, to: &str, capacity: usize) -> Self {
        self.edges.push(EdgeDecl {
            from: from.to_string(),
            to: to.to_string(),
            capacity,
            policy: EdgePolicy::Block,
            legacy_alias: None,
        });
        self
    }

    /// Declares a latest-value edge `from → to` (capacity-1 snapshot
    /// slot; see [`EdgePolicy::Latest`]).
    pub fn latest_edge(mut self, from: &str, to: &str) -> Self {
        self.edges.push(EdgeDecl {
            from: from.to_string(),
            to: to.to_string(),
            capacity: 1,
            policy: EdgePolicy::Latest,
            legacy_alias: None,
        });
        self
    }

    /// Attaches a legacy metric alias to the most recently declared
    /// edge's depth gauge.
    pub fn alias(mut self, legacy_name: &str) -> Self {
        if let Some(e) = self.edges.last_mut() {
            e.legacy_alias = Some(legacy_name.to_string());
        }
        self
    }

    /// Validates the declaration and produces the graph.
    ///
    /// # Errors
    ///
    /// [`RlError::Core`] naming the first violated invariant: at least
    /// one stage, unique stage names, positive replica counts with
    /// coherent elastic bounds (`1 <= min <= replicas <= max`), edges
    /// referencing declared stages with positive capacity (and
    /// `Latest` edges having capacity exactly 1).
    pub fn build(self) -> RlResult<FragmentGraph> {
        let fail = |msg: String| Err(RlError::Core(CoreError::new(msg)));
        if self.stages.is_empty() {
            return fail("fragment graph: at least one stage is required".into());
        }
        for (i, s) in self.stages.iter().enumerate() {
            if s.name.is_empty() {
                return fail("fragment graph: stage names must be non-empty".into());
            }
            if s.replicas == 0 {
                return fail(format!("fragment graph: stage '{}' declares 0 replicas", s.name));
            }
            if s.min_replicas == 0 || s.min_replicas > s.replicas || s.replicas > s.max_replicas {
                return fail(format!(
                    "fragment graph: stage '{}' bounds must satisfy 1 <= min ({}) <= replicas ({}) <= max ({})",
                    s.name, s.min_replicas, s.replicas, s.max_replicas
                ));
            }
            if self.stages[..i].iter().any(|p| p.name == s.name) {
                return fail(format!("fragment graph: duplicate stage name '{}'", s.name));
            }
        }
        for e in &self.edges {
            for end in [&e.from, &e.to] {
                if !self.stages.iter().any(|s| &s.name == end) {
                    return fail(format!(
                        "fragment graph: edge {}→{} references undeclared stage '{}'",
                        e.from, e.to, end
                    ));
                }
            }
            if e.capacity == 0 {
                return fail(format!(
                    "fragment graph: edge {}→{} must have positive capacity",
                    e.from, e.to
                ));
            }
            if e.policy == EdgePolicy::Latest && e.capacity != 1 {
                return fail(format!(
                    "fragment graph: latest-value edge {}→{} must have capacity 1",
                    e.from, e.to
                ));
            }
        }
        Ok(FragmentGraph { stages: self.stages, edges: self.edges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elastic_stage_carries_bounds() {
        let g = FragmentGraph::builder()
            .elastic_stage("rollout", StageKind::Rollout, 2, 1, 8)
            .stage("learn", StageKind::Learn, 1)
            .build()
            .unwrap();
        let s = g.stage("rollout").unwrap();
        assert!(s.is_elastic());
        assert_eq!((s.min_replicas, s.replicas, s.max_replicas), (1, 2, 8));
        assert!(!g.stage("learn").unwrap().is_elastic());
    }

    #[test]
    fn builds_and_indexes_a_valid_graph() {
        let g = FragmentGraph::builder()
            .stage("rollout", StageKind::Rollout, 4)
            .stage("replay", StageKind::Replay, 2)
            .stage("learn", StageKind::Learn, 1)
            .edge("rollout", "replay", 256)
            .alias("shard.mailbox_depth")
            .latest_edge("learn", "rollout")
            .build()
            .unwrap();
        assert_eq!(g.stages().len(), 3);
        assert_eq!(g.replicas("rollout"), 4);
        assert_eq!(g.replicas("missing"), 0);
        let e = g.edge("rollout", "replay").unwrap();
        assert_eq!(e.capacity, 256);
        assert_eq!(e.legacy_alias.as_deref(), Some("shard.mailbox_depth"));
        assert_eq!(g.edge("learn", "rollout").unwrap().policy, EdgePolicy::Latest);
        assert_eq!(g.stage_of_kind(StageKind::Learn).unwrap().name, "learn");
    }

    #[test]
    fn validation_rejects_bad_declarations() {
        assert!(FragmentGraph::builder().build().is_err(), "empty graph");
        assert!(
            FragmentGraph::builder().stage("a", StageKind::Rollout, 0).build().is_err(),
            "zero replicas"
        );
        assert!(
            FragmentGraph::builder()
                .stage("a", StageKind::Rollout, 1)
                .stage("a", StageKind::Learn, 1)
                .build()
                .is_err(),
            "duplicate name"
        );
        assert!(
            FragmentGraph::builder()
                .stage("a", StageKind::Rollout, 1)
                .edge("a", "ghost", 8)
                .build()
                .is_err(),
            "undeclared endpoint"
        );
        assert!(
            FragmentGraph::builder()
                .elastic_stage("a", StageKind::Rollout, 2, 3, 6)
                .build()
                .is_err(),
            "initial below min"
        );
        assert!(
            FragmentGraph::builder()
                .elastic_stage("a", StageKind::Rollout, 8, 2, 6)
                .build()
                .is_err(),
            "initial above max"
        );
        assert!(
            FragmentGraph::builder()
                .elastic_stage("a", StageKind::Rollout, 1, 0, 6)
                .build()
                .is_err(),
            "zero min"
        );
        assert!(
            FragmentGraph::builder()
                .stage("a", StageKind::Rollout, 1)
                .stage("b", StageKind::Replay, 1)
                .edge("a", "b", 0)
                .build()
                .is_err(),
            "zero capacity"
        );
    }
}
