//! Runtime edges: the bounded, backpressured channels a declared
//! [`EdgeDecl`] materializes into, instrumented under the uniform
//! `frag.<stage>.*` metric scheme.
//!
//! One [`EdgeLane`] is created per *consumer replica* — the same
//! fan-out shape the hand-woven drivers used (one mailbox per replay
//! shard, one weight slot per worker) — wrapping the existing crossbeam
//! mailbox machinery rather than replacing it. Depth gauges are emitted
//! as `frag.<to>.mailbox_depth` with the edge's declared legacy alias
//! (`shard.mailbox_depth`, `queue.depth`, ...) kept up to date for
//! dashboards predating the rename.

use super::graph::{EdgeDecl, EdgePolicy, FragmentGraph};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use rlgraph_core::{CoreError, RlError, RlResult};
use rlgraph_obs::{AliasedCounter, AliasedGauge, Recorder};
use std::time::Duration;

/// One materialized lane of a declared edge: a bounded channel to a
/// single consumer replica, plus its metric handles.
pub struct EdgeLane<T> {
    tx: Sender<T>,
    rx: Receiver<T>,
    capacity: usize,
    policy: EdgePolicy,
    depth: AliasedGauge,
    full_ctr: AliasedCounter,
}

// Manual impls: channel handles clone/debug regardless of `T`, and lane
// payloads (e.g. `ShardRequest` with its reply senders) are often
// neither `Clone` nor `Debug`.
impl<T> Clone for EdgeLane<T> {
    fn clone(&self) -> Self {
        EdgeLane {
            tx: self.tx.clone(),
            rx: self.rx.clone(),
            capacity: self.capacity,
            policy: self.policy,
            depth: self.depth.clone(),
            full_ctr: self.full_ctr.clone(),
        }
    }
}

impl<T> std::fmt::Debug for EdgeLane<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeLane")
            .field("capacity", &self.capacity)
            .field("policy", &self.policy)
            .field("queued", &self.tx.len())
            .finish()
    }
}

impl<T> EdgeLane<T> {
    /// Materializes one lane per replica of the consuming stage of the
    /// `from → to` edge declared in `graph`.
    ///
    /// # Errors
    ///
    /// [`RlError::Core`] when the edge is not declared in the graph.
    pub fn materialize(
        graph: &FragmentGraph,
        from: &str,
        to: &str,
        recorder: &Recorder,
    ) -> RlResult<Vec<EdgeLane<T>>> {
        let decl = graph.edge(from, to).ok_or_else(|| {
            RlError::Core(CoreError::new(format!("fragment edge {}→{} is not declared", from, to)))
        })?;
        let replicas = graph.replicas(to).max(1);
        Ok((0..replicas).map(|_| EdgeLane::from_decl(decl, recorder)).collect())
    }

    /// Builds a single lane from an edge declaration.
    pub fn from_decl(decl: &EdgeDecl, recorder: &Recorder) -> EdgeLane<T> {
        let (tx, rx) = bounded(decl.capacity);
        let primary_depth = format!("frag.{}.mailbox_depth", decl.to);
        let primary_full = format!("frag.{}.mailbox_full", decl.to);
        let aliases: Vec<&str> = decl.legacy_alias.as_deref().into_iter().collect();
        EdgeLane {
            tx,
            rx,
            capacity: decl.capacity,
            policy: decl.policy,
            depth: recorder.gauge_aliased(&primary_depth, &aliases),
            full_ctr: recorder.counter_aliased(&primary_full, &["shard.mailbox_full"]),
        }
    }

    /// The lane's declared mailbox bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The lane's declared backpressure policy.
    pub fn policy(&self) -> EdgePolicy {
        self.policy
    }

    /// Items currently queued in the lane.
    pub fn len(&self) -> usize {
        self.tx.len()
    }

    /// Whether the lane is currently empty.
    pub fn is_empty(&self) -> bool {
        self.tx.is_empty()
    }

    /// The lane's depth gauge (primary `frag.<stage>.mailbox_depth`
    /// plus the declared legacy alias).
    pub fn depth_gauge(&self) -> &AliasedGauge {
        &self.depth
    }

    /// A raw producer handle (for fan-in across replicas).
    pub fn sender(&self) -> Sender<T> {
        self.tx.clone()
    }

    /// A raw consumer handle; crossbeam receivers are cloneable, so a
    /// supervised stage body can re-acquire its mailbox on restart.
    pub fn receiver(&self) -> Receiver<T> {
        self.rx.clone()
    }

    /// Non-blocking submission honoring the lane's policy.
    ///
    /// Under [`EdgePolicy::Latest`] a full slot means the consumer has
    /// not yet taken the previous item; the new one is dropped (the
    /// consumer still observes a fresh-enough value) and `Ok(None)` is
    /// returned. Under [`EdgePolicy::Block`] the rejected item is
    /// handed back as `Ok(Some(item))` so the caller can retry, block,
    /// or shed explicitly — saturation is a typed condition, not a
    /// silent drop.
    ///
    /// # Errors
    ///
    /// [`RlError::Disconnected`] when the consumer is gone.
    pub fn offer(&self, item: T) -> RlResult<Option<T>> {
        match self.tx.try_send(item) {
            Ok(()) => {
                self.depth.set(self.tx.len() as f64);
                Ok(None)
            }
            Err(TrySendError::Full(item)) => {
                self.full_ctr.inc();
                match self.policy {
                    EdgePolicy::Latest => Ok(None),
                    EdgePolicy::Block => Ok(Some(item)),
                }
            }
            Err(TrySendError::Disconnected(_)) => Err(RlError::disconnected("fragment edge")),
        }
    }

    /// Blocking submission (Block backpressure: waits for mailbox
    /// space).
    ///
    /// # Errors
    ///
    /// [`RlError::Disconnected`] when the consumer is gone.
    pub fn send(&self, item: T) -> RlResult<()> {
        self.tx.send(item).map_err(|_| RlError::disconnected("fragment edge"))?;
        self.depth.set(self.tx.len() as f64);
        Ok(())
    }

    /// Blocking receive; `None` once the lane is closed and drained.
    pub fn recv(&self) -> Option<T> {
        let item = self.rx.recv().ok();
        self.depth.set(self.rx.len() as f64);
        item
    }

    /// Receive with a timeout; `Ok(None)` on timeout, `Err` when the
    /// lane is closed and drained.
    ///
    /// # Errors
    ///
    /// [`RlError::Disconnected`] once every producer handle is gone and
    /// the queue is empty.
    pub fn recv_timeout(&self, timeout: Duration) -> RlResult<Option<T>> {
        match self.rx.recv_timeout(timeout) {
            Ok(item) => {
                self.depth.set(self.rx.len() as f64);
                Ok(Some(item))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(RlError::disconnected("fragment edge")),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        let item = self.rx.try_recv().ok();
        if item.is_some() {
            self.depth.set(self.rx.len() as f64);
        }
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::graph::{FragmentGraph, StageKind};

    fn graph() -> FragmentGraph {
        FragmentGraph::builder()
            .stage("rollout", StageKind::Rollout, 2)
            .stage("replay", StageKind::Replay, 3)
            .edge("rollout", "replay", 2)
            .alias("shard.mailbox_depth")
            .latest_edge("replay", "rollout")
            .build()
            .unwrap()
    }

    #[test]
    fn materializes_one_lane_per_consumer_replica() {
        let g = graph();
        let lanes =
            EdgeLane::<u32>::materialize(&g, "rollout", "replay", &Recorder::disabled()).unwrap();
        assert_eq!(lanes.len(), 3);
        assert_eq!(lanes[0].capacity(), 2);
        assert!(EdgeLane::<u32>::materialize(&g, "replay", "ghost", &Recorder::disabled()).is_err());
    }

    #[test]
    fn block_policy_hands_back_rejected_items() {
        let g = graph();
        let lane = EdgeLane::<u32>::materialize(&g, "rollout", "replay", &Recorder::disabled())
            .unwrap()
            .remove(0);
        assert!(lane.offer(1).unwrap().is_none());
        assert!(lane.offer(2).unwrap().is_none());
        // capacity 2: the third offer returns the item for retry
        assert_eq!(lane.offer(3).unwrap(), Some(3));
        assert_eq!(lane.recv(), Some(1));
        assert!(lane.offer(3).unwrap().is_none());
    }

    #[test]
    fn latest_policy_drops_superseded_snapshots() {
        let g = graph();
        let lane = EdgeLane::<u32>::materialize(&g, "replay", "rollout", &Recorder::disabled())
            .unwrap()
            .remove(0);
        assert!(lane.offer(1).unwrap().is_none());
        // slot full: the newer value is dropped without error or handback
        assert!(lane.offer(2).unwrap().is_none());
        assert_eq!(lane.try_recv(), Some(1));
        assert_eq!(lane.try_recv(), None);
    }

    #[test]
    fn depth_gauge_tracks_primary_and_alias() {
        let rec = Recorder::wall();
        let g = graph();
        let lane = EdgeLane::<u32>::materialize(&g, "rollout", "replay", &rec).unwrap().remove(0);
        lane.send(7).unwrap();
        assert_eq!(rec.gauge("frag.replay.mailbox_depth").value(), 1.0);
        assert_eq!(rec.gauge("shard.mailbox_depth").value(), 1.0);
        assert_eq!(lane.recv(), Some(7));
        assert_eq!(rec.gauge("frag.replay.mailbox_depth").value(), 0.0);
    }
}
