//! The deterministic stepped fragment executor: the virtual-time
//! counterpart of [`FragmentExecutor`](super::FragmentExecutor).
//!
//! Where the threaded executor gives each fragment its own supervised
//! resource (and therefore OS-scheduling nondeterminism), the stepped
//! executor drives every fragment from a single thread in a fixed
//! per-tick order —
//!
//! ```text
//!   replay → rollout → learn → broadcast → eval
//! ```
//!
//! — against a [`VirtualTime`] clock, so a seeded run is bit-identical
//! on every execution. The chaos engine
//! ([`run_apex_chaos`](crate::chaos::run_apex_chaos)) is a
//! [`SteppedStages`] implementation: fault injection, checkpointing,
//! and quorum degradation are per-fragment concerns expressed in the
//! corresponding stage ticks.

use rlgraph_core::RlResult;
use rlgraph_obs::VirtualTime;
use std::sync::Arc;

/// Per-tick context handed to every stage.
pub struct TickCtx<'a> {
    /// The current scheduler tick (0-based).
    pub step: u64,
    /// Virtual length of one tick in µs.
    pub tick_us: u64,
    /// The run's virtual clock (advanced by the executor after each
    /// tick; stages may read it for timestamps).
    pub clock: &'a VirtualTime,
}

/// What a learn tick decided about the rest of the tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickFlow {
    /// The learner made progress: run the broadcast and eval fragments.
    Continue,
    /// The learner lost the tick (slowdown, below quorum, under-filled
    /// replay, crash recovery): skip straight to the clock advance.
    Skip,
}

/// The fragment stages of one stepped-graph tick, in execution order.
/// Stages a graph does not declare are simply no-op implementations.
pub trait SteppedStages {
    /// Replay fragment: per-tick shard liveness (stall windows opening
    /// and expiring).
    fn replay_tick(&mut self, ctx: &TickCtx<'_>) -> RlResult<()>;

    /// Rollout fragment: one collection task per live worker replica,
    /// including crash/restart bookkeeping and insert failover.
    fn rollout_tick(&mut self, ctx: &TickCtx<'_>) -> RlResult<()>;

    /// Learn fragment: one sample/update round, or a [`TickFlow::Skip`]
    /// when the tick is lost.
    fn learn_tick(&mut self, ctx: &TickCtx<'_>) -> RlResult<TickFlow>;

    /// Broadcast fragment: weight publication (with per-worker drop
    /// faults). Only runs after a [`TickFlow::Continue`] learn tick.
    fn broadcast_tick(&mut self, ctx: &TickCtx<'_>) -> RlResult<()>;

    /// Eval fragment: checkpoint capture and best-checkpoint scoring.
    /// Only runs after a [`TickFlow::Continue`] learn tick.
    fn eval_tick(&mut self, ctx: &TickCtx<'_>) -> RlResult<()>;
}

/// Single-threaded virtual-time executor over [`SteppedStages`]; see
/// the module docs for the tick order and determinism contract.
pub struct SteppedExecutor {
    clock: Arc<VirtualTime>,
    tick_us: u64,
}

impl SteppedExecutor {
    /// An executor over the given clock with the given tick length.
    pub fn new(clock: Arc<VirtualTime>, tick_us: u64) -> Self {
        SteppedExecutor { clock, tick_us }
    }

    /// The run's virtual clock.
    pub fn clock(&self) -> &Arc<VirtualTime> {
        &self.clock
    }

    /// Runs `steps` ticks: each tick drives replay → rollout → learn →
    /// (broadcast → eval, unless the learn tick skipped) and then
    /// advances the virtual clock by one tick.
    ///
    /// # Errors
    ///
    /// The first stage error, immediately (fatal errors abort the run
    /// mid-tick; injected faults are expected to be absorbed by the
    /// stages, not surfaced).
    pub fn run(&self, stages: &mut impl SteppedStages, steps: u64) -> RlResult<()> {
        for step in 0..steps {
            let ctx = TickCtx { step, tick_us: self.tick_us, clock: &self.clock };
            stages.replay_tick(&ctx)?;
            stages.rollout_tick(&ctx)?;
            if stages.learn_tick(&ctx)? == TickFlow::Continue {
                stages.broadcast_tick(&ctx)?;
                stages.eval_tick(&ctx)?;
            }
            self.clock.advance_micros(self.tick_us);
        }
        Ok(())
    }
}

/// Per-replica liveness bookkeeping for stepped fragments: permanently
/// dead replicas and bounded stall windows, both judged against the
/// tick counter.
#[derive(Debug, Clone)]
pub struct ReplicaHealth {
    dead: Vec<bool>,
    stalled_until: Vec<u64>,
}

impl ReplicaHealth {
    /// All-healthy bookkeeping for `replicas` replicas.
    pub fn new(replicas: usize) -> Self {
        ReplicaHealth { dead: vec![false; replicas], stalled_until: vec![0; replicas] }
    }

    /// Marks a replica permanently dead.
    pub fn kill(&mut self, replica: usize) {
        self.dead[replica] = true;
    }

    /// Opens a stall window: the replica is down until `until_step`.
    pub fn stall(&mut self, replica: usize, until_step: u64) {
        self.stalled_until[replica] = until_step;
    }

    /// The step at which the replica's current stall window ends.
    pub fn stalled_until(&self, replica: usize) -> u64 {
        self.stalled_until[replica]
    }

    /// Whether the replica serves at `step` (not dead, not inside a
    /// stall window).
    pub fn is_up(&self, replica: usize, step: u64) -> bool {
        !self.dead[replica] && self.stalled_until[replica] <= step
    }

    /// How many replicas serve at `step`.
    pub fn up_count(&self, step: u64) -> usize {
        (0..self.dead.len()).filter(|&r| self.is_up(r, step)).count()
    }

    /// Total replicas tracked.
    pub fn len(&self) -> usize {
        self.dead.len()
    }

    /// Whether no replicas are tracked.
    pub fn is_empty(&self) -> bool {
        self.dead.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlgraph_obs::ClockSource;

    #[derive(Default)]
    struct Script {
        order: Vec<&'static str>,
        skip_on: Vec<u64>,
    }

    impl SteppedStages for Script {
        fn replay_tick(&mut self, _ctx: &TickCtx<'_>) -> RlResult<()> {
            self.order.push("replay");
            Ok(())
        }
        fn rollout_tick(&mut self, _ctx: &TickCtx<'_>) -> RlResult<()> {
            self.order.push("rollout");
            Ok(())
        }
        fn learn_tick(&mut self, ctx: &TickCtx<'_>) -> RlResult<TickFlow> {
            self.order.push("learn");
            Ok(if self.skip_on.contains(&ctx.step) { TickFlow::Skip } else { TickFlow::Continue })
        }
        fn broadcast_tick(&mut self, _ctx: &TickCtx<'_>) -> RlResult<()> {
            self.order.push("broadcast");
            Ok(())
        }
        fn eval_tick(&mut self, _ctx: &TickCtx<'_>) -> RlResult<()> {
            self.order.push("eval");
            Ok(())
        }
    }

    #[test]
    fn ticks_run_in_fragment_order_and_skip_bypasses_broadcast() {
        let exec = SteppedExecutor::new(VirtualTime::new(), 1_000);
        let mut script = Script { skip_on: vec![1], ..Script::default() };
        exec.run(&mut script, 2).unwrap();
        assert_eq!(
            script.order,
            vec!["replay", "rollout", "learn", "broadcast", "eval", "replay", "rollout", "learn"]
        );
        // two ticks advanced regardless of the skip
        assert_eq!(exec.clock().now_micros(), 2_000);
    }

    #[test]
    fn replica_health_tracks_death_and_stalls() {
        let mut h = ReplicaHealth::new(3);
        assert_eq!(h.up_count(0), 3);
        h.kill(1);
        h.stall(2, 5);
        assert!(h.is_up(0, 0));
        assert!(!h.is_up(1, 100));
        assert!(!h.is_up(2, 4));
        assert!(h.is_up(2, 5));
        assert_eq!(h.up_count(4), 1);
        assert_eq!(h.stalled_until(2), 5);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
    }
}
