//! The unified run-report surface: every driver's stats type exposes
//! the same core accounting through [`RunReport`], so tooling (benches,
//! dashboards, the bench summary scripts) can consume any topology's
//! result uniformly.

use std::time::Duration;

/// One per-fragment counter in a run report, labelled by stage.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentCounter {
    /// Stage name (`rollout`, `replay`, `learn`, ...).
    pub stage: String,
    /// Metric name within the stage (reported as
    /// `frag.<stage>.<metric>`).
    pub metric: String,
    /// Counter value.
    pub value: f64,
}

impl FragmentCounter {
    /// Convenience constructor.
    pub fn new(stage: &str, metric: &str, value: f64) -> Self {
        FragmentCounter { stage: stage.to_string(), metric: metric.to_string(), value }
    }

    /// The full metric name, `frag.<stage>.<metric>`.
    pub fn name(&self) -> String {
        format!("frag.{}.{}", self.stage, self.metric)
    }
}

/// Uniform view over a driver run's outcome: learner progress, wall
/// time, and per-fragment counters. Implemented by
/// [`ApexRunStats`](crate::ApexRunStats),
/// [`ImpalaRunStats`](crate::ImpalaRunStats),
/// [`ChaosReport`](crate::ChaosReport), and `NetApexStats`
/// (rlgraph-net).
pub trait RunReport {
    /// Learner updates performed.
    fn updates(&self) -> u64;

    /// Wall time of the run (virtual time for stepped executors).
    fn wall_time(&self) -> Duration;

    /// Per-fragment counters, labelled by stage.
    fn fragment_counters(&self) -> Vec<FragmentCounter>;

    /// One-line human summary.
    fn summary(&self) -> String {
        let mut s = format!("{} updates in {:.2}s", self.updates(), self.wall_time().as_secs_f64());
        for c in self.fragment_counters() {
            s.push_str(&format!(", {}={}", c.name(), c.value));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl RunReport for Fake {
        fn updates(&self) -> u64 {
            3
        }
        fn wall_time(&self) -> Duration {
            Duration::from_secs(2)
        }
        fn fragment_counters(&self) -> Vec<FragmentCounter> {
            vec![FragmentCounter::new("rollout", "env_frames", 10.0)]
        }
    }

    #[test]
    fn summary_renders_fragment_counters() {
        let s = Fake.summary();
        assert!(s.contains("3 updates"));
        assert!(s.contains("frag.rollout.env_frames=10"));
    }
}
