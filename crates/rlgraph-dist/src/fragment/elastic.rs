//! Runtime replica pool for an elastic fragment stage.
//!
//! [`ElasticStage`] owns the *count* side of elasticity: which slot
//! indices are live, at what generation, and how to move the pool to a
//! new target size through caller-supplied spawn/retire callbacks. It
//! deliberately owns no transport and no processes — `run_apex_net`
//! plugs in process spawning, tests plug in threads — so the slot
//! bookkeeping (stable indices, monotonic generations, bounds) is
//! testable without a cluster.
//!
//! Slot indices are stable and dense-from-zero at launch: scaling up
//! reuses the lowest free index (a respawned slot keeps its index but
//! gets a **bumped generation**, which is what lets the membership
//! table tell a restart from a zombie), scaling down retires the
//! highest live index first. Generations are monotonic per slot and
//! never reused, even across remove/respawn cycles.

use super::graph::StageDecl;
use rlgraph_core::{CoreError, RlError, RlResult};
use rlgraph_obs::{Gauge, Recorder};

/// One live replica slot.
#[derive(Debug)]
struct Slot<H> {
    index: usize,
    generation: u64,
    handle: H,
}

/// A scale event, recorded for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleEvent {
    /// slot spawned at (index, generation)
    Spawned(usize, u64),
    /// slot retired at (index, generation)
    Retired(usize, u64),
}

/// Replica pool for one elastic stage. `H` is whatever the caller uses
/// to reach a replica (process child + client, thread handle, ...).
#[derive(Debug)]
pub struct ElasticStage<H> {
    name: String,
    min: usize,
    max: usize,
    slots: Vec<Slot<H>>,
    /// next generation per slot index; grows on demand and never
    /// resets, so index reuse still yields fresh generations
    next_gen: Vec<u64>,
    gauge: Gauge,
    events: Vec<ScaleEvent>,
}

impl<H> ElasticStage<H> {
    /// Creates an empty pool from a stage declaration; replicas are
    /// added by the first [`ElasticStage::scale_to`]. The
    /// `frag.<name>.replicas` gauge tracks the live count.
    pub fn new(decl: &StageDecl, recorder: &Recorder) -> Self {
        let gauge = recorder.gauge(&format!("frag.{}.replicas", decl.name));
        gauge.set(0.0);
        ElasticStage {
            name: decl.name.clone(),
            min: decl.min_replicas,
            max: decl.max_replicas,
            slots: Vec::new(),
            next_gen: Vec::new(),
            gauge,
            events: Vec::new(),
        }
    }

    /// Stage name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Live replica count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no replicas are live.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Scaling bounds `(min, max)`.
    pub fn bounds(&self) -> (usize, usize) {
        (self.min, self.max)
    }

    /// Live slot indices, ascending.
    pub fn indices(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.slots.iter().map(|s| s.index).collect();
        v.sort_unstable();
        v
    }

    /// Generation of a live slot.
    pub fn generation(&self, index: usize) -> Option<u64> {
        self.slots.iter().find(|s| s.index == index).map(|s| s.generation)
    }

    /// Handle of a live slot.
    pub fn handle(&self, index: usize) -> Option<&H> {
        self.slots.iter().find(|s| s.index == index).map(|s| &s.handle)
    }

    /// Mutable handle of a live slot.
    pub fn handle_mut(&mut self, index: usize) -> Option<&mut H> {
        self.slots.iter_mut().find(|s| s.index == index).map(|s| &mut s.handle)
    }

    /// Every scale event so far, in order.
    pub fn events(&self) -> &[ScaleEvent] {
        &self.events
    }

    fn lowest_free_index(&self) -> usize {
        let mut i = 0;
        while self.slots.iter().any(|s| s.index == i) {
            i += 1;
        }
        i
    }

    fn bump_gen(&mut self, index: usize) -> u64 {
        if self.next_gen.len() <= index {
            self.next_gen.resize(index + 1, 1);
        }
        let g = self.next_gen[index];
        self.next_gen[index] = g + 1;
        g
    }

    /// Moves the pool to `target` replicas: spawns into the lowest free
    /// indices or retires the highest live indices, through the
    /// callbacks. Spawn order is deterministic (ascending index);
    /// retire order is descending index, so the longest-lived replicas
    /// survive.
    ///
    /// # Errors
    ///
    /// [`RlError::Core`] when `target` is outside the declared bounds;
    /// any error from `spawn` aborts the scale-up at the failing slot
    /// (already-spawned slots stay live).
    pub fn scale_to(
        &mut self,
        target: usize,
        mut spawn: impl FnMut(usize, u64) -> RlResult<H>,
        mut retire: impl FnMut(usize, u64, H),
    ) -> RlResult<()> {
        if target < self.min || target > self.max {
            return Err(RlError::Core(CoreError::new(format!(
                "elastic stage '{}': target {} outside bounds {}..={}",
                self.name, target, self.min, self.max
            ))));
        }
        while self.slots.len() < target {
            let index = self.lowest_free_index();
            let generation = self.bump_gen(index);
            let handle = spawn(index, generation)?;
            self.slots.push(Slot { index, generation, handle });
            self.events.push(ScaleEvent::Spawned(index, generation));
            self.gauge.set(self.slots.len() as f64);
        }
        while self.slots.len() > target {
            let pos = self
                .slots
                .iter()
                .enumerate()
                .max_by_key(|(_, s)| s.index)
                .map(|(i, _)| i)
                .expect("non-empty above target");
            let slot = self.slots.swap_remove(pos);
            self.events.push(ScaleEvent::Retired(slot.index, slot.generation));
            retire(slot.index, slot.generation, slot.handle);
            self.gauge.set(self.slots.len() as f64);
        }
        Ok(())
    }

    /// Removes a slot that died on its own (crash, eviction) without
    /// invoking a retire callback. Returns the handle for reaping.
    pub fn remove(&mut self, index: usize) -> Option<H> {
        let pos = self.slots.iter().position(|s| s.index == index)?;
        let slot = self.slots.swap_remove(pos);
        self.events.push(ScaleEvent::Retired(slot.index, slot.generation));
        self.gauge.set(self.slots.len() as f64);
        Some(slot.handle)
    }

    /// Respawns a crashed slot at the **same index** with a bumped
    /// generation. The slot must not currently be live.
    ///
    /// # Errors
    ///
    /// [`RlError::Core`] when the slot is still live or the pool is at
    /// its max; otherwise whatever `spawn` returns.
    pub fn respawn(
        &mut self,
        index: usize,
        spawn: impl FnOnce(usize, u64) -> RlResult<H>,
    ) -> RlResult<u64> {
        if self.slots.iter().any(|s| s.index == index) {
            return Err(RlError::Core(CoreError::new(format!(
                "elastic stage '{}': slot {} is still live",
                self.name, index
            ))));
        }
        if self.slots.len() >= self.max {
            return Err(RlError::Core(CoreError::new(format!(
                "elastic stage '{}': at max replicas {}",
                self.name, self.max
            ))));
        }
        let generation = self.bump_gen(index);
        let handle = spawn(index, generation)?;
        self.slots.push(Slot { index, generation, handle });
        self.events.push(ScaleEvent::Spawned(index, generation));
        self.gauge.set(self.slots.len() as f64);
        Ok(generation)
    }

    /// Drains every slot (shutdown), retiring highest index first.
    pub fn drain(&mut self, mut retire: impl FnMut(usize, u64, H)) {
        while let Some(pos) =
            self.slots.iter().enumerate().max_by_key(|(_, s)| s.index).map(|(i, _)| i)
        {
            let slot = self.slots.swap_remove(pos);
            self.events.push(ScaleEvent::Retired(slot.index, slot.generation));
            retire(slot.index, slot.generation, slot.handle);
        }
        self.gauge.set(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{FragmentGraph, StageKind};

    fn stage(rec: &Recorder) -> ElasticStage<u64> {
        let g = FragmentGraph::builder()
            .elastic_stage("rollout", StageKind::Rollout, 2, 1, 6)
            .build()
            .unwrap();
        ElasticStage::new(g.stage("rollout").unwrap(), rec)
    }

    #[test]
    fn scale_up_then_down_assigns_and_retires_deterministically() {
        let rec = Recorder::wall();
        let mut s = stage(&rec);
        let mut spawned = Vec::new();
        s.scale_to(
            4,
            |i, g| {
                spawned.push((i, g));
                Ok(g)
            },
            |_, _, _| panic!("no retire on the way up"),
        )
        .unwrap();
        assert_eq!(spawned, vec![(0, 1), (1, 1), (2, 1), (3, 1)]);
        assert_eq!(s.indices(), vec![0, 1, 2, 3]);
        assert_eq!(rec.gauge("frag.rollout.replicas").value(), 4.0);

        let mut retired = Vec::new();
        s.scale_to(2, |_, _| panic!("no spawn on the way down"), |i, g, _| retired.push((i, g)))
            .unwrap();
        assert_eq!(retired, vec![(3, 1), (2, 1)]);
        assert_eq!(s.indices(), vec![0, 1]);
        assert_eq!(rec.gauge("frag.rollout.replicas").value(), 2.0);
    }

    #[test]
    fn bounds_are_enforced() {
        let rec = Recorder::wall();
        let mut s = stage(&rec);
        assert!(s.scale_to(0, |_, g| Ok(g), |_, _, _| {}).is_err());
        assert!(s.scale_to(7, |_, g| Ok(g), |_, _, _| {}).is_err());
    }

    #[test]
    fn respawn_bumps_generation_at_same_index() {
        let rec = Recorder::wall();
        let mut s = stage(&rec);
        s.scale_to(3, |_, g| Ok(g), |_, _, _| {}).unwrap();
        assert_eq!(s.generation(1), Some(1));
        // Crash: slot 1 dies without a retire callback.
        assert!(s.remove(1).is_some());
        assert_eq!(s.indices(), vec![0, 2]);
        let g = s
            .respawn(1, |i, g| {
                assert_eq!(i, 1);
                Ok(g)
            })
            .unwrap();
        assert_eq!(g, 2, "generation must bump across the crash");
        assert_eq!(s.generation(1), Some(2));
        // Scale-up after the crash reuses the lowest free index (3)
        // and its generation starts fresh at 1.
        s.scale_to(4, |_, g| Ok(g), |_, _, _| {}).unwrap();
        assert_eq!(s.indices(), vec![0, 1, 2, 3]);
        assert_eq!(s.generation(3), Some(1));
        // Respawn of a live slot is an error.
        assert!(s.respawn(0, |_, g| Ok(g)).is_err());
    }

    #[test]
    fn drain_retires_everything() {
        let rec = Recorder::wall();
        let mut s = stage(&rec);
        s.scale_to(3, |_, g| Ok(g), |_, _, _| {}).unwrap();
        let mut retired = Vec::new();
        s.drain(|i, _, _| retired.push(i));
        assert_eq!(retired, vec![2, 1, 0]);
        assert!(s.is_empty());
        assert_eq!(rec.gauge("frag.rollout.replicas").value(), 0.0);
    }
}
