//! The dataflow-fragment executor: one declarative graph + placement
//! API under every driver (DESIGN.md §15).
//!
//! The paper's core idea is the separation of the logical component
//! graph from its physical build; this module extends exactly that
//! split to distribution, the way MSRL partitions an RL algorithm into
//! dataflow *fragments* mapped onto heterogeneous executors:
//!
//! * [`FragmentGraph`] — the logical declaration: typed stages
//!   ([`StageKind`]: rollout, replay, learn, broadcast, eval) connected
//!   by bounded, backpressured edges ([`EdgeDecl`]).
//! * [`PlacementMap`] — the physical mapping: each fragment runs
//!   [`Placement::InThread`], on supervised
//!   [`Placement::ActorThread`]s, or behind
//!   [`Placement::RemoteProcess`]es (the rlgraph-net runtime), without
//!   touching the declaration.
//! * [`FragmentExecutor`] — the threaded runtime;
//!   [`SteppedExecutor`] — the deterministic virtual-time runtime the
//!   chaos engine runs on.
//!
//! The four drivers (`run_apex`, `run_impala`, `run_apex_chaos`,
//! `run_apex_net`) are graph declarations over these executors; see
//! [`apex_graph`] and [`impala_graph`]. Every driver's stats type
//! implements the uniform [`RunReport`] surface.

mod apex;
mod edge;
mod elastic;
mod graph;
mod impala;
mod placement;
mod report;
mod stepped;

pub mod exec;

pub use apex::{apex_graph, default_apex_placement, run_apex_fragments, ShardPort, ShardPull};
pub use edge::EdgeLane;
pub use elastic::{ElasticStage, ScaleEvent};
pub use exec::FragmentExecutor;
pub use graph::{EdgeDecl, EdgePolicy, FragmentGraph, FragmentGraphBuilder, StageDecl, StageKind};
pub use impala::{default_impala_placement, impala_graph, run_impala_fragments};
pub use placement::{Placement, PlacementCaps, PlacementMap};
pub use report::{FragmentCounter, RunReport};
pub use stepped::{ReplicaHealth, SteppedExecutor, SteppedStages, TickCtx, TickFlow};
