//! The threaded fragment executor: turns a [`FragmentGraph`] +
//! [`PlacementMap`] into running, supervised stages.
//!
//! Each [`Placement::ActorThread`] stage gets its own [`Supervisor`]
//! (so stages can be stopped and joined independently, in dependency
//! order: rollout before replay, producers before consumers); replicas
//! run as threads named `frag-<stage>-<replica>` and restart with
//! backoff on panics or injected crashes. The single
//! [`Placement::InThread`] stage is the driver — it runs on the caller
//! thread via [`FragmentExecutor::run_driver`]. Per-fragment metrics
//! are emitted under `frag.<stage>.*`.

use super::edge::EdgeLane;
use super::graph::FragmentGraph;
use super::placement::{Placement, PlacementCaps, PlacementMap};
use crate::retry::RetryPolicy;
use crate::supervisor::{ActorOutcome, SupervisionReport, Supervisor};
use rlgraph_core::{CoreError, RlError, RlResult};
use rlgraph_obs::Recorder;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// A running fragment pipeline; see the module docs.
pub struct FragmentExecutor {
    graph: FragmentGraph,
    placement: PlacementMap,
    recorder: Recorder,
    restart_policy: RetryPolicy,
    /// Per-stage supervisors, in spawn order; joined in reverse.
    stages: Vec<(String, Supervisor)>,
    /// Supervision reports of stages already joined.
    joined: Vec<(String, SupervisionReport)>,
}

impl FragmentExecutor {
    /// Validates the placement against the graph (local capabilities:
    /// threads only) and prepares an executor.
    ///
    /// # Errors
    ///
    /// Placement validation errors; see [`PlacementMap::validate`].
    pub fn new(
        graph: FragmentGraph,
        placement: PlacementMap,
        recorder: Recorder,
        restart_policy: RetryPolicy,
    ) -> RlResult<Self> {
        placement.validate(&graph, PlacementCaps::local())?;
        Ok(FragmentExecutor {
            graph,
            placement,
            recorder,
            restart_policy,
            stages: Vec::new(),
            joined: Vec::new(),
        })
    }

    /// The executed graph declaration.
    pub fn graph(&self) -> &FragmentGraph {
        &self.graph
    }

    /// The physical placement in effect.
    pub fn placement(&self) -> &PlacementMap {
        &self.placement
    }

    /// Materializes the lanes of a declared edge (one per consumer
    /// replica), instrumented through this executor's recorder.
    ///
    /// # Errors
    ///
    /// [`RlError::Core`] when the edge is not declared.
    pub fn lanes<T>(&self, from: &str, to: &str) -> RlResult<Vec<EdgeLane<T>>> {
        EdgeLane::materialize(&self.graph, from, to, &self.recorder)
    }

    /// Spawns every replica of an [`Placement::ActorThread`] stage.
    /// `make_body(replica)` builds the supervised loop body for one
    /// replica; bodies are re-invoked on supervised restarts.
    ///
    /// # Errors
    ///
    /// [`RlError::Core`] when the stage is undeclared, not placed on
    /// actor threads, or already spawned.
    pub fn spawn_stage<F>(
        &mut self,
        stage: &str,
        mut make_body: impl FnMut(usize) -> F,
    ) -> RlResult<()>
    where
        F: FnMut(&AtomicBool) -> RlResult<()> + Send + 'static,
    {
        let decl = self.graph.stage(stage).ok_or_else(|| {
            RlError::Core(CoreError::new(format!("fragment stage '{}' is not declared", stage)))
        })?;
        match self.placement.of(stage) {
            Placement::ActorThread => {}
            other => {
                return Err(RlError::Core(CoreError::new(format!(
                    "fragment stage '{}' is placed {}, not actor-thread",
                    stage,
                    other.label()
                ))))
            }
        }
        if self.stages.iter().any(|(n, _)| n == stage) {
            return Err(RlError::Core(CoreError::new(format!(
                "fragment stage '{}' already spawned",
                stage
            ))));
        }
        let mut sup = Supervisor::with_recorder(self.restart_policy.clone(), self.recorder.clone());
        for r in 0..decl.replicas {
            sup.spawn(&format!("frag-{}-{}", stage, r), make_body(r));
        }
        self.recorder.gauge(&format!("frag.{}.replicas", stage)).set(decl.replicas as f64);
        self.stages.push((stage.to_string(), sup));
        Ok(())
    }

    /// The stop flag of a spawned stage's supervisor (replica bodies
    /// poll it).
    pub fn stop_flag(&self, stage: &str) -> Option<Arc<AtomicBool>> {
        self.stages.iter().find(|(n, _)| n == stage).map(|(_, s)| s.stop_flag())
    }

    /// Runs the driver stage (the one [`Placement::InThread`] fragment)
    /// on the caller thread.
    ///
    /// # Errors
    ///
    /// [`RlError::Core`] when the stage is not placed in-thread;
    /// otherwise whatever the body returns.
    pub fn run_driver<R>(
        &mut self,
        stage: &str,
        body: impl FnOnce() -> RlResult<R>,
    ) -> RlResult<R> {
        if self.placement.of(stage) != Placement::InThread {
            return Err(RlError::Core(CoreError::new(format!(
                "fragment stage '{}' is not the in-thread driver",
                stage
            ))));
        }
        self.recorder.gauge(&format!("frag.{}.replicas", stage)).set(1.0);
        let _span = self.recorder.span(format!("frag.{}.drive", stage));
        body()
    }

    /// Joins one spawned stage, optionally raising its stop flag first
    /// (pass `false` when replicas terminate on their own, e.g. after a
    /// fixed task budget — raising the flag early would truncate them
    /// non-deterministically).
    ///
    /// # Errors
    ///
    /// [`RlError::ActorCrashed`] for the first replica that ended
    /// fatally or exhausted its restart budget.
    pub fn join_stage(&mut self, stage: &str, stop_first: bool) -> RlResult<()> {
        let Some(pos) = self.stages.iter().position(|(n, _)| n == stage) else {
            return Ok(()); // never spawned (e.g. in-thread placement)
        };
        let (name, sup) = self.stages.remove(pos);
        let report = if stop_first { sup.stop_and_join() } else { sup.join() };
        self.recorder.counter(&format!("frag.{}.restarts", name)).add(report.total_restarts());
        let failed = fold_outcomes(&report);
        self.joined.push((name, report));
        failed
    }

    /// Stops and joins every remaining stage in reverse spawn order
    /// (consumers outlive producers) and returns the per-stage
    /// supervision reports.
    ///
    /// # Errors
    ///
    /// [`RlError::ActorCrashed`] for the first replica across all
    /// stages that ended fatally or exhausted its restart budget — but
    /// only after every stage has been fully joined.
    pub fn shutdown(mut self) -> RlResult<Vec<(String, SupervisionReport)>> {
        let mut first_err = None;
        while let Some((name, sup)) = self.stages.pop() {
            let report = sup.stop_and_join();
            self.recorder.counter(&format!("frag.{}.restarts", name)).add(report.total_restarts());
            if first_err.is_none() {
                first_err = fold_outcomes(&report).err();
            }
            self.joined.push((name, report));
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(std::mem::take(&mut self.joined)),
        }
    }
}

/// A replica that died for good (fatal error or exhausted restart
/// budget) fails the run, exactly as the hand-woven drivers did.
fn fold_outcomes(report: &SupervisionReport) -> RlResult<()> {
    for actor in &report.actors {
        if let ActorOutcome::Fatal(reason) | ActorOutcome::GaveUp(reason) = &actor.outcome {
            return Err(RlError::ActorCrashed {
                actor: actor.name.clone(),
                reason: reason.clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::graph::StageKind;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn graph() -> FragmentGraph {
        FragmentGraph::builder()
            .stage("rollout", StageKind::Rollout, 3)
            .stage("learn", StageKind::Learn, 1)
            .edge("rollout", "learn", 8)
            .build()
            .unwrap()
    }

    fn placement() -> PlacementMap {
        PlacementMap::new().place("learn", Placement::InThread)
    }

    #[test]
    fn spawns_replicas_and_drives_in_thread() {
        let rec = Recorder::wall();
        let mut exec =
            FragmentExecutor::new(graph(), placement(), rec.clone(), RetryPolicy::none()).unwrap();
        let lanes = exec.lanes::<u64>("rollout", "learn").unwrap();
        let lane = lanes.into_iter().next().unwrap();
        let hits = Arc::new(AtomicU64::new(0));
        {
            let lane = lane.clone();
            let hits = hits.clone();
            exec.spawn_stage("rollout", move |r| {
                let lane = lane.clone();
                let hits = hits.clone();
                let mut sent = false;
                move |_stop: &AtomicBool| {
                    if !sent {
                        sent = true;
                        hits.fetch_add(1, Ordering::Relaxed);
                        lane.send(r as u64)?;
                    }
                    Ok(())
                }
            })
            .unwrap();
        }
        let got = exec
            .run_driver("learn", || {
                let mut got = Vec::new();
                for _ in 0..3 {
                    got.push(lane.recv().expect("replica sent"));
                }
                Ok(got)
            })
            .unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        let reports = exec.shutdown().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(rec.gauge("frag.rollout.replicas").value(), 3.0);
    }

    #[test]
    fn rejects_misplaced_spawns_and_double_spawn() {
        let mut exec =
            FragmentExecutor::new(graph(), placement(), Recorder::disabled(), RetryPolicy::none())
                .unwrap();
        // learn is the in-thread driver: spawning it as actor threads is an error
        assert!(exec.spawn_stage("learn", |_| |_: &AtomicBool| Ok(())).is_err());
        assert!(exec.spawn_stage("ghost", |_| |_: &AtomicBool| Ok(())).is_err());
        exec.spawn_stage("rollout", |_| |_: &AtomicBool| Ok(())).unwrap();
        assert!(exec.spawn_stage("rollout", |_| |_: &AtomicBool| Ok(())).is_err());
        exec.shutdown().unwrap();
    }

    #[test]
    fn fatal_replicas_surface_as_actor_crashed() {
        let g = FragmentGraph::builder().stage("rollout", StageKind::Rollout, 1).build().unwrap();
        let mut exec = FragmentExecutor::new(
            g,
            PlacementMap::new(),
            Recorder::disabled(),
            RetryPolicy::none(),
        )
        .unwrap();
        exec.spawn_stage("rollout", |_| {
            |_: &AtomicBool| Err(RlError::Core(CoreError::new("wedged")))
        })
        .unwrap();
        match exec.shutdown() {
            Err(RlError::ActorCrashed { actor, .. }) => {
                assert_eq!(actor, "frag-rollout-0");
            }
            other => panic!("expected ActorCrashed, got {:?}", other.map(|_| ())),
        }
    }
}
