//! IMPALA as a fragment graph: the declarative re-statement of the
//! non-centralized [`run_impala`](crate::impala_driver::run_impala_legacy)
//! driver.
//!
//! ```text
//!   rollout (N) ──Block(queue_capacity)──▶ learn (1)
//!      ▲                                     │
//!      └──────Latest── broadcast (1) ◀───────┘
//! ```
//!
//! The rollout→learn edge is physically the in-graph [`TensorQueue`]
//! (actors enqueue from inside their dataflow graphs — the declaration
//! wraps the existing machinery rather than replacing it); the
//! broadcast edge is the versioned [`WeightHub`] actors poll. The graph
//! declaration still governs replica counts, placement validation, and
//! the metric naming: queue depth is emitted as
//! `frag.learn.mailbox_depth` with the historical `queue.depth` kept as
//! a live alias.

use super::exec::FragmentExecutor;
use super::graph::{FragmentGraph, StageKind};
use super::placement::{Placement, PlacementMap};
use crate::fault::FaultKind;
use crate::impala_driver::{ImpalaDriverConfig, ImpalaRunStats};
use crate::retry::RetryPolicy;
use crate::sync::WeightHub;
use rlgraph_agents::impala::{ImpalaActor, ImpalaLearner};
use rlgraph_core::{CoreError, RlError, RlResult};
use rlgraph_envs::{Env, VectorEnv};
use rlgraph_graph::TensorQueue;
use rlgraph_spaces::Space;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The IMPALA topology as a fragment graph (see the module docs). The
/// rollout→learn bound is the agent's `queue_capacity`; the weight
/// broadcast is a latest-wins slot.
///
/// # Errors
///
/// [`RlError::Core`] when the config declares zero actors or a zero
/// queue capacity.
pub fn impala_graph(config: &ImpalaDriverConfig) -> RlResult<FragmentGraph> {
    FragmentGraph::builder()
        .stage("rollout", StageKind::Rollout, config.num_actors)
        .stage("learn", StageKind::Learn, 1)
        .stage("broadcast", StageKind::Broadcast, 1)
        .edge("rollout", "learn", config.agent.queue_capacity)
        .alias("queue.depth")
        .latest_edge("broadcast", "rollout")
        .build()
}

/// The placement the legacy driver used: actors on supervised threads,
/// learner and broadcast inline.
pub fn default_impala_placement() -> PlacementMap {
    PlacementMap::new()
        .place("rollout", Placement::ActorThread)
        .place("learn", Placement::InThread)
        .place("broadcast", Placement::InThread)
}

/// Runs IMPALA as a fragment graph under the given placement.
///
/// This is the executor behind [`run_impala`](crate::run_impala); the
/// actor and learner bodies are the same algorithm as the legacy driver
/// (same seeds, same lag-bounded weight pulls, same fault draws).
///
/// # Errors
///
/// Placement/graph validation errors, build errors, and
/// [`RlError::ActorCrashed`] for actors that died for good.
pub fn run_impala_fragments<F>(
    config: ImpalaDriverConfig,
    placement: PlacementMap,
    env_factory: F,
) -> RlResult<ImpalaRunStats>
where
    F: Fn(usize, usize) -> Box<dyn Env> + Send + Sync + 'static,
{
    let start = Instant::now();
    let recorder = config.recorder.clone();
    let graph = impala_graph(&config)?;
    let restart_policy = RetryPolicy {
        max_attempts: config.max_actor_restarts,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(50),
        multiplier: 2.0,
        deadline: None,
    };
    let mut exec = FragmentExecutor::new(graph, placement, recorder.clone(), restart_policy)?;

    // The rollout→learn edge, materialized as the in-graph queue the
    // actor/learner dataflow graphs enqueue/dequeue through.
    let queue = TensorQueue::new("impala-rollouts", config.agent.queue_capacity);
    let frames_total = Arc::new(AtomicU64::new(0));
    let returns: Arc<parking_lot::Mutex<Vec<f32>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let env_factory = Arc::new(env_factory);

    let state_space: Space = env_factory(0, 0).state_space();
    let num_actions = env_factory(0, 0)
        .action_space()
        .num_categories()
        .map_err(|e| RlError::Core(CoreError::from(e)))?;

    // The broadcast→rollout edge: a versioned hub actors poll
    // (latest-wins by construction — stale snapshots are superseded).
    let weight_hub = Arc::new(WeightHub::new());

    {
        let queue = queue.clone();
        let frames_total = frames_total.clone();
        let returns = returns.clone();
        let env_factory = env_factory.clone();
        let weight_hub = weight_hub.clone();
        let rec = recorder.clone();
        let config = config.clone();
        exec.spawn_stage("rollout", move |a| {
            let queue = queue.clone();
            let frames_total = frames_total.clone();
            let returns = returns.clone();
            let env_factory = env_factory.clone();
            let weight_hub = weight_hub.clone();
            let rec = rec.clone();
            let mut agent_cfg = config.agent.clone();
            agent_cfg.seed = config.agent.seed.wrapping_add(a as u64 * 6151);
            let envs_per_actor = config.envs_per_actor;
            let sync_every = config.weight_sync_interval;
            let max_lag = config.max_weight_lag;
            let fault_plan = config.fault_plan.clone();
            let max_rollouts = config.max_rollouts_per_actor;
            // Persists across supervised restarts so injected-fault
            // draws advance instead of re-crashing at the same
            // coordinate.
            let mut rollouts: u64 = 0;
            move |stop: &AtomicBool| {
                let envs = VectorEnv::new((0..envs_per_actor).map(|e| env_factory(a, e)).collect())
                    .map_err(|e| RlError::Core(CoreError::new(e.message())))?;
                let rollout_us =
                    rec.histogram_aliased("frag.rollout.rollout_us", &["actor.rollout_us"]);
                let frames_ctr = rec.counter_aliased("frag.rollout.frames", &["actor.frames"]);
                let reward_gauge = rec.gauge("train.episode_reward");
                let forced_sync_ctr = rec.counter("chaos.forced_syncs");
                let crash_ctr = rec.counter("chaos.worker_crashes");
                let mut actor = ImpalaActor::new(&agent_cfg, envs, queue.clone())?;
                let mut frames_before = 0u64;
                let mut weight_version = 0u64;
                while !stop.load(Ordering::Relaxed)
                    && max_rollouts.map(|k| rollouts < k).unwrap_or(true)
                {
                    // Scheduled pull every `sync_every` rollouts, plus a
                    // forced pull whenever the published version has run
                    // more than `max_lag` ahead (bounded staleness).
                    let lagging = weight_hub.version().saturating_sub(weight_version) > max_lag;
                    if rollouts.is_multiple_of(sync_every) || lagging {
                        if let Some(snap) = weight_hub.poll(weight_version) {
                            let _span = rec.span("actor.weight_sync");
                            if lagging {
                                forced_sync_ctr.inc();
                            }
                            actor.set_weights(&snap.weights)?;
                            weight_version = snap.version;
                        }
                    }
                    if fault_plan.draw(FaultKind::WorkerCrash, a, rollouts) {
                        rollouts += 1;
                        crash_ctr.inc();
                        return Err(RlError::ActorCrashed {
                            actor: format!("frag-rollout-{}", a),
                            reason: "injected fault".into(),
                        });
                    }
                    let t0 = Instant::now();
                    let rollout_res = {
                        let _span = rec.span("actor.rollout");
                        actor.rollout()
                    };
                    match rollout_res {
                        Ok(()) => rollout_us.record_duration(t0.elapsed()),
                        Err(_) if stop.load(Ordering::Relaxed) => break,
                        Err(e) => return Err(RlError::from(e)),
                    }
                    rollouts += 1;
                    let now = actor.env_frames();
                    frames_ctr.add(now - frames_before);
                    frames_total.fetch_add(now - frames_before, Ordering::Relaxed);
                    frames_before = now;
                    if let Some(r) = actor.mean_recent_return(20) {
                        reward_gauge.set(r as f64);
                        returns.lock().push(r);
                    }
                }
                Ok(())
            }
        })?;
    }

    // Learner driver (this thread), publishing through the inline
    // broadcast fragment after every update.
    let deadline = start + config.run_duration;
    let driver_res = exec.run_driver("learn", || {
        let mut learner = ImpalaLearner::new(
            &config.agent,
            state_space,
            num_actions,
            config.envs_per_actor,
            queue.clone(),
        )?;
        let mut losses = Vec::new();
        let learn_us = recorder.histogram_aliased("frag.learn.step_us", &["learner.step_us"]);
        let queue_depth = recorder.gauge_aliased("frag.learn.mailbox_depth", &["queue.depth"]);
        let loss_gauge = recorder.gauge("train.loss");
        let updates_ctr = recorder.counter_aliased("frag.learn.updates", &["learner.updates"]);
        while Instant::now() < deadline
            && config.max_updates.map(|m| learner.num_updates() < m).unwrap_or(true)
        {
            queue_depth.set(queue.len() as f64);
            let t0 = Instant::now();
            let learn_res = {
                let _span = recorder.span("learner.step");
                learner.learn()
            };
            match learn_res {
                Ok(l) => {
                    learn_us.record_duration(t0.elapsed());
                    loss_gauge.set(l.total as f64);
                    updates_ctr.inc();
                    losses.push(l.total);
                    weight_hub.publish(learner.get_weights());
                }
                Err(_) => break,
            }
        }
        Ok((learner.num_updates(), losses))
    });

    // Finite rollout budgets exit on their own (raising the stop flag
    // or closing the queue early would truncate them
    // non-deterministically); otherwise stop the actors and unblock any
    // enqueue waiting on a full queue.
    let finite_rollouts = config.max_rollouts_per_actor.is_some();
    if !finite_rollouts {
        if let Some(stop) = exec.stop_flag("rollout") {
            stop.store(true, Ordering::Relaxed);
        }
        queue.close();
    }
    let rollout_res = exec.join_stage("rollout", false);
    if finite_rollouts {
        queue.close();
    }
    let shutdown_res = exec.shutdown();

    let (updates, losses) = driver_res?;
    rollout_res?;
    shutdown_res?;

    let wall_time = start.elapsed();
    let env_frames = frames_total.load(Ordering::Relaxed);
    let mean_return = {
        let r = returns.lock();
        r.last().copied()
    };
    Ok(ImpalaRunStats {
        env_frames,
        wall_time,
        frames_per_second: env_frames as f64 / wall_time.as_secs_f64().max(1e-9),
        updates,
        losses,
        mean_return,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlgraph_agents::{Backend, ImpalaConfig};
    use rlgraph_envs::RandomEnv;
    use rlgraph_nn::{Activation, NetworkSpec};

    fn tiny_config() -> ImpalaDriverConfig {
        ImpalaDriverConfig {
            agent: ImpalaConfig {
                backend: Backend::Static,
                network: NetworkSpec::mlp(&[8], Activation::Tanh),
                rollout_len: 4,
                queue_capacity: 4,
                seed: 2,
                ..ImpalaConfig::default()
            },
            num_actors: 2,
            envs_per_actor: 2,
            weight_sync_interval: 2,
            run_duration: Duration::from_millis(1200),
            max_updates: Some(20),
            ..ImpalaDriverConfig::default()
        }
    }

    #[test]
    fn impala_graph_declares_the_topology() {
        let g = impala_graph(&tiny_config()).unwrap();
        assert_eq!(g.replicas("rollout"), 2);
        assert_eq!(g.replicas("learn"), 1);
        let edge = g.edge("rollout", "learn").unwrap();
        assert_eq!(edge.capacity, 4);
        assert_eq!(edge.legacy_alias.as_deref(), Some("queue.depth"));
        default_impala_placement().validate(&g, super::super::PlacementCaps::local()).unwrap();
    }

    #[test]
    fn fragment_impala_runs_and_learns() {
        let stats = run_impala_fragments(tiny_config(), default_impala_placement(), |a, e| {
            Box::new(RandomEnv::new(&[3], 2, 16, (a * 10 + e) as u64))
        })
        .unwrap();
        assert!(stats.updates > 0, "learner never updated");
        assert!(stats.env_frames > 0);
        assert!(stats.losses.iter().all(|l| l.is_finite()));
    }
}
