//! Ape-X as a fragment graph: the declarative re-statement of the
//! hand-woven [`run_apex`](crate::ray::run_apex_legacy) driver.
//!
//! The topology is four typed stages —
//!
//! ```text
//!   rollout (N) ──Block──▶ replay (S) ──Block──▶ learn (1)
//!      ▲                                           │
//!      └───────────Latest── broadcast (1) ◀────────┘
//! ```
//!
//! — and the physical build is a [`PlacementMap`]: replay runs on
//! supervised actor threads (the default) or inline in the learner
//! thread ([`Placement::InThread`]), behind the placement-transparent
//! [`ShardPort`] handle. The worker and learner loop bodies are the
//! same algorithm as the legacy driver, so a fixed-task-budget run
//! (`max_tasks_per_worker`) is same-seed bit-identical to it — the
//! parity suite in `tests/fragment_parity.rs` holds both executors to
//! that contract.

use super::edge::EdgeLane;
use super::exec::FragmentExecutor;
use super::graph::{FragmentGraph, StageKind};
use super::placement::{Placement, PlacementMap};
use crate::fault::FaultKind;
use crate::ray::{apex_worker_epsilon, ApexRunConfig, ApexRunStats};
use crate::retry::{RetryPolicy, ThreadSleeper};
use crate::shard::{
    serve_shard, ReplayShard, ShardBatch, ShardCore, ShardRequest, ShardServeMetrics,
};
use crossbeam::channel::bounded;
use parking_lot::Mutex;
use rlgraph_agents::apex::ApexWorker;
use rlgraph_agents::DqnAgent;
use rlgraph_core::{CoreError, RlError, RlResult};
use rlgraph_envs::{Env, VectorEnv};
use rlgraph_tensor::Tensor;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A weight snapshot travelling the broadcast edge: the send timestamp
/// (recorder clock, µs) plus named tensors.
type WeightMsg = (u64, Vec<(String, Tensor)>);

/// The Ape-X topology as a fragment graph (see the module docs for the
/// shape). Stage replica counts come from the config; edge bounds are
/// the same the hand-woven driver used (shard mailboxes of
/// [`ReplayShard::DEFAULT_MAILBOX_CAPACITY`], latest-wins weight
/// slots).
///
/// # Errors
///
/// [`RlError::Core`] when the config declares zero workers or shards
/// (graph validation requires every stage to have at least one
/// replica).
pub fn apex_graph(config: &ApexRunConfig) -> RlResult<FragmentGraph> {
    FragmentGraph::builder()
        .stage("rollout", StageKind::Rollout, config.num_workers)
        .stage("replay", StageKind::Replay, config.num_shards)
        .stage("learn", StageKind::Learn, 1)
        .stage("broadcast", StageKind::Broadcast, 1)
        .edge("rollout", "replay", ReplayShard::DEFAULT_MAILBOX_CAPACITY)
        .alias("shard.mailbox_depth")
        .edge("replay", "learn", 1)
        .latest_edge("broadcast", "rollout")
        .build()
}

/// The placement the legacy threaded driver used: rollout and replay on
/// supervised actor threads, learner and broadcast inline on the caller
/// thread.
pub fn default_apex_placement() -> PlacementMap {
    PlacementMap::new()
        .place("rollout", Placement::ActorThread)
        .place("replay", Placement::ActorThread)
        .place("learn", Placement::InThread)
        .place("broadcast", Placement::InThread)
}

/// Outcome of one [`ShardPort::sample`] pull.
pub enum ShardPull {
    /// A prioritized batch (boxed: a batch is ~6 tensors, far larger
    /// than the other variants).
    Batch(Box<ShardBatch>),
    /// The shard has fewer records than the batch size.
    NotReady,
    /// No reply within the timeout (stalled or busy shard).
    TimedOut,
    /// The shard is gone (shutdown in progress).
    Gone,
}

/// A placement-transparent handle to one replay fragment replica: the
/// worker and learner bodies speak `ShardPort` and never learn whether
/// the shard lives behind a supervised actor mailbox or inline in the
/// caller thread.
#[derive(Clone)]
pub enum ShardPort {
    /// A supervised actor replica behind a bounded mailbox lane.
    Mailbox(EdgeLane<ShardRequest>),
    /// A core driven inline ([`Placement::InThread`] replay).
    Inline(Arc<Mutex<ShardCore>>, Arc<ShardServeMetrics>),
}

impl ShardPort {
    /// Submits a collected batch: retry with backoff on a saturated
    /// mailbox (Block backpressure — replay data is never shed), then
    /// fall back to a blocking send if the policy gives up. Returns
    /// `false` when the shard is gone (shutdown in progress).
    pub fn submit(
        &self,
        transitions: Vec<rlgraph_memory::Transition>,
        priorities: Vec<f32>,
        retry: &RetryPolicy,
        sleeper: &ThreadSleeper,
    ) -> bool {
        match self {
            ShardPort::Inline(core, m) => {
                let t0 = Instant::now();
                let mut guard = core.lock();
                guard.insert(transitions, priorities);
                m.fill.set(guard.len() as f64);
                drop(guard);
                m.insert_us.record_duration(t0.elapsed());
                true
            }
            ShardPort::Mailbox(lane) => {
                let mut pending = Some(ShardRequest::Insert { transitions, priorities });
                let submitted = retry.run(sleeper, |_| {
                    let req = pending.take().expect("request in flight");
                    match lane.offer(req) {
                        Ok(None) => Ok(()),
                        Ok(Some(req)) => {
                            pending = Some(req);
                            Err(RlError::MailboxFull { capacity: lane.capacity() })
                        }
                        Err(e) => Err(e),
                    }
                });
                match submitted {
                    Ok(()) => true,
                    Err(RlError::RetriesExhausted { .. }) => {
                        let req = pending.take().expect("request returned by retry");
                        lane.send(req).is_ok()
                    }
                    Err(_) => false, // disconnected: shutting down
                }
            }
        }
    }

    /// Pulls a prioritized batch (bounded wait for mailbox placements).
    pub fn sample(&self, batch: usize, beta: f32, timeout: Duration) -> ShardPull {
        match self {
            ShardPort::Inline(core, m) => {
                let t0 = Instant::now();
                let sampled = core.lock().sample(batch, beta);
                m.sample_us.record_duration(t0.elapsed());
                match sampled {
                    Some(b) => ShardPull::Batch(Box::new(b)),
                    None => ShardPull::NotReady,
                }
            }
            ShardPort::Mailbox(lane) => {
                let (reply_tx, reply_rx) = bounded(1);
                if lane.send(ShardRequest::Sample { batch, beta, reply: reply_tx }).is_err() {
                    return ShardPull::Gone;
                }
                match reply_rx.recv_timeout(timeout) {
                    Ok(Some(b)) => ShardPull::Batch(Box::new(b)),
                    Ok(None) => ShardPull::NotReady,
                    Err(_) => ShardPull::TimedOut,
                }
            }
        }
    }

    /// Pushes updated priorities back (fire-and-forget, as in the
    /// legacy driver).
    pub fn update_priorities(&self, indices: Vec<usize>, priorities: Vec<f32>) {
        match self {
            ShardPort::Inline(core, m) => {
                let t0 = Instant::now();
                core.lock().update_priorities(indices, priorities);
                m.update_us.record_duration(t0.elapsed());
            }
            ShardPort::Mailbox(lane) => {
                let _ = lane.send(ShardRequest::UpdatePriorities { indices, priorities });
            }
        }
    }

    /// Tells a mailbox-placed shard to stop serving (no-op for inline
    /// cores).
    pub fn shutdown(&self) {
        if let ShardPort::Mailbox(lane) = self {
            let _ = lane.send(ShardRequest::Shutdown);
        }
    }
}

/// Runs Ape-X as a fragment graph under the given placement.
///
/// This is the executor behind [`run_apex`](crate::run_apex); the
/// worker and learner bodies are the same algorithm as the legacy
/// driver (same seeds, same epsilon ladder, same fault draws), routed
/// through [`EdgeLane`]s and [`ShardPort`]s instead of hand-woven
/// channels.
///
/// # Errors
///
/// Placement/graph validation errors, build errors, and
/// [`RlError::ActorCrashed`] for replicas that ended fatally or
/// exhausted their restart budget.
pub fn run_apex_fragments<F>(
    config: ApexRunConfig,
    placement: PlacementMap,
    env_factory: F,
) -> RlResult<ApexRunStats>
where
    F: Fn(usize, usize) -> Box<dyn Env> + Send + Sync + 'static,
{
    let start = Instant::now();
    let frames = Arc::new(AtomicU64::new(0));
    let samples = Arc::new(AtomicU64::new(0));
    let rewards: Arc<Mutex<Vec<(f64, f32)>>> = Arc::new(Mutex::new(Vec::new()));
    let env_factory = Arc::new(env_factory);
    let recorder = config.recorder.clone();

    let graph = apex_graph(&config)?;
    let restart_policy = RetryPolicy {
        max_attempts: config.max_worker_restarts,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(50),
        multiplier: 2.0,
        deadline: None,
    };
    let mut exec = FragmentExecutor::new(graph, placement, recorder.clone(), restart_policy)?;

    // Replay fragments, behind placement-transparent ports.
    let ports: Vec<ShardPort> = match exec.placement().of("replay") {
        Placement::ActorThread => {
            let lanes = exec.lanes::<ShardRequest>("rollout", "replay")?;
            let bodies: Vec<_> = lanes.iter().map(|l| l.receiver()).collect();
            let rec = recorder.clone();
            let (capacity, alpha, seed) =
                (config.agent.memory_capacity, config.agent.alpha, config.agent.seed);
            exec.spawn_stage("replay", move |i| {
                let rx = bodies[i].clone();
                let rec = rec.clone();
                move |_stop: &AtomicBool| {
                    // A fresh core per (re)incarnation: a crashed shard
                    // restarts empty, exactly like a restarted process.
                    let core = ShardCore::new(capacity, alpha, seed.wrapping_add(1000 + i as u64));
                    let metrics = ShardServeMetrics::fragment(&rec, "replay");
                    serve_shard(&rx, core, &rec, &metrics);
                    Ok(())
                }
            })?;
            lanes.into_iter().map(ShardPort::Mailbox).collect()
        }
        _ => {
            // In-thread replay: passive cores driven from the learner
            // thread through the same port surface.
            let metrics = Arc::new(ShardServeMetrics::fragment(&recorder, "replay"));
            (0..config.num_shards)
                .map(|i| {
                    let core = ShardCore::new(
                        config.agent.memory_capacity,
                        config.agent.alpha,
                        config.agent.seed.wrapping_add(1000 + i as u64),
                    );
                    ShardPort::Inline(Arc::new(Mutex::new(core)), metrics.clone())
                })
                .collect()
        }
    };

    // Weight broadcast lanes (latest-wins, one per worker).
    let weight_lanes = exec.lanes::<WeightMsg>("broadcast", "rollout")?;

    // Rollout fragments: the legacy worker body over ports and lanes.
    {
        let ports = ports.clone();
        let weight_lanes = weight_lanes.clone();
        let rec = recorder.clone();
        let frames = frames.clone();
        let samples = samples.clone();
        let rewards = rewards.clone();
        let env_factory = env_factory.clone();
        let config = config.clone();
        exec.spawn_stage("rollout", move |w| {
            let ports = ports.clone();
            let wrx = weight_lanes[w].clone();
            let rec = rec.clone();
            let frames = frames.clone();
            let samples = samples.clone();
            let rewards = rewards.clone();
            let env_factory = env_factory.clone();
            let mut worker_cfg = config.agent.clone();
            worker_cfg.memory_capacity = 16; // workers do not learn locally
            worker_cfg.seed = config.agent.seed.wrapping_add(w as u64 * 7919);
            let eps = apex_worker_epsilon(w, config.num_workers);
            worker_cfg.epsilon =
                rlgraph_agents::EpsilonSchedule { start: eps, end: eps, decay_steps: 1 };
            let (task_size, envs_per_worker) = (config.task_size, config.envs_per_worker);
            let fault_plan = config.fault_plan.clone();
            let retry = config.retry.clone();
            let max_tasks = config.max_tasks_per_worker;
            // Task/incarnation counters persist across supervised
            // restarts (the closure is re-invoked, not rebuilt): fault
            // draws never repeat and each reincarnation draws a fresh
            // exploration seed.
            let mut task: u64 = 0;
            let mut incarnation: u64 = 0;
            move |stop: &AtomicBool| {
                let envs =
                    VectorEnv::new((0..envs_per_worker).map(|e| env_factory(w, e)).collect())
                        .map_err(|e| RlError::Core(CoreError::new(e.message())))?;
                let mut cfg = worker_cfg.clone();
                cfg.seed = cfg.seed.wrapping_add(incarnation.wrapping_mul(0x9E37_79B9));
                incarnation += 1;
                let mut worker = ApexWorker::new(cfg, envs)?;
                let sleeper = ThreadSleeper::new();
                let task_us = rec.histogram_aliased("frag.rollout.task_us", &["worker.task_us"]);
                let sync_latency_us = rec.histogram("weight_sync.latency_us");
                let frames_ctr = rec.counter_aliased("frag.rollout.frames", &["worker.frames"]);
                let reward_gauge = rec.gauge("train.episode_reward");
                let crash_ctr = rec.counter("chaos.worker_crashes");
                while !stop.load(Ordering::Relaxed) && max_tasks.map(|k| task < k).unwrap_or(true) {
                    if let Some((sent_us, weights)) = wrx.try_recv() {
                        sync_latency_us.record(rec.now_micros().saturating_sub(sent_us) as f64);
                        worker.agent_mut().set_weights(&weights)?;
                    }
                    if fault_plan.draw(FaultKind::WorkerCrash, w, task) {
                        task += 1;
                        crash_ctr.inc();
                        return Err(RlError::ActorCrashed {
                            actor: format!("frag-rollout-{}", w),
                            reason: "injected fault".into(),
                        });
                    }
                    let t0 = Instant::now();
                    let batch = {
                        let _span = rec.span("worker.collect");
                        worker.collect(task_size)?
                    };
                    task_us.record_duration(t0.elapsed());
                    frames.fetch_add(batch.env_frames, Ordering::Relaxed);
                    frames_ctr.add(batch.env_frames);
                    samples.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    {
                        let now = start.elapsed().as_secs_f64();
                        let mut guard = rewards.lock();
                        for r in &batch.episode_returns {
                            guard.push((now, *r));
                        }
                        if let Some(r) = batch.episode_returns.last() {
                            reward_gauge.set(*r as f64);
                        }
                    }
                    let port = &ports[(task as usize) % ports.len()];
                    if !port.submit(batch.transitions, batch.priorities, &retry, &sleeper) {
                        break; // shards gone: shutting down
                    }
                    task += 1;
                }
                Ok(())
            }
        })?;
    }

    // Learner driver (this thread), with the inline broadcast fragment.
    let deadline = start + config.run_duration;
    let driver_res = exec.run_driver("learn", || {
        let state_space = env_factory(0, 0).state_space();
        let action_space = env_factory(0, 0).action_space();
        let mut learner = DqnAgent::new(config.agent.clone(), &state_space, &action_space)?;
        let sample_wait_us =
            recorder.histogram_aliased("frag.learn.sample_wait_us", &["learner.sample_wait_us"]);
        let step_us = recorder.histogram_aliased("frag.learn.step_us", &["learner.step_us"]);
        let updates_ctr = recorder.counter_aliased("frag.learn.updates", &["learner.updates"]);
        let loss_gauge = recorder.gauge("train.loss");
        let dropped_sync_ctr = recorder.counter("chaos.dropped_syncs");
        let mut losses = Vec::new();
        let mut updates: u64 = 0;
        let mut rr = 0usize;
        while Instant::now() < deadline && config.max_updates.map(|m| updates < m).unwrap_or(true) {
            let port = &ports[rr % ports.len()];
            rr += 1;
            let t_wait = Instant::now();
            let batch = match port.sample(
                config.agent.batch_size,
                config.agent.beta,
                Duration::from_millis(500),
            ) {
                ShardPull::Batch(b) => {
                    sample_wait_us.record_duration(t_wait.elapsed());
                    *b
                }
                ShardPull::NotReady => {
                    sample_wait_us.record_duration(t_wait.elapsed());
                    // shard not filled yet
                    std::thread::yield_now();
                    continue;
                }
                ShardPull::TimedOut => continue,
                ShardPull::Gone => break,
            };
            let [s, a, r, s2, t] = batch.tensors;
            let t_step = Instant::now();
            let (loss, td) = {
                let _span = recorder.span("learner.step");
                learner.update_from_batch([s, a, r, s2, t, batch.weights])?
            };
            step_us.record_duration(t_step.elapsed());
            loss_gauge.set(loss as f64);
            updates_ctr.inc();
            losses.push(loss);
            updates += 1;
            let priorities = td.as_f32().map_err(CoreError::from)?.to_vec();
            ports[(rr - 1) % ports.len()].update_priorities(batch.indices, priorities);
            if updates.is_multiple_of(config.weight_sync_interval) {
                let _span = recorder.span("learner.weight_broadcast");
                let weights = learner.get_weights();
                let sent_us = recorder.now_micros();
                for (w, lane) in weight_lanes.iter().enumerate() {
                    // Injected sync fault: this worker misses the
                    // broadcast and keeps acting on stale weights.
                    if config.fault_plan.draw(FaultKind::DropWeightSync, w, updates) {
                        dropped_sync_ctr.inc();
                        continue;
                    }
                    let _ = lane.offer((sent_us, weights.clone()));
                }
            }
        }
        Ok((updates, losses))
    });

    // Drain any remaining run budget on pure sampling, then stop
    // workers — unless they run to a fixed task budget, in which case
    // raising the stop flag early would truncate them
    // non-deterministically.
    let finite_tasks = config.max_tasks_per_worker.is_some();
    if driver_res.is_ok() && !finite_tasks {
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let rollout_res = exec.join_stage("rollout", !finite_tasks);
    for port in &ports {
        port.shutdown();
    }
    let shutdown_res = exec.shutdown();

    let (updates, losses) = driver_res?;
    rollout_res?;
    shutdown_res?;

    let wall_time = start.elapsed();
    let env_frames = frames.load(Ordering::Relaxed);
    let reward_timeline = std::mem::take(&mut *rewards.lock());
    Ok(ApexRunStats {
        env_frames,
        samples_collected: samples.load(Ordering::Relaxed),
        wall_time,
        frames_per_second: env_frames as f64 / wall_time.as_secs_f64().max(1e-9),
        updates,
        losses,
        reward_timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlgraph_agents::{Backend, DqnConfig};
    use rlgraph_envs::RandomEnv;
    use rlgraph_nn::{Activation, NetworkSpec};

    fn tiny_agent() -> DqnConfig {
        DqnConfig {
            backend: Backend::Static,
            network: NetworkSpec::mlp(&[8], Activation::Tanh),
            memory_capacity: 512,
            batch_size: 8,
            n_step: 2,
            target_sync_every: 50,
            seed: 11,
            ..DqnConfig::default()
        }
    }

    #[test]
    fn apex_graph_declares_the_four_stage_topology() {
        let config = ApexRunConfig {
            agent: tiny_agent(),
            num_workers: 3,
            num_shards: 2,
            ..ApexRunConfig::default()
        };
        let g = apex_graph(&config).unwrap();
        assert_eq!(g.replicas("rollout"), 3);
        assert_eq!(g.replicas("replay"), 2);
        assert_eq!(g.replicas("learn"), 1);
        let edge = g.edge("rollout", "replay").unwrap();
        assert_eq!(edge.capacity, ReplayShard::DEFAULT_MAILBOX_CAPACITY);
        assert_eq!(edge.legacy_alias.as_deref(), Some("shard.mailbox_depth"));
        default_apex_placement().validate(&g, super::super::PlacementCaps::local()).unwrap();
    }

    #[test]
    fn fragment_apex_runs_and_learns() {
        let config = ApexRunConfig {
            agent: tiny_agent(),
            num_workers: 2,
            envs_per_worker: 2,
            task_size: 32,
            num_shards: 2,
            weight_sync_interval: 4,
            run_duration: Duration::from_millis(1200),
            max_updates: Some(20),
            ..ApexRunConfig::default()
        };
        let stats = run_apex_fragments(config, default_apex_placement(), |w, e| {
            Box::new(RandomEnv::new(&[4], 2, 20, (w * 10 + e) as u64))
        })
        .unwrap();
        assert!(stats.env_frames > 0);
        assert!(stats.updates > 0, "learner never updated");
        assert!(stats.losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn inline_replay_placement_runs() {
        let config = ApexRunConfig {
            agent: tiny_agent(),
            num_workers: 1,
            envs_per_worker: 2,
            task_size: 32,
            num_shards: 2,
            weight_sync_interval: 4,
            run_duration: Duration::from_millis(1200),
            max_updates: Some(10),
            ..ApexRunConfig::default()
        };
        let placement = default_apex_placement().place("replay", Placement::InThread);
        let stats = run_apex_fragments(config, placement, |w, e| {
            Box::new(RandomEnv::new(&[4], 2, 20, (w * 10 + e) as u64))
        })
        .unwrap();
        assert!(stats.updates > 0, "learner never updated with inline replay");
    }
}
