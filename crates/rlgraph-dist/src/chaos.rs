//! Deterministic chaos engine: stepped Ape-X under injected faults.
//!
//! The threaded executor ([`crate::ray::run_apex`]) cannot promise
//! bit-identical results under faults — OS scheduling decides which
//! worker wins each mailbox slot. This engine runs the *same* production
//! components (real [`ApexWorker`]s, real [`ShardCore`] replay, a real
//! [`DqnAgent`] learner) on a single-threaded virtual-time scheduler
//! (one tick = one collection/learn round), so a given
//! [`FaultPlan`] seed yields an identical fault schedule, identical
//! recovery actions, and identical post-recovery [`ApexRunStats`] on
//! every run. That determinism is what makes fault-tolerance testable:
//! the chaos bench and the proptest recovery suite both assert exact
//! reproducibility, not statistical similarity.
//!
//! Faults injected per tick, all drawn from the plan's pure hash:
//!
//! * **worker crash** — the worker's agent and env state are lost; the
//!   supervisor model restarts it `worker_restart_delay` ticks later and
//!   re-syncs weights on revival.
//! * **shard stall** — the shard stops serving for `shard_stall_steps`
//!   ticks; inserts fail over along the consistent-hash ring (a stalled
//!   shard's arc spills to its ring successors, see
//!   [`crate::cluster::HashRing`]), the learner's sample retries
//!   (through the real [`RetryPolicy`] against virtual time) or
//!   degrades to the shard quorum.
//! * **learner slowdown** — the learner loses the tick.
//! * **dropped weight sync** — one worker misses a broadcast and keeps
//!   acting on stale weights until `max_weight_lag` forces a pull.

use crate::checkpoint::LearnerCheckpoint;
use crate::cluster::HashRing;
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::fragment::{
    FragmentCounter, ReplicaHealth, RunReport, SteppedExecutor, SteppedStages, TickCtx, TickFlow,
};
use crate::ray::{apex_worker_epsilon, ApexRunStats};
use crate::retry::{RetryPolicy, VirtualSleeper};
use crate::shard::{ReplayShard, ShardCore};
use rlgraph_agents::apex::ApexWorker;
use rlgraph_agents::{DqnAgent, DqnConfig};
use rlgraph_core::{CoreError, RlError, RlResult};
use rlgraph_envs::{Env, VectorEnv};
use rlgraph_obs::{ClockSource, Recorder, VirtualTime};
use rlgraph_spaces::Space;
use rlgraph_tensor::Tensor;
use std::time::Duration;

/// Virtual length of one scheduler tick.
const TICK_US: u64 = 1_000_000;

/// Completed episodes averaged when scoring a checkpoint for
/// best-checkpoint selection.
const CHECKPOINT_SCORE_WINDOW: usize = 20;

/// Configuration of a deterministic chaos run. Construct via
/// [`ChaosApexConfig::builder`]; the engine itself is
/// [`run_apex_chaos`].
#[derive(Debug, Clone)]
pub struct ChaosApexConfig {
    /// learner/worker agent configuration
    pub agent: DqnConfig,
    /// number of (simulated) worker actors
    pub num_workers: usize,
    /// vectorised environments per worker
    pub envs_per_worker: usize,
    /// samples per collection task (one task per worker per tick)
    pub task_size: usize,
    /// replay shards feeding the learner
    pub num_shards: usize,
    /// broadcast weights every k learner updates
    pub weight_sync_interval: u64,
    /// scheduler ticks to run
    pub steps: u64,
    /// the seeded fault schedule
    pub fault_plan: FaultPlan,
    /// minimum healthy shards for the learner to sample (graceful
    /// degradation below `num_shards`, [`RlError::QuorumLost`] below this)
    pub shard_quorum: usize,
    /// take a learner checkpoint every k updates (`None` = never)
    pub checkpoint_every: Option<u64>,
    /// deterministically crash the learner at this tick and restore from
    /// the latest checkpoint (tests checkpoint/restore end to end)
    pub crash_learner_at: Option<u64>,
    /// ticks a crashed worker stays down before its supervised restart
    pub worker_restart_delay: u64,
    /// force a weight pull when a worker falls this many published
    /// versions behind (bounds stale-weight acting)
    pub max_weight_lag: u64,
    /// shards dead for the whole run (quorum-degradation scenarios)
    pub kill_shards: Vec<usize>,
    /// retry policy for the learner's cross-shard sample calls
    pub retry: RetryPolicy,
    /// observability recorder (chaos.* counters)
    pub recorder: Recorder,
}

impl Default for ChaosApexConfig {
    fn default() -> Self {
        ChaosApexConfig {
            agent: DqnConfig::default(),
            num_workers: 2,
            envs_per_worker: 2,
            task_size: 32,
            num_shards: 2,
            weight_sync_interval: 8,
            steps: 50,
            fault_plan: FaultPlan::disabled(),
            shard_quorum: 1,
            checkpoint_every: Some(16),
            crash_learner_at: None,
            worker_restart_delay: 2,
            max_weight_lag: 4,
            kill_shards: Vec::new(),
            retry: RetryPolicy::default(),
            recorder: Recorder::disabled(),
        }
    }
}

impl ChaosApexConfig {
    /// Starts a validating builder seeded with the defaults.
    pub fn builder() -> ChaosApexConfigBuilder {
        ChaosApexConfigBuilder { draft: ChaosApexConfig::default() }
    }
}

/// Validating builder for [`ChaosApexConfig`].
#[derive(Debug, Clone)]
pub struct ChaosApexConfigBuilder {
    draft: ChaosApexConfig,
}

impl ChaosApexConfigBuilder {
    /// Learner/worker agent configuration.
    pub fn agent(mut self, agent: DqnConfig) -> Self {
        self.draft.agent = agent;
        self
    }

    /// Number of worker actors. Deprecated spelling of
    /// [`parallelism`](crate::DriverConfigBuilder::parallelism).
    pub fn num_workers(mut self, n: usize) -> Self {
        self.draft.num_workers = n;
        self
    }

    /// Environments per worker.
    pub fn envs_per_worker(mut self, n: usize) -> Self {
        self.draft.envs_per_worker = n;
        self
    }

    /// Samples per collection task.
    pub fn task_size(mut self, n: usize) -> Self {
        self.draft.task_size = n;
        self
    }

    /// Replay shard count.
    pub fn num_shards(mut self, n: usize) -> Self {
        self.draft.num_shards = n;
        self
    }

    /// Weight broadcast interval (learner updates). Deprecated
    /// spelling of [`sync_every`](crate::DriverConfigBuilder::sync_every).
    pub fn weight_sync_interval(mut self, k: u64) -> Self {
        self.draft.weight_sync_interval = k;
        self
    }

    /// Scheduler ticks to run. Deprecated spelling of
    /// [`budget`](crate::DriverConfigBuilder::budget).
    pub fn steps(mut self, n: u64) -> Self {
        self.draft.steps = n;
        self
    }

    /// The seeded fault schedule.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.draft.fault_plan = plan;
        self
    }

    /// Minimum healthy shards for learner sampling.
    pub fn shard_quorum(mut self, q: usize) -> Self {
        self.draft.shard_quorum = q;
        self
    }

    /// Checkpoint cadence in learner updates (`None` = never).
    pub fn checkpoint_every(mut self, k: Option<u64>) -> Self {
        self.draft.checkpoint_every = k;
        self
    }

    /// Crash the learner at this tick (restore from latest checkpoint).
    pub fn crash_learner_at(mut self, step: Option<u64>) -> Self {
        self.draft.crash_learner_at = step;
        self
    }

    /// Ticks a crashed worker stays down.
    pub fn worker_restart_delay(mut self, ticks: u64) -> Self {
        self.draft.worker_restart_delay = ticks;
        self
    }

    /// Stale-weight bound in published versions.
    pub fn max_weight_lag(mut self, versions: u64) -> Self {
        self.draft.max_weight_lag = versions;
        self
    }

    /// Shards dead for the whole run.
    pub fn kill_shards(mut self, shards: Vec<usize>) -> Self {
        self.draft.kill_shards = shards;
        self
    }

    /// Retry policy for learner sample calls.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.draft.retry = policy;
        self
    }

    /// Observability recorder. Deprecated spelling of
    /// [`observe_with`](crate::DriverConfigBuilder::observe_with).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.draft.recorder = recorder;
        self
    }

    /// Validates range and cross-field invariants and produces the
    /// config.
    ///
    /// # Errors
    ///
    /// [`RlError::Core`] naming the first violated invariant.
    pub fn build(self) -> RlResult<ChaosApexConfig> {
        let c = self.draft;
        let fail = |msg: String| Err(RlError::Core(CoreError::new(msg)));
        if c.num_workers == 0 {
            return fail("chaos config: num_workers must be at least 1".into());
        }
        if c.envs_per_worker == 0 || c.task_size == 0 {
            return fail("chaos config: envs_per_worker and task_size must be positive".into());
        }
        if c.num_shards == 0 {
            return fail("chaos config: num_shards must be at least 1".into());
        }
        if c.shard_quorum == 0 || c.shard_quorum > c.num_shards {
            return fail(format!(
                "chaos config: shard_quorum {} outside 1..={}",
                c.shard_quorum, c.num_shards
            ));
        }
        if c.steps == 0 || c.weight_sync_interval == 0 {
            return fail("chaos config: steps and weight_sync_interval must be positive".into());
        }
        if c.worker_restart_delay == 0 || c.max_weight_lag == 0 {
            return fail(
                "chaos config: worker_restart_delay and max_weight_lag must be positive".into(),
            );
        }
        if let Some(&bad) = c.kill_shards.iter().find(|&&s| s >= c.num_shards) {
            return fail(format!(
                "chaos config: kill_shards index {} outside 0..{}",
                bad, c.num_shards
            ));
        }
        if let Some(step) = c.crash_learner_at {
            if step >= c.steps {
                return fail(format!(
                    "chaos config: crash_learner_at {} beyond step budget {}",
                    step, c.steps
                ));
            }
        }
        Ok(c)
    }
}

/// What actually happened during a chaos run. Derives `PartialEq` so the
/// determinism contract can be asserted exactly: same seed, same report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosReport {
    /// every injected fault, in `(step, kind, target)` order
    pub events: Vec<FaultEvent>,
    /// worker crashes injected
    pub worker_crashes: u64,
    /// supervised worker restarts performed
    pub worker_restarts: u64,
    /// shard stall windows opened
    pub shard_stalls: u64,
    /// learner ticks lost to slowdowns
    pub learner_slowdowns: u64,
    /// weight broadcasts dropped on the way to a worker
    pub dropped_syncs: u64,
    /// stale workers force-pulled at the lag bound
    pub forced_syncs: u64,
    /// worst weight lag (published versions) any worker acted on
    pub max_weight_lag_seen: u64,
    /// ticks degraded below shard quorum (no learner progress)
    pub degraded_steps: u64,
    /// extra learner sample attempts spent in retries
    pub sample_retries: u64,
    /// checkpoints captured
    pub checkpoints: u64,
    /// learner restores from checkpoint
    pub restores: u64,
    /// learner updates performed (mirrored from the run stats so the
    /// report alone satisfies the uniform [`RunReport`] surface)
    pub updates: u64,
    /// virtual time of the run, in µs
    pub virtual_time_us: u64,
    /// recovery latency of every crash/restore, in virtual µs
    pub recovery_latencies_us: Vec<u64>,
    /// learner state at the end of the run, for post-hoc policy
    /// evaluation — recorded episode returns under-report a faulted run
    /// because crashes truncate episodes before they complete
    pub final_checkpoint: Option<LearnerCheckpoint>,
    /// the best checkpoint banked during the run, scored by the mean of
    /// the recent completed-episode returns at capture time — the
    /// artifact a deployment would restore, and the one to evaluate
    pub best_checkpoint: Option<LearnerCheckpoint>,
    /// recorded-return score of [`ChaosReport::best_checkpoint`]
    pub best_checkpoint_return: f64,
}

impl ChaosReport {
    fn percentile(&self, q: f64) -> u64 {
        if self.recovery_latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.recovery_latencies_us.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median recovery latency (virtual µs).
    pub fn recovery_p50_us(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th-percentile recovery latency (virtual µs).
    pub fn recovery_p99_us(&self) -> u64 {
        self.percentile(0.99)
    }
}

impl RunReport for ChaosReport {
    fn updates(&self) -> u64 {
        self.updates
    }

    fn wall_time(&self) -> Duration {
        Duration::from_micros(self.virtual_time_us)
    }

    fn fragment_counters(&self) -> Vec<FragmentCounter> {
        vec![
            FragmentCounter::new("rollout", "crashes", self.worker_crashes as f64),
            FragmentCounter::new("rollout", "restarts", self.worker_restarts as f64),
            FragmentCounter::new("replay", "stalls", self.shard_stalls as f64),
            FragmentCounter::new("learn", "slowdowns", self.learner_slowdowns as f64),
            FragmentCounter::new("learn", "degraded_steps", self.degraded_steps as f64),
            FragmentCounter::new("learn", "sample_retries", self.sample_retries as f64),
            FragmentCounter::new("broadcast", "dropped_syncs", self.dropped_syncs as f64),
            FragmentCounter::new("broadcast", "forced_syncs", self.forced_syncs as f64),
            FragmentCounter::new("eval", "checkpoints", self.checkpoints as f64),
            FragmentCounter::new("eval", "restores", self.restores as f64),
        ]
    }
}

struct WorkerSlot {
    worker: ApexWorker,
    cfg: DqnConfig,
    seen_version: u64,
    /// tick at which a crashed worker comes back, if down
    down_until: Option<u64>,
    task: u64,
}

fn make_worker<F>(
    env_factory: &F,
    envs_per_worker: usize,
    w: usize,
    cfg: &DqnConfig,
) -> RlResult<ApexWorker>
where
    F: Fn(usize, usize) -> Box<dyn Env>,
{
    let envs = VectorEnv::new((0..envs_per_worker).map(|e| env_factory(w, e)).collect())
        .map_err(|e| RlError::Core(CoreError::new(e.message())))?;
    ApexWorker::new(cfg.clone(), envs).map_err(RlError::from)
}

/// The chaos engine as a stepped fragment graph: each [`SteppedStages`]
/// tick is one fragment's turn, and fault injection, checkpointing and
/// quorum degradation live in the fragment they concern (shard stalls
/// in the replay tick, worker crashes in the rollout tick, learner
/// crash/slowdown/quorum in the learn tick, sync drops in the broadcast
/// tick, checkpoint banking in the eval tick).
struct ChaosState<'a, F: Fn(usize, usize) -> Box<dyn Env>> {
    config: &'a ChaosApexConfig,
    env_factory: &'a F,
    recorder: Recorder,
    crash_ctr: rlgraph_obs::AliasedCounter,
    restart_ctr: rlgraph_obs::AliasedCounter,
    stall_ctr: rlgraph_obs::AliasedCounter,
    retry_ctr: rlgraph_obs::AliasedCounter,
    degraded_ctr: rlgraph_obs::AliasedCounter,
    checkpoint_ctr: rlgraph_obs::AliasedCounter,
    restore_ctr: rlgraph_obs::AliasedCounter,
    recovery_us_hist: rlgraph_obs::AliasedHistogram,
    sleeper: VirtualSleeper,
    report: ChaosReport,
    shard_cores: Vec<ShardCore>,
    shards: ReplicaHealth,
    workers: Vec<WorkerSlot>,
    state_space: Space,
    action_space: Space,
    learner: DqnAgent,
    weight_version: u64,
    published: Vec<(String, Tensor)>,
    last_checkpoint: Option<LearnerCheckpoint>,
    env_frames: u64,
    samples_collected: u64,
    updates: u64,
    losses: Vec<f32>,
    reward_timeline: Vec<(f64, f32)>,
    learner_rr: usize,
    /// consistent-hash ring over shard ids: trajectory routing and
    /// failover walk this, so a down shard moves only its own arc
    ring: HashRing,
}

impl<F: Fn(usize, usize) -> Box<dyn Env>> SteppedStages for ChaosState<'_, F> {
    fn replay_tick(&mut self, ctx: &TickCtx<'_>) -> RlResult<()> {
        let step = ctx.step;
        let plan = &self.config.fault_plan;
        for s in 0..self.config.num_shards {
            if self.shards.is_up(s, step) && plan.draw(FaultKind::ShardStall, s, step) {
                self.shards.stall(s, step + plan.shard_stall_steps());
                self.report.shard_stalls += 1;
                self.stall_ctr.inc();
                self.report.events.push(FaultEvent {
                    step,
                    kind: FaultKind::ShardStall,
                    target: s,
                });
            }
        }
        Ok(())
    }

    fn rollout_tick(&mut self, ctx: &TickCtx<'_>) -> RlResult<()> {
        let step = ctx.step;
        let plan = &self.config.fault_plan;
        for (w, slot) in self.workers.iter_mut().enumerate() {
            if let Some(back_at) = slot.down_until {
                if step < back_at {
                    continue; // still down
                }
                // Supervised restart: fresh worker, pulls current weights.
                // The reincarnation gets a new exploration seed — reusing
                // the old one would replay the exact same action stream
                // after every crash, filling the replay shards with
                // duplicated trajectories and freezing learning.
                slot.cfg.seed = slot.cfg.seed.wrapping_add(0x9E37_79B9);
                let cfg = slot.cfg.clone();
                slot.worker = make_worker(self.env_factory, self.config.envs_per_worker, w, &cfg)?;
                slot.worker.agent_mut().set_weights(&self.published)?;
                slot.seen_version = self.weight_version;
                slot.down_until = None;
                self.report.worker_restarts += 1;
                self.restart_ctr.inc();
                let latency = self.config.worker_restart_delay * TICK_US;
                self.report.recovery_latencies_us.push(latency);
                self.recovery_us_hist.record(latency as f64);
            }
            if plan.draw(FaultKind::WorkerCrash, w, step) {
                slot.down_until = Some(step + self.config.worker_restart_delay);
                self.report.worker_crashes += 1;
                self.crash_ctr.inc();
                self.recorder.flight_note(
                    "chaos.worker_crash",
                    format!(
                        "step {}: worker {} down {} ticks",
                        step, w, self.config.worker_restart_delay
                    ),
                );
                self.report.events.push(FaultEvent {
                    step,
                    kind: FaultKind::WorkerCrash,
                    target: w,
                });
                continue; // this tick's task is lost with the crash
            }
            // Bounded staleness: force a pull past the lag limit.
            let lag = self.weight_version - slot.seen_version;
            self.report.max_weight_lag_seen = self.report.max_weight_lag_seen.max(lag);
            if lag > self.config.max_weight_lag {
                slot.worker.agent_mut().set_weights(&self.published)?;
                slot.seen_version = self.weight_version;
                self.report.forced_syncs += 1;
            }
            let batch = slot.worker.collect(self.config.task_size)?;
            self.env_frames += batch.env_frames;
            self.samples_collected += batch.len() as u64;
            let now = Duration::from_micros(ctx.clock.now_micros()).as_secs_f64();
            for r in &batch.episode_returns {
                self.reward_timeline.push((now, *r));
            }
            // Ring-routed insert: the (worker, task) key hashes to a
            // home shard; failover walks the ring's successors, so a
            // stalled shard's keys spill to its neighbours instead of
            // re-dealing every worker's traffic.
            let key = ((w as u64) << 32) | slot.task;
            slot.task += 1;
            let shards = &self.shards;
            if let Some(target) = self.ring.assign_filtered(key, |s| shards.is_up(s as usize, step))
            {
                self.shard_cores[target as usize].insert(batch.transitions, batch.priorities);
            }
            // No shard up at all: the task's experience is lost, which is
            // exactly what happens when every mailbox is unreachable.
        }
        Ok(())
    }

    fn learn_tick(&mut self, ctx: &TickCtx<'_>) -> RlResult<TickFlow> {
        let step = ctx.step;
        let plan = &self.config.fault_plan;

        // -- deterministic learner crash + restore ----------------------
        if self.config.crash_learner_at == Some(step) {
            // The learner crash is the chaos suite's post-mortem moment:
            // dump whatever the flight ring retained to stderr before the
            // restore overwrites state (the report stays dump-free so the
            // same-seed-same-report determinism contract is unaffected).
            self.recorder.flight_note("chaos.learner_crash", format!("step {}: restoring", step));
            if let Some(dump) = self.recorder.flight_render("chaos: learner crash injected") {
                eprintln!("{}", dump);
            }
            self.learner =
                DqnAgent::new(self.config.agent.clone(), &self.state_space, &self.action_space)?;
            if let Some(ckpt) = &self.last_checkpoint {
                ckpt.restore(&mut self.learner)?;
                self.weight_version = ckpt.weight_version;
            } else {
                self.weight_version = 0;
            }
            self.published = self.learner.get_weights();
            self.report.restores += 1;
            self.restore_ctr.inc();
            self.report.recovery_latencies_us.push(TICK_US);
            self.recovery_us_hist.record(TICK_US as f64);
            return Ok(TickFlow::Skip); // the restore costs the tick
        }

        if plan.draw(FaultKind::LearnerSlowdown, 0, step) {
            self.report.learner_slowdowns += 1;
            self.report.events.push(FaultEvent {
                step,
                kind: FaultKind::LearnerSlowdown,
                target: 0,
            });
            return Ok(TickFlow::Skip);
        }
        if self.shards.up_count(step) < self.config.shard_quorum {
            // Graceful degradation: below quorum the learner pauses
            // rather than training on a skewed shard subset.
            self.report.degraded_steps += 1;
            self.degraded_ctr.inc();
            return Ok(TickFlow::Skip);
        }
        let rr = self.learner_rr;
        self.learner_rr += 1;
        let mut attempts_used: u32 = 0;
        // Each sample round keys the ring with a fresh counter; retry
        // attempts walk the key's successor list, so a stalled home
        // shard fails over to its ring neighbour, not a global probe.
        let order = self.ring.successors(rr as u64, self.config.num_shards);
        let (batch_size, beta) = (self.config.agent.batch_size, self.config.agent.beta);
        let shards = &self.shards;
        let shard_cores = &mut self.shard_cores;
        let sampled = self.config.retry.run(&self.sleeper, |attempt| {
            attempts_used = attempt + 1;
            let idx = order[attempt as usize % order.len()] as usize;
            if !shards.is_up(idx, step) {
                return Err(RlError::MailboxFull {
                    capacity: ReplayShard::DEFAULT_MAILBOX_CAPACITY,
                });
            }
            Ok((idx, shard_cores[idx].sample(batch_size, beta)))
        });
        self.report.sample_retries += attempts_used.saturating_sub(1) as u64;
        self.retry_ctr.add(attempts_used.saturating_sub(1) as u64);
        let (shard_idx, batch) = match sampled {
            Ok((idx, Some(batch))) => (idx, batch),
            Ok((_, None)) => {
                // under-filled shard: not a fault, just warm-up
                return Ok(TickFlow::Skip);
            }
            Err(e) if !e.is_fatal() => return Ok(TickFlow::Skip),
            Err(RlError::RetriesExhausted { .. }) => return Ok(TickFlow::Skip),
            Err(e) => return Err(e),
        };
        let [s, a, r, s2, t] = batch.tensors;
        let (loss, td) = self.learner.update_from_batch([s, a, r, s2, t, batch.weights])?;
        self.losses.push(loss);
        self.updates += 1;
        let priorities = td.as_f32().map_err(CoreError::from)?.to_vec();
        self.shard_cores[shard_idx].update_priorities(batch.indices, priorities);
        Ok(TickFlow::Continue)
    }

    fn broadcast_tick(&mut self, ctx: &TickCtx<'_>) -> RlResult<()> {
        let step = ctx.step;
        let plan = &self.config.fault_plan;
        if self.updates.is_multiple_of(self.config.weight_sync_interval) {
            self.weight_version += 1;
            self.published = self.learner.get_weights();
            for (w, slot) in self.workers.iter_mut().enumerate() {
                if slot.down_until.is_some() {
                    continue;
                }
                if plan.draw(FaultKind::DropWeightSync, w, step) {
                    self.report.dropped_syncs += 1;
                    self.report.events.push(FaultEvent {
                        step,
                        kind: FaultKind::DropWeightSync,
                        target: w,
                    });
                    continue;
                }
                slot.worker.agent_mut().set_weights(&self.published)?;
                slot.seen_version = self.weight_version;
            }
        }
        Ok(())
    }

    fn eval_tick(&mut self, _ctx: &TickCtx<'_>) -> RlResult<()> {
        if let Some(every) = self.config.checkpoint_every {
            if self.updates > 0 && self.updates.is_multiple_of(every) {
                let watermarks = self.shard_cores.iter().map(|c| c.watermark()).collect();
                let ckpt =
                    LearnerCheckpoint::capture(&self.learner, self.weight_version, watermarks);
                // Bank the best checkpoint by recent recorded return; a
                // deployment restores its best known-good snapshot, not
                // whatever the learner happened to hold when it stopped.
                let tail = self.reward_timeline.len().saturating_sub(CHECKPOINT_SCORE_WINDOW);
                let recent = &self.reward_timeline[tail..];
                if !recent.is_empty() {
                    let score =
                        recent.iter().map(|(_, r)| *r as f64).sum::<f64>() / recent.len() as f64;
                    if self.report.best_checkpoint.is_none()
                        || score > self.report.best_checkpoint_return
                    {
                        self.report.best_checkpoint_return = score;
                        self.report.best_checkpoint = Some(ckpt.clone());
                    }
                }
                self.last_checkpoint = Some(ckpt);
                self.report.checkpoints += 1;
                self.checkpoint_ctr.inc();
            }
        }
        Ok(())
    }
}

/// Runs Ape-X under the configured fault plan on the deterministic
/// stepped scheduler and reports run statistics plus fault accounting.
///
/// `env_factory(worker, env_index)` builds each environment copy (also
/// re-invoked when a crashed worker restarts).
///
/// # Errors
///
/// Build errors and fatal learner errors; injected faults never error
/// the run — surviving them is the point.
pub fn run_apex_chaos<F>(
    config: ChaosApexConfig,
    env_factory: F,
) -> RlResult<(ApexRunStats, ChaosReport)>
where
    F: Fn(usize, usize) -> Box<dyn Env>,
{
    let exec = SteppedExecutor::new(VirtualTime::new(), TICK_US);
    let sleeper = VirtualSleeper::new(exec.clock().clone());
    let recorder = config.recorder.clone();

    // Shards: real replay cores, per-shard liveness state.
    let shard_cores: Vec<ShardCore> = (0..config.num_shards)
        .map(|i| {
            ShardCore::new(
                config.agent.memory_capacity,
                config.agent.alpha,
                config.agent.seed.wrapping_add(1000 + i as u64),
            )
        })
        .collect();
    let mut shards = ReplicaHealth::new(config.num_shards);
    for &s in &config.kill_shards {
        shards.kill(s);
    }

    // Workers: same construction as the threaded executor.
    let mut workers: Vec<WorkerSlot> = Vec::with_capacity(config.num_workers);
    for w in 0..config.num_workers {
        let mut cfg = config.agent.clone();
        cfg.memory_capacity = 16; // workers do not learn locally
        cfg.seed = config.agent.seed.wrapping_add(w as u64 * 7919);
        let eps = apex_worker_epsilon(w, config.num_workers);
        cfg.epsilon = rlgraph_agents::EpsilonSchedule { start: eps, end: eps, decay_steps: 1 };
        let worker = make_worker(&env_factory, config.envs_per_worker, w, &cfg)?;
        workers.push(WorkerSlot { worker, cfg, seen_version: 0, down_until: None, task: 0 });
    }

    // Learner.
    let state_space = env_factory(0, 0).state_space();
    let action_space = env_factory(0, 0).action_space();
    let learner = DqnAgent::new(config.agent.clone(), &state_space, &action_space)?;
    let published = learner.get_weights();

    let mut state = ChaosState {
        crash_ctr: recorder.counter_aliased("frag.rollout.crashes", &["chaos.worker_crashes"]),
        restart_ctr: recorder.counter_aliased("frag.rollout.restarts", &["chaos.worker_restarts"]),
        stall_ctr: recorder.counter_aliased("frag.replay.stalls", &["chaos.shard_stalls"]),
        retry_ctr: recorder.counter_aliased("frag.learn.sample_retries", &["chaos.sample_retries"]),
        degraded_ctr: recorder
            .counter_aliased("frag.learn.degraded_steps", &["chaos.degraded_steps"]),
        checkpoint_ctr: recorder.counter_aliased("frag.eval.checkpoints", &["chaos.checkpoints"]),
        restore_ctr: recorder.counter_aliased("frag.eval.restores", &["chaos.restores"]),
        recovery_us_hist: recorder
            .histogram_aliased("frag.learn.recovery_us", &["chaos.recovery_us"]),
        config: &config,
        env_factory: &env_factory,
        recorder: recorder.clone(),
        sleeper,
        report: ChaosReport::default(),
        shard_cores,
        shards,
        workers,
        state_space,
        action_space,
        learner,
        weight_version: 0,
        published,
        last_checkpoint: None,
        env_frames: 0,
        samples_collected: 0,
        updates: 0,
        losses: Vec::new(),
        reward_timeline: Vec::new(),
        learner_rr: 0,
        ring: HashRing::with_nodes(config.num_shards as u32),
    };

    exec.run(&mut state, config.steps)?;

    // Final learner snapshot so callers can evaluate the learned policy
    // on clean environments after the run.
    let final_watermarks = state.shard_cores.iter().map(|c| c.watermark()).collect();
    state.report.final_checkpoint =
        Some(LearnerCheckpoint::capture(&state.learner, state.weight_version, final_watermarks));
    state.report.updates = state.updates;
    state.report.virtual_time_us = exec.clock().now_micros();

    let wall_time = Duration::from_micros(exec.clock().now_micros());
    let stats = ApexRunStats {
        env_frames: state.env_frames,
        samples_collected: state.samples_collected,
        wall_time,
        frames_per_second: state.env_frames as f64 / wall_time.as_secs_f64().max(1e-9),
        updates: state.updates,
        losses: state.losses,
        reward_timeline: state.reward_timeline,
    };
    Ok((stats, state.report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlgraph_agents::Backend;
    use rlgraph_envs::RandomEnv;
    use rlgraph_nn::{Activation, NetworkSpec};

    fn tiny_agent(seed: u64) -> DqnConfig {
        DqnConfig {
            backend: Backend::Static,
            network: NetworkSpec::mlp(&[8], Activation::Tanh),
            memory_capacity: 256,
            batch_size: 8,
            n_step: 2,
            target_sync_every: 50,
            seed,
            ..DqnConfig::default()
        }
    }

    fn env_factory(w: usize, e: usize) -> Box<dyn Env> {
        Box::new(RandomEnv::new(&[4], 2, 20, (w * 10 + e) as u64))
    }

    fn chaos_config(seed: u64, steps: u64) -> ChaosApexConfig {
        ChaosApexConfig::builder()
            .agent(tiny_agent(7))
            .num_workers(2)
            .envs_per_worker(2)
            .task_size(24)
            .num_shards(2)
            .steps(steps)
            .weight_sync_interval(4)
            .fault_plan(
                FaultPlan::builder(seed)
                    .worker_crash_rate(0.2)
                    .shard_stall(0.1, 3)
                    .learner_slowdown_rate(0.1)
                    .weight_drop_rate(0.2)
                    .build()
                    .unwrap(),
            )
            .checkpoint_every(Some(8))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_enforces_invariants() {
        assert!(ChaosApexConfig::builder().num_workers(0).build().is_err());
        assert!(ChaosApexConfig::builder().num_shards(2).shard_quorum(3).build().is_err());
        assert!(ChaosApexConfig::builder().num_shards(2).kill_shards(vec![5]).build().is_err());
        assert!(ChaosApexConfig::builder().steps(10).crash_learner_at(Some(12)).build().is_err());
        assert!(ChaosApexConfig::builder().max_weight_lag(0).build().is_err());
        assert!(ChaosApexConfig::builder().build().is_ok());
    }

    #[test]
    fn chaos_run_survives_faults_and_learns() {
        let (stats, report) = run_apex_chaos(chaos_config(42, 30), env_factory).unwrap();
        assert!(stats.updates > 0, "no learner progress under faults");
        assert!(stats.env_frames > 0);
        assert!(stats.losses.iter().all(|l| l.is_finite()));
        assert!(report.worker_crashes > 0, "plan should have injected crashes");
        assert_eq!(
            report.events.iter().filter(|e| e.kind == FaultKind::WorkerCrash).count() as u64,
            report.worker_crashes
        );
        // every completed downtime window produced a supervised restart
        assert!(report.worker_restarts > 0);
        assert!(report.checkpoints > 0);
        assert!(report.recovery_p50_us() >= TICK_US);
        assert!(report.recovery_p99_us() >= report.recovery_p50_us());
    }

    #[test]
    fn same_seed_bit_identical_stats_and_schedule() {
        let (s1, r1) = run_apex_chaos(chaos_config(11, 25), env_factory).unwrap();
        let (s2, r2) = run_apex_chaos(chaos_config(11, 25), env_factory).unwrap();
        assert_eq!(r1, r2, "fault schedule and recovery accounting must be identical");
        assert_eq!(s1.env_frames, s2.env_frames);
        assert_eq!(s1.samples_collected, s2.samples_collected);
        assert_eq!(s1.updates, s2.updates);
        assert_eq!(s1.losses, s2.losses);
        assert_eq!(s1.reward_timeline, s2.reward_timeline);

        let (_, r3) = run_apex_chaos(chaos_config(12, 25), env_factory).unwrap();
        assert_ne!(r1.events, r3.events, "different seed should inject differently");
    }

    #[test]
    fn learner_crash_restores_from_checkpoint() {
        let config = ChaosApexConfig::builder()
            .agent(tiny_agent(3))
            .num_workers(1)
            .envs_per_worker(2)
            .task_size(32)
            .num_shards(1)
            .steps(20)
            .weight_sync_interval(2)
            .checkpoint_every(Some(2))
            .crash_learner_at(Some(12))
            .build()
            .unwrap();
        let (stats, report) = run_apex_chaos(config, env_factory).unwrap();
        assert_eq!(report.restores, 1);
        assert!(report.checkpoints >= 1);
        assert!(stats.updates > 0);
    }

    #[test]
    fn quorum_degradation_with_dead_shard() {
        // 1 of 3 shards permanently dead, quorum 2: learning continues.
        let progressing = ChaosApexConfig::builder()
            .agent(tiny_agent(5))
            .num_workers(1)
            .envs_per_worker(2)
            .task_size(32)
            .num_shards(3)
            .shard_quorum(2)
            .steps(15)
            .kill_shards(vec![1])
            .build()
            .unwrap();
        let (stats, report) = run_apex_chaos(progressing, env_factory).unwrap();
        assert!(stats.updates > 0, "quorum held, learner must progress");
        assert_eq!(report.degraded_steps, 0);

        // 2 of 3 dead, quorum 2: every tick degrades, zero updates.
        let degraded = ChaosApexConfig::builder()
            .agent(tiny_agent(5))
            .num_workers(1)
            .envs_per_worker(2)
            .task_size(32)
            .num_shards(3)
            .shard_quorum(2)
            .steps(10)
            .kill_shards(vec![0, 2])
            .build()
            .unwrap();
        let (stats, report) = run_apex_chaos(degraded, env_factory).unwrap();
        assert_eq!(stats.updates, 0);
        assert_eq!(report.degraded_steps, 10);
    }

    #[test]
    fn ring_failover_is_bit_identical_and_spills_to_successors() {
        // A permanently dead shard exercises the ring failover path on
        // every insert homed there; routing through the ring must keep
        // the same-seed bit-identity contract.
        let cfg = || {
            ChaosApexConfig::builder()
                .agent(tiny_agent(9))
                .num_workers(2)
                .envs_per_worker(2)
                .task_size(24)
                .num_shards(3)
                .shard_quorum(2)
                .steps(20)
                .kill_shards(vec![1])
                .fault_plan(FaultPlan::builder(21).shard_stall(0.15, 2).build().unwrap())
                .build()
                .unwrap()
        };
        let (s1, r1) = run_apex_chaos(cfg(), env_factory).unwrap();
        let (s2, r2) = run_apex_chaos(cfg(), env_factory).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(s1.samples_collected, s2.samples_collected);
        assert_eq!(s1.losses, s2.losses);
        assert!(s1.updates > 0, "ring failover must keep the learner fed");

        // The failover target the engine uses is the ring successor:
        // for keys homed on the dead shard, assign_filtered lands on
        // the next distinct node clockwise, never on a fixed shard.
        let ring = HashRing::with_nodes(3);
        for key in 0..500u64 {
            if ring.assign(key) == Some(1) {
                let spill = ring.assign_filtered(key, |s| s != 1).unwrap();
                assert_eq!(spill, ring.successors(key, 2)[1]);
            }
        }
    }
}
