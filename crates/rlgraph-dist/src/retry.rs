//! Retry-with-exponential-backoff and deadline policies for cross-actor
//! calls (shard sends, weight pulls, rollout hand-off, replica rebuilds).
//!
//! A [`RetryPolicy`] is pure data: a deterministic, jitter-free backoff
//! schedule plus an overall deadline. Executing a policy needs a way to
//! wait, abstracted behind [`Sleep`] so the same policy runs against the
//! wall clock in the threaded executors ([`ThreadSleeper`]) and against
//! virtual time in tests and the deterministic chaos engine
//! ([`VirtualSleeper`]) — identical schedules, zero wall time.

use rlgraph_core::{RlError, RlResult, Severity};
use rlgraph_obs::{ClockSource, VirtualTime};
use std::sync::Arc;
use std::time::Duration;

/// How (and how long) to retry a failed cross-actor call.
///
/// Only failures with [`Severity::Retryable`] are re-issued; `Fatal`
/// errors short-circuit and `Degraded` outcomes are returned to the
/// caller to act on. The backoff schedule is deterministic (no jitter):
/// attempt *k* waits `min(base_delay * multiplier^k, max_delay)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Cap on any single backoff step.
    pub max_delay: Duration,
    /// Geometric growth factor between steps (≥ 1).
    pub multiplier: f64,
    /// Overall budget across all attempts and backoffs; `None` = no
    /// deadline beyond the attempt count.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(100),
            multiplier: 2.0,
            deadline: Some(Duration::from_secs(2)),
        }
    }
}

impl RetryPolicy {
    /// A validating builder (the only way to construct checked policies).
    pub fn builder() -> RetryPolicyBuilder {
        RetryPolicyBuilder::default()
    }

    /// A policy that never retries (single attempt, no deadline).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            multiplier: 1.0,
            deadline: None,
        }
    }

    /// Backoff before retry number `retry` (0-based): the wait after the
    /// first failure is `backoff(0) == base_delay`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = self.multiplier.max(1.0).powi(retry.min(63) as i32);
        let delay = self.base_delay.as_secs_f64() * factor;
        Duration::from_secs_f64(delay.min(self.max_delay.as_secs_f64()))
    }

    /// The full backoff schedule: one entry per possible retry.
    pub fn schedule(&self) -> Vec<Duration> {
        (0..self.max_attempts.saturating_sub(1)).map(|k| self.backoff(k)).collect()
    }

    /// Runs `op` under this policy: re-issues retryable failures after
    /// backing off through `sleeper`, short-circuits fatal ones, and
    /// enforces the overall deadline against `sleeper`'s clock.
    ///
    /// `op` receives the 0-based attempt index.
    ///
    /// # Errors
    ///
    /// The last error wrapped in [`RlError::RetriesExhausted`] once
    /// attempts or the deadline budget run out; fatal errors unchanged.
    pub fn run<T>(
        &self,
        sleeper: &dyn Sleep,
        mut op: impl FnMut(u32) -> RlResult<T>,
    ) -> RlResult<T> {
        let start = sleeper.now();
        let attempts = self.max_attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.severity() == Severity::Retryable => last = Some(e),
                Err(e) => return Err(e),
            }
            if attempt + 1 == attempts {
                break;
            }
            let wait = self.backoff(attempt);
            if let Some(budget) = self.deadline {
                let elapsed = sleeper.now().saturating_sub(start);
                if elapsed + wait >= budget {
                    return Err(RlError::RetriesExhausted {
                        attempts: attempt + 1,
                        last: Box::new(
                            last.take().unwrap_or(RlError::DeadlineExpired {
                                what: "retry budget".into(),
                            }),
                        ),
                    });
                }
            }
            sleeper.sleep(wait);
        }
        Err(RlError::RetriesExhausted {
            attempts,
            last: Box::new(last.unwrap_or(RlError::Exec("retry loop produced no error".into()))),
        })
    }
}

/// Builder with range checks and cross-field invariants.
#[derive(Debug, Clone, Default)]
pub struct RetryPolicyBuilder {
    draft: RetryPolicy,
}

impl RetryPolicyBuilder {
    /// Total attempts including the first.
    pub fn max_attempts(mut self, n: u32) -> Self {
        self.draft.max_attempts = n;
        self
    }

    /// Backoff before the first retry.
    pub fn base_delay(mut self, d: Duration) -> Self {
        self.draft.base_delay = d;
        self
    }

    /// Cap on any single backoff step.
    pub fn max_delay(mut self, d: Duration) -> Self {
        self.draft.max_delay = d;
        self
    }

    /// Geometric growth factor.
    pub fn multiplier(mut self, m: f64) -> Self {
        self.draft.multiplier = m;
        self
    }

    /// Overall budget across attempts and backoffs.
    pub fn deadline(mut self, d: Option<Duration>) -> Self {
        self.draft.deadline = d;
        self
    }

    /// Validates and produces the policy.
    ///
    /// # Errors
    ///
    /// [`RlError::Core`] describing the first violated invariant:
    /// `max_attempts ≥ 1`, `multiplier ≥ 1`, `base_delay ≤ max_delay`,
    /// and `max_delay ≤ deadline` when a deadline is set (a single step
    /// longer than the whole budget can never fire).
    pub fn build(self) -> RlResult<RetryPolicy> {
        let p = self.draft;
        if p.max_attempts == 0 {
            return Err(RlError::Core(rlgraph_core::CoreError::new(
                "retry policy: max_attempts must be at least 1",
            )));
        }
        if p.multiplier.is_nan() || p.multiplier < 1.0 {
            return Err(RlError::Core(rlgraph_core::CoreError::new(format!(
                "retry policy: multiplier {} must be >= 1",
                p.multiplier
            ))));
        }
        if p.base_delay > p.max_delay {
            return Err(RlError::Core(rlgraph_core::CoreError::new(format!(
                "retry policy: base_delay {:?} exceeds max_delay {:?}",
                p.base_delay, p.max_delay
            ))));
        }
        if let Some(budget) = p.deadline {
            if p.max_delay > budget {
                return Err(RlError::Core(rlgraph_core::CoreError::new(format!(
                    "retry policy: max_delay {:?} exceeds deadline {:?}",
                    p.max_delay, budget
                ))));
            }
        }
        Ok(p)
    }
}

/// How a retry loop waits between attempts, and which clock its overall
/// deadline is measured on.
pub trait Sleep: Send + Sync {
    /// Blocks (or advances virtual time) for `d`.
    fn sleep(&self, d: Duration);

    /// Elapsed time on this sleeper's clock since an arbitrary origin.
    fn now(&self) -> Duration;
}

/// Wall-clock sleeper for the threaded executors.
#[derive(Debug)]
pub struct ThreadSleeper {
    origin: std::time::Instant,
}

impl Default for ThreadSleeper {
    fn default() -> Self {
        ThreadSleeper { origin: std::time::Instant::now() }
    }
}

impl ThreadSleeper {
    /// A sleeper whose clock starts now.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sleep for ThreadSleeper {
    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }

    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// Virtual-time sleeper: "sleeping" advances the shared [`VirtualTime`],
/// so backoff/deadline behaviour is exact and instantaneous under test
/// and inside the deterministic chaos engine.
#[derive(Debug, Clone)]
pub struct VirtualSleeper {
    clock: Arc<VirtualTime>,
}

impl VirtualSleeper {
    /// Wraps a shared virtual clock.
    pub fn new(clock: Arc<VirtualTime>) -> Self {
        VirtualSleeper { clock }
    }

    /// The underlying clock.
    pub fn clock(&self) -> &Arc<VirtualTime> {
        &self.clock
    }
}

impl Sleep for VirtualSleeper {
    fn sleep(&self, d: Duration) {
        self.clock.advance_micros(d.as_micros() as u64);
    }

    fn now(&self) -> Duration {
        Duration::from_micros(self.clock.now_micros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn policy(attempts: u32, base_ms: u64, max_ms: u64, deadline_ms: Option<u64>) -> RetryPolicy {
        RetryPolicy::builder()
            .max_attempts(attempts)
            .base_delay(Duration::from_millis(base_ms))
            .max_delay(Duration::from_millis(max_ms))
            .multiplier(2.0)
            .deadline(deadline_ms.map(Duration::from_millis))
            .build()
            .unwrap()
    }

    #[test]
    fn backoff_schedule_is_exact_and_capped() {
        let p = policy(5, 10, 40, None);
        assert_eq!(
            p.schedule(),
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(40),
                Duration::from_millis(40), // capped
            ]
        );
        assert_eq!(RetryPolicy::none().schedule(), Vec::<Duration>::new());
    }

    #[test]
    fn builder_rejects_inconsistent_policies() {
        assert!(RetryPolicy::builder().max_attempts(0).build().is_err());
        assert!(RetryPolicy::builder().multiplier(0.5).build().is_err());
        assert!(RetryPolicy::builder()
            .base_delay(Duration::from_secs(1))
            .max_delay(Duration::from_millis(1))
            .build()
            .is_err());
        // cross-field invariant: max_delay <= deadline
        assert!(RetryPolicy::builder()
            .max_delay(Duration::from_secs(5))
            .deadline(Some(Duration::from_secs(1)))
            .build()
            .is_err());
        assert!(RetryPolicy::builder()
            .max_delay(Duration::from_millis(100))
            .deadline(Some(Duration::from_secs(1)))
            .build()
            .is_ok());
    }

    #[test]
    fn run_retries_until_success_with_virtual_backoff() {
        let clock = VirtualTime::new();
        let sleeper = VirtualSleeper::new(clock.clone());
        let p = policy(5, 10, 40, None);
        let calls = Cell::new(0u32);
        let out = p
            .run(&sleeper, |attempt| {
                calls.set(calls.get() + 1);
                if attempt < 3 {
                    Err(RlError::MailboxFull { capacity: 8 })
                } else {
                    Ok(attempt)
                }
            })
            .unwrap();
        assert_eq!(out, 3);
        assert_eq!(calls.get(), 4);
        // slept exactly 10 + 20 + 40 ms of virtual time, jitter-free
        assert_eq!(clock.now_micros(), 70_000);
    }

    #[test]
    fn fatal_errors_short_circuit() {
        let sleeper = VirtualSleeper::new(VirtualTime::new());
        let p = policy(5, 10, 40, None);
        let calls = Cell::new(0u32);
        let err = p
            .run(&sleeper, |_| -> RlResult<()> {
                calls.set(calls.get() + 1);
                Err(RlError::Shutdown)
            })
            .unwrap_err();
        assert_eq!(err, RlError::Shutdown);
        assert_eq!(calls.get(), 1, "fatal error must not be retried");
    }

    #[test]
    fn exhaustion_wraps_last_error() {
        let sleeper = VirtualSleeper::new(VirtualTime::new());
        let p = policy(3, 1, 4, None);
        let err =
            p.run(&sleeper, |_| -> RlResult<()> { Err(RlError::deadline("pull")) }).unwrap_err();
        match err {
            RlError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(matches!(*last, RlError::DeadlineExpired { .. }));
            }
            other => panic!("expected RetriesExhausted, got {:?}", other),
        }
    }

    #[test]
    fn deadline_bounds_total_retry_time() {
        let clock = VirtualTime::new();
        let sleeper = VirtualSleeper::new(clock.clone());
        // 10ms, 20ms, 40ms, ... backoffs against a 25ms budget: the loop
        // must give up before the second backoff (10 + 20 >= 25).
        let p = policy(10, 10, 20, Some(25));
        let calls = Cell::new(0u32);
        let err = p
            .run(&sleeper, |_| -> RlResult<()> {
                calls.set(calls.get() + 1);
                Err(RlError::MailboxFull { capacity: 1 })
            })
            .unwrap_err();
        assert!(matches!(err, RlError::RetriesExhausted { .. }));
        assert_eq!(calls.get(), 2);
        assert!(clock.now_micros() <= 25_000, "slept past the deadline");
    }

    #[test]
    fn thread_sleeper_tracks_wall_time() {
        let s = ThreadSleeper::new();
        let before = s.now();
        s.sleep(Duration::from_millis(2));
        assert!(s.now() >= before + Duration::from_millis(2));
    }
}
