//! The Ray-style centralized Ape-X executor (paper §5.1, Figs. 6/7).
//!
//! A coordinator spawns worker actors (each: local rlgraph agent + vector
//! of environments + n-step post-processing + worker-side prioritisation),
//! replay-shard actors, and drives the learner loop: pull samples from
//! shards round-robin, update, push priorities back, and broadcast weights
//! on a schedule. Threads + channels stand in for Ray actors + RPC.

use crate::shard::{ReplayShard, ShardRequest};
use crossbeam::channel::{bounded, Sender, TrySendError};
use parking_lot::Mutex;
use rlgraph_agents::apex::ApexWorker;
use rlgraph_agents::{DqnAgent, DqnConfig};
use rlgraph_core::CoreError;
use rlgraph_envs::{Env, VectorEnv};
use rlgraph_obs::Recorder;
use rlgraph_tensor::Tensor;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of an Ape-X run.
#[derive(Debug, Clone)]
pub struct ApexRunConfig {
    /// learner/worker agent configuration
    pub agent: DqnConfig,
    /// number of worker actors
    pub num_workers: usize,
    /// vectorised environments per worker (paper: 4)
    pub envs_per_worker: usize,
    /// samples per collection task (paper Fig. 7a sweeps this)
    pub task_size: usize,
    /// replay shards feeding the learner (paper: 4)
    pub num_shards: usize,
    /// broadcast weights every k learner updates
    pub weight_sync_interval: u64,
    /// stop after this wall-clock duration
    pub run_duration: Duration,
    /// optional hard cap on learner updates
    pub max_updates: Option<u64>,
    /// observability recorder shared by learner, workers and shards
    /// (defaults to the no-op recorder)
    pub recorder: Recorder,
}

impl Default for ApexRunConfig {
    fn default() -> Self {
        ApexRunConfig {
            agent: DqnConfig::default(),
            num_workers: 2,
            envs_per_worker: 4,
            task_size: 64,
            num_shards: 2,
            weight_sync_interval: 16,
            run_duration: Duration::from_secs(5),
            max_updates: None,
            recorder: Recorder::disabled(),
        }
    }
}

/// Aggregate statistics of an Ape-X run.
#[derive(Debug, Clone, Default)]
pub struct ApexRunStats {
    /// environment frames consumed across all workers (incl. frame skip)
    pub env_frames: u64,
    /// post-processed samples shipped to shards
    pub samples_collected: u64,
    /// wall time of the run
    pub wall_time: Duration,
    /// frames per second
    pub frames_per_second: f64,
    /// learner updates performed
    pub updates: u64,
    /// learner losses over time
    pub losses: Vec<f32>,
    /// `(seconds since start, episode return)` for every finished episode
    pub reward_timeline: Vec<(f64, f32)>,
}

impl ApexRunStats {
    /// Mean of the most recent `n` episode returns.
    pub fn mean_recent_return(&self, n: usize) -> Option<f32> {
        if self.reward_timeline.is_empty() {
            return None;
        }
        let tail = &self.reward_timeline[self.reward_timeline.len().saturating_sub(n)..];
        Some(tail.iter().map(|(_, r)| r).sum::<f32>() / tail.len() as f32)
    }
}

/// Per-worker exploration constant, as in the Ape-X paper:
/// `eps_i = 0.4^(1 + 7 i / (n-1))`.
pub fn apex_worker_epsilon(worker: usize, num_workers: usize) -> f32 {
    let alpha = if num_workers <= 1 { 0.0 } else { 7.0 * worker as f32 / (num_workers - 1) as f32 };
    0.4f32.powf(1.0 + alpha)
}

/// Runs distributed prioritized experience replay and returns throughput
/// and learning statistics.
///
/// `env_factory(worker, env_index)` builds each environment copy.
///
/// # Errors
///
/// Propagates build errors; worker errors abort the run.
pub fn run_apex<F>(config: ApexRunConfig, env_factory: F) -> rlgraph_core::Result<ApexRunStats>
where
    F: Fn(usize, usize) -> Box<dyn Env> + Send + Sync + 'static,
{
    let start = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let frames = Arc::new(AtomicU64::new(0));
    let samples = Arc::new(AtomicU64::new(0));
    let rewards: Arc<Mutex<Vec<(f64, f32)>>> = Arc::new(Mutex::new(Vec::new()));
    let env_factory = Arc::new(env_factory);

    let recorder = config.recorder.clone();

    // Replay shards.
    let shards: Vec<ReplayShard> = (0..config.num_shards)
        .map(|i| {
            ReplayShard::spawn_with_recorder(
                format!("replay-shard-{}", i),
                config.agent.memory_capacity,
                config.agent.alpha,
                config.agent.seed.wrapping_add(1000 + i as u64),
                recorder.clone(),
            )
        })
        .collect();
    let shard_senders: Vec<Sender<ShardRequest>> = shards.iter().map(|s| s.sender()).collect();

    // Weight broadcast channels (capacity 1; stale snapshots are dropped).
    let mut weight_txs = Vec::with_capacity(config.num_workers);

    // Workers.
    let mut worker_handles = Vec::with_capacity(config.num_workers);
    for w in 0..config.num_workers {
        // Weight snapshots travel with their send timestamp (recorder
        // clock) so workers can report weight-sync latency.
        let (wtx, wrx) = bounded::<(u64, Vec<(String, Tensor)>)>(1);
        weight_txs.push(wtx);
        let rec = recorder.clone();
        let stop = stop.clone();
        let frames = frames.clone();
        let samples = samples.clone();
        let rewards = rewards.clone();
        let shard_senders = shard_senders.clone();
        let env_factory = env_factory.clone();
        let mut worker_cfg = config.agent.clone();
        worker_cfg.memory_capacity = 16; // workers do not learn locally
        worker_cfg.seed = config.agent.seed.wrapping_add(w as u64 * 7919);
        let eps = apex_worker_epsilon(w, config.num_workers);
        worker_cfg.epsilon =
            rlgraph_agents::EpsilonSchedule { start: eps, end: eps, decay_steps: 1 };
        let (task_size, envs_per_worker) = (config.task_size, config.envs_per_worker);
        let handle = std::thread::Builder::new()
            .name(format!("apex-worker-{}", w))
            .spawn(move || -> rlgraph_core::Result<()> {
                let envs =
                    VectorEnv::new((0..envs_per_worker).map(|e| env_factory(w, e)).collect())
                        .map_err(|e| CoreError::new(e.message()))?;
                let mut worker = ApexWorker::new(worker_cfg, envs)?;
                let task_us = rec.histogram("worker.task_us");
                let sync_latency_us = rec.histogram("weight_sync.latency_us");
                let frames_ctr = rec.counter("worker.frames");
                let reward_gauge = rec.gauge("train.episode_reward");
                let mailbox_full_ctr = rec.counter("shard.mailbox_full");
                let mut task: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    if let Ok((sent_us, weights)) = wrx.try_recv() {
                        sync_latency_us.record(rec.now_micros().saturating_sub(sent_us) as f64);
                        worker.agent_mut().set_weights(&weights)?;
                    }
                    let t0 = Instant::now();
                    let batch = {
                        let _span = rec.span("worker.collect");
                        worker.collect(task_size)?
                    };
                    task_us.record_duration(t0.elapsed());
                    frames.fetch_add(batch.env_frames, Ordering::Relaxed);
                    frames_ctr.add(batch.env_frames);
                    samples.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    {
                        let now = start.elapsed().as_secs_f64();
                        let mut guard = rewards.lock();
                        for r in &batch.episode_returns {
                            guard.push((now, *r));
                        }
                        if let Some(r) = batch.episode_returns.last() {
                            reward_gauge.set(*r as f64);
                        }
                    }
                    let shard = &shard_senders[(task as usize) % shard_senders.len()];
                    // Typed saturation: count Full before falling back to a
                    // blocking send (workers apply Block backpressure rather
                    // than shedding replay data).
                    let insert = ShardRequest::Insert {
                        transitions: batch.transitions,
                        priorities: batch.priorities,
                    };
                    match shard.try_send(insert) {
                        Ok(()) => {}
                        Err(TrySendError::Full(req)) => {
                            mailbox_full_ctr.inc();
                            if shard.send(req).is_err() {
                                break;
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                    task += 1;
                }
                Ok(())
            })
            .expect("spawn worker thread");
        worker_handles.push(handle);
    }

    // Learner loop (this thread).
    let state_space = env_factory(0, 0).state_space();
    let action_space = env_factory(0, 0).action_space();
    let mut learner = DqnAgent::new(config.agent.clone(), &state_space, &action_space)?;
    let sample_wait_us = recorder.histogram("learner.sample_wait_us");
    let step_us = recorder.histogram("learner.step_us");
    let updates_ctr = recorder.counter("learner.updates");
    let loss_gauge = recorder.gauge("train.loss");
    let mut losses = Vec::new();
    let mut updates: u64 = 0;
    let deadline = start + config.run_duration;
    let mut rr = 0usize;
    while Instant::now() < deadline && config.max_updates.map(|m| updates < m).unwrap_or(true) {
        let shard = &shard_senders[rr % shard_senders.len()];
        rr += 1;
        let (reply_tx, reply_rx) = bounded(1);
        if shard
            .send(ShardRequest::Sample {
                batch: config.agent.batch_size,
                beta: config.agent.beta,
                reply: reply_tx,
            })
            .is_err()
        {
            break;
        }
        let t_wait = Instant::now();
        let Ok(reply) = reply_rx.recv_timeout(Duration::from_millis(500)) else { continue };
        sample_wait_us.record_duration(t_wait.elapsed());
        let Some(batch) = reply else {
            // shard not filled yet
            std::thread::yield_now();
            continue;
        };
        let [s, a, r, s2, t] = batch.tensors;
        let t_step = Instant::now();
        let (loss, td) = {
            let _span = recorder.span("learner.step");
            learner.update_from_batch([s, a, r, s2, t, batch.weights])?
        };
        step_us.record_duration(t_step.elapsed());
        loss_gauge.set(loss as f64);
        updates_ctr.inc();
        losses.push(loss);
        updates += 1;
        let priorities = td.as_f32().map_err(CoreError::from)?.to_vec();
        let _ = shard.send(ShardRequest::UpdatePriorities { indices: batch.indices, priorities });
        if updates.is_multiple_of(config.weight_sync_interval) {
            let _span = recorder.span("learner.weight_broadcast");
            let weights = learner.get_weights();
            let sent_us = recorder.now_micros();
            for tx in &weight_txs {
                match tx.try_send((sent_us, weights.clone())) {
                    Ok(()) | Err(TrySendError::Full(_)) => {}
                    Err(TrySendError::Disconnected(_)) => {}
                }
            }
        }
    }

    // Drain any remaining run budget on pure sampling, then stop workers.
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    for h in worker_handles {
        match h.join() {
            Ok(res) => res?,
            Err(_) => return Err(CoreError::new("worker thread panicked")),
        }
    }
    for s in shards {
        s.shutdown();
    }

    let wall_time = start.elapsed();
    let env_frames = frames.load(Ordering::Relaxed);
    let reward_timeline = std::mem::take(&mut *rewards.lock());
    Ok(ApexRunStats {
        env_frames,
        samples_collected: samples.load(Ordering::Relaxed),
        wall_time,
        frames_per_second: env_frames as f64 / wall_time.as_secs_f64().max(1e-9),
        updates,
        losses,
        reward_timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlgraph_agents::Backend;
    use rlgraph_envs::RandomEnv;
    use rlgraph_nn::{Activation, NetworkSpec};

    fn tiny_agent() -> DqnConfig {
        DqnConfig {
            backend: Backend::Static,
            network: NetworkSpec::mlp(&[8], Activation::Tanh),
            memory_capacity: 512,
            batch_size: 8,
            n_step: 2,
            target_sync_every: 50,
            seed: 11,
            ..DqnConfig::default()
        }
    }

    #[test]
    fn epsilon_ladder() {
        assert!((apex_worker_epsilon(0, 8) - 0.4).abs() < 1e-6);
        assert!(apex_worker_epsilon(7, 8) < apex_worker_epsilon(0, 8));
        assert!((apex_worker_epsilon(0, 1) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn full_apex_pipeline_runs_and_learns() {
        let config = ApexRunConfig {
            agent: tiny_agent(),
            num_workers: 2,
            envs_per_worker: 2,
            task_size: 32,
            num_shards: 2,
            weight_sync_interval: 4,
            run_duration: Duration::from_millis(1500),
            max_updates: Some(40),
            ..ApexRunConfig::default()
        };
        let stats =
            run_apex(config, |w, e| Box::new(RandomEnv::new(&[4], 2, 20, (w * 10 + e) as u64)))
                .unwrap();
        assert!(stats.env_frames > 100, "frames: {}", stats.env_frames);
        assert!(stats.samples_collected > 50);
        assert!(stats.updates > 0, "learner never updated");
        assert!(stats.frames_per_second > 0.0);
        assert!(!stats.losses.is_empty());
        assert!(stats.losses.iter().all(|l| l.is_finite()));
        // episodes of length 20 complete during the run
        assert!(stats.mean_recent_return(100).is_some());
    }
}
