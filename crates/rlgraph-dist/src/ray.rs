//! The Ray-style centralized Ape-X executor (paper §5.1, Figs. 6/7).
//!
//! A coordinator spawns worker actors (each: local rlgraph agent + vector
//! of environments + n-step post-processing + worker-side prioritisation),
//! replay-shard actors, and drives the learner loop: pull samples from
//! shards round-robin, update, push priorities back, and broadcast weights
//! on a schedule. Threads + channels stand in for Ray actors + RPC.

use crate::fault::{FaultKind, FaultPlan};
use crate::retry::{RetryPolicy, ThreadSleeper};
use crate::shard::{ReplayShard, ShardRequest};
use crate::supervisor::Supervisor;
use crossbeam::channel::{bounded, Sender, TrySendError};
use parking_lot::Mutex;
use rlgraph_agents::apex::ApexWorker;
use rlgraph_agents::{DqnAgent, DqnConfig};
use rlgraph_core::{CoreError, RlError, RlResult};
use rlgraph_envs::{Env, VectorEnv};
use rlgraph_obs::Recorder;
use rlgraph_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of an Ape-X run.
///
/// Prefer [`ApexRunConfig::builder`], which validates ranges and
/// cross-field invariants before the run starts. Direct struct-literal
/// construction (`ApexRunConfig { .. }`) is kept for backward
/// compatibility but **deprecated in favour of the builder**: literals
/// bypass validation, so an inconsistent config only surfaces mid-run.
#[derive(Debug, Clone)]
pub struct ApexRunConfig {
    /// learner/worker agent configuration
    pub agent: DqnConfig,
    /// number of worker actors
    pub num_workers: usize,
    /// vectorised environments per worker (paper: 4)
    pub envs_per_worker: usize,
    /// samples per collection task (paper Fig. 7a sweeps this)
    pub task_size: usize,
    /// replay shards feeding the learner (paper: 4)
    pub num_shards: usize,
    /// broadcast weights every k learner updates
    pub weight_sync_interval: u64,
    /// stop after this wall-clock duration
    pub run_duration: Duration,
    /// optional hard cap on learner updates
    pub max_updates: Option<u64>,
    /// optional fixed task budget per worker: each worker collects
    /// exactly this many tasks and exits on its own (the run does not
    /// drain the remaining wall budget, and the stop flag is not raised
    /// early). With one worker and no weight syncs this makes the
    /// collected trajectory stream deterministic per seed — the parity
    /// suite relies on it
    pub max_tasks_per_worker: Option<u64>,
    /// observability recorder shared by learner, workers and shards
    /// (defaults to the no-op recorder)
    pub recorder: Recorder,
    /// seeded fault injection (defaults to [`FaultPlan::disabled`]);
    /// active plans crash workers and drop weight broadcasts, exercising
    /// the supervision/retry machinery on the real threaded executor
    pub fault_plan: FaultPlan,
    /// retry policy for worker→shard submissions (backoff on a saturated
    /// mailbox before falling back to a blocking send)
    pub retry: RetryPolicy,
    /// restart budget per supervised worker (body invocations)
    pub max_worker_restarts: u32,
}

impl Default for ApexRunConfig {
    fn default() -> Self {
        ApexRunConfig {
            agent: DqnConfig::default(),
            num_workers: 2,
            envs_per_worker: 4,
            task_size: 64,
            num_shards: 2,
            weight_sync_interval: 16,
            run_duration: Duration::from_secs(5),
            max_updates: None,
            max_tasks_per_worker: None,
            recorder: Recorder::disabled(),
            fault_plan: FaultPlan::disabled(),
            retry: RetryPolicy::default(),
            max_worker_restarts: 16,
        }
    }
}

impl ApexRunConfig {
    /// Starts a validating builder seeded with the defaults.
    pub fn builder() -> ApexRunConfigBuilder {
        ApexRunConfigBuilder { draft: ApexRunConfig::default() }
    }
}

/// Validating builder for [`ApexRunConfig`].
#[derive(Debug, Clone)]
pub struct ApexRunConfigBuilder {
    draft: ApexRunConfig,
}

impl ApexRunConfigBuilder {
    /// Learner/worker agent configuration.
    pub fn agent(mut self, agent: DqnConfig) -> Self {
        self.draft.agent = agent;
        self
    }

    /// Number of worker actors. Deprecated spelling of
    /// [`parallelism`](crate::DriverConfigBuilder::parallelism).
    pub fn num_workers(mut self, n: usize) -> Self {
        self.draft.num_workers = n;
        self
    }

    /// Environments per worker.
    pub fn envs_per_worker(mut self, n: usize) -> Self {
        self.draft.envs_per_worker = n;
        self
    }

    /// Samples per collection task.
    pub fn task_size(mut self, n: usize) -> Self {
        self.draft.task_size = n;
        self
    }

    /// Replay shard count.
    pub fn num_shards(mut self, n: usize) -> Self {
        self.draft.num_shards = n;
        self
    }

    /// Weight broadcast interval in learner updates. Deprecated
    /// spelling of [`sync_every`](crate::DriverConfigBuilder::sync_every).
    pub fn weight_sync_interval(mut self, k: u64) -> Self {
        self.draft.weight_sync_interval = k;
        self
    }

    /// Wall-clock run budget. Deprecated spelling of
    /// [`budget`](crate::DriverConfigBuilder::budget).
    pub fn run_duration(mut self, d: Duration) -> Self {
        self.draft.run_duration = d;
        self
    }

    /// Optional learner update cap. Deprecated spelling of
    /// [`budget`](crate::DriverConfigBuilder::budget).
    pub fn max_updates(mut self, cap: Option<u64>) -> Self {
        self.draft.max_updates = cap;
        self
    }

    /// Optional fixed task budget per worker (see
    /// [`ApexRunConfig::max_tasks_per_worker`]).
    pub fn max_tasks_per_worker(mut self, cap: Option<u64>) -> Self {
        self.draft.max_tasks_per_worker = cap;
        self
    }

    /// Observability recorder. Deprecated spelling of
    /// [`observe_with`](crate::DriverConfigBuilder::observe_with).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.draft.recorder = recorder;
        self
    }

    /// Seeded fault injection plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.draft.fault_plan = plan;
        self
    }

    /// Retry policy for worker→shard submissions.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.draft.retry = policy;
        self
    }

    /// Restart budget per supervised worker.
    pub fn max_worker_restarts(mut self, n: u32) -> Self {
        self.draft.max_worker_restarts = n;
        self
    }

    /// Validates range and cross-field invariants and produces the
    /// config.
    ///
    /// # Errors
    ///
    /// [`RlError::Core`] naming the first violated invariant
    /// (`num_workers/envs_per_worker/task_size/num_shards ≥ 1`,
    /// `weight_sync_interval ≥ 1`, positive `run_duration`, non-zero
    /// `max_updates` cap, `max_worker_restarts ≥ 1`).
    pub fn build(self) -> RlResult<ApexRunConfig> {
        let c = self.draft;
        let fail = |msg: String| Err(RlError::Core(CoreError::new(msg)));
        if c.num_workers == 0 || c.envs_per_worker == 0 {
            return fail("apex config: num_workers and envs_per_worker must be positive".into());
        }
        if c.task_size == 0 || c.num_shards == 0 {
            return fail("apex config: task_size and num_shards must be positive".into());
        }
        if c.weight_sync_interval == 0 {
            return fail("apex config: weight_sync_interval must be positive".into());
        }
        if c.run_duration.is_zero() {
            return fail("apex config: run_duration must be positive".into());
        }
        if c.max_updates == Some(0) {
            return fail("apex config: max_updates cap of 0 would never run".into());
        }
        if c.max_tasks_per_worker == Some(0) {
            return fail("apex config: max_tasks_per_worker cap of 0 would never collect".into());
        }
        if c.max_worker_restarts == 0 {
            return fail("apex config: max_worker_restarts must be at least 1".into());
        }
        Ok(c)
    }
}

/// Aggregate statistics of an Ape-X run.
#[derive(Debug, Clone, Default)]
pub struct ApexRunStats {
    /// environment frames consumed across all workers (incl. frame skip)
    pub env_frames: u64,
    /// post-processed samples shipped to shards
    pub samples_collected: u64,
    /// wall time of the run
    pub wall_time: Duration,
    /// frames per second
    pub frames_per_second: f64,
    /// learner updates performed
    pub updates: u64,
    /// learner losses over time
    pub losses: Vec<f32>,
    /// `(seconds since start, episode return)` for every finished episode
    pub reward_timeline: Vec<(f64, f32)>,
}

impl crate::fragment::RunReport for ApexRunStats {
    fn updates(&self) -> u64 {
        self.updates
    }

    fn wall_time(&self) -> Duration {
        self.wall_time
    }

    fn fragment_counters(&self) -> Vec<crate::fragment::FragmentCounter> {
        vec![
            crate::fragment::FragmentCounter::new("rollout", "env_frames", self.env_frames as f64),
            crate::fragment::FragmentCounter::new(
                "rollout",
                "samples",
                self.samples_collected as f64,
            ),
            crate::fragment::FragmentCounter::new("learn", "updates", self.updates as f64),
        ]
    }
}

impl ApexRunStats {
    /// Mean of the most recent `n` episode returns.
    pub fn mean_recent_return(&self, n: usize) -> Option<f32> {
        if self.reward_timeline.is_empty() {
            return None;
        }
        let tail = &self.reward_timeline[self.reward_timeline.len().saturating_sub(n)..];
        Some(tail.iter().map(|(_, r)| r).sum::<f32>() / tail.len() as f32)
    }
}

/// Per-worker exploration constant, as in the Ape-X paper:
/// `eps_i = 0.4^(1 + 7 i / (n-1))`.
pub fn apex_worker_epsilon(worker: usize, num_workers: usize) -> f32 {
    let alpha = if num_workers <= 1 { 0.0 } else { 7.0 * worker as f32 / (num_workers - 1) as f32 };
    0.4f32.powf(1.0 + alpha)
}

/// Runs distributed prioritized experience replay and returns throughput
/// and learning statistics.
///
/// `env_factory(worker, env_index)` builds each environment copy (also
/// re-invoked when a supervised worker restarts after a crash).
///
/// This is a thin wrapper over the fragment executor: the run is
/// declared as a [fragment graph](crate::fragment::apex_graph) and
/// executed under the
/// [default placement](crate::fragment::default_apex_placement) —
/// rollout and replay on supervised actor threads, learner inline. The
/// hand-woven driver it replaced is kept as [`run_apex_legacy`]; the
/// parity suite holds both to same-seed behavioral equality.
///
/// # Errors
///
/// Propagates build errors; a worker that ends fatally (or exhausts its
/// restart budget) surfaces as [`RlError::ActorCrashed`].
pub fn run_apex<F>(config: ApexRunConfig, env_factory: F) -> RlResult<ApexRunStats>
where
    F: Fn(usize, usize) -> Box<dyn Env> + Send + Sync + 'static,
{
    crate::fragment::run_apex_fragments(
        config,
        crate::fragment::default_apex_placement(),
        env_factory,
    )
}

/// The original hand-woven Ape-X driver (threads and channels wired
/// directly, no fragment layer). Kept as the behavioral reference for
/// the fragment executor's parity suite; prefer [`run_apex`].
///
/// Workers run under a [`Supervisor`]: a panic or an injected crash
/// ([`ApexRunConfig::fault_plan`]) restarts the worker with backoff
/// instead of silently losing its actor for the rest of the run.
/// Worker→shard submissions retry per [`ApexRunConfig::retry`] before
/// falling back to a blocking send.
///
/// # Errors
///
/// Propagates build errors; a worker that ends fatally (or exhausts its
/// restart budget) surfaces as [`RlError::ActorCrashed`].
pub fn run_apex_legacy<F>(config: ApexRunConfig, env_factory: F) -> RlResult<ApexRunStats>
where
    F: Fn(usize, usize) -> Box<dyn Env> + Send + Sync + 'static,
{
    let start = Instant::now();
    let frames = Arc::new(AtomicU64::new(0));
    let samples = Arc::new(AtomicU64::new(0));
    let rewards: Arc<Mutex<Vec<(f64, f32)>>> = Arc::new(Mutex::new(Vec::new()));
    let env_factory = Arc::new(env_factory);

    let recorder = config.recorder.clone();

    // Replay shards.
    let shards: Vec<ReplayShard> = (0..config.num_shards)
        .map(|i| {
            ReplayShard::spawn_with_recorder(
                format!("replay-shard-{}", i),
                config.agent.memory_capacity,
                config.agent.alpha,
                config.agent.seed.wrapping_add(1000 + i as u64),
                recorder.clone(),
            )
        })
        .collect();
    let shard_senders: Vec<Sender<ShardRequest>> = shards.iter().map(|s| s.sender()).collect();

    // Weight broadcast channels (capacity 1; stale snapshots are dropped).
    let mut weight_txs = Vec::with_capacity(config.num_workers);

    // Workers, under one-for-one supervision: crashes (injected or real
    // panics) restart the worker with backoff instead of losing it.
    let mut supervisor = Supervisor::with_recorder(
        RetryPolicy {
            max_attempts: config.max_worker_restarts,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            multiplier: 2.0,
            deadline: None,
        },
        recorder.clone(),
    );
    for w in 0..config.num_workers {
        // Weight snapshots travel with their send timestamp (recorder
        // clock) so workers can report weight-sync latency.
        let (wtx, wrx) = bounded::<(u64, Vec<(String, Tensor)>)>(1);
        weight_txs.push(wtx);
        let rec = recorder.clone();
        let frames = frames.clone();
        let samples = samples.clone();
        let rewards = rewards.clone();
        let shard_senders = shard_senders.clone();
        let env_factory = env_factory.clone();
        let mut worker_cfg = config.agent.clone();
        worker_cfg.memory_capacity = 16; // workers do not learn locally
        worker_cfg.seed = config.agent.seed.wrapping_add(w as u64 * 7919);
        let eps = apex_worker_epsilon(w, config.num_workers);
        worker_cfg.epsilon =
            rlgraph_agents::EpsilonSchedule { start: eps, end: eps, decay_steps: 1 };
        let (task_size, envs_per_worker) = (config.task_size, config.envs_per_worker);
        let fault_plan = config.fault_plan.clone();
        let retry = config.retry.clone();
        let max_tasks = config.max_tasks_per_worker;
        // The body is re-invoked on every supervised restart: envs and
        // the local agent are rebuilt, pending weight snapshots on `wrx`
        // re-sync it, and the task counter keeps advancing so fault draws
        // never repeat. Each reincarnation draws a fresh exploration seed
        // — reusing the old one would replay the same action stream after
        // every crash and fill the shards with duplicated trajectories.
        let mut task: u64 = 0;
        let mut incarnation: u64 = 0;
        supervisor.spawn(&format!("apex-worker-{}", w), move |stop| {
            let envs = VectorEnv::new((0..envs_per_worker).map(|e| env_factory(w, e)).collect())
                .map_err(|e| RlError::Core(CoreError::new(e.message())))?;
            let mut cfg = worker_cfg.clone();
            cfg.seed = cfg.seed.wrapping_add(incarnation.wrapping_mul(0x9E37_79B9));
            incarnation += 1;
            let mut worker = ApexWorker::new(cfg, envs)?;
            let sleeper = ThreadSleeper::new();
            let task_us = rec.histogram("worker.task_us");
            let sync_latency_us = rec.histogram("weight_sync.latency_us");
            let frames_ctr = rec.counter("worker.frames");
            let reward_gauge = rec.gauge("train.episode_reward");
            let mailbox_full_ctr = rec.counter("shard.mailbox_full");
            let crash_ctr = rec.counter("chaos.worker_crashes");
            while !stop.load(Ordering::Relaxed) && max_tasks.map(|k| task < k).unwrap_or(true) {
                if let Ok((sent_us, weights)) = wrx.try_recv() {
                    sync_latency_us.record(rec.now_micros().saturating_sub(sent_us) as f64);
                    worker.agent_mut().set_weights(&weights)?;
                }
                if fault_plan.draw(FaultKind::WorkerCrash, w, task) {
                    task += 1;
                    crash_ctr.inc();
                    return Err(RlError::ActorCrashed {
                        actor: format!("apex-worker-{}", w),
                        reason: "injected fault".into(),
                    });
                }
                let t0 = Instant::now();
                let batch = {
                    let _span = rec.span("worker.collect");
                    worker.collect(task_size)?
                };
                task_us.record_duration(t0.elapsed());
                frames.fetch_add(batch.env_frames, Ordering::Relaxed);
                frames_ctr.add(batch.env_frames);
                samples.fetch_add(batch.len() as u64, Ordering::Relaxed);
                {
                    let now = start.elapsed().as_secs_f64();
                    let mut guard = rewards.lock();
                    for r in &batch.episode_returns {
                        guard.push((now, *r));
                    }
                    if let Some(r) = batch.episode_returns.last() {
                        reward_gauge.set(*r as f64);
                    }
                }
                let shard = &shard_senders[(task as usize) % shard_senders.len()];
                // Typed saturation: retry with backoff on a full mailbox
                // (Block backpressure — replay data is never shed), then
                // fall back to a blocking send if the policy gives up.
                let mut insert = Some(ShardRequest::Insert {
                    transitions: batch.transitions,
                    priorities: batch.priorities,
                });
                let submitted = retry.run(&sleeper, |_| {
                    let req = insert.take().expect("request in flight");
                    match shard.try_send(req) {
                        Ok(()) => Ok(()),
                        Err(TrySendError::Full(req)) => {
                            mailbox_full_ctr.inc();
                            insert = Some(req);
                            Err(RlError::MailboxFull {
                                capacity: ReplayShard::DEFAULT_MAILBOX_CAPACITY,
                            })
                        }
                        Err(TrySendError::Disconnected(req)) => {
                            insert = Some(req);
                            Err(RlError::disconnected("replay shard"))
                        }
                    }
                });
                match submitted {
                    Ok(()) => {}
                    Err(RlError::RetriesExhausted { .. }) => {
                        let req = insert.take().expect("request returned by retry");
                        if shard.send(req).is_err() {
                            break; // shards gone: shutting down
                        }
                    }
                    Err(_) => break, // disconnected: shutting down
                }
                task += 1;
            }
            Ok(())
        });
    }
    let stop = supervisor.stop_flag();

    // Learner loop (this thread).
    let state_space = env_factory(0, 0).state_space();
    let action_space = env_factory(0, 0).action_space();
    let mut learner = DqnAgent::new(config.agent.clone(), &state_space, &action_space)?;
    let sample_wait_us = recorder.histogram("learner.sample_wait_us");
    let step_us = recorder.histogram("learner.step_us");
    let updates_ctr = recorder.counter("learner.updates");
    let loss_gauge = recorder.gauge("train.loss");
    let dropped_sync_ctr = recorder.counter("chaos.dropped_syncs");
    let mut losses = Vec::new();
    let mut updates: u64 = 0;
    let deadline = start + config.run_duration;
    let mut rr = 0usize;
    while Instant::now() < deadline && config.max_updates.map(|m| updates < m).unwrap_or(true) {
        let shard = &shard_senders[rr % shard_senders.len()];
        rr += 1;
        let (reply_tx, reply_rx) = bounded(1);
        if shard
            .send(ShardRequest::Sample {
                batch: config.agent.batch_size,
                beta: config.agent.beta,
                reply: reply_tx,
            })
            .is_err()
        {
            break;
        }
        let t_wait = Instant::now();
        let Ok(reply) = reply_rx.recv_timeout(Duration::from_millis(500)) else { continue };
        sample_wait_us.record_duration(t_wait.elapsed());
        let Some(batch) = reply else {
            // shard not filled yet
            std::thread::yield_now();
            continue;
        };
        let [s, a, r, s2, t] = batch.tensors;
        let t_step = Instant::now();
        let (loss, td) = {
            let _span = recorder.span("learner.step");
            learner.update_from_batch([s, a, r, s2, t, batch.weights])?
        };
        step_us.record_duration(t_step.elapsed());
        loss_gauge.set(loss as f64);
        updates_ctr.inc();
        losses.push(loss);
        updates += 1;
        let priorities = td.as_f32().map_err(CoreError::from)?.to_vec();
        let _ = shard.send(ShardRequest::UpdatePriorities { indices: batch.indices, priorities });
        if updates.is_multiple_of(config.weight_sync_interval) {
            let _span = recorder.span("learner.weight_broadcast");
            let weights = learner.get_weights();
            let sent_us = recorder.now_micros();
            for (w, tx) in weight_txs.iter().enumerate() {
                // Injected sync fault: this worker misses the broadcast
                // and keeps acting on stale weights until the next one.
                if config.fault_plan.draw(FaultKind::DropWeightSync, w, updates) {
                    dropped_sync_ctr.inc();
                    continue;
                }
                match tx.try_send((sent_us, weights.clone())) {
                    Ok(()) | Err(TrySendError::Full(_)) => {}
                    Err(TrySendError::Disconnected(_)) => {}
                }
            }
        }
    }

    // Drain any remaining run budget on pure sampling, then stop workers
    // — unless they run to a fixed task budget, in which case they exit
    // on their own and raising the stop flag early would truncate them
    // non-deterministically.
    if config.max_tasks_per_worker.is_none() {
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
    }
    let report = supervisor.join();
    for s in shards {
        s.shutdown();
    }
    // A worker that died for good (fatal error or exhausted restart
    // budget) fails the run, as the un-supervised executor did — but
    // only after a full supervised recovery attempt.
    for actor in &report.actors {
        match &actor.outcome {
            crate::supervisor::ActorOutcome::Fatal(reason)
            | crate::supervisor::ActorOutcome::GaveUp(reason) => {
                return Err(RlError::ActorCrashed {
                    actor: actor.name.clone(),
                    reason: reason.clone(),
                });
            }
            _ => {}
        }
    }

    let wall_time = start.elapsed();
    let env_frames = frames.load(Ordering::Relaxed);
    let reward_timeline = std::mem::take(&mut *rewards.lock());
    Ok(ApexRunStats {
        env_frames,
        samples_collected: samples.load(Ordering::Relaxed),
        wall_time,
        frames_per_second: env_frames as f64 / wall_time.as_secs_f64().max(1e-9),
        updates,
        losses,
        reward_timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlgraph_agents::Backend;
    use rlgraph_envs::RandomEnv;
    use rlgraph_nn::{Activation, NetworkSpec};

    fn tiny_agent() -> DqnConfig {
        DqnConfig {
            backend: Backend::Static,
            network: NetworkSpec::mlp(&[8], Activation::Tanh),
            memory_capacity: 512,
            batch_size: 8,
            n_step: 2,
            target_sync_every: 50,
            seed: 11,
            ..DqnConfig::default()
        }
    }

    #[test]
    fn builder_validates_and_matches_defaults() {
        let built = ApexRunConfig::builder().build().unwrap();
        let defaults = ApexRunConfig::default();
        assert_eq!(built.num_workers, defaults.num_workers);
        assert_eq!(built.weight_sync_interval, defaults.weight_sync_interval);
        assert!(!built.fault_plan.is_active());

        assert!(ApexRunConfig::builder().num_workers(0).build().is_err());
        assert!(ApexRunConfig::builder().task_size(0).build().is_err());
        assert!(ApexRunConfig::builder().run_duration(Duration::ZERO).build().is_err());
        assert!(ApexRunConfig::builder().max_updates(Some(0)).build().is_err());
        assert!(ApexRunConfig::builder().max_worker_restarts(0).build().is_err());
    }

    #[test]
    fn threaded_apex_survives_injected_worker_crashes() {
        let config = ApexRunConfig::builder()
            .agent(tiny_agent())
            .num_workers(2)
            .envs_per_worker(2)
            .task_size(32)
            .num_shards(2)
            .weight_sync_interval(4)
            .run_duration(Duration::from_millis(1200))
            .max_updates(Some(20))
            .fault_plan(
                crate::fault::FaultPlan::builder(9)
                    .worker_crash_rate(0.3)
                    .weight_drop_rate(0.3)
                    .build()
                    .unwrap(),
            )
            .max_worker_restarts(64)
            .build()
            .unwrap();
        let stats =
            run_apex(config, |w, e| Box::new(RandomEnv::new(&[4], 2, 20, (w * 10 + e) as u64)))
                .unwrap();
        // the run must make progress despite ~30% of tasks crashing workers
        assert!(stats.env_frames > 0);
        assert!(stats.updates > 0, "learner starved by crashes");
    }

    #[test]
    fn epsilon_ladder() {
        assert!((apex_worker_epsilon(0, 8) - 0.4).abs() < 1e-6);
        assert!(apex_worker_epsilon(7, 8) < apex_worker_epsilon(0, 8));
        assert!((apex_worker_epsilon(0, 1) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn full_apex_pipeline_runs_and_learns() {
        let config = ApexRunConfig {
            agent: tiny_agent(),
            num_workers: 2,
            envs_per_worker: 2,
            task_size: 32,
            num_shards: 2,
            weight_sync_interval: 4,
            run_duration: Duration::from_millis(1500),
            max_updates: Some(40),
            ..ApexRunConfig::default()
        };
        let stats =
            run_apex(config, |w, e| Box::new(RandomEnv::new(&[4], 2, 20, (w * 10 + e) as u64)))
                .unwrap();
        assert!(stats.env_frames > 100, "frames: {}", stats.env_frames);
        assert!(stats.samples_collected > 50);
        assert!(stats.updates > 0, "learner never updated");
        assert!(stats.frames_per_second > 0.0);
        assert!(!stats.losses.is_empty());
        assert!(stats.losses.iter().all(|l| l.is_finite()));
        // episodes of length 20 complete during the run
        assert!(stats.mean_recent_return(100).is_some());
    }
}
