//! The unified driver-configuration vocabulary (DESIGN.md §15).
//!
//! The four drivers grew four config surfaces with four spellings of
//! the same knobs (`weight_sync_interval` vs `sync_every`, `run_duration`
//! vs `steps`, `num_workers` vs `num_actors`). This module factors the
//! shared vocabulary into one place:
//!
//! * [`RunBudget`] — how long a run lasts, in whichever unit the driver
//!   meters (wall clock, learner updates, or virtual-time ticks).
//! * [`DriverCommon`] — the read-side view: every driver config can
//!   report its seed, parallelism and cadence uniformly.
//! * [`DriverConfigBuilder`] — the write-side trait: one builder
//!   vocabulary (`parallelism`, `sync_every`, `budget`, `observe_with`,
//!   `try_build`) implemented by [`ApexRunConfigBuilder`],
//!   [`ImpalaDriverConfigBuilder`], [`ChaosApexConfigBuilder`] and
//!   rlgraph-net's `NetApexConfigBuilder`.
//!
//! Old spellings stay available on each concrete builder — they are
//! deprecated vocabulary, not removed API:
//!
//! | deprecated spelling                  | unified spelling          |
//! |--------------------------------------|---------------------------|
//! | `num_workers` / `num_actors`         | [`DriverConfigBuilder::parallelism`] |
//! | `weight_sync_interval`               | [`DriverConfigBuilder::sync_every`]  |
//! | `run_duration` + `max_updates` / `steps` | [`DriverConfigBuilder::budget`]  |
//! | `recorder`                           | [`DriverConfigBuilder::observe_with`] |
//! | `build`                              | [`DriverConfigBuilder::try_build`]   |

use crate::chaos::{ChaosApexConfig, ChaosApexConfigBuilder};
use crate::impala_driver::{ImpalaDriverConfig, ImpalaDriverConfigBuilder};
use crate::ray::{ApexRunConfig, ApexRunConfigBuilder};
use rlgraph_core::RlResult;
use rlgraph_obs::Recorder;
use std::time::Duration;

/// How long a driver run lasts. Each driver meters the unit it can
/// actually enforce and ignores the rest: the threaded drivers honour
/// `wall` and `max_updates`; the virtual-time chaos driver honours
/// `steps`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// stop after this wall-clock duration (threaded drivers)
    pub wall: Option<Duration>,
    /// hard cap on learner updates (threaded drivers)
    pub max_updates: Option<u64>,
    /// virtual-time scheduler ticks (stepped/chaos driver)
    pub steps: Option<u64>,
}

impl RunBudget {
    /// A wall-clock budget.
    pub fn wall(d: Duration) -> Self {
        RunBudget { wall: Some(d), ..RunBudget::default() }
    }

    /// A learner-update budget.
    pub fn updates(n: u64) -> Self {
        RunBudget { max_updates: Some(n), ..RunBudget::default() }
    }

    /// A virtual-time tick budget.
    pub fn steps(n: u64) -> Self {
        RunBudget { steps: Some(n), ..RunBudget::default() }
    }

    /// A wall-clock budget with an update cap on top.
    pub fn wall_or_updates(d: Duration, n: u64) -> Self {
        RunBudget { wall: Some(d), max_updates: Some(n), steps: None }
    }
}

/// The uniform read-side view over a driver config: the knobs every
/// driver shares, whatever its concrete struct spells them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverCommon {
    /// base RNG seed (the agent seed all per-replica seeds derive from)
    pub seed: u64,
    /// rollout parallelism (worker or actor replicas)
    pub parallelism: usize,
    /// vectorised environments per rollout replica
    pub envs_per_replica: usize,
    /// weight-broadcast cadence in learner updates (actor-pull cadence
    /// in rollouts for IMPALA)
    pub sync_every: u64,
    /// the run's budget, in the units the driver meters
    pub budget: RunBudget,
}

/// The uniform write-side vocabulary over driver config builders.
///
/// Spellings the concrete builders keep for compatibility
/// (`num_workers`, `weight_sync_interval`, `run_duration`, …) are
/// deprecated in favour of these; see the module docs for the mapping.
pub trait DriverConfigBuilder: Sized {
    /// The config type this builder produces.
    type Config;

    /// Rollout parallelism (worker/actor replicas).
    fn parallelism(self, n: usize) -> Self;

    /// Weight-sync cadence (broadcast every `k` updates, or pull every
    /// `k` rollouts for IMPALA actors).
    fn sync_every(self, k: u64) -> Self;

    /// The run's budget. Drivers honour the units they meter (see
    /// [`RunBudget`]) and leave the others at their defaults.
    fn budget(self, budget: RunBudget) -> Self;

    /// Observability recorder shared by the run's fragments.
    fn observe_with(self, recorder: Recorder) -> Self;

    /// Validates and builds the config.
    ///
    /// # Errors
    ///
    /// The concrete builder's invariant violations (zero replicas, a
    /// quorum above the shard count, …).
    fn try_build(self) -> RlResult<Self::Config>;
}

impl ApexRunConfig {
    /// The uniform view over this config's shared knobs.
    pub fn common(&self) -> DriverCommon {
        DriverCommon {
            seed: self.agent.seed,
            parallelism: self.num_workers,
            envs_per_replica: self.envs_per_worker,
            sync_every: self.weight_sync_interval,
            budget: RunBudget {
                wall: Some(self.run_duration),
                max_updates: self.max_updates,
                steps: None,
            },
        }
    }
}

impl DriverConfigBuilder for ApexRunConfigBuilder {
    type Config = ApexRunConfig;

    fn parallelism(self, n: usize) -> Self {
        self.num_workers(n)
    }

    fn sync_every(self, k: u64) -> Self {
        self.weight_sync_interval(k)
    }

    fn budget(self, budget: RunBudget) -> Self {
        let b = match budget.wall {
            Some(d) => self.run_duration(d),
            None => self,
        };
        b.max_updates(budget.max_updates)
    }

    fn observe_with(self, recorder: Recorder) -> Self {
        self.recorder(recorder)
    }

    fn try_build(self) -> RlResult<ApexRunConfig> {
        self.build()
    }
}

impl ImpalaDriverConfig {
    /// The uniform view over this config's shared knobs.
    pub fn common(&self) -> DriverCommon {
        DriverCommon {
            seed: self.agent.seed,
            parallelism: self.num_actors,
            envs_per_replica: self.envs_per_actor,
            sync_every: self.weight_sync_interval,
            budget: RunBudget {
                wall: Some(self.run_duration),
                max_updates: self.max_updates,
                steps: None,
            },
        }
    }
}

impl DriverConfigBuilder for ImpalaDriverConfigBuilder {
    type Config = ImpalaDriverConfig;

    fn parallelism(self, n: usize) -> Self {
        self.num_actors(n)
    }

    fn sync_every(self, k: u64) -> Self {
        self.weight_sync_interval(k)
    }

    fn budget(self, budget: RunBudget) -> Self {
        let b = match budget.wall {
            Some(d) => self.run_duration(d),
            None => self,
        };
        b.max_updates(budget.max_updates)
    }

    fn observe_with(self, recorder: Recorder) -> Self {
        self.recorder(recorder)
    }

    fn try_build(self) -> RlResult<ImpalaDriverConfig> {
        self.build()
    }
}

impl ChaosApexConfig {
    /// The uniform view over this config's shared knobs.
    pub fn common(&self) -> DriverCommon {
        DriverCommon {
            seed: self.agent.seed,
            parallelism: self.num_workers,
            envs_per_replica: self.envs_per_worker,
            sync_every: self.weight_sync_interval,
            budget: RunBudget { wall: None, max_updates: None, steps: Some(self.steps) },
        }
    }
}

impl DriverConfigBuilder for ChaosApexConfigBuilder {
    type Config = ChaosApexConfig;

    fn parallelism(self, n: usize) -> Self {
        self.num_workers(n)
    }

    fn sync_every(self, k: u64) -> Self {
        self.weight_sync_interval(k)
    }

    fn budget(self, budget: RunBudget) -> Self {
        match budget.steps {
            Some(n) => self.steps(n),
            None => self,
        }
    }

    fn observe_with(self, recorder: Recorder) -> Self {
        self.recorder(recorder)
    }

    fn try_build(self) -> RlResult<ChaosApexConfig> {
        self.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_vocabulary_configures_all_three_dist_drivers() {
        let apex = ApexRunConfig::builder()
            .parallelism(3)
            .sync_every(7)
            .budget(RunBudget::wall_or_updates(Duration::from_millis(50), 9))
            .try_build()
            .unwrap();
        assert_eq!(apex.num_workers, 3);
        assert_eq!(apex.weight_sync_interval, 7);
        assert_eq!(apex.run_duration, Duration::from_millis(50));
        assert_eq!(apex.max_updates, Some(9));

        let impala = ImpalaDriverConfig::builder()
            .parallelism(2)
            .sync_every(5)
            .budget(RunBudget::updates(4))
            .try_build()
            .unwrap();
        assert_eq!(impala.num_actors, 2);
        assert_eq!(impala.weight_sync_interval, 5);
        assert_eq!(impala.max_updates, Some(4));

        let chaos = ChaosApexConfig::builder()
            .parallelism(2)
            .sync_every(3)
            .budget(RunBudget::steps(12))
            .try_build()
            .unwrap();
        assert_eq!(chaos.num_workers, 2);
        assert_eq!(chaos.weight_sync_interval, 3);
        assert_eq!(chaos.steps, 12);
    }

    #[test]
    fn common_view_reports_the_same_knobs_back() {
        let apex = ApexRunConfig::builder()
            .parallelism(4)
            .sync_every(2)
            .budget(RunBudget::wall(Duration::from_millis(10)))
            .try_build()
            .unwrap();
        let common = apex.common();
        assert_eq!(common.parallelism, 4);
        assert_eq!(common.sync_every, 2);
        assert_eq!(common.budget.wall, Some(Duration::from_millis(10)));
        assert_eq!(common.seed, apex.agent.seed);

        let chaos = ChaosApexConfig::builder().budget(RunBudget::steps(30)).try_build().unwrap();
        assert_eq!(chaos.common().budget, RunBudget::steps(30));
    }

    #[test]
    fn builders_still_validate_through_the_trait() {
        assert!(ApexRunConfig::builder().parallelism(0).try_build().is_err());
        assert!(ImpalaDriverConfig::builder().parallelism(0).try_build().is_err());
        assert!(ChaosApexConfig::builder().parallelism(0).try_build().is_err());
    }
}
