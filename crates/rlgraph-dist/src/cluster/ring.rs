//! Consistent-hash ring with virtual nodes.
//!
//! The ring maps an unbounded key space (trajectory routing keys, shard
//! ownership tokens) onto a small, *changing* set of nodes so that
//! adding or removing one node moves only ~1/N of the keys. Each node
//! contributes `vnodes` points on the ring (its id hashed with a
//! per-replica salt); a key is owned by the first point at or clockwise
//! of the key's own hash. Virtual nodes smooth the load: with V points
//! per node the per-node share concentrates around 1/N with relative
//! spread ~1/sqrt(V).
//!
//! Everything here is deterministic — same nodes, same vnodes, same
//! assignment on every host and every run — which is what lets
//! `chaos.rs` keep its same-seed bit-identity contract while routing
//! failover through the ring.

/// A consistent-hash ring over `u32` node ids.
///
/// Construction sorts the point list once; lookups are a binary search.
/// The ring is cheap to rebuild (the dynamic-membership path rebuilds on
/// join/leave) and cheap to clone.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// sorted (point, node) pairs; ties broken by node id for
    /// determinism across insertion orders
    points: Vec<(u64, u32)>,
    /// distinct nodes currently on the ring
    nodes: Vec<u32>,
    /// virtual nodes per node
    vnodes: u32,
}

/// Default virtual-node count: enough to keep worst/mean load under
/// ~1.35 for small clusters without making rebuilds noticeable.
pub const DEFAULT_VNODES: u32 = 64;

impl HashRing {
    /// Builds a ring from node ids with `vnodes` points per node.
    /// Duplicate ids are collapsed; `vnodes` is clamped to at least 1.
    pub fn new(node_ids: &[u32], vnodes: u32) -> Self {
        let mut nodes: Vec<u32> = node_ids.to_vec();
        nodes.sort_unstable();
        nodes.dedup();
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(nodes.len() * vnodes as usize);
        for &n in &nodes {
            for v in 0..vnodes {
                points.push((Self::point(n, v), n));
            }
        }
        points.sort_unstable();
        HashRing { points, nodes, vnodes }
    }

    /// Builds a ring over nodes `0..n` with [`DEFAULT_VNODES`].
    pub fn with_nodes(n: u32) -> Self {
        let ids: Vec<u32> = (0..n).collect();
        Self::new(&ids, DEFAULT_VNODES)
    }

    fn point(node: u32, vnode: u32) -> u64 {
        // Salt separates replica points of one node; mixing twice keeps
        // node id and replica index from interacting linearly.
        splitmix64(splitmix64(node as u64 ^ 0xC1A0_5EED).wrapping_add(vnode as u64))
    }

    /// Hashes an arbitrary key onto the ring's coordinate space.
    pub fn hash_key(key: u64) -> u64 {
        splitmix64(key ^ 0x7A31_C0DE)
    }

    /// Nodes currently on the ring, ascending.
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// Number of distinct nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are on the ring.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Virtual nodes per node.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Returns a ring with `node` added (no-op if already present).
    pub fn with_node(&self, node: u32) -> Self {
        let mut ids = self.nodes.clone();
        ids.push(node);
        Self::new(&ids, self.vnodes)
    }

    /// Returns a ring with `node` removed (no-op if absent).
    pub fn without_node(&self, node: u32) -> Self {
        let ids: Vec<u32> = self.nodes.iter().copied().filter(|&n| n != node).collect();
        Self::new(&ids, self.vnodes)
    }

    /// The node owning `key`: the first ring point clockwise of the
    /// key's hash. `None` on an empty ring.
    pub fn assign(&self, key: u64) -> Option<u32> {
        let h = Self::hash_key(key);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        self.points.get(idx).or_else(|| self.points.first()).map(|&(_, n)| n)
    }

    /// The owner of `key` among nodes satisfying `up`, walking
    /// clockwise past filtered-out owners. This is the failover path:
    /// when the home node is down, keys spill to the *next distinct
    /// node on the ring*, not to a global round-robin target, so only
    /// the dead node's arc moves. `None` when no passing node exists.
    pub fn assign_filtered(&self, key: u64, mut up: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let h = Self::hash_key(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        // Walk at most once around; track distinct nodes tried so a
        // ring of V points per node terminates after N node checks.
        let mut tried: Vec<u32> = Vec::with_capacity(4);
        for i in 0..self.points.len() {
            let (_, n) = self.points[(start + i) % self.points.len()];
            if tried.contains(&n) {
                continue;
            }
            if up(n) {
                return Some(n);
            }
            tried.push(n);
            if tried.len() == self.nodes.len() {
                break;
            }
        }
        None
    }

    /// The first `count` *distinct* nodes clockwise from `key`'s hash —
    /// the owner followed by its failover successors in order.
    pub fn successors(&self, key: u64, count: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(count.min(self.nodes.len()));
        if self.points.is_empty() || count == 0 {
            return out;
        }
        let h = Self::hash_key(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        for i in 0..self.points.len() {
            let (_, n) = self.points[(start + i) % self.points.len()];
            if !out.contains(&n) {
                out.push(n);
                if out.len() == count || out.len() == self.nodes.len() {
                    break;
                }
            }
        }
        out
    }
}

/// SplitMix64 finalizer — same mixer as `fault.rs`, reproduced here so
/// the ring stays dependency-free within the crate.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_assigns_nothing() {
        let r = HashRing::new(&[], 64);
        assert!(r.is_empty());
        assert_eq!(r.assign(42), None);
        assert_eq!(r.assign_filtered(42, |_| true), None);
        assert!(r.successors(42, 3).is_empty());
    }

    #[test]
    fn single_node_owns_everything() {
        let r = HashRing::new(&[7], 64);
        for k in 0..100 {
            assert_eq!(r.assign(k), Some(7));
        }
    }

    #[test]
    fn assignment_is_deterministic_across_insertion_order() {
        let a = HashRing::new(&[3, 1, 2], 32);
        let b = HashRing::new(&[2, 3, 1], 32);
        for k in 0..1000 {
            assert_eq!(a.assign(k), b.assign(k));
        }
    }

    #[test]
    fn filtered_assignment_skips_down_nodes() {
        let r = HashRing::new(&[0, 1, 2], 64);
        for k in 0..200 {
            let home = r.assign(k).unwrap();
            let alt = r.assign_filtered(k, |n| n != home).unwrap();
            assert_ne!(alt, home);
            // The failover target is the next distinct successor.
            let succ = r.successors(k, 2);
            assert_eq!(succ[0], home);
            assert_eq!(succ[1], alt);
        }
        assert_eq!(r.assign_filtered(5, |_| false), None);
    }

    #[test]
    fn join_moves_roughly_one_over_n() {
        let before = HashRing::with_nodes(4);
        let after = before.with_node(4);
        let keys: u64 = 8000;
        let moved = (0..keys).filter(|&k| before.assign(k) != after.assign(k)).count() as f64;
        let frac = moved / keys as f64;
        // Ideal is 1/5 = 0.20; allow generous slack for vnode variance.
        assert!(frac > 0.08 && frac < 0.35, "moved fraction {}", frac);
        // Every moved key must have moved *to* the new node.
        for k in 0..keys {
            if before.assign(k) != after.assign(k) {
                assert_eq!(after.assign(k), Some(4));
            }
        }
    }

    #[test]
    fn load_is_balanced_within_bound() {
        let n = 8u32;
        let r = HashRing::with_nodes(n);
        let keys = 64_000u64;
        let mut counts = vec![0usize; n as usize];
        for k in 0..keys {
            counts[r.assign(k).unwrap() as usize] += 1;
        }
        let mean = keys as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / mean;
            assert!((0.5..=1.6).contains(&ratio), "node {} share ratio {}", i, ratio);
        }
    }
}
