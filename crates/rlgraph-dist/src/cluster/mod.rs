//! Elastic cluster membership (DESIGN.md §16).
//!
//! Three pieces, deliberately decoupled so each is testable alone:
//!
//! - [`MembershipTable`] — coordinator-owned roster with epochs,
//!   per-member incarnations, and heartbeat-driven liveness. Liveness
//!   piggybacks on the existing `CoordService` heartbeat path: joining,
//!   beating, and leaving cost zero additional RTTs.
//! - [`HashRing`] — consistent hashing with virtual nodes for replay
//!   shard ownership and trajectory routing. Adding or removing a
//!   shard moves ~1/N of the key space; failover walks ring
//!   successors, so a dead shard's arc spills to its neighbours
//!   instead of re-dealing every key.
//! - [`Autoscaler`] — a pure policy over `rlgraph-obs` signals
//!   (replay mailbox depth, learner starvation, heartbeat RTT) that
//!   decides when to spawn or retire workers; the elastic fragment
//!   stage and `run_apex_net` carry out the decision.

pub mod autoscaler;
pub mod membership;
pub mod ring;

pub use autoscaler::{Autoscaler, AutoscalerConfig, ScaleDecision, ScaleSignals};
pub use membership::{Member, MemberState, MembershipTable, MembershipView};
pub use ring::{HashRing, DEFAULT_VNODES};
