//! Coordinator-owned membership table: who is in the cluster, at what
//! incarnation, and when we last heard from them.
//!
//! The table is epoch-versioned: every mutation (join, leave, eviction)
//! bumps `epoch`, so a client holding a [`MembershipView`] can cheaply
//! ask "did anything change since epoch E?". Liveness is heartbeat
//! driven and piggybacked: the table never initiates traffic, it is
//! told about beats by the coordinator's existing heartbeat handler and
//! swept for missed-beat timeouts on the coordinator's own cadence.
//!
//! Incarnations (generations) make restarts unambiguous: a member that
//! crashed and rejoined presents a *higher* generation; any beat
//! carrying a generation **lower** than the table's is a zombie from a
//! previous life and is rejected with the typed
//! [`RlError::StaleGeneration`] so the stale process kills itself
//! instead of corrupting liveness accounting for its successor.
//!
//! Time is caller-supplied microseconds — the table never reads a
//! clock — so tests drive it with virtual time.

use rlgraph_core::{RlError, RlResult};

/// Lifecycle state of one member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// joined and beating within the timeout
    Alive,
    /// announced a clean departure
    Left,
    /// evicted after missing beats for longer than the timeout
    Evicted,
}

/// One row of the membership table.
#[derive(Debug, Clone)]
pub struct Member {
    /// member id (worker index)
    pub id: u32,
    /// incarnation; a rejoin after crash/evict presents a higher one
    pub generation: u64,
    /// lifecycle state
    pub state: MemberState,
    /// caller-clock time of the last accepted beat (or the join)
    pub last_beat_us: u64,
    /// accepted beats since join
    pub beats: u64,
}

/// An immutable snapshot of the table, cheap to ship over RPC.
#[derive(Debug, Clone, Default)]
pub struct MembershipView {
    /// table epoch at snapshot time
    pub epoch: u64,
    /// ids of currently-alive members, ascending
    pub alive: Vec<u32>,
    /// (id, generation) for every alive member, ascending by id
    pub generations: Vec<(u32, u64)>,
}

/// The coordinator-owned membership table. Single-writer by design:
/// the coordinator wraps it in its own lock.
#[derive(Debug)]
pub struct MembershipTable {
    members: Vec<Member>,
    epoch: u64,
    /// beat-silence threshold before eviction, in caller microseconds
    timeout_us: u64,
    evictions: u64,
}

impl MembershipTable {
    /// Creates an empty table evicting members silent for `timeout_us`.
    pub fn new(timeout_us: u64) -> Self {
        MembershipTable { members: Vec::new(), epoch: 0, timeout_us, evictions: 0 }
    }

    /// Current epoch; bumped by every join, leave, and eviction.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Missed-beat timeout in microseconds.
    pub fn timeout_us(&self) -> u64 {
        self.timeout_us
    }

    fn row(&self, id: u32) -> Option<&Member> {
        self.members.iter().find(|m| m.id == id)
    }

    fn row_mut(&mut self, id: u32) -> Option<&mut Member> {
        self.members.iter_mut().find(|m| m.id == id)
    }

    /// Looks up a member row.
    pub fn member(&self, id: u32) -> Option<&Member> {
        self.row(id)
    }

    /// Count of alive members.
    pub fn alive_count(&self) -> usize {
        self.members.iter().filter(|m| m.state == MemberState::Alive).count()
    }

    /// Admits (or re-admits) a member at `generation`.
    ///
    /// A join with a generation **at or above** the table's replaces the
    /// row — that is exactly the restart path, where the supervisor
    /// bumps the generation before respawning. A join *below* the held
    /// generation is a zombie and is rejected.
    ///
    /// # Errors
    ///
    /// [`RlError::StaleGeneration`] when `generation` is lower than the
    /// table's for this id.
    pub fn join(&mut self, id: u32, generation: u64, now_us: u64) -> RlResult<u64> {
        if let Some(m) = self.row_mut(id) {
            if generation < m.generation {
                return Err(RlError::StaleGeneration {
                    member: id,
                    held: m.generation,
                    presented: generation,
                });
            }
            m.generation = generation;
            m.state = MemberState::Alive;
            m.last_beat_us = now_us;
            m.beats = 0;
        } else {
            self.members.push(Member {
                id,
                generation,
                state: MemberState::Alive,
                last_beat_us: now_us,
                beats: 0,
            });
            self.members.sort_by_key(|m| m.id);
        }
        self.epoch += 1;
        Ok(self.epoch)
    }

    /// Records an accepted heartbeat from `id` at `generation`.
    ///
    /// A beat from an unknown id is an implicit join (the coordinator
    /// may restart and lose its table; workers keep beating). A beat at
    /// a *higher* generation than held is likewise treated as the
    /// restarted worker's implicit rejoin.
    ///
    /// # Errors
    ///
    /// [`RlError::StaleGeneration`] when the beat's generation is lower
    /// than the table's — the caller should surface this to the sender,
    /// which must exit.
    pub fn beat(&mut self, id: u32, generation: u64, now_us: u64) -> RlResult<()> {
        match self.row_mut(id) {
            Some(m) => {
                if generation < m.generation {
                    return Err(RlError::StaleGeneration {
                        member: id,
                        held: m.generation,
                        presented: generation,
                    });
                }
                if generation > m.generation || m.state != MemberState::Alive {
                    // Rejoin via beat: epoch must move so ring-watchers
                    // re-read the view.
                    m.generation = generation;
                    m.state = MemberState::Alive;
                    self.epoch += 1;
                }
                let m = self.row_mut(id).expect("row exists");
                m.last_beat_us = now_us;
                m.beats += 1;
                Ok(())
            }
            None => {
                self.join(id, generation, now_us)?;
                Ok(())
            }
        }
    }

    /// Records a clean departure. Unknown ids are ignored (a leave
    /// racing an eviction is not an error).
    pub fn leave(&mut self, id: u32, now_us: u64) {
        if let Some(m) = self.row_mut(id) {
            if m.state == MemberState::Alive {
                m.state = MemberState::Left;
                m.last_beat_us = now_us;
                self.epoch += 1;
            }
        }
    }

    /// Evicts every alive member silent for longer than the timeout.
    /// Returns the evicted ids (empty when nothing changed).
    pub fn sweep(&mut self, now_us: u64) -> Vec<u32> {
        let timeout = self.timeout_us;
        let mut evicted = Vec::new();
        for m in &mut self.members {
            if m.state == MemberState::Alive && now_us.saturating_sub(m.last_beat_us) > timeout {
                m.state = MemberState::Evicted;
                evicted.push(m.id);
            }
        }
        if !evicted.is_empty() {
            self.epoch += 1;
            self.evictions += evicted.len() as u64;
        }
        evicted
    }

    /// Snapshots the table for shipping to clients.
    pub fn view(&self) -> MembershipView {
        let alive: Vec<u32> =
            self.members.iter().filter(|m| m.state == MemberState::Alive).map(|m| m.id).collect();
        let generations = self
            .members
            .iter()
            .filter(|m| m.state == MemberState::Alive)
            .map(|m| (m.id, m.generation))
            .collect();
        MembershipView { epoch: self.epoch, alive, generations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_beat_leave_lifecycle() {
        let mut t = MembershipTable::new(1_000);
        t.join(0, 1, 0).unwrap();
        t.join(1, 1, 0).unwrap();
        assert_eq!(t.alive_count(), 2);
        let e = t.epoch();
        t.beat(0, 1, 500).unwrap();
        assert_eq!(t.epoch(), e, "a routine beat must not move the epoch");
        t.leave(1, 600);
        assert_eq!(t.alive_count(), 1);
        assert!(t.epoch() > e);
        assert_eq!(t.member(1).unwrap().state, MemberState::Left);
    }

    #[test]
    fn sweep_evicts_silent_members_only() {
        let mut t = MembershipTable::new(1_000);
        t.join(0, 1, 0).unwrap();
        t.join(1, 1, 0).unwrap();
        t.beat(0, 1, 900).unwrap();
        // At t=1500: member 1 has been silent 1500us > 1000us timeout,
        // member 0 only 600us.
        let evicted = t.sweep(1_500);
        assert_eq!(evicted, vec![1]);
        assert_eq!(t.evictions(), 1);
        assert_eq!(t.member(1).unwrap().state, MemberState::Evicted);
        assert_eq!(t.view().alive, vec![0]);
        // Idempotent: a second sweep finds nothing new.
        assert!(t.sweep(1_600).is_empty());
    }

    #[test]
    fn stale_generation_rejected_rejoin_accepted() {
        let mut t = MembershipTable::new(1_000);
        t.join(3, 2, 0).unwrap();
        // Zombie from generation 1 beats: typed rejection.
        let err = t.beat(3, 1, 100).unwrap_err();
        match err {
            RlError::StaleGeneration { member, held, presented } => {
                assert_eq!((member, held, presented), (3, 2, 1));
            }
            other => panic!("expected StaleGeneration, got {:?}", other),
        }
        // Evict, then a rejoin at a bumped generation is accepted.
        t.sweep(5_000);
        assert_eq!(t.member(3).unwrap().state, MemberState::Evicted);
        t.join(3, 3, 5_100).unwrap();
        assert_eq!(t.member(3).unwrap().state, MemberState::Alive);
        // And the old generation is now doubly dead.
        assert!(t.beat(3, 2, 5_200).is_err());
        // Stale join is rejected too.
        assert!(t.join(3, 1, 5_300).is_err());
    }

    #[test]
    fn beat_from_unknown_member_is_implicit_join() {
        let mut t = MembershipTable::new(1_000);
        t.beat(9, 4, 10).unwrap();
        assert_eq!(t.alive_count(), 1);
        assert_eq!(t.member(9).unwrap().generation, 4);
    }

    #[test]
    fn beat_at_higher_generation_rejoins_and_bumps_epoch() {
        let mut t = MembershipTable::new(1_000);
        t.join(2, 1, 0).unwrap();
        t.sweep(10_000);
        assert_eq!(t.alive_count(), 0);
        let e = t.epoch();
        t.beat(2, 2, 10_100).unwrap();
        assert!(t.epoch() > e);
        assert_eq!(t.member(2).unwrap().state, MemberState::Alive);
    }
}
