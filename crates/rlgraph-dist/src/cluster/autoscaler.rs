//! Signal-driven autoscaler policy.
//!
//! The policy is a pure function from observed cluster signals to a
//! [`ScaleDecision`]; it owns no threads, spawns nothing, and reads no
//! clocks — the coordinator feeds it signals on its own cadence and
//! acts on the decision through the elastic-stage machinery. That keeps
//! the policy unit-testable with plain numbers and the side effects
//! (process spawn/retire) in exactly one place.
//!
//! Inputs are the three signals named in DESIGN.md §16:
//!
//! - **replay mailbox depth** (`frag.replay.mailbox_depth`): inserts
//!   queued at the shards. Persistently deep mailboxes mean workers
//!   outrun replay — more workers will not help, and retiring some
//!   frees the shards.
//! - **learner starvation**: fraction of learner iterations that found
//!   no fresh data. A starving learner means collection is the
//!   bottleneck — scale workers up.
//! - **heartbeat RTT**: coordinator-observed round-trip. RTT blowing
//!   past its baseline means the coordinator or network is saturated;
//!   the policy holds rather than piling on.
//!
//! Decisions are bounded by `min_workers..=max_workers` and rate-limited
//! by a cooldown measured in observation ticks, so one noisy window
//! cannot flap the fleet.

/// Observed signals for one autoscaler tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScaleSignals {
    /// mean replay-shard mailbox depth (queued inserts)
    pub replay_mailbox_depth: f64,
    /// fraction of recent learner iterations that starved (0..=1)
    pub learner_starvation: f64,
    /// mean heartbeat RTT in microseconds
    pub heartbeat_rtt_us: f64,
    /// alive workers right now
    pub alive_workers: usize,
}

/// What the policy wants done this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// leave the fleet alone
    Hold,
    /// spawn this many additional workers
    Up(usize),
    /// retire this many workers
    Down(usize),
}

/// Tunable thresholds for [`Autoscaler`].
#[derive(Debug, Clone)]
pub struct AutoscalerConfig {
    /// never retire below this many workers
    pub min_workers: usize,
    /// never spawn above this many workers
    pub max_workers: usize,
    /// starvation fraction above which the learner is data-bound
    pub starvation_high: f64,
    /// starvation fraction below which collection is comfortably ahead
    pub starvation_low: f64,
    /// mailbox depth above which replay is the bottleneck
    pub mailbox_high: f64,
    /// heartbeat RTT (µs) above which the policy refuses to scale up
    pub rtt_ceiling_us: f64,
    /// ticks to hold after any Up/Down decision
    pub cooldown_ticks: u32,
    /// workers added per Up decision
    pub step_up: usize,
    /// workers removed per Down decision
    pub step_down: usize,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            min_workers: 1,
            max_workers: 16,
            starvation_high: 0.5,
            starvation_low: 0.05,
            mailbox_high: 256.0,
            rtt_ceiling_us: 50_000.0,
            cooldown_ticks: 3,
            step_up: 2,
            step_down: 1,
        }
    }
}

/// The policy engine: feed it [`ScaleSignals`] once per observation
/// window, act on the returned [`ScaleDecision`].
#[derive(Debug)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    cooldown: u32,
    decisions: u64,
}

impl Autoscaler {
    /// Creates a policy engine with the given thresholds.
    pub fn new(cfg: AutoscalerConfig) -> Self {
        Autoscaler { cfg, cooldown: 0, decisions: 0 }
    }

    /// Thresholds in effect.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.cfg
    }

    /// Non-Hold decisions issued so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// One policy tick. Pure given the signals, except for the
    /// cooldown counter.
    pub fn decide(&mut self, s: &ScaleSignals) -> ScaleDecision {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return ScaleDecision::Hold;
        }
        let d = self.decide_inner(s);
        if d != ScaleDecision::Hold {
            self.cooldown = self.cfg.cooldown_ticks;
            self.decisions += 1;
        }
        d
    }

    fn decide_inner(&self, s: &ScaleSignals) -> ScaleDecision {
        let c = &self.cfg;
        // Replay drowning: more workers only deepen the mailboxes.
        // Shedding takes priority over everything except the floor.
        if s.replay_mailbox_depth > c.mailbox_high {
            let headroom = s.alive_workers.saturating_sub(c.min_workers);
            if headroom > 0 {
                return ScaleDecision::Down(c.step_down.min(headroom));
            }
            return ScaleDecision::Hold;
        }
        // Learner starving and the control plane healthy: scale up.
        if s.learner_starvation > c.starvation_high && s.heartbeat_rtt_us < c.rtt_ceiling_us {
            let headroom = c.max_workers.saturating_sub(s.alive_workers);
            if headroom > 0 {
                return ScaleDecision::Up(c.step_up.min(headroom));
            }
        }
        // Collection far ahead of the learner: shed a worker.
        if s.learner_starvation < c.starvation_low && s.alive_workers > c.min_workers {
            let headroom = s.alive_workers - c.min_workers;
            return ScaleDecision::Down(c.step_down.min(headroom));
        }
        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler() -> Autoscaler {
        Autoscaler::new(AutoscalerConfig {
            min_workers: 2,
            max_workers: 6,
            cooldown_ticks: 2,
            ..AutoscalerConfig::default()
        })
    }

    #[test]
    fn starving_learner_scales_up_within_bounds() {
        let mut a = scaler();
        let s = ScaleSignals {
            learner_starvation: 0.9,
            heartbeat_rtt_us: 1_000.0,
            alive_workers: 2,
            ..ScaleSignals::default()
        };
        assert_eq!(a.decide(&s), ScaleDecision::Up(2));
        // At the ceiling there is nothing to add.
        let s = ScaleSignals { alive_workers: 6, ..s };
        a.cooldown = 0;
        assert_eq!(a.decide(&s), ScaleDecision::Hold);
    }

    #[test]
    fn cooldown_suppresses_consecutive_decisions() {
        let mut a = scaler();
        let s = ScaleSignals {
            learner_starvation: 0.9,
            heartbeat_rtt_us: 1_000.0,
            alive_workers: 2,
            ..ScaleSignals::default()
        };
        assert_eq!(a.decide(&s), ScaleDecision::Up(2));
        assert_eq!(a.decide(&s), ScaleDecision::Hold);
        assert_eq!(a.decide(&s), ScaleDecision::Hold);
        assert_eq!(a.decide(&s), ScaleDecision::Up(2));
        assert_eq!(a.decisions(), 2);
    }

    #[test]
    fn high_rtt_vetoes_scale_up() {
        let mut a = scaler();
        let s = ScaleSignals {
            learner_starvation: 0.9,
            heartbeat_rtt_us: 100_000.0,
            alive_workers: 2,
            ..ScaleSignals::default()
        };
        assert_eq!(a.decide(&s), ScaleDecision::Hold);
    }

    #[test]
    fn deep_mailbox_sheds_but_respects_floor() {
        let mut a = scaler();
        let s = ScaleSignals {
            replay_mailbox_depth: 1_000.0,
            alive_workers: 4,
            ..ScaleSignals::default()
        };
        assert_eq!(a.decide(&s), ScaleDecision::Down(1));
        a.cooldown = 0;
        let s = ScaleSignals { alive_workers: 2, ..s };
        assert_eq!(a.decide(&s), ScaleDecision::Hold);
    }

    #[test]
    fn idle_collection_sheds_to_floor() {
        let mut a = scaler();
        let s =
            ScaleSignals { learner_starvation: 0.0, alive_workers: 3, ..ScaleSignals::default() };
        assert_eq!(a.decide(&s), ScaleDecision::Down(1));
        a.cooldown = 0;
        let s = ScaleSignals { alive_workers: 2, ..s };
        assert_eq!(a.decide(&s), ScaleDecision::Hold);
    }
}
