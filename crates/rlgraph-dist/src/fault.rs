//! Deterministic, seeded fault injection for distributed runs.
//!
//! A [`FaultPlan`] is a pure function from `(seed, fault kind, entity,
//! step)` to "inject or not": every draw hashes its coordinates through
//! SplitMix64 and compares against the configured rate. Because draws are
//! coordinate-addressed rather than sequential, the injected fault set is
//! **independent of thread interleaving and evaluation order** — the same
//! seed yields the same faults whether the run is threaded, stepped, or
//! simulated, which is what makes chaos runs reproducible and the
//! recovery tests deterministic.

use rlgraph_core::{CoreError, RlError, RlResult};

/// The kinds of fault a plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// A worker actor crashes at the end of a collection task.
    WorkerCrash,
    /// A replay shard's mailbox stalls (stops serving) for a window.
    ShardStall,
    /// The learner loses a step to an injected slowdown.
    LearnerSlowdown,
    /// A weight broadcast to one worker is dropped.
    DropWeightSync,
}

impl FaultKind {
    /// Domain-separation tag mixed into the draw hash.
    fn tag(self) -> u64 {
        match self {
            FaultKind::WorkerCrash => 0x9E37_79B9_0000_0001,
            FaultKind::ShardStall => 0x9E37_79B9_0000_0002,
            FaultKind::LearnerSlowdown => 0x9E37_79B9_0000_0003,
            FaultKind::DropWeightSync => 0x9E37_79B9_0000_0004,
        }
    }

    /// All kinds, in schedule order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::WorkerCrash,
        FaultKind::ShardStall,
        FaultKind::LearnerSlowdown,
        FaultKind::DropWeightSync,
    ];
}

/// One materialized injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Scheduler step / task index at which the fault fires.
    pub step: u64,
    /// What is injected.
    pub kind: FaultKind,
    /// Worker / shard index the fault targets (0 for the learner).
    pub target: usize,
}

/// A seeded, deterministic fault schedule.
///
/// Rates are per-opportunity probabilities: a `worker_crash_rate` of 0.2
/// crashes a worker on ~20% of its collection tasks. Construct through
/// [`FaultPlan::builder`]; [`FaultPlan::disabled`] injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    worker_crash_rate: f64,
    shard_stall_rate: f64,
    shard_stall_steps: u64,
    learner_slowdown_rate: f64,
    weight_drop_rate: f64,
    /// guaranteed injections, sorted by `(step, kind, target)`
    scheduled: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan that never injects anything.
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            worker_crash_rate: 0.0,
            shard_stall_rate: 0.0,
            shard_stall_steps: 0,
            learner_slowdown_rate: 0.0,
            weight_drop_rate: 0.0,
            scheduled: Vec::new(),
        }
    }

    /// Starts a validating builder for the given seed.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder { draft: FaultPlan { seed, ..FaultPlan::disabled() } }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_active(&self) -> bool {
        self.worker_crash_rate > 0.0
            || self.shard_stall_rate > 0.0
            || self.learner_slowdown_rate > 0.0
            || self.weight_drop_rate > 0.0
            || !self.scheduled.is_empty()
    }

    /// How long an injected shard stall lasts, in scheduler steps.
    pub fn shard_stall_steps(&self) -> u64 {
        self.shard_stall_steps
    }

    fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::WorkerCrash => self.worker_crash_rate,
            FaultKind::ShardStall => self.shard_stall_rate,
            FaultKind::LearnerSlowdown => self.learner_slowdown_rate,
            FaultKind::DropWeightSync => self.weight_drop_rate,
        }
    }

    /// The deterministic draw: inject `kind` on `target` at `step`?
    ///
    /// Pure in all arguments — safe to call from any thread in any order.
    pub fn draw(&self, kind: FaultKind, target: usize, step: u64) -> bool {
        if self.scheduled.iter().any(|e| e.step == step && e.kind == kind && e.target == target) {
            return true;
        }
        let rate = self.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let h = splitmix64(
            self.seed ^ kind.tag() ^ (target as u64).wrapping_mul(0xD129_0E40_5936_1FF5),
        );
        let h = splitmix64(h ^ step.wrapping_mul(0xA076_1D64_78BD_642F));
        // top 53 bits → uniform in [0, 1)
        ((h >> 11) as f64) / ((1u64 << 53) as f64) < rate
    }

    /// Materializes the full fault schedule for a topology and horizon:
    /// every draw for `workers` workers, `shards` shards, and the learner
    /// over `steps` steps, in deterministic `(step, kind, target)` order.
    ///
    /// Two plans with equal seeds and rates produce bit-identical
    /// schedules; the chaos bench records this list.
    pub fn schedule(&self, workers: usize, shards: usize, steps: u64) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        for step in 0..steps {
            for kind in FaultKind::ALL {
                let targets = match kind {
                    FaultKind::WorkerCrash | FaultKind::DropWeightSync => workers,
                    FaultKind::ShardStall => shards,
                    FaultKind::LearnerSlowdown => 1,
                };
                for target in 0..targets {
                    if self.draw(kind, target, step) {
                        events.push(FaultEvent { step, kind, target });
                    }
                }
            }
        }
        events
    }
}

/// Validating builder for [`FaultPlan`] (rates must be probabilities).
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    draft: FaultPlan,
}

impl FaultPlanBuilder {
    /// Per-task probability that a worker crashes.
    pub fn worker_crash_rate(mut self, p: f64) -> Self {
        self.draft.worker_crash_rate = p;
        self
    }

    /// Per-step probability that a shard stalls, and the stall length.
    pub fn shard_stall(mut self, p: f64, steps: u64) -> Self {
        self.draft.shard_stall_rate = p;
        self.draft.shard_stall_steps = steps;
        self
    }

    /// Per-step probability that the learner loses a step.
    pub fn learner_slowdown_rate(mut self, p: f64) -> Self {
        self.draft.learner_slowdown_rate = p;
        self
    }

    /// Per-broadcast probability that one worker's weight sync is dropped.
    pub fn weight_drop_rate(mut self, p: f64) -> Self {
        self.draft.weight_drop_rate = p;
        self
    }

    /// Schedules one guaranteed injection of `kind` on `target` at `step`,
    /// on top of any rate-based draws — for plans that want, say, exactly
    /// one shard stall at a known point in the run.
    pub fn inject_at(mut self, step: u64, kind: FaultKind, target: usize) -> Self {
        self.draft.scheduled.push(FaultEvent { step, kind, target });
        self
    }

    /// Validates rates and produces the plan.
    ///
    /// # Errors
    ///
    /// [`RlError::Core`] when any rate is outside `[0, 1]` or a positive
    /// stall rate comes with a zero stall length.
    pub fn build(self) -> RlResult<FaultPlan> {
        let mut p = self.draft;
        // canonical order so equal plans compare equal however they were built
        p.scheduled.sort_unstable_by_key(|e| (e.step, e.kind, e.target));
        p.scheduled.dedup();
        for (name, rate) in [
            ("worker_crash_rate", p.worker_crash_rate),
            ("shard_stall_rate", p.shard_stall_rate),
            ("learner_slowdown_rate", p.learner_slowdown_rate),
            ("weight_drop_rate", p.weight_drop_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(RlError::Core(CoreError::new(format!(
                    "fault plan: {} = {} is not a probability",
                    name, rate
                ))));
            }
        }
        let stalls_scheduled = p.scheduled.iter().any(|e| e.kind == FaultKind::ShardStall);
        if (p.shard_stall_rate > 0.0 || stalls_scheduled) && p.shard_stall_steps == 0 {
            return Err(RlError::Core(CoreError::new(
                "fault plan: shard stalls require a positive stall length",
            )));
        }
        Ok(p)
    }
}

/// SplitMix64 finalizer — the same mixer the offline `rand` stub seeds
/// with, giving well-distributed 64-bit hashes from structured input.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> FaultPlan {
        FaultPlan::builder(seed)
            .worker_crash_rate(0.2)
            .shard_stall(0.05, 8)
            .learner_slowdown_rate(0.1)
            .weight_drop_rate(0.15)
            .build()
            .unwrap()
    }

    #[test]
    fn disabled_plan_never_fires() {
        let p = FaultPlan::disabled();
        assert!(!p.is_active());
        assert!(p.schedule(8, 4, 200).is_empty());
    }

    #[test]
    fn same_seed_same_schedule_bit_identical() {
        let a = plan(42).schedule(6, 3, 300);
        let b = plan(42).schedule(6, 3, 300);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = plan(43).schedule(6, 3, 300);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn draws_are_order_independent() {
        let p = plan(7);
        // evaluate the same coordinates in two different orders
        let mut fwd = Vec::new();
        for step in 0..100 {
            fwd.push(p.draw(FaultKind::WorkerCrash, 3, step));
        }
        let mut rev = Vec::new();
        for step in (0..100).rev() {
            rev.push(p.draw(FaultKind::WorkerCrash, 3, step));
        }
        rev.reverse();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn rates_approximate_over_many_draws() {
        let p = plan(11);
        let crashes =
            (0..10_000).filter(|&s| p.draw(FaultKind::WorkerCrash, 0, s)).count() as f64 / 10_000.0;
        assert!((crashes - 0.2).abs() < 0.03, "empirical crash rate {}", crashes);
        let stalls =
            (0..10_000).filter(|&s| p.draw(FaultKind::ShardStall, 1, s)).count() as f64 / 10_000.0;
        assert!((stalls - 0.05).abs() < 0.02, "empirical stall rate {}", stalls);
    }

    #[test]
    fn kinds_and_targets_are_decorrelated() {
        let p = plan(5);
        // the same (target, step) must not force equal outcomes across kinds
        let mut differs = false;
        for step in 0..200 {
            if p.draw(FaultKind::WorkerCrash, 0, step) != p.draw(FaultKind::DropWeightSync, 0, step)
            {
                differs = true;
                break;
            }
        }
        assert!(differs, "kind tag failed to separate the draw streams");
    }

    #[test]
    fn builder_validates_rates() {
        assert!(FaultPlan::builder(1).worker_crash_rate(1.5).build().is_err());
        assert!(FaultPlan::builder(1).learner_slowdown_rate(-0.1).build().is_err());
        assert!(FaultPlan::builder(1).shard_stall(0.1, 0).build().is_err());
        assert!(FaultPlan::builder(1).shard_stall(0.1, 4).build().is_ok());
        assert!(FaultPlan::builder(1).weight_drop_rate(f64::NAN).build().is_err());
    }

    #[test]
    fn scheduled_injections_fire_exactly() {
        let p = FaultPlan::builder(9)
            .shard_stall(0.0, 4)
            .inject_at(120, FaultKind::ShardStall, 1)
            .inject_at(120, FaultKind::ShardStall, 1) // deduped
            .build()
            .unwrap();
        assert!(p.is_active());
        assert!(p.draw(FaultKind::ShardStall, 1, 120));
        assert!(!p.draw(FaultKind::ShardStall, 1, 121));
        assert!(!p.draw(FaultKind::ShardStall, 0, 120));
        let events = p.schedule(4, 3, 300);
        assert_eq!(events, vec![FaultEvent { step: 120, kind: FaultKind::ShardStall, target: 1 }]);
        // a scheduled stall still needs a stall length
        assert!(FaultPlan::builder(9).inject_at(5, FaultKind::ShardStall, 0).build().is_err());
    }

    #[test]
    fn extreme_rates_are_exact() {
        let always = FaultPlan::builder(3).worker_crash_rate(1.0).build().unwrap();
        assert!((0..50).all(|s| always.draw(FaultKind::WorkerCrash, 0, s)));
        assert!((0..50).all(|s| !always.draw(FaultKind::ShardStall, 0, s)));
    }
}
