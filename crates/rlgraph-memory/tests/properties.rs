//! Property-based tests for replay memories and segment trees.

use proptest::prelude::*;
use rand::SeedableRng;
use rlgraph_memory::{PrioritizedReplay, RingReplay, SegmentTree};

proptest! {
    /// Segment tree sum and min always match a straight recomputation.
    #[test]
    fn segment_tree_invariants(
        cap in 1usize..40,
        updates in prop::collection::vec((0usize..40, 0.0f32..100.0), 1..60),
    ) {
        let mut tree = SegmentTree::new(cap);
        let mut shadow = vec![0.0f32; cap];
        let mut touched = vec![false; cap];
        for (idx, p) in updates {
            let idx = idx % cap;
            tree.update(idx, p);
            shadow[idx] = p;
            touched[idx] = true;
        }
        let expect_sum: f64 = shadow.iter().map(|&x| x as f64).sum();
        prop_assert!((tree.total() - expect_sum).abs() < 1e-3);
        let expect_min = shadow
            .iter()
            .zip(&touched)
            .filter(|(_, &t)| t)
            .map(|(&x, _)| x as f64)
            .fold(f64::INFINITY, f64::min);
        prop_assert_eq!(tree.min(), expect_min);
    }

    /// prefix_sum_index returns the index a linear scan would find.
    #[test]
    fn prefix_sum_matches_linear_scan(
        priorities in prop::collection::vec(0.01f32..10.0, 1..32),
        frac in 0.0f64..1.0,
    ) {
        let mut tree = SegmentTree::new(priorities.len());
        for (i, &p) in priorities.iter().enumerate() {
            tree.update(i, p);
        }
        let mass = frac * tree.total() * 0.999999;
        let got = tree.prefix_sum_index(mass);
        let mut acc = 0.0f64;
        let mut expect = priorities.len() - 1;
        for (i, &p) in priorities.iter().enumerate() {
            acc += p as f64;
            if acc > mass {
                expect = i;
                break;
            }
        }
        prop_assert_eq!(got, expect);
    }

    /// Ring buffer always holds the most recent `min(inserted, capacity)`
    /// items.
    #[test]
    fn ring_keeps_most_recent(cap in 1usize..16, n in 1usize..64) {
        let mut ring = RingReplay::new(cap);
        for i in 0..n {
            ring.insert(i);
        }
        prop_assert_eq!(ring.len(), cap.min(n));
        let expect_min = n.saturating_sub(cap);
        for slot in 0..ring.len() {
            let v = *ring.get(slot).unwrap();
            prop_assert!(v >= expect_min && v < n, "stale item {} survived", v);
        }
    }

    /// Prioritized sampling frequency is monotone in priority.
    #[test]
    fn sampling_monotone_in_priority(seed in 0u64..500) {
        let mut m = PrioritizedReplay::new(4, 1.0);
        m.insert_with_priority(0u8, 0.5);
        m.insert_with_priority(1u8, 2.0);
        m.insert_with_priority(2u8, 8.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut counts = [0usize; 3];
        for _ in 0..30 {
            for r in m.sample(16, 0.4, &mut rng).records {
                counts[r as usize] += 1;
            }
        }
        prop_assert!(counts[2] > counts[1], "counts {:?}", counts);
        prop_assert!(counts[1] > counts[0], "counts {:?}", counts);
    }

    /// Importance weights stay in (0, 1] for any beta.
    #[test]
    fn weights_bounded(beta in 0.0f32..1.0, seed in 0u64..200) {
        let mut m = PrioritizedReplay::new(8, 0.7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for i in 0..8 {
            m.insert_with_priority(i, (i + 1) as f32);
        }
        let b = m.sample(32, beta, &mut rng);
        prop_assert!(b.weights.iter().all(|&w| w > 0.0 && w <= 1.0 + 1e-4));
    }
}
