//! Sum/min segment tree over priorities.

/// A fixed-capacity segment tree maintaining both the sum and the min of a
/// priority array, with `O(log n)` updates, prefix-sum search (for
/// proportional sampling) and min queries (for importance-weight
/// normalisation).
///
/// This is the `SegmentTree` sub-component of the paper's prioritized
/// replay memory (Fig. 2).
#[derive(Debug, Clone)]
pub struct SegmentTree {
    capacity: usize,
    size: usize,
    sum: Vec<f64>,
    min: Vec<f64>,
}

impl SegmentTree {
    /// Creates a tree for up to `capacity` priorities (rounded up to a
    /// power of two internally).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "segment tree capacity must be positive");
        let cap = capacity.next_power_of_two();
        SegmentTree {
            capacity: cap,
            size: capacity,
            sum: vec![0.0; 2 * cap],
            min: vec![f64::INFINITY; 2 * cap],
        }
    }

    /// The logical capacity (as requested at construction).
    pub fn len(&self) -> usize {
        self.size
    }

    /// `true` if the tree holds no positive priority.
    pub fn is_empty(&self) -> bool {
        self.total() == 0.0
    }

    /// Sets the priority at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or `priority` is negative/NaN.
    pub fn update(&mut self, idx: usize, priority: f32) {
        assert!(idx < self.size, "index {} out of range (capacity {})", idx, self.size);
        assert!(priority >= 0.0 && priority.is_finite(), "priority must be finite and >= 0");
        let mut i = idx + self.capacity;
        self.sum[i] = priority as f64;
        self.min[i] = priority as f64;
        while i > 1 {
            i /= 2;
            self.sum[i] = self.sum[2 * i] + self.sum[2 * i + 1];
            self.min[i] = self.min[2 * i].min(self.min[2 * i + 1]);
        }
    }

    /// The priority currently stored at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn get(&self, idx: usize) -> f32 {
        assert!(idx < self.size, "index {} out of range", idx);
        self.sum[idx + self.capacity] as f32
    }

    /// Sum of all priorities.
    pub fn total(&self) -> f64 {
        self.sum[1]
    }

    /// Minimum of all *set* priorities (`+inf` when none are set).
    pub fn min(&self) -> f64 {
        self.min[1]
    }

    /// Finds the smallest index whose prefix sum exceeds `mass`
    /// (`0 <= mass < total`). This is the proportional-sampling primitive.
    ///
    /// # Panics
    ///
    /// Panics if the tree is empty.
    pub fn prefix_sum_index(&self, mass: f64) -> usize {
        assert!(self.total() > 0.0, "cannot sample from an empty segment tree");
        let mut mass = mass.clamp(0.0, self.total() * (1.0 - 1e-12));
        let mut i = 1usize;
        while i < self.capacity {
            let left = 2 * i;
            if self.sum[left] > mass {
                i = left;
            } else {
                mass -= self.sum[left];
                i = left + 1;
            }
        }
        (i - self.capacity).min(self.size - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_mins() {
        let mut t = SegmentTree::new(4);
        t.update(0, 1.0);
        t.update(1, 2.0);
        t.update(2, 3.0);
        assert_eq!(t.total(), 6.0);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.get(1), 2.0);
        t.update(0, 5.0);
        assert_eq!(t.total(), 10.0);
        assert_eq!(t.min(), 2.0);
    }

    #[test]
    fn prefix_sum_search() {
        let mut t = SegmentTree::new(4);
        t.update(0, 1.0);
        t.update(1, 2.0);
        t.update(2, 3.0);
        t.update(3, 4.0);
        // cumulative: 1, 3, 6, 10
        assert_eq!(t.prefix_sum_index(0.5), 0);
        assert_eq!(t.prefix_sum_index(1.0), 1);
        assert_eq!(t.prefix_sum_index(2.9), 1);
        assert_eq!(t.prefix_sum_index(3.0), 2);
        assert_eq!(t.prefix_sum_index(9.99), 3);
    }

    #[test]
    fn non_power_of_two_capacity() {
        let mut t = SegmentTree::new(5);
        assert_eq!(t.len(), 5);
        for i in 0..5 {
            t.update(i, 1.0);
        }
        assert_eq!(t.total(), 5.0);
        assert_eq!(t.prefix_sum_index(4.5), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_out_of_range_panics() {
        SegmentTree::new(2).update(2, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_priority_panics() {
        SegmentTree::new(2).update(0, -1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sample_empty_panics() {
        SegmentTree::new(2).prefix_sum_index(0.0);
    }

    #[test]
    fn empty_flag() {
        let mut t = SegmentTree::new(2);
        assert!(t.is_empty());
        t.update(0, 0.5);
        assert!(!t.is_empty());
        t.update(0, 0.0);
        assert!(t.is_empty());
    }
}
