//! Replay memories for rlgraph.
//!
//! Implements the storage substrate behind the paper's memory components
//! (Fig. 2): a plain ring buffer, sum/min segment trees, prioritized
//! experience replay (Schaul et al. 2016, as used by Ape-X), and the n-step
//! reward adjustment Ape-X workers apply before insertion.
//!
//! These are pure data structures: the component layer wraps them either as
//! stateful graph kernels (static backend) or direct calls (define-by-run),
//! and the distributed layer hosts them inside replay-shard actors.

pub mod nstep;
pub mod prioritized;
pub mod ring;
pub mod segment_tree;
pub mod transition;

pub use nstep::NStepAdjuster;
pub use prioritized::{PrioritizedReplay, SampleBatch};
pub use ring::RingReplay;
pub use segment_tree::SegmentTree;
pub use transition::Transition;
