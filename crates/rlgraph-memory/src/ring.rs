//! Uniform-sampling ring replay buffer.

use rand::RngExt as _;

/// A fixed-capacity ring buffer with uniform sampling — the plain replay
/// memory variant (DQN without prioritisation).
#[derive(Debug, Clone)]
pub struct RingReplay<T> {
    items: Vec<T>,
    capacity: usize,
    head: usize,
    inserted: u64,
}

impl<T: Clone> RingReplay<T> {
    /// Creates a buffer holding up to `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        RingReplay { items: Vec::with_capacity(capacity), capacity, head: 0, inserted: 0 }
    }

    /// The maximum number of records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of stored records.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total insertions over the buffer's lifetime.
    pub fn total_inserted(&self) -> u64 {
        self.inserted
    }

    /// Inserts a record, overwriting the oldest once full. Returns the slot
    /// index used.
    pub fn insert(&mut self, item: T) -> usize {
        self.inserted += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            self.items.len() - 1
        } else {
            let slot = self.head;
            self.items[slot] = item;
            self.head = (self.head + 1) % self.capacity;
            slot
        }
    }

    /// Reads the record in `slot`.
    pub fn get(&self, slot: usize) -> Option<&T> {
        self.items.get(slot)
    }

    /// Uniformly samples `batch` records (with replacement).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn sample<R: rand::Rng>(&self, batch: usize, rng: &mut R) -> Vec<T> {
        assert!(!self.is_empty(), "cannot sample from an empty replay buffer");
        (0..batch).map(|_| self.items[rng.random_range(0..self.items.len())].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fills_then_wraps() {
        let mut r = RingReplay::new(3);
        assert_eq!(r.insert(1), 0);
        assert_eq!(r.insert(2), 1);
        assert_eq!(r.insert(3), 2);
        assert_eq!(r.len(), 3);
        // wrap: overwrites slot 0
        assert_eq!(r.insert(4), 0);
        assert_eq!(r.get(0), Some(&4));
        assert_eq!(r.get(1), Some(&2));
        assert_eq!(r.insert(5), 1);
        assert_eq!(r.total_inserted(), 5);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn samples_only_stored() {
        let mut r = RingReplay::new(8);
        r.insert(7);
        r.insert(9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let s = r.sample(100, &mut rng);
        assert!(s.iter().all(|&x| x == 7 || x == 9));
        assert!(s.contains(&7) && s.contains(&9));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sample_empty_panics() {
        let r: RingReplay<u8> = RingReplay::new(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        r.sample(1, &mut rng);
    }
}
