//! The canonical RL transition record.

use rlgraph_tensor::Tensor;

/// One `(s, a, r, s', t)` experience tuple, as inserted into replay
/// memories by `observe` and consumed by `update` (paper Listing 2).
///
/// States and actions are tensors so the same record type carries vector
/// observations, image stacks, or container leaves after splitting.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// observation before acting
    pub state: Tensor,
    /// the chosen action
    pub action: Tensor,
    /// immediate (or n-step aggregated) reward
    pub reward: f32,
    /// observation after acting (n steps ahead for n-step records)
    pub next_state: Tensor,
    /// whether the episode terminated at `next_state`
    pub terminal: bool,
}

impl Transition {
    /// Creates a transition record.
    pub fn new(
        state: Tensor,
        action: Tensor,
        reward: f32,
        next_state: Tensor,
        terminal: bool,
    ) -> Self {
        Transition { state, action, reward, next_state, terminal }
    }

    /// Approximate memory footprint in bytes (for shard accounting).
    pub fn size_bytes(&self) -> usize {
        let t = |x: &Tensor| x.len() * x.dtype().size_bytes();
        t(&self.state) + t(&self.action) + t(&self.next_state) + 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_size() {
        let tr = Transition::new(
            Tensor::zeros(&[4], rlgraph_tensor::DType::F32),
            Tensor::scalar_i64(1),
            1.0,
            Tensor::zeros(&[4], rlgraph_tensor::DType::F32),
            false,
        );
        assert_eq!(tr.reward, 1.0);
        assert!(!tr.terminal);
        assert_eq!(tr.size_bytes(), 4 * 4 + 8 + 4 * 4 + 5);
    }
}
