//! n-step reward adjustment (Ape-X worker-side post-processing).

use crate::transition::Transition;
use std::collections::VecDeque;

/// Rewrites 1-step transitions into n-step transitions:
/// `r' = Σ_{k<n} γ^k r_k`, `s'` taken n steps ahead, cutting at episode
/// boundaries. Ape-X workers run this before computing initial priorities
/// and shipping samples to the replay shards (paper §5.1).
#[derive(Debug, Clone)]
pub struct NStepAdjuster {
    n: usize,
    gamma: f32,
    pending: VecDeque<Transition>,
}

impl NStepAdjuster {
    /// Creates an adjuster with horizon `n` and discount `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, gamma: f32) -> Self {
        assert!(n > 0, "n-step horizon must be positive");
        NStepAdjuster { n, gamma, pending: VecDeque::new() }
    }

    /// The horizon.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of transitions waiting for lookahead.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Pushes a freshly observed 1-step transition; returns any n-step
    /// transitions that became complete.
    pub fn push(&mut self, t: Transition) -> Vec<Transition> {
        let terminal = t.terminal;
        self.pending.push_back(t);
        let mut out = Vec::new();
        if terminal {
            // Episode over: flush everything with truncated horizons.
            while let Some(adj) = self.pop_front_adjusted() {
                out.push(adj);
                self.pending.pop_front();
            }
        } else if self.pending.len() >= self.n {
            if let Some(adj) = self.pop_front_adjusted() {
                out.push(adj);
            }
            self.pending.pop_front();
        }
        out
    }

    /// Flushes all pending transitions (end of a rollout window).
    pub fn flush(&mut self) -> Vec<Transition> {
        let mut out = Vec::new();
        while !self.pending.is_empty() {
            if let Some(adj) = self.pop_front_adjusted() {
                out.push(adj);
            }
            self.pending.pop_front();
        }
        out
    }

    /// Builds the n-step transition starting at the queue front without
    /// removing it.
    fn pop_front_adjusted(&self) -> Option<Transition> {
        let first = self.pending.front()?;
        let mut reward = 0.0f32;
        let mut next_state = first.next_state.clone();
        let mut terminal = first.terminal;
        for (k, t) in self.pending.iter().take(self.n).enumerate() {
            reward += self.gamma.powi(k as i32) * t.reward;
            next_state = t.next_state.clone();
            terminal = t.terminal;
            if t.terminal {
                break;
            }
        }
        Some(Transition::new(
            first.state.clone(),
            first.action.clone(),
            reward,
            next_state,
            terminal,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlgraph_tensor::Tensor;

    fn tr(step: i64, reward: f32, terminal: bool) -> Transition {
        Transition::new(
            Tensor::scalar(step as f32),
            Tensor::scalar_i64(0),
            reward,
            Tensor::scalar(step as f32 + 1.0),
            terminal,
        )
    }

    #[test]
    fn three_step_rewards() {
        let mut adj = NStepAdjuster::new(3, 0.5);
        assert!(adj.push(tr(0, 1.0, false)).is_empty());
        assert!(adj.push(tr(1, 1.0, false)).is_empty());
        let out = adj.push(tr(2, 1.0, false));
        assert_eq!(out.len(), 1);
        // 1 + 0.5 + 0.25
        assert!((out[0].reward - 1.75).abs() < 1e-6);
        // next_state from 3 steps ahead
        assert_eq!(out[0].next_state.scalar_value().unwrap(), 3.0);
        assert!(!out[0].terminal);
    }

    #[test]
    fn terminal_flushes_truncated() {
        let mut adj = NStepAdjuster::new(3, 1.0);
        adj.push(tr(0, 1.0, false));
        let out = adj.push(tr(1, 2.0, true));
        // both pending transitions flushed, horizons truncated at terminal
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].reward, 3.0);
        assert!(out[0].terminal);
        assert_eq!(out[1].reward, 2.0);
        assert!(out[1].terminal);
        assert_eq!(adj.pending_len(), 0);
    }

    #[test]
    fn one_step_passthrough() {
        let mut adj = NStepAdjuster::new(1, 0.9);
        let out = adj.push(tr(0, 5.0, false));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].reward, 5.0);
        assert_eq!(out[0].next_state.scalar_value().unwrap(), 1.0);
    }

    #[test]
    fn flush_emits_rest() {
        let mut adj = NStepAdjuster::new(4, 1.0);
        adj.push(tr(0, 1.0, false));
        adj.push(tr(1, 1.0, false));
        let out = adj.flush();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].reward, 2.0);
        assert_eq!(out[1].reward, 1.0);
        assert_eq!(adj.pending_len(), 0);
    }
}
