//! Prioritized experience replay (proportional variant).

use crate::segment_tree::SegmentTree;
use rand::RngExt as _;

/// A batch sampled from a [`PrioritizedReplay`].
#[derive(Debug, Clone)]
pub struct SampleBatch<T> {
    /// slot indices (pass back to `update_priorities`)
    pub indices: Vec<usize>,
    /// sampled records
    pub records: Vec<T>,
    /// normalised importance-sampling weights (max weight = 1)
    pub weights: Vec<f32>,
}

/// Proportional prioritized replay: `P(i) ∝ p_i^alpha`, importance weights
/// `w_i = (N * P(i))^-beta / max_j w_j` (Schaul et al. 2016; the memory
/// behind Ape-X and the paper's Fig. 5a "Prioritized replay" component).
#[derive(Debug, Clone)]
pub struct PrioritizedReplay<T> {
    items: Vec<T>,
    capacity: usize,
    head: usize,
    tree: SegmentTree,
    alpha: f32,
    max_priority: f32,
    inserted: u64,
}

impl<T: Clone> PrioritizedReplay<T> {
    /// Creates a memory for up to `capacity` records with priority exponent
    /// `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `alpha` is negative.
    pub fn new(capacity: usize, alpha: f32) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        PrioritizedReplay {
            items: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            tree: SegmentTree::new(capacity),
            alpha,
            max_priority: 1.0,
            inserted: 0,
        }
    }

    /// Maximum record count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current record count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Lifetime insertion count.
    pub fn total_inserted(&self) -> u64 {
        self.inserted
    }

    /// The priority exponent.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Inserts a record with an explicit priority (worker-side
    /// prioritisation, as in Ape-X). Returns the slot used.
    pub fn insert_with_priority(&mut self, item: T, priority: f32) -> usize {
        let priority = priority.max(1e-8);
        self.max_priority = self.max_priority.max(priority);
        let slot = if self.items.len() < self.capacity {
            self.items.push(item);
            self.items.len() - 1
        } else {
            let s = self.head;
            self.items[s] = item;
            self.head = (self.head + 1) % self.capacity;
            s
        };
        self.inserted += 1;
        self.tree.update(slot, priority.powf(self.alpha));
        slot
    }

    /// Inserts with the current maximum priority (fresh samples are always
    /// replayable at least once).
    pub fn insert(&mut self, item: T) -> usize {
        self.insert_with_priority(item, self.max_priority)
    }

    /// Samples `batch` records proportionally to priority, with
    /// importance-sampling correction exponent `beta`.
    ///
    /// # Panics
    ///
    /// Panics if the memory is empty.
    pub fn sample<R: rand::Rng>(&self, batch: usize, beta: f32, rng: &mut R) -> SampleBatch<T> {
        assert!(!self.is_empty(), "cannot sample from an empty prioritized replay");
        let total = self.tree.total();
        let n = self.items.len() as f64;
        let min_prob = self.tree.min() / total;
        let max_weight = (min_prob * n).powf(-beta as f64);
        let mut indices = Vec::with_capacity(batch);
        let mut records = Vec::with_capacity(batch);
        let mut weights = Vec::with_capacity(batch);
        // Stratified sampling: one draw per equal-mass segment.
        let seg = total / batch as f64;
        for k in 0..batch {
            let mass = seg * k as f64 + rng.random_range(0.0..1.0) * seg;
            let idx = self.tree.prefix_sum_index(mass);
            let prob = self.tree.get(idx) as f64 / total;
            let w = ((prob * n).powf(-beta as f64) / max_weight) as f32;
            indices.push(idx);
            records.push(self.items[idx].clone());
            weights.push(w);
        }
        SampleBatch { indices, records, weights }
    }

    /// Updates priorities after a learning step (TD errors).
    ///
    /// # Panics
    ///
    /// Panics on index/priority arity mismatch or out-of-range indices.
    pub fn update_priorities(&mut self, indices: &[usize], priorities: &[f32]) {
        assert_eq!(indices.len(), priorities.len(), "indices/priorities length mismatch");
        for (&idx, &p) in indices.iter().zip(priorities) {
            assert!(idx < self.items.len(), "priority update index {} out of range", idx);
            let p = p.max(1e-8);
            self.max_priority = self.max_priority.max(p);
            self.tree.update(idx, p.powf(self.alpha));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(123)
    }

    #[test]
    fn insert_and_len() {
        let mut m = PrioritizedReplay::new(4, 0.6);
        for i in 0..6 {
            m.insert(i);
        }
        assert_eq!(m.len(), 4);
        assert_eq!(m.capacity(), 4);
        assert_eq!(m.total_inserted(), 6);
    }

    #[test]
    fn high_priority_sampled_more() {
        let mut m = PrioritizedReplay::new(8, 1.0);
        for i in 0..8 {
            m.insert_with_priority(i, if i == 3 { 100.0 } else { 1.0 });
        }
        let mut rng = rng();
        let mut hits = 0;
        for _ in 0..50 {
            let b = m.sample(8, 0.4, &mut rng);
            hits += b.records.iter().filter(|&&r| r == 3).count();
        }
        // record 3 holds 100/107 of the mass; expect the vast majority
        assert!(hits > 250, "expected heavy bias toward record 3, got {}/400", hits);
    }

    #[test]
    fn weights_are_normalised_and_inverse() {
        let mut m = PrioritizedReplay::new(4, 1.0);
        m.insert_with_priority('a', 1.0);
        m.insert_with_priority('b', 9.0);
        let mut rng = rng();
        let b = m.sample(64, 1.0, &mut rng);
        for (i, w) in b.indices.iter().zip(&b.weights) {
            assert!(*w > 0.0 && *w <= 1.0 + 1e-5);
            if *i == 1 {
                // high-priority record gets the smaller weight
                assert!(*w < 0.5, "weight for frequent record should shrink, got {}", w);
            } else {
                assert!((*w - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn beta_zero_gives_unit_weights() {
        let mut m = PrioritizedReplay::new(4, 0.8);
        m.insert_with_priority(1, 5.0);
        m.insert_with_priority(2, 1.0);
        let b = m.sample(16, 0.0, &mut rng());
        assert!(b.weights.iter().all(|&w| (w - 1.0).abs() < 1e-6));
    }

    #[test]
    fn update_priorities_shifts_distribution() {
        let mut m = PrioritizedReplay::new(2, 1.0);
        m.insert_with_priority('x', 1.0);
        m.insert_with_priority('y', 1.0);
        m.update_priorities(&[0], &[1000.0]);
        let b = m.sample(100, 0.5, &mut rng());
        let x_hits = b.records.iter().filter(|&&r| r == 'x').count();
        assert!(x_hits > 90, "x should dominate after priority update, got {}", x_hits);
    }

    #[test]
    fn wraparound_clears_old_priority() {
        let mut m = PrioritizedReplay::new(2, 1.0);
        m.insert_with_priority(0, 100.0);
        m.insert_with_priority(1, 1.0);
        // overwrite slot 0 (oldest) with a low-priority record
        m.insert_with_priority(2, 1.0);
        let b = m.sample(200, 0.0, &mut rng());
        assert!(!b.records.contains(&0), "overwritten record must not be sampled");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn update_arity_checked() {
        let mut m = PrioritizedReplay::new(2, 1.0);
        m.insert(1);
        m.update_priorities(&[0, 1], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sample_empty_panics() {
        let m: PrioritizedReplay<u8> = PrioritizedReplay::new(2, 0.5);
        m.sample(1, 0.4, &mut rng());
    }
}
