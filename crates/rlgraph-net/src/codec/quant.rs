//! Quantized wire encodings for f32 tensor data (DESIGN.md §14).
//!
//! Three lossy-but-bounded wire forms trade mantissa bits for bytes on
//! the wire while the learner keeps f32 master weights:
//!
//! * **f16** (IEEE 754 binary16) — 2 bytes/element, relative error ≤
//!   2⁻¹¹ in the normal range, exact for zeros/infinities.
//! * **bf16** (bfloat16: the top 16 bits of an f32, round-to-nearest-
//!   even) — 2 bytes/element, f32's full exponent range, relative error
//!   ≤ 2⁻⁸.
//! * **int8 with per-tensor scale** — 1 byte/element plus one f32
//!   scale (`max_abs / 127`); absolute error ≤ `scale / 2`.
//!
//! All conversions are from-scratch bit manipulation (no intrinsics, no
//! dependencies) with round-to-nearest-even, and every encoding is
//! idempotent: re-encoding a decoded tensor reproduces the same bytes,
//! so a value that crossed the wire once never drifts further.

use crate::wire::{ByteReader, ByteWriter};
use rlgraph_core::{RlError, RlResult};

/// Which wire form an f32 payload takes. Non-f32 dtypes always ship
/// verbatim; [`TensorEnc::F32`] is the identity (v1) encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TensorEnc {
    /// Full f32 — the v1 wire form, bit-exact.
    #[default]
    F32,
    /// IEEE binary16.
    F16,
    /// bfloat16.
    Bf16,
    /// int8 with a per-tensor scale.
    I8Scale,
}

impl TensorEnc {
    /// The dtype-tag byte this encoding writes (the extended namespace
    /// of the v1 dtype tags 0–2).
    pub fn tag(self) -> u8 {
        match self {
            TensorEnc::F32 => 0,
            TensorEnc::F16 => 3,
            TensorEnc::Bf16 => 4,
            TensorEnc::I8Scale => 5,
        }
    }

    /// Maps a quantized dtype tag (3/4/5) back to its encoding; `None`
    /// for the plain v1 tags and anything unknown.
    pub fn from_quant_tag(tag: u8) -> Option<TensorEnc> {
        match tag {
            3 => Some(TensorEnc::F16),
            4 => Some(TensorEnc::Bf16),
            5 => Some(TensorEnc::I8Scale),
            _ => None,
        }
    }

    /// Bytes per element on the wire (excluding the i8 scale header).
    pub fn elem_bytes(self) -> usize {
        match self {
            TensorEnc::F32 => 4,
            TensorEnc::F16 | TensorEnc::Bf16 => 2,
            TensorEnc::I8Scale => 1,
        }
    }
}

// ---------------------------------------------------------------- f16

/// Converts an f32 to IEEE binary16 bits, round-to-nearest-even.
/// Overflow saturates to infinity; NaN stays NaN (quietened).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;
    if exp == 255 {
        // Infinity or NaN: keep the class, force NaN mantissa nonzero.
        let m = if mant != 0 { 0x0200 | ((mant >> 13) as u16 & 0x03ff) } else { 0 };
        return sign | 0x7c00 | m;
    }
    let e16 = exp - 127 + 15;
    if e16 >= 31 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if e16 <= 0 {
        // Subnormal range (or underflow to zero).
        if e16 < -10 {
            return sign;
        }
        let m = mant | 0x0080_0000; // implicit leading 1
        let shift = (14 - e16) as u32; // 14..=24
        let sub = m >> shift;
        let rem = m & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let round_up = rem > half || (rem == half && (sub & 1) == 1);
        // A carry out of the 10-bit subnormal field lands exactly on the
        // smallest normal — the encoding is contiguous, so just add.
        return sign | (sub + round_up as u32) as u16;
    }
    let m = mant >> 13;
    let rem = mant & 0x1fff;
    let mut out = ((e16 as u32) << 10) | m;
    if rem > 0x1000 || (rem == 0x1000 && (out & 1) == 1) {
        out += 1; // may carry into the exponent; contiguous, still correct
    }
    sign | out as u16
}

/// Converts IEEE binary16 bits back to f32 (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = (h >> 10) & 0x1f;
    let mant = (h & 0x03ff) as u32;
    if exp == 0 {
        if mant == 0 {
            return f32::from_bits(sign); // ±0
        }
        // Subnormal: mant × 2⁻²⁴, exact in f32.
        let v = mant as f32 * 5.960_464_5e-8;
        return if sign != 0 { -v } else { v };
    }
    if exp == 0x1f {
        return f32::from_bits(sign | 0x7f80_0000 | (mant << 13));
    }
    f32::from_bits(sign | ((exp as u32 + 112) << 23) | (mant << 13))
}

// ---------------------------------------------------------------- bf16

/// Converts an f32 to bfloat16 bits, round-to-nearest-even. NaN stays
/// NaN.
pub fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Truncation could zero the mantissa and turn NaN into inf.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round = ((bits >> 16) & 1) + 0x7fff;
    ((bits.wrapping_add(round)) >> 16) as u16
}

/// Converts bfloat16 bits back to f32 (exact).
pub fn bf16_bits_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

// ---------------------------------------------------------------- int8

/// The per-tensor scale for [`TensorEnc::I8Scale`]: `max_abs / 127`,
/// zero for an all-zero (or empty) tensor.
pub fn i8_scale_for(vals: &[f32]) -> f32 {
    let max_abs = vals.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
    max_abs / 127.0
}

fn quantize_i8(v: f32, inv_scale: f32) -> i8 {
    // `as` saturates (and maps NaN to 0), so no clamp is needed.
    (v * inv_scale).round_ties_even() as i8
}

// ---------------------------------------------------------------- columns

/// Appends `vals` under `enc` with no count prefix (the caller's layout
/// carries the length). [`TensorEnc::I8Scale`] prefixes its scale.
pub fn put_f32_column(w: &mut ByteWriter, vals: &[f32], enc: TensorEnc) {
    match enc {
        TensorEnc::F32 => {
            for &v in vals {
                w.put_f32(v);
            }
        }
        TensorEnc::F16 => {
            for &v in vals {
                w.put_u16(f32_to_f16_bits(v));
            }
        }
        TensorEnc::Bf16 => {
            for &v in vals {
                w.put_u16(f32_to_bf16_bits(v));
            }
        }
        TensorEnc::I8Scale => {
            let scale = i8_scale_for(vals);
            w.put_f32(scale);
            let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
            for &v in vals {
                w.put_u8(quantize_i8(v, inv) as u8);
            }
        }
    }
}

/// Reads `n` f32 values written by [`put_f32_column`] under `enc`.
///
/// # Errors
///
/// [`RlError::Protocol`] on truncation or a non-finite i8 scale.
pub fn get_f32_column(r: &mut ByteReader<'_>, n: usize, enc: TensorEnc) -> RlResult<Vec<f32>> {
    let payload_bytes = n.checked_mul(enc.elem_bytes()).ok_or_else(|| {
        RlError::Protocol(format!("column of {} elements overflows byte count", n))
    })?;
    match enc {
        TensorEnc::F32 => {
            let bytes = r.get_bytes(payload_bytes)?;
            Ok(bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect())
        }
        TensorEnc::F16 | TensorEnc::Bf16 => {
            let bytes = r.get_bytes(payload_bytes)?;
            let decode = if enc == TensorEnc::F16 { f16_bits_to_f32 } else { bf16_bits_to_f32 };
            Ok(bytes
                .chunks_exact(2)
                .map(|c| decode(u16::from_le_bytes(c.try_into().expect("2 bytes"))))
                .collect())
        }
        TensorEnc::I8Scale => {
            let scale = r.get_f32()?;
            if !scale.is_finite() || scale < 0.0 {
                return Err(RlError::Protocol(format!("invalid i8 tensor scale {}", scale)));
            }
            let bytes = r.get_bytes(payload_bytes)?;
            Ok(bytes.iter().map(|&b| (b as i8) as f32 * scale).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrips_exactly_representable_values() {
        for v in [0.0f32, -0.0, 1.0, -1.5, 0.5, 65504.0, -65504.0, 6.103_515_6e-5] {
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            assert_eq!(back.to_bits(), v.to_bits(), "{} -> {}", v, back);
        }
    }

    #[test]
    fn f16_handles_specials_and_overflow() {
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Over f16's max finite (65504) saturates to inf.
        assert_eq!(f32_to_f16_bits(70000.0), 0x7c00);
        // Subnormals roundtrip through the normalization path.
        let tiny = 3.0e-7f32;
        let back = f16_bits_to_f32(f32_to_f16_bits(tiny));
        assert!((back - tiny).abs() <= 5.960_464_5e-8, "{} vs {}", tiny, back);
        // Deep underflow rounds to zero.
        assert_eq!(f32_to_f16_bits(1.0e-12), 0);
    }

    #[test]
    fn f16_round_to_nearest_even() {
        // 1 + 2⁻¹¹ is exactly halfway between 1.0 and the next f16; ties
        // go to the even mantissa (1.0).
        let halfway = f32::from_bits(0x3f80_1000);
        assert_eq!(f32_to_f16_bits(halfway), 0x3c00);
        // Just above the tie rounds up.
        let above = f32::from_bits(0x3f80_1001);
        assert_eq!(f32_to_f16_bits(above), 0x3c01);
    }

    #[test]
    fn bf16_roundtrip_and_nan() {
        for v in [0.0f32, -2.5, 1.0e30, -1.0e-30, f32::INFINITY] {
            let back = bf16_bits_to_f32(f32_to_bf16_bits(v));
            let rel = if v == 0.0 || !v.is_finite() { 0.0 } else { ((back - v) / v).abs() };
            assert!(rel <= 1.0 / 256.0, "{} -> {} rel {}", v, back, rel);
        }
        assert!(bf16_bits_to_f32(f32_to_bf16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn i8_column_error_bound_and_idempotence() {
        let vals = vec![0.1f32, -0.9, 0.33, 1.27, -1.27, 0.0];
        let scale = i8_scale_for(&vals);
        let mut w = ByteWriter::new();
        put_f32_column(&mut w, &vals, TensorEnc::I8Scale);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = get_f32_column(&mut r, vals.len(), TensorEnc::I8Scale).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert!((a - b).abs() <= scale / 2.0 + f32::EPSILON, "{} vs {}", a, b);
        }
        // Re-encoding the decoded column reproduces identical bytes.
        let mut w2 = ByteWriter::new();
        put_f32_column(&mut w2, &back, TensorEnc::I8Scale);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn corrupt_i8_scale_rejected() {
        let mut w = ByteWriter::new();
        w.put_f32(f32::NAN);
        w.put_u8(5);
        let bytes = w.into_bytes();
        let err = get_f32_column(&mut ByteReader::new(&bytes), 1, TensorEnc::I8Scale).unwrap_err();
        assert!(matches!(err, RlError::Protocol(ref m) if m.contains("scale")), "{}", err);
    }
}
