//! v2 wire forms: quantized tensors, columnar trajectories, and delta
//! weight snapshots (DESIGN.md §14).
//!
//! Everything here is negotiated — a peer only ever receives a v2 form
//! after advertising `CAP_CODEC_V2` — and every v2 decoder returns a
//! typed [`RlError::Protocol`] on anything it does not understand, so a
//! version-skewed peer degrades to the v1 forms instead of crashing.
//!
//! # Columnar trajectories
//!
//! The v1 trajectory form repeats a full tensor header (dtype, rank,
//! dims) per field per transition and interleaves unrelated streams,
//! which both wastes bytes and destroys the similarity the LZ stage
//! feeds on. The v2 form writes the shape headers once and then each
//! field as one contiguous column (`states`, `next_states`, `actions`,
//! `rewards`, `terminals` as a bitset, `priorities`), with the f32
//! state columns optionally quantized. `next_state[i]` is usually
//! `state[i+1]`, so the two state columns are near-copies — exactly the
//! long-range redundancy the frame-level LZ matcher collapses.
//!
//! # Delta snapshots
//!
//! The coordinator knows (per subscriber) the exact weights a worker
//! holds: the *dequantized image* of the last snapshot it acked. A
//! delta ships, per variable, only the chunks of `DELTA_CHUNK_ELEMS`
//! elements whose dequantized values changed (changed-chunk bitmap +
//! packed payload). The scheme is drift-free by construction: the
//! payload bytes are produced by the same deterministic conversions
//! that define the dequantized image, so after applying a delta the
//! worker holds bit-for-bit the snapshot the coordinator recorded for
//! it. Any mismatch a peer *can* detect (base-version gap, structural
//! change) is a typed error, and the caller falls back to a full
//! snapshot.

use super::quant::{f32_to_bf16_bits, f32_to_f16_bits, get_f32_column, i8_scale_for, TensorEnc};
use super::{get_tensor, put_tensor};
use crate::wire::{ByteReader, ByteWriter};
use rlgraph_core::{RlError, RlResult};
use rlgraph_dist::WeightsSnapshot;
use rlgraph_memory::Transition;
use rlgraph_tensor::{DType, Tensor};

// ----- encoded tensors -----

/// Appends a tensor under `enc`, extending the [`put_tensor`] tag
/// namespace (f16 = 3, bf16 = 4, i8-with-scale = 5). Non-f32 tensors —
/// and, for [`TensorEnc::I8Scale`], tensors with non-finite values
/// (an infinite max poisons the scale) — ship verbatim as v1 forms.
/// [`get_tensor`] decodes every tag, dequantizing to f32.
pub fn put_tensor_enc(w: &mut ByteWriter, t: &Tensor, enc: TensorEnc) {
    let vals = match t.as_f32() {
        Ok(v) if enc != TensorEnc::F32 => v,
        _ => return put_tensor(w, t),
    };
    if enc == TensorEnc::I8Scale && !vals.iter().all(|v| v.is_finite()) {
        return put_tensor(w, t);
    }
    w.put_u8(enc.tag());
    w.put_u8(t.rank() as u8);
    for &d in t.shape() {
        w.put_u32(d as u32);
    }
    super::quant::put_f32_column(w, vals, enc);
}

/// The f32 values a peer reconstructs when it decodes `vals` encoded
/// under `enc` — i.e. `decode(encode(vals))` without the wire trip.
/// Mirrors [`put_tensor_enc`]'s non-finite i8 fallback.
fn dequantize_vals(vals: &[f32], enc: TensorEnc) -> Vec<f32> {
    match enc {
        TensorEnc::F32 => vals.to_vec(),
        TensorEnc::F16 => {
            vals.iter().map(|&v| super::quant::f16_bits_to_f32(f32_to_f16_bits(v))).collect()
        }
        TensorEnc::Bf16 => {
            vals.iter().map(|&v| super::quant::bf16_bits_to_f32(f32_to_bf16_bits(v))).collect()
        }
        TensorEnc::I8Scale => {
            if !vals.iter().all(|v| v.is_finite()) {
                return vals.to_vec();
            }
            let scale = i8_scale_for(vals);
            let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
            vals.iter().map(|&v| ((v * inv).round_ties_even() as i8) as f32 * scale).collect()
        }
    }
}

/// The dequantized image of `snap` under `enc`: exactly the weights a
/// peer holds after decoding the encoded wire form of `snap`. The
/// coordinator records this per subscriber and diffs against it.
pub fn dequantized_snapshot(snap: &WeightsSnapshot, enc: TensorEnc) -> WeightsSnapshot {
    let weights = snap
        .weights
        .iter()
        .map(|(name, t)| {
            let deq = match t.as_f32() {
                Ok(vals) if enc != TensorEnc::F32 => {
                    Tensor::from_vec(dequantize_vals(vals, enc), t.shape())
                        .expect("same shape as source tensor")
                }
                _ => t.clone(),
            };
            (name.clone(), deq)
        })
        .collect();
    WeightsSnapshot { version: snap.version, weights }
}

/// Appends a full snapshot with every f32 variable encoded under `enc`.
/// Decodable by the plain [`get_snapshot`](super::get_snapshot).
pub fn put_snapshot_enc(w: &mut ByteWriter, snap: &WeightsSnapshot, enc: TensorEnc) {
    w.put_u64(snap.version);
    w.put_u32(snap.weights.len() as u32);
    for (name, t) in &snap.weights {
        w.put_str(name);
        put_tensor_enc(w, t, enc);
    }
}

// ----- delta snapshots -----

/// Elements per delta chunk: the granularity of the changed-chunk
/// bitmap. 64 f32 elements = 256 bytes of payload per bitmap bit.
pub const DELTA_CHUNK_ELEMS: usize = 64;

const DELTA_UNCHANGED: u8 = 0;
const DELTA_FULL: u8 = 1;
const DELTA_CHUNKS: u8 = 2;

fn vals_equal_bitwise(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Appends a delta from `base` (the subscriber's current holdings — a
/// previously dequantized snapshot) to `snap`, encoding changed data
/// under `enc`:
/// `[base_version u64][version u64][enc u8][count u32]` then per
/// variable `[name][mode u8]` with mode 0 = unchanged, 1 = full tensor
/// ([`put_tensor_enc`] form), 2 = changed-chunk bitmap + packed payload.
///
/// # Errors
///
/// [`RlError::Protocol`] (before anything is written) if the variable
/// names don't line up between `base` and `snap` — the caller should
/// send a full snapshot instead.
pub fn put_snapshot_delta(
    w: &mut ByteWriter,
    base: &WeightsSnapshot,
    snap: &WeightsSnapshot,
    enc: TensorEnc,
) -> RlResult<()> {
    if base.weights.len() != snap.weights.len()
        || base.weights.iter().zip(&snap.weights).any(|((a, _), (b, _))| a != b)
    {
        return Err(RlError::Protocol("delta base has different variables".into()));
    }
    w.put_u64(base.version);
    w.put_u64(snap.version);
    w.put_u8(enc.tag());
    w.put_u32(snap.weights.len() as u32);
    for ((name, new), (_, held)) in snap.weights.iter().zip(&base.weights) {
        w.put_str(name);
        let (vals, held_vals) = match (new.as_f32(), held.as_f32()) {
            (Ok(v), Ok(h)) if new.shape() == held.shape() => (v, h),
            _ => {
                // Non-f32 or reshaped variable: full form (or nothing,
                // if it is verbatim-identical).
                if new == held {
                    w.put_u8(DELTA_UNCHANGED);
                } else {
                    w.put_u8(DELTA_FULL);
                    put_tensor_enc(w, new, enc);
                }
                continue;
            }
        };
        // The per-variable effective encoding (i8 refuses non-finite
        // tensors); a downgraded variable ships as a full v1 tensor so
        // the mode-2 payload stays uniformly `enc`.
        if enc == TensorEnc::I8Scale && !vals.iter().all(|v| v.is_finite()) {
            w.put_u8(DELTA_FULL);
            put_tensor_enc(w, new, enc);
            continue;
        }
        let deq = dequantize_vals(vals, enc);
        if vals_equal_bitwise(&deq, held_vals) {
            w.put_u8(DELTA_UNCHANGED);
            continue;
        }
        let chunks = deq.len().div_ceil(DELTA_CHUNK_ELEMS).max(1);
        let mut bitmap = vec![0u8; chunks.div_ceil(8)];
        let mut changed = 0usize;
        for (i, (d, h)) in
            deq.chunks(DELTA_CHUNK_ELEMS).zip(held_vals.chunks(DELTA_CHUNK_ELEMS)).enumerate()
        {
            if !vals_equal_bitwise(d, h) {
                bitmap[i / 8] |= 1 << (i % 8);
                changed += d.len();
            }
        }
        if changed == deq.len() {
            // Everything moved: the bitmap is pure overhead.
            w.put_u8(DELTA_FULL);
            put_tensor_enc(w, new, enc);
            continue;
        }
        w.put_u8(DELTA_CHUNKS);
        w.put_u8(new.rank() as u8);
        for &d in new.shape() {
            w.put_u32(d as u32);
        }
        for &b in &bitmap {
            w.put_u8(b);
        }
        // Payload: the encoded form of every changed chunk, in order.
        // i8 uses the *per-tensor* scale (written once) so the payload
        // dequantizes to exactly the values in `deq`.
        let scale = if enc == TensorEnc::I8Scale { i8_scale_for(vals) } else { 0.0 };
        if enc == TensorEnc::I8Scale {
            w.put_f32(scale);
        }
        let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
        for (i, chunk) in vals.chunks(DELTA_CHUNK_ELEMS).enumerate() {
            if bitmap[i / 8] & (1 << (i % 8)) == 0 {
                continue;
            }
            match enc {
                TensorEnc::F32 => {
                    for &v in chunk {
                        w.put_f32(v);
                    }
                }
                TensorEnc::F16 => {
                    for &v in chunk {
                        w.put_u16(f32_to_f16_bits(v));
                    }
                }
                TensorEnc::Bf16 => {
                    for &v in chunk {
                        w.put_u16(f32_to_bf16_bits(v));
                    }
                }
                TensorEnc::I8Scale => {
                    for &v in chunk {
                        w.put_u8((v * inv).round_ties_even() as i8 as u8);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Applies a delta written by [`put_snapshot_delta`] to `base` (the
/// peer's current holdings), producing the new snapshot.
///
/// # Errors
///
/// [`RlError::Protocol`] if the delta's base version is not
/// `base.version` (a version gap — request a full snapshot), on any
/// structural mismatch, or on malformed input. Never panics.
pub fn get_snapshot_delta(
    r: &mut ByteReader<'_>,
    base: &WeightsSnapshot,
) -> RlResult<WeightsSnapshot> {
    let base_version = r.get_u64()?;
    if base_version != base.version {
        return Err(RlError::Protocol(format!(
            "delta against version {} but peer holds {}",
            base_version, base.version
        )));
    }
    let version = r.get_u64()?;
    let enc_tag = r.get_u8()?;
    let enc = TensorEnc::from_quant_tag(enc_tag)
        .or(if enc_tag == 0 { Some(TensorEnc::F32) } else { None })
        .ok_or_else(|| RlError::Protocol(format!("unknown dtype tag {}", enc_tag)))?;
    let count = r.get_u32()? as usize;
    if count != base.weights.len() {
        return Err(RlError::Protocol(format!(
            "delta carries {} variables, base has {}",
            count,
            base.weights.len()
        )));
    }
    let mut weights = Vec::with_capacity(count.min(65_536));
    for (held_name, held) in &base.weights {
        let name = r.get_str()?;
        if name != *held_name {
            return Err(RlError::Protocol(format!(
                "delta variable {:?} does not match held {:?}",
                name, held_name
            )));
        }
        let tensor = match r.get_u8()? {
            DELTA_UNCHANGED => held.clone(),
            DELTA_FULL => get_tensor(r)?,
            DELTA_CHUNKS => {
                let rank = r.get_u8()? as usize;
                let mut shape = Vec::with_capacity(rank.min(8));
                for _ in 0..rank {
                    shape.push(r.get_u32()? as usize);
                }
                if shape != held.shape() {
                    return Err(RlError::Protocol(format!(
                        "delta chunk shape {:?} does not match held {:?}",
                        shape,
                        held.shape()
                    )));
                }
                let held_vals = held.as_f32().map_err(|_| {
                    RlError::Protocol(format!("chunk delta for non-f32 variable {:?}", name))
                })?;
                let chunks = held_vals.len().div_ceil(DELTA_CHUNK_ELEMS).max(1);
                let mut bitmap = Vec::with_capacity(chunks.div_ceil(8));
                for _ in 0..chunks.div_ceil(8) {
                    bitmap.push(r.get_u8()?);
                }
                let changed: usize = held_vals
                    .chunks(DELTA_CHUNK_ELEMS)
                    .enumerate()
                    .filter(|(i, _)| bitmap[i / 8] & (1 << (i % 8)) != 0)
                    .map(|(_, c)| c.len())
                    .sum();
                let payload = get_f32_column(r, changed, enc)?;
                let mut vals = held_vals.to_vec();
                let mut off = 0usize;
                for (i, chunk) in vals.chunks_mut(DELTA_CHUNK_ELEMS).enumerate() {
                    if bitmap[i / 8] & (1 << (i % 8)) == 0 {
                        continue;
                    }
                    chunk.copy_from_slice(&payload[off..off + chunk.len()]);
                    off += chunk.len();
                }
                Tensor::from_vec(vals, &shape)
                    .map_err(|e| RlError::Protocol(format!("delta rebuild: {}", e.message())))?
            }
            other => {
                return Err(RlError::Protocol(format!("unknown delta mode {}", other)));
            }
        };
        weights.push((name, tensor));
    }
    Ok(WeightsSnapshot { version, weights })
}

// ----- columnar trajectories -----

/// Appends a trajectory batch in columnar form:
/// `[n u32][state shape][action dtype+shape][enc u8]` followed by the
/// `states`, `next_states`, `actions`, `rewards`, `terminals` (bitset),
/// and `priorities` columns. State columns are encoded under `enc`.
///
/// # Errors
///
/// [`RlError::Protocol`] (before anything is written) if the batch is
/// heterogeneous — states/next-states not all f32 of one shape, actions
/// not all one dtype and shape, or a priority-count mismatch. Callers
/// fall back to the v1 [`put_trajectory`](super::put_trajectory).
pub fn put_trajectory_v2(
    w: &mut ByteWriter,
    transitions: &[Transition],
    priorities: &[f32],
    enc: TensorEnc,
) -> RlResult<()> {
    let hetero = |what: &str| RlError::Protocol(format!("batch not columnar: {}", what));
    if priorities.len() != transitions.len() {
        return Err(hetero("priority count mismatch"));
    }
    let first = transitions.first().ok_or_else(|| hetero("empty batch"))?;
    let sshape = first.state.shape();
    let (adtype, ashape) = (first.action.dtype(), first.action.shape());
    for t in transitions {
        if t.state.dtype() != DType::F32
            || t.next_state.dtype() != DType::F32
            || t.state.shape() != sshape
            || t.next_state.shape() != sshape
        {
            return Err(hetero("state shapes or dtypes differ"));
        }
        if t.action.dtype() != adtype || t.action.shape() != ashape {
            return Err(hetero("action shapes or dtypes differ"));
        }
    }
    let n = transitions.len();
    w.put_u32(n as u32);
    w.put_u8(sshape.len() as u8);
    for &d in sshape {
        w.put_u32(d as u32);
    }
    w.put_u8(super::dtype_tag(adtype));
    w.put_u8(ashape.len() as u8);
    for &d in ashape {
        w.put_u32(d as u32);
    }
    w.put_u8(enc.tag());
    for get_state in
        [(|t: &Transition| &t.state) as fn(&Transition) -> &Tensor, |t: &Transition| &t.next_state]
    {
        let col: Vec<f32> = transitions
            .iter()
            .flat_map(|t| get_state(t).as_f32().expect("checked above").iter().copied())
            .collect();
        super::quant::put_f32_column(w, &col, enc);
    }
    match adtype {
        DType::F32 => {
            for t in transitions {
                for &v in t.action.as_f32().expect("checked above") {
                    w.put_f32(v);
                }
            }
        }
        DType::I64 => {
            for t in transitions {
                for &v in t.action.as_i64().expect("checked above") {
                    w.put_i64(v);
                }
            }
        }
        DType::Bool => {
            for t in transitions {
                for &v in t.action.as_bool().expect("checked above") {
                    w.put_u8(v as u8);
                }
            }
        }
    }
    for t in transitions {
        w.put_f32(t.reward);
    }
    let mut bits = vec![0u8; n.div_ceil(8)];
    for (i, t) in transitions.iter().enumerate() {
        if t.terminal {
            bits[i / 8] |= 1 << (i % 8);
        }
    }
    for &b in &bits {
        w.put_u8(b);
    }
    for &p in priorities {
        w.put_f32(p);
    }
    Ok(())
}

/// Reads a trajectory batch written by [`put_trajectory_v2`].
///
/// # Errors
///
/// [`RlError::Protocol`] on malformed input. Never panics.
pub fn get_trajectory_v2(r: &mut ByteReader<'_>) -> RlResult<(Vec<Transition>, Vec<f32>)> {
    let n = r.get_u32()? as usize;
    if n == 0 {
        return Err(RlError::Protocol("empty columnar batch".into()));
    }
    let sshape = read_shape(r)?;
    let adtype = super::dtype_from_tag(r.get_u8()?)?;
    let ashape = read_shape(r)?;
    let enc_tag = r.get_u8()?;
    let enc = TensorEnc::from_quant_tag(enc_tag)
        .or(if enc_tag == 0 { Some(TensorEnc::F32) } else { None })
        .ok_or_else(|| RlError::Protocol(format!("unknown dtype tag {}", enc_tag)))?;
    let selems = shape_elems(&sshape)?;
    let aelems = shape_elems(&ashape)?;
    let scount =
        n.checked_mul(selems).ok_or_else(|| RlError::Protocol("state column overflows".into()))?;
    let acount =
        n.checked_mul(aelems).ok_or_else(|| RlError::Protocol("action column overflows".into()))?;
    let states = get_f32_column(r, scount, enc)?;
    let next_states = get_f32_column(r, scount, enc)?;
    let actions: Vec<Tensor> = match adtype {
        DType::F32 => {
            let col = get_f32_column(r, acount, TensorEnc::F32)?;
            col.chunks(aelems.max(1))
                .take(n)
                .map(|c| Tensor::from_vec(c.to_vec(), &ashape))
                .collect::<Result<_, _>>()
                .map_err(|e| RlError::Protocol(format!("action rebuild: {}", e.message())))?
        }
        DType::I64 => {
            let bytes = r.get_bytes(
                acount
                    .checked_mul(8)
                    .ok_or_else(|| RlError::Protocol("action column overflows".into()))?,
            )?;
            let col: Vec<i64> = bytes
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            col.chunks(aelems.max(1))
                .take(n)
                .map(|c| Tensor::from_vec_i64(c.to_vec(), &ashape))
                .collect::<Result<_, _>>()
                .map_err(|e| RlError::Protocol(format!("action rebuild: {}", e.message())))?
        }
        DType::Bool => {
            let bytes = r.get_bytes(acount)?;
            let mut col = Vec::with_capacity(acount.min(1 << 20));
            for &b in bytes {
                match b {
                    0 => col.push(false),
                    1 => col.push(true),
                    other => {
                        return Err(RlError::Protocol(format!("bool byte 0x{:02x}", other)));
                    }
                }
            }
            col.chunks(aelems.max(1))
                .take(n)
                .map(|c| Tensor::from_vec_bool(c.to_vec(), &ashape))
                .collect::<Result<_, _>>()
                .map_err(|e| RlError::Protocol(format!("action rebuild: {}", e.message())))?
        }
    };
    if aelems == 0 && actions.len() != n {
        // chunks() can't split an empty column; synthesize the repeats.
        return Err(RlError::Protocol("zero-element action space".into()));
    }
    let mut rewards = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        rewards.push(r.get_f32()?);
    }
    let mut bits = Vec::with_capacity(n.div_ceil(8));
    for _ in 0..n.div_ceil(8) {
        bits.push(r.get_u8()?);
    }
    let mut priorities = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        priorities.push(r.get_f32()?);
    }
    let mk_err = |e: rlgraph_tensor::TensorError| {
        RlError::Protocol(format!("state rebuild: {}", e.message()))
    };
    let mut transitions = Vec::with_capacity(n.min(65_536));
    for i in 0..n {
        let s = Tensor::from_vec(states[i * selems..(i + 1) * selems].to_vec(), &sshape)
            .map_err(mk_err)?;
        let ns = Tensor::from_vec(next_states[i * selems..(i + 1) * selems].to_vec(), &sshape)
            .map_err(mk_err)?;
        transitions.push(Transition::new(
            s,
            actions[i].clone(),
            rewards[i],
            ns,
            bits[i / 8] & (1 << (i % 8)) != 0,
        ));
    }
    Ok((transitions, priorities))
}

fn read_shape(r: &mut ByteReader<'_>) -> RlResult<Vec<usize>> {
    let rank = r.get_u8()? as usize;
    let mut shape = Vec::with_capacity(rank.min(8));
    for _ in 0..rank {
        shape.push(r.get_u32()? as usize);
    }
    Ok(shape)
}

fn shape_elems(shape: &[usize]) -> RlResult<usize> {
    shape
        .iter()
        .try_fold(1usize, |a, &d| a.checked_mul(d))
        .ok_or_else(|| RlError::Protocol(format!("shape {:?} overflows element count", shape)))
}

#[cfg(test)]
mod tests {
    use super::super::{get_snapshot, put_snapshot, put_trajectory};
    use super::*;

    fn snap(version: u64, vals: &[(&str, Vec<f32>)]) -> WeightsSnapshot {
        WeightsSnapshot {
            version,
            weights: vals
                .iter()
                .map(|(n, v)| {
                    let shape = [v.len()];
                    (n.to_string(), Tensor::from_vec(v.clone(), &shape).unwrap())
                })
                .collect(),
        }
    }

    #[test]
    fn encoded_tensor_decodes_with_bounded_error() {
        let vals: Vec<f32> = (0..300).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let t = Tensor::from_vec(vals.clone(), &[300]).unwrap();
        for enc in [TensorEnc::F16, TensorEnc::Bf16, TensorEnc::I8Scale] {
            let mut w = ByteWriter::new();
            put_tensor_enc(&mut w, &t, enc);
            let bytes = w.into_bytes();
            let back = get_tensor(&mut ByteReader::new(&bytes)).unwrap();
            assert_eq!(back.shape(), t.shape());
            let tol = match enc {
                TensorEnc::F16 => 3.0 * (1.0 / 2048.0),
                TensorEnc::Bf16 => 3.0 * (1.0 / 256.0),
                TensorEnc::I8Scale => i8_scale_for(&vals) / 2.0 + f32::EPSILON,
                TensorEnc::F32 => 0.0,
            };
            for (a, b) in vals.iter().zip(back.as_f32().unwrap()) {
                assert!((a - b).abs() <= tol, "{:?}: {} vs {}", enc, a, b);
            }
            // Idempotence: re-encoding the decoded tensor is byte-stable.
            let mut w2 = ByteWriter::new();
            put_tensor_enc(&mut w2, &back, enc);
            assert_eq!(w2.into_bytes(), bytes, "{:?} re-encode drifted", enc);
        }
    }

    #[test]
    fn non_f32_and_nonfinite_tensors_ship_verbatim() {
        let i = Tensor::from_vec_i64(vec![1, -2, 3], &[3]).unwrap();
        let mut w = ByteWriter::new();
        put_tensor_enc(&mut w, &i, TensorEnc::F16);
        let bytes = w.into_bytes();
        assert_eq!(get_tensor(&mut ByteReader::new(&bytes)).unwrap(), i);

        let inf = Tensor::from_vec(vec![1.0, f32::INFINITY], &[2]).unwrap();
        let mut w = ByteWriter::new();
        put_tensor_enc(&mut w, &inf, TensorEnc::I8Scale);
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], 0, "non-finite i8 input falls back to plain f32");
        let back = get_tensor(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.as_f32().unwrap()[1], f32::INFINITY);
    }

    fn batch(n: usize) -> (Vec<Transition>, Vec<f32>) {
        let ts: Vec<Transition> = (0..n)
            .map(|i| {
                let s: Vec<f32> = (0..4).map(|j| (i * 4 + j) as f32 * 0.01).collect();
                let ns: Vec<f32> = (0..4).map(|j| ((i + 1) * 4 + j) as f32 * 0.01).collect();
                Transition::new(
                    Tensor::from_vec(s, &[4]).unwrap(),
                    Tensor::scalar_i64((i % 3) as i64),
                    i as f32 * 0.5,
                    Tensor::from_vec(ns, &[4]).unwrap(),
                    i % 5 == 4,
                )
            })
            .collect();
        let ps: Vec<f32> = (0..n).map(|i| 1.0 + i as f32).collect();
        (ts, ps)
    }

    #[test]
    fn columnar_trajectory_roundtrips_exactly_under_f32() {
        let (ts, ps) = batch(17);
        let mut w = ByteWriter::new();
        put_trajectory_v2(&mut w, &ts, &ps, TensorEnc::F32).unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let (bts, bps) = get_trajectory_v2(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(bts, ts);
        assert_eq!(bps, ps);

        // And it is smaller than the v1 form even before quantization
        // (per-transition tensor headers collapse to one).
        let mut w1 = ByteWriter::new();
        put_trajectory(&mut w1, &ts, &ps);
        let v1_len = w1.into_bytes().len();
        assert!(bytes.len() < v1_len, "columnar {} vs v1 {}", bytes.len(), v1_len);

        // With f16 states it saves more than a third.
        let mut wq = ByteWriter::new();
        put_trajectory_v2(&mut wq, &ts, &ps, TensorEnc::F16).unwrap();
        let q_len = wq.into_bytes().len();
        assert!(q_len * 3 < v1_len * 2, "f16 columnar {} vs v1 {}", q_len, v1_len);
    }

    #[test]
    fn columnar_trajectory_quantized_states_within_f16_error() {
        let (ts, ps) = batch(9);
        let mut w = ByteWriter::new();
        put_trajectory_v2(&mut w, &ts, &ps, TensorEnc::F16).unwrap();
        let bytes = w.into_bytes();
        let (bts, bps) = get_trajectory_v2(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(bps, ps);
        for (a, b) in ts.iter().zip(&bts) {
            assert_eq!(a.action, b.action);
            assert_eq!(a.reward, b.reward);
            assert_eq!(a.terminal, b.terminal);
            for (x, y) in a.state.as_f32().unwrap().iter().zip(b.state.as_f32().unwrap()) {
                assert!((x - y).abs() <= x.abs() / 1024.0 + 1e-4, "{} vs {}", x, y);
            }
        }
    }

    #[test]
    fn heterogeneous_batch_is_rejected_before_writing() {
        let (mut ts, ps) = batch(3);
        ts[1] = Transition::new(
            Tensor::from_vec(vec![0.0; 5], &[5]).unwrap(), // different state shape
            Tensor::scalar_i64(0),
            0.0,
            Tensor::from_vec(vec![0.0; 5], &[5]).unwrap(),
            false,
        );
        let mut w = ByteWriter::new();
        let err = put_trajectory_v2(&mut w, &ts, &ps, TensorEnc::F32).unwrap_err();
        assert!(matches!(err, RlError::Protocol(_)));
        assert!(w.is_empty(), "nothing may be written on fallback");
        // Priority mismatch too.
        let (ts, _) = batch(3);
        assert!(put_trajectory_v2(&mut w, &ts, &[1.0], TensorEnc::F32).is_err());
        assert!(put_trajectory_v2(&mut w, &[], &[], TensorEnc::F32).is_err());
    }

    #[test]
    fn corrupt_columnar_batch_is_a_typed_error() {
        let (ts, ps) = batch(4);
        let mut w = ByteWriter::new();
        put_trajectory_v2(&mut w, &ts, &ps, TensorEnc::F32).unwrap();
        let bytes = w.into_bytes();
        // Truncations at every prefix length must error, never panic.
        for cut in 0..bytes.len() {
            let r = get_trajectory_v2(&mut ByteReader::new(&bytes[..cut]));
            assert!(matches!(r, Err(RlError::Protocol(_))), "cut at {}", cut);
        }
        // An unknown encoding tag is a typed error.
        let mut bad = bytes.clone();
        let enc_off = 4 + 1 + 4 + 1 + 1; // n, srank, sdim, adtype, arank (scalar action)
        bad[enc_off] = 9;
        assert!(matches!(get_trajectory_v2(&mut ByteReader::new(&bad)), Err(RlError::Protocol(_))));
    }

    #[test]
    fn snapshot_enc_decodes_with_plain_get_snapshot() {
        let s = snap(7, &[("w", (0..100).map(|i| i as f32 * 0.03).collect())]);
        let mut w = ByteWriter::new();
        put_snapshot_enc(&mut w, &s, TensorEnc::F16);
        let bytes = w.into_bytes();
        let back = get_snapshot(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.version, 7);
        let expect = dequantized_snapshot(&s, TensorEnc::F16);
        assert_eq!(back.weights, expect.weights);
    }

    #[test]
    fn delta_apply_reproduces_dequantized_snapshot_bitwise() {
        for enc in [TensorEnc::F32, TensorEnc::F16, TensorEnc::Bf16, TensorEnc::I8Scale] {
            let v1 = snap(
                1,
                &[("a", (0..200).map(|i| (i as f32 * 0.11).cos()).collect()), ("b", vec![0.5; 96])],
            );
            // The subscriber holds the dequantized image of v1.
            let held = dequantized_snapshot(&v1, enc);
            // v2 changes one chunk of "a" and nothing in "b".
            let mut a2: Vec<f32> = v1.weights[0].1.as_f32().unwrap().to_vec();
            for v in a2[64..128].iter_mut() {
                *v += 0.25;
            }
            let v2 = snap(2, &[("a", a2), ("b", vec![0.5; 96])]);
            let mut w = ByteWriter::new();
            put_snapshot_delta(&mut w, &held, &v2, enc).unwrap();
            let delta_bytes = w.into_bytes();
            let applied = get_snapshot_delta(&mut ByteReader::new(&delta_bytes), &held).unwrap();
            let expect = dequantized_snapshot(&v2, enc);
            assert_eq!(applied.version, 2);
            for ((n1, t1), (n2, t2)) in applied.weights.iter().zip(&expect.weights) {
                assert_eq!(n1, n2);
                for (x, y) in t1.as_f32().unwrap().iter().zip(t2.as_f32().unwrap()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{:?} var {} drifted", enc, n1);
                }
            }
            // The delta is smaller than the full encoded snapshot.
            let mut wf = ByteWriter::new();
            put_snapshot_enc(&mut wf, &v2, enc);
            assert!(
                delta_bytes.len() < wf.into_bytes().len(),
                "{:?}: delta {} bytes not smaller",
                enc,
                delta_bytes.len()
            );
        }
    }

    #[test]
    fn delta_version_gap_and_structure_mismatch_are_typed_errors() {
        let held = snap(3, &[("a", vec![1.0; 64])]);
        let next = snap(4, &[("a", vec![2.0; 64])]);
        let mut w = ByteWriter::new();
        put_snapshot_delta(&mut w, &held, &next, TensorEnc::F32).unwrap();
        let bytes = w.into_bytes();
        // Peer actually holds version 2 → version-gap error → full resync.
        let stale = snap(2, &[("a", vec![1.0; 64])]);
        let err = get_snapshot_delta(&mut ByteReader::new(&bytes), &stale).unwrap_err();
        assert!(matches!(err, RlError::Protocol(ref m) if m.contains("version")), "{}", err);
        // Renamed variable on the encode side refuses up front.
        let renamed = snap(3, &[("zzz", vec![1.0; 64])]);
        let mut w2 = ByteWriter::new();
        assert!(put_snapshot_delta(&mut w2, &renamed, &next, TensorEnc::F32).is_err());
        assert!(w2.is_empty());
        // Renamed variable on the decode side is a typed error.
        let err = get_snapshot_delta(&mut ByteReader::new(&bytes), &renamed).unwrap_err();
        assert!(matches!(err, RlError::Protocol(_)), "{}", err);
    }

    #[test]
    fn unchanged_snapshot_delta_is_tiny() {
        let held = snap(5, &[("a", vec![0.25; 1024]), ("b", vec![-1.0; 512])]);
        let next = snap(6, &[("a", vec![0.25; 1024]), ("b", vec![-1.0; 512])]);
        let mut w = ByteWriter::new();
        put_snapshot_delta(&mut w, &held, &next, TensorEnc::F32).unwrap();
        let bytes = w.into_bytes();
        assert!(bytes.len() < 64, "all-unchanged delta is {} bytes", bytes.len());
        let applied = get_snapshot_delta(&mut ByteReader::new(&bytes), &held).unwrap();
        assert_eq!(applied.weights, held.weights);
        assert_eq!(applied.version, 6);
    }
}
