//! rlgraph-net: a from-scratch TCP transport, RPC layer, and
//! multi-process runtime for rlgraph's distributed execution and
//! serving (DESIGN.md §11).
//!
//! Everything is built on `std::net` — no async runtime, no external
//! networking crates — mirroring how the rest of the workspace builds
//! its machinery from the ground up:
//!
//! * [`wire`] — little-endian scalar encode/decode and CRC32.
//! * [`frame`] — length-prefixed frames with magic/version header and
//!   CRC trailer; corrupt or truncated input is a typed error, never a
//!   panic or an OOM.
//! * [`codec`] — binary encodings for the workspace's core types:
//!   tensors, spaces, transitions/trajectories, weight snapshots,
//!   learner checkpoints, and the full [`RlError`](rlgraph_core::RlError)
//!   taxonomy (errors cross the wire with their severity class intact).
//! * [`rpc`] — thread-per-connection request/response RPC with request
//!   ids, per-call deadlines, and retry/backoff via
//!   [`RetryPolicy`](rlgraph_dist::RetryPolicy).
//! * [`services`] — replay shards and the learner coordinator as RPC
//!   services with typed clients.
//! * [`proc`] — worker specs and the re-exec child launcher.
//! * [`apex_net`] — Ape-X as real OS processes on localhost.
//! * [`serve_tcp`] — a TCP front-end feeding the policy server's
//!   admission queue, so remote clients coalesce in the micro-batcher.
//! * [`proxy`] — deterministic seeded fault injection (delay / drop /
//!   partition) between any client and server.

#![warn(missing_docs)]

pub mod apex_net;
pub mod codec;
pub mod fragment_remote;
pub mod proc;
pub mod proxy;
pub mod rpc;
pub mod serve_tcp;
pub mod services;
pub mod transport;

// The byte-level layers (wire primitives, frame format, trace/error
// codecs, the `RpcService` trait) moved down into `rlgraph-reactor` so
// the blocking and readiness-driven stacks share one codec; the module
// re-exports keep every `rlgraph_net::frame::...` path working.
pub use rlgraph_reactor::{frame, wire};

pub use apex_net::{
    run_apex_net, ElasticConfig, LaunchMode, NetApexConfig, NetApexConfigBuilder, NetApexStats,
    ThroughputPoint,
};
pub use fragment_remote::{net_apex_graph, net_apex_placement, validate_net_apex};
pub use frame::{
    read_frame, write_frame, FrameKind, FRAME_OVERHEAD, MAGIC, MAX_FRAME_LEN, VERSION,
};
pub use proc::{maybe_run_child, run_worker, spawn_worker, EnvSpec, WorkerSpec, WORKER_ENV_VAR};
pub use proxy::{Direction, FaultProxy, FaultProxyConfig};
pub use rpc::{RpcClient, RpcServer, RpcService};
pub use serve_tcp::{NetPolicyClient, ServeTcpFrontend};
pub use services::{
    CoordClient, CoordProgress, CoordService, Heartbeat, ShardClient, ShardService,
};
pub use transport::{ServerHandle, Transport};
pub use wire::{crc32, ByteReader, ByteWriter};
