//! Worker processes: spec serialization, the re-exec launcher, and the
//! worker main loop.
//!
//! The launcher re-invokes the **current executable** with a JSON
//! [`WorkerSpec`] in the `RLGRAPH_NET_WORKER` environment variable; a
//! cooperating binary calls [`maybe_run_child`] as its very first
//! statement, which hijacks the process into [`run_worker`] and exits
//! before the host program's own logic runs. This is the
//! single-binary-cluster idiom: no separate worker executable to build,
//! install, or version-skew against.
//!
//! Because a worker is (re)constructed in a fresh address space, its
//! spec must carry everything needed to rebuild the actor: the agent
//! config, an [`EnvSpec`] (environments cannot be serialized — their
//! *constructors* can), and the coordinator/shard socket addresses.

use crate::services::{CoordClient, Heartbeat, ShardClient};
use rlgraph_agents::apex::ApexWorker;
use rlgraph_agents::DqnConfig;
use rlgraph_core::{CoreError, RlError, RlResult};
use rlgraph_dist::cluster::HashRing;
use rlgraph_dist::ray::apex_worker_epsilon;
use rlgraph_dist::retry::{RetryPolicy, ThreadSleeper};
use rlgraph_envs::{CartPole, Env, RandomEnv, VectorEnv};
use rlgraph_obs::{DeltaTracker, Recorder, DEFAULT_FLIGHT_CAPACITY};
use std::net::SocketAddr;
use std::time::Duration;

/// Environment variable carrying a child's JSON [`WorkerSpec`].
pub const WORKER_ENV_VAR: &str = "RLGRAPH_NET_WORKER";

/// A serializable environment constructor: which environment to build
/// in a worker process, minus the per-copy seed (assigned at build time
/// from worker and env indices).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum EnvSpec {
    /// `RandomEnv::new(&shape, actions, episode_len, seed)`
    Random {
        /// observation shape
        shape: Vec<usize>,
        /// number of discrete actions
        actions: i64,
        /// steps per episode
        episode_len: u32,
    },
    /// `CartPole::new(seed, max_steps)`
    CartPole {
        /// episode step cap
        max_steps: u32,
    },
}

impl EnvSpec {
    /// Builds one environment copy with the given seed.
    pub fn build(&self, seed: u64) -> Box<dyn Env> {
        match self {
            EnvSpec::Random { shape, actions, episode_len } => {
                Box::new(RandomEnv::new(shape, *actions, *episode_len, seed))
            }
            EnvSpec::CartPole { max_steps } => Box::new(CartPole::new(seed, *max_steps)),
        }
    }
}

/// Everything a worker process needs to reconstruct its actor and join
/// the run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WorkerSpec {
    /// this worker's index
    pub worker: u32,
    /// total workers in the run (fixes the exploration ladder)
    pub num_workers: u32,
    /// agent configuration (exploration is overridden per the ladder)
    pub agent: DqnConfig,
    /// environment constructor
    pub env: EnvSpec,
    /// vectorised environments in this worker
    pub envs_per_worker: u32,
    /// samples per collection task
    pub task_size: u32,
    /// coordinator RPC address, `host:port`
    pub coord_addr: String,
    /// replay-shard RPC addresses, `host:port` each
    pub shard_addrs: Vec<String>,
    /// per-RPC deadline in milliseconds (0 = none)
    pub rpc_deadline_ms: u64,
    /// whether to run with a live recorder: span capture, metric
    /// shipping on heartbeats, clock-offset estimation, and a flight
    /// recorder armed for crash dumps (defaults off so old specs parse)
    #[serde(default)]
    pub telemetry: bool,
    /// ship traffic under the v2 wire codec (DESIGN.md §14) — defaults
    /// off so old specs parse and behave identically
    #[serde(default)]
    pub compression: bool,
    /// the worker's incarnation for membership tracking (DESIGN.md
    /// §16); `0` (the default, so old specs parse) disables membership:
    /// no join/leave, beats not liveness-checked
    #[serde(default)]
    pub generation: u64,
    /// test hook: crash (error out *without* a leave) after completing
    /// this many tasks — simulates a kill for eviction tests where the
    /// worker runs on a thread that cannot receive a real signal
    #[serde(default)]
    pub die_after_tasks: Option<u64>,
    /// pause after each task, in milliseconds (`0` = none): paces
    /// collection to simulate env-latency-bound workers, so fleet
    /// size — not CPU share — sets total inflow on small hosts
    #[serde(default)]
    pub task_throttle_ms: u64,
}

/// If this process was launched as a worker child, runs the worker to
/// completion and **exits the process** (status 0 on a clean stop, 1 on
/// error). Returns quietly when the process is not a child.
///
/// Call this first thing in `main` of any binary that drives
/// [`run_apex_net`](crate::run_apex_net) with process-mode workers.
pub fn maybe_run_child() {
    let Ok(json) = std::env::var(WORKER_ENV_VAR) else { return };
    let spec: WorkerSpec = match serde_json::from_str(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rlgraph-net worker: bad {} spec: {}", WORKER_ENV_VAR, e);
            std::process::exit(1);
        }
    };
    match run_worker(&spec) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("rlgraph-net worker {}: {}", spec.worker, e);
            std::process::exit(1);
        }
    }
}

/// Launches one worker child: the current executable re-invoked with
/// the spec in [`WORKER_ENV_VAR`].
///
/// # Errors
///
/// `RlError::Io` when the executable path cannot be resolved or the
/// child fails to spawn.
pub fn spawn_worker(spec: &WorkerSpec) -> RlResult<std::process::Child> {
    let exe = std::env::current_exe()?;
    let json = serde_json::to_string(spec)
        .map_err(|e| RlError::Protocol(format!("worker spec does not serialize: {}", e)))?;
    let child = std::process::Command::new(exe)
        .env(WORKER_ENV_VAR, json)
        .stdin(std::process::Stdio::null())
        .spawn()?;
    Ok(child)
}

fn parse_addr(s: &str) -> RlResult<SocketAddr> {
    s.parse::<SocketAddr>()
        .map_err(|e| RlError::Protocol(format!("bad socket address {:?}: {}", s, e)))
}

fn connect_retrying<T>(mut connect: impl FnMut() -> RlResult<T>, what: &str) -> RlResult<T> {
    // Generous because a freshly forked sibling may still be binding.
    let mut last = None;
    for _ in 0..50 {
        match connect() {
            Ok(t) => return Ok(t),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    Err(last.unwrap_or_else(|| RlError::disconnected(what)))
}

/// The worker main loop: sync weights from the coordinator, collect,
/// ship trajectories to shards round-robin, heartbeat until told to
/// stop.
///
/// Runs identically inside a child process ([`maybe_run_child`]) and on
/// a plain thread (tests, [`crate::LaunchMode::Thread`]) — either way
/// all traffic crosses real TCP sockets.
///
/// # Errors
///
/// Fatal RPC errors, agent build errors, or retry exhaustion against a
/// persistently unreachable peer.
pub fn run_worker(spec: &WorkerSpec) -> RlResult<()> {
    let recorder = if spec.telemetry {
        let r = Recorder::wall();
        r.enable_flight(DEFAULT_FLIGHT_CAPACITY);
        r
    } else {
        Recorder::disabled()
    };
    let result = run_worker_inner(spec, &recorder);
    if result.is_err() {
        // Post-mortem: the last few thousand spans/notes, to stderr so
        // the parent's reap path can surface them.
        if let Some(dump) = recorder.flight_render("worker error exit") {
            eprintln!("{}", dump);
        }
    }
    result
}

fn run_worker_inner(spec: &WorkerSpec, recorder: &Recorder) -> RlResult<()> {
    let deadline = (spec.rpc_deadline_ms > 0).then(|| Duration::from_millis(spec.rpc_deadline_ms));
    let mut coord = connect_retrying(
        || CoordClient::connect(parse_addr(&spec.coord_addr)?, recorder),
        "coordinator",
    )?;
    coord.set_deadline(deadline);
    if spec.compression {
        coord.set_codec(crate::codec::CodecProfile::COMPRESSED);
    } else {
        // Compression off must mean a true v1 baseline, not a silently
        // LZ-negotiated wire — the A/B in net_bench depends on it.
        coord.set_plain_wire();
    }
    let mut shards = Vec::with_capacity(spec.shard_addrs.len());
    for (i, addr) in spec.shard_addrs.iter().enumerate() {
        let mut c = connect_retrying(
            || ShardClient::connect(&format!("shard-{}", i), parse_addr(addr)?, recorder),
            "replay shard",
        )?;
        c.set_deadline(deadline);
        if spec.compression {
            c.set_codec(crate::codec::CodecProfile::COMPRESSED);
        } else {
            c.set_plain_wire();
        }
        shards.push(c);
    }

    // Same per-worker setup as the in-process executor: tiny local
    // memory (workers never learn), ladder exploration, decorrelated
    // seed.
    let mut cfg = spec.agent.clone();
    cfg.memory_capacity = 16;
    cfg.seed = spec.agent.seed.wrapping_add(spec.worker as u64 * 7919);
    let eps = apex_worker_epsilon(spec.worker as usize, spec.num_workers as usize);
    cfg.epsilon = rlgraph_agents::EpsilonSchedule { start: eps, end: eps, decay_steps: 1 };
    let envs = VectorEnv::new(
        (0..spec.envs_per_worker).map(|e| spec.env.build((spec.worker * 10 + e) as u64)).collect(),
    )
    .map_err(|e| RlError::Core(CoreError::new(e.message())))?;
    let mut worker = ApexWorker::new(cfg, envs)?;

    let policy = RetryPolicy {
        max_attempts: 8,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(200),
        multiplier: 2.0,
        deadline: None,
    };
    let sleeper = ThreadSleeper::new();
    // Membership (generation > 0): announce this incarnation before the
    // first task. A zombie from an older incarnation dies right here
    // with a typed StaleGeneration instead of polluting the run.
    if spec.generation > 0 {
        policy.run(&sleeper, |_| coord.join(spec.worker, spec.generation))?;
    }
    // Trajectory routing: (worker, task) keys hash onto the shard ring;
    // an unreachable home shard fails over to its ring successors, so
    // one dead shard reroutes only its own arc of the key space.
    let ring = HashRing::with_nodes(spec.shard_addrs.len() as u32);
    let mut seen_version = 0u64;
    let mut task = 0u64;
    // Telemetry: metric deltas piggyback on heartbeats, and each beat's
    // RTT refines the worker's estimate of the coordinator's clock
    // (offset = coord reply time − beat midpoint, min-RTT filtered).
    let mut tracker = DeltaTracker::new();
    let mailbox = recorder.gauge_aliased("frag.rollout.mailbox_depth", &["worker.mailbox_depth"]);
    let mut best_rtt = 0u64;
    let mut best_offset = 0i64;
    loop {
        // Weight sync: one cheap poll per task; the coordinator answers
        // with a snapshot only when the hub moved past `seen_version`.
        let snap = policy.run(&sleeper, |_| coord.get_weights(seen_version))?;
        if let Some(snap) = snap {
            worker.agent_mut().set_weights(&snap.weights)?;
            seen_version = snap.version;
        }
        let batch = {
            let _span = recorder.span("worker.collect");
            worker.collect(spec.task_size as usize)?
        };
        recorder.flight_note("worker.task", format!("task {}: {} samples", task, batch.len()));
        let snapshot = if recorder.is_enabled() {
            mailbox.set(batch.len() as f64);
            Some(tracker.delta(&recorder.metrics_snapshot()))
        } else {
            None
        };
        let beat = Heartbeat {
            worker: spec.worker,
            frames: batch.env_frames,
            samples: batch.len() as u64,
            returns: batch.episode_returns.clone(),
            offset_us: best_offset,
            rtt_us: best_rtt,
            snapshot,
            generation: spec.generation,
        };
        let key = ((spec.worker as u64) << 32) | task;
        let mut last_err = None;
        let mut inserted = false;
        for &s in &ring.successors(key, shards.len()) {
            match policy
                .run(&sleeper, |_| shards[s as usize].insert(&batch.transitions, &batch.priorities))
            {
                Ok(()) => {
                    inserted = true;
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        if !inserted {
            return Err(last_err.unwrap_or_else(|| RlError::disconnected("replay shards")));
        }
        mailbox.set(0.0);
        // Crash-injection hook: die after the insert, before the beat —
        // the coordinator never hears about this task and must evict us
        // by missed-beat timeout (no LEAVE is sent on this path).
        if spec.die_after_tasks.is_some_and(|n| task + 1 >= n) {
            return Err(RlError::ActorCrashed {
                actor: format!("worker-{}", spec.worker),
                reason: "die_after_tasks test hook".into(),
            });
        }
        let (reply, t0, t1) = policy.run(&sleeper, |_| {
            let t0 = recorder.now_micros();
            let rep = coord.heartbeat(&beat)?;
            Ok((rep, t0, recorder.now_micros()))
        })?;
        if recorder.is_enabled() && reply.coord_now_us != 0 {
            let rtt = t1.saturating_sub(t0).max(1);
            if best_rtt == 0 || rtt < best_rtt {
                best_rtt = rtt;
                best_offset = reply.coord_now_us as i64 - ((t0 + t1) / 2) as i64;
            }
        }
        if reply.stop || reply.retire {
            if recorder.is_enabled() {
                // Ship the span buffer for the coordinator's merged
                // cluster trace; best-effort — the run is over.
                let _ =
                    coord.push_trace(&format!("worker-{}", spec.worker), &recorder.trace_dump());
            }
            if spec.generation > 0 {
                // Clean departure (stop and retire alike): every
                // collected transition was inserted *before* the beat
                // that delivered this reply, so nothing is stranded.
                let _ = coord.leave(spec.worker);
            }
            return Ok(());
        }
        task += 1;
        if spec.task_throttle_ms > 0 {
            std::thread::sleep(Duration::from_millis(spec.task_throttle_ms));
        }
    }
}
