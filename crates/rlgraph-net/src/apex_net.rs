//! The multi-process Ape-X runtime: real OS processes on localhost,
//! wired together with the crate's RPC layer.
//!
//! Topology (all sockets on 127.0.0.1):
//!
//! ```text
//!   child process per worker ──TCP──▶ shard RPC servers (parent)
//!        │  collect / insert              ▲ sample / update_priorities
//!        │                               │
//!        └──TCP──▶ coordinator ◀── WeightHub ◀── learner loop (parent)
//!            get_weights / heartbeat
//! ```
//!
//! The parent hosts the replay shards and the coordinator; workers are
//! launched by re-invoking the current executable ([`crate::proc`]).
//! The learner samples from its own shards **over TCP too** — every
//! replay byte crosses the wire codec in both directions, so the
//! measured gap to the in-process executor prices the full transport,
//! not half of it. Weight sync is parameter-server style: the learner
//! publishes into the same [`WeightHub`] the serving stack uses, and
//! workers poll versioned snapshots out through the coordinator.

use crate::proc::{run_worker, spawn_worker, EnvSpec, WorkerSpec};
use crate::proxy::{FaultProxy, FaultProxyConfig};
use crate::services::{CoordClient, CoordService, ShardClient, ShardService, DEFAULT_BEAT_TIMEOUT};
use crate::transport::Transport;
use rlgraph_agents::{DqnAgent, DqnConfig};
use rlgraph_core::{CoreError, RlResult};
use rlgraph_dist::checkpoint::LearnerCheckpoint;
use rlgraph_dist::fragment::ElasticStage;
use rlgraph_dist::sync::WeightHub;
use rlgraph_dist::{Autoscaler, AutoscalerConfig, ScaleDecision, ScaleSignals};
use rlgraph_obs::{merged_chrome_trace, DeltaTracker, ProcessTrace, Recorder};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How workers are hosted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchMode {
    /// Real OS processes via [`crate::proc::spawn_worker`]. The driving
    /// binary **must** call [`crate::proc::maybe_run_child`] first thing
    /// in `main`.
    Process,
    /// Threads in this process running the same [`run_worker`] loop
    /// over the same TCP sockets. For tests and harnesses that cannot
    /// safely re-exec themselves.
    Thread,
}

/// Elastic-fleet configuration (DESIGN.md §16): the rollout stage
/// becomes a resizable pool driven by a scripted schedule and/or the
/// obs-driven [`Autoscaler`], with heartbeat-timeout liveness and
/// mid-run worker spawn/retire through the membership plane.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// never retire below this many workers
    pub min_workers: usize,
    /// never spawn above this many workers
    pub max_workers: usize,
    /// scripted scale steps: at `offset` from run start, move the pool
    /// to `target` workers. Steps must be sorted by offset.
    pub schedule: Vec<(Duration, usize)>,
    /// obs-driven policy, consulted once the schedule is exhausted
    pub autoscaler: Option<AutoscalerConfig>,
    /// evict a member after this long without a heartbeat
    pub beat_timeout: Duration,
    /// replay-ratio cap: hold the learner when
    /// `updates > samples * ratio`, so update throughput tracks
    /// collection inflow (and therefore worker count) instead of
    /// saturating on stale data
    pub max_updates_per_sample: Option<f64>,
    /// chaos hook: SIGKILL the highest-index live worker at this offset
    /// ([`LaunchMode::Process`] only) — the membership sweep must evict
    /// it and the ring reroutes its keys, with zero lost transitions
    pub chaos_kill: Option<Duration>,
    /// pause each worker after every task: makes workers
    /// env-latency-bound rather than CPU-bound, so collection inflow
    /// scales with fleet size even on single-core hosts
    pub worker_throttle: Option<Duration>,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            min_workers: 1,
            max_workers: 16,
            schedule: Vec::new(),
            autoscaler: None,
            beat_timeout: DEFAULT_BEAT_TIMEOUT,
            max_updates_per_sample: None,
            chaos_kill: None,
            worker_throttle: None,
        }
    }
}

/// Configuration of a multi-process Ape-X run.
#[derive(Clone)]
pub struct NetApexConfig {
    /// learner/worker agent configuration
    pub agent: DqnConfig,
    /// environment constructor shipped to workers
    pub env: EnvSpec,
    /// worker count (one OS process each in [`LaunchMode::Process`])
    pub num_workers: usize,
    /// vectorised environments per worker
    pub envs_per_worker: usize,
    /// samples per collection task
    pub task_size: usize,
    /// replay shards (each its own RPC server)
    pub num_shards: usize,
    /// publish weights every k learner updates
    pub weight_sync_interval: u64,
    /// stop after this wall-clock duration
    pub run_duration: Duration,
    /// optional hard cap on learner updates
    pub max_updates: Option<u64>,
    /// per-RPC deadline on worker and learner calls
    pub rpc_deadline: Duration,
    /// worker hosting mode
    pub launch: LaunchMode,
    /// optional fault proxy interposed between workers and every shard
    pub shard_proxy: Option<FaultProxyConfig>,
    /// server stack fronting the shards and the coordinator — clients
    /// are wire-compatible with both, so this flips freely
    pub transport: Transport,
    /// ship replay and weight traffic under the v2 wire codec
    /// (f16-quantized tensors, delta weight sync, columnar
    /// trajectories, LZ frame compression — DESIGN.md §14); servers
    /// decode transparently and old peers downgrade to plain v1
    pub compression: bool,
    /// elastic fleet: membership tracking, scripted/autoscaled
    /// resizing, heartbeat-timeout eviction (`None` = fixed fleet,
    /// bit-identical to the pre-elastic runtime)
    pub elastic: Option<ElasticConfig>,
    /// observability recorder (servers, clients, learner)
    pub recorder: Recorder,
}

impl Default for NetApexConfig {
    fn default() -> Self {
        NetApexConfig {
            agent: DqnConfig::default(),
            env: EnvSpec::Random { shape: vec![4], actions: 2, episode_len: 20 },
            num_workers: 2,
            envs_per_worker: 4,
            task_size: 64,
            num_shards: 2,
            weight_sync_interval: 16,
            run_duration: Duration::from_secs(5),
            max_updates: None,
            rpc_deadline: Duration::from_secs(5),
            launch: LaunchMode::Process,
            shard_proxy: None,
            transport: Transport::default(),
            compression: false,
            elastic: None,
            recorder: Recorder::disabled(),
        }
    }
}

impl NetApexConfig {
    /// A builder seeded with the defaults, sharing the unified
    /// [`DriverConfigBuilder`](rlgraph_dist::DriverConfigBuilder)
    /// vocabulary with the in-process drivers.
    pub fn builder() -> NetApexConfigBuilder {
        NetApexConfigBuilder { draft: NetApexConfig::default() }
    }
}

/// Builder for [`NetApexConfig`]; validates on
/// [`build`](NetApexConfigBuilder::build).
#[derive(Clone, Default)]
pub struct NetApexConfigBuilder {
    draft: NetApexConfig,
}

impl NetApexConfigBuilder {
    /// Learner/worker agent configuration.
    pub fn agent(mut self, agent: DqnConfig) -> Self {
        self.draft.agent = agent;
        self
    }

    /// Environment constructor shipped to workers.
    pub fn env(mut self, env: EnvSpec) -> Self {
        self.draft.env = env;
        self
    }

    /// Worker count. Deprecated spelling of
    /// [`parallelism`](rlgraph_dist::DriverConfigBuilder::parallelism).
    pub fn num_workers(mut self, n: usize) -> Self {
        self.draft.num_workers = n;
        self
    }

    /// Vectorised environments per worker.
    pub fn envs_per_worker(mut self, n: usize) -> Self {
        self.draft.envs_per_worker = n;
        self
    }

    /// Samples per collection task.
    pub fn task_size(mut self, n: usize) -> Self {
        self.draft.task_size = n;
        self
    }

    /// Replay shard count (one RPC server each).
    pub fn num_shards(mut self, n: usize) -> Self {
        self.draft.num_shards = n;
        self
    }

    /// Publish weights every `k` learner updates. Deprecated spelling of
    /// [`sync_every`](rlgraph_dist::DriverConfigBuilder::sync_every).
    pub fn weight_sync_interval(mut self, k: u64) -> Self {
        self.draft.weight_sync_interval = k;
        self
    }

    /// Stop after this wall-clock duration. Deprecated spelling of
    /// [`budget`](rlgraph_dist::DriverConfigBuilder::budget).
    pub fn run_duration(mut self, d: Duration) -> Self {
        self.draft.run_duration = d;
        self
    }

    /// Optional hard cap on learner updates. Deprecated spelling of
    /// [`budget`](rlgraph_dist::DriverConfigBuilder::budget).
    pub fn max_updates(mut self, cap: Option<u64>) -> Self {
        self.draft.max_updates = cap;
        self
    }

    /// Per-RPC deadline on worker and learner calls.
    pub fn rpc_deadline(mut self, d: Duration) -> Self {
        self.draft.rpc_deadline = d;
        self
    }

    /// Worker hosting mode (the rollout fragment's placement).
    pub fn launch(mut self, mode: LaunchMode) -> Self {
        self.draft.launch = mode;
        self
    }

    /// Optional fault proxy between workers and every shard.
    pub fn shard_proxy(mut self, proxy: Option<FaultProxyConfig>) -> Self {
        self.draft.shard_proxy = proxy;
        self
    }

    /// Server stack fronting shards and coordinator.
    pub fn transport(mut self, transport: Transport) -> Self {
        self.draft.transport = transport;
        self
    }

    /// Ship replay and weight traffic under the v2 wire codec.
    pub fn compression(mut self, on: bool) -> Self {
        self.draft.compression = on;
        self
    }

    /// Elastic fleet: membership tracking, scripted/autoscaled
    /// resizing, heartbeat-timeout eviction.
    pub fn elastic(mut self, elastic: Option<ElasticConfig>) -> Self {
        self.draft.elastic = elastic;
        self
    }

    /// Observability recorder. Deprecated spelling of
    /// [`observe_with`](rlgraph_dist::DriverConfigBuilder::observe_with).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.draft.recorder = recorder;
        self
    }

    /// Validates and builds the config.
    ///
    /// # Errors
    ///
    /// Zero workers/shards/task size, a zero sync interval, or a
    /// declaration the fragment graph rejects.
    pub fn build(self) -> RlResult<NetApexConfig> {
        let c = self.draft;
        if c.num_workers == 0 {
            return Err(CoreError::new("num_workers must be >= 1").into());
        }
        if c.envs_per_worker == 0 {
            return Err(CoreError::new("envs_per_worker must be >= 1").into());
        }
        if c.task_size == 0 {
            return Err(CoreError::new("task_size must be >= 1").into());
        }
        if c.num_shards == 0 {
            return Err(CoreError::new("num_shards must be >= 1").into());
        }
        if c.weight_sync_interval == 0 {
            return Err(CoreError::new("weight_sync_interval must be >= 1").into());
        }
        if let Some(e) = &c.elastic {
            if e.min_workers == 0 {
                return Err(CoreError::new("elastic.min_workers must be >= 1").into());
            }
            if e.min_workers > c.num_workers || c.num_workers > e.max_workers {
                return Err(CoreError::new(format!(
                    "num_workers {} outside elastic bounds {}..={}",
                    c.num_workers, e.min_workers, e.max_workers
                ))
                .into());
            }
            if e.beat_timeout.is_zero() {
                return Err(CoreError::new("elastic.beat_timeout must be > 0").into());
            }
            for (off, target) in &e.schedule {
                if *target < e.min_workers || *target > e.max_workers {
                    return Err(CoreError::new(format!(
                        "schedule target {} at {:?} outside elastic bounds {}..={}",
                        target, off, e.min_workers, e.max_workers
                    ))
                    .into());
                }
            }
            if !e.schedule.windows(2).all(|w| w[0].0 <= w[1].0) {
                return Err(CoreError::new("elastic.schedule must be sorted by offset").into());
            }
            if e.chaos_kill.is_some() && c.launch != LaunchMode::Process {
                return Err(CoreError::new(
                    "elastic.chaos_kill needs LaunchMode::Process (threads cannot be killed); \
                     use WorkerSpec::die_after_tasks for thread-mode crash tests",
                )
                .into());
            }
            if let Some(r) = e.max_updates_per_sample {
                if !(r.is_finite() && r > 0.0) {
                    return Err(CoreError::new("elastic.max_updates_per_sample must be > 0").into());
                }
            }
        }
        // The declarative contract is part of validity: a config that
        // cannot be declared as a placed fragment graph is rejected here,
        // not at spawn time.
        crate::fragment_remote::validate_net_apex(&c)?;
        Ok(c)
    }
}

impl rlgraph_dist::DriverConfigBuilder for NetApexConfigBuilder {
    type Config = NetApexConfig;

    fn parallelism(self, n: usize) -> Self {
        self.num_workers(n)
    }

    fn sync_every(self, k: u64) -> Self {
        self.weight_sync_interval(k)
    }

    fn budget(self, budget: rlgraph_dist::RunBudget) -> Self {
        let b = match budget.wall {
            Some(d) => self.run_duration(d),
            None => self,
        };
        b.max_updates(budget.max_updates)
    }

    fn observe_with(self, recorder: Recorder) -> Self {
        self.recorder(recorder)
    }

    fn try_build(self) -> RlResult<NetApexConfig> {
        self.build()
    }
}

/// One point on an elastic run's throughput trace, sampled by the
/// coordinator on a fixed cadence.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThroughputPoint {
    /// seconds since run start
    pub t_secs: f64,
    /// live workers at sample time
    pub workers: usize,
    /// cumulative learner updates
    pub updates: u64,
    /// cumulative post-processed samples (from heartbeats)
    pub samples: u64,
    /// learner updates/s over the window ending here
    pub updates_per_sec: f64,
}

/// Statistics of a multi-process run.
#[derive(Debug, Clone, Default)]
pub struct NetApexStats {
    /// env frames consumed across worker processes (from heartbeats)
    pub env_frames: u64,
    /// post-processed samples shipped to shards
    pub samples_collected: u64,
    /// learner updates performed
    pub updates: u64,
    /// learner losses over time
    pub losses: Vec<f32>,
    /// wall time of the run
    pub wall_time: Duration,
    /// frames per second
    pub frames_per_second: f64,
    /// heartbeats received by the coordinator
    pub heartbeats: u64,
    /// episode returns in heartbeat arrival order
    pub returns: Vec<f32>,
    /// workers that exited cleanly (status 0 / `Ok`)
    pub workers_clean: usize,
    /// total records ever inserted, per shard (watermarks at shutdown)
    pub shard_watermarks: Vec<u64>,
    /// the coordinator's plain-text cluster telemetry report, fetched
    /// over `GET_TELEMETRY` at shutdown (`None` with a disabled recorder)
    pub telemetry_dump: Option<String>,
    /// merged Chrome trace across the coordinator and every worker
    /// process, on the coordinator's clock (`None` with a disabled
    /// recorder)
    pub merged_trace: Option<String>,
    /// elastic runs: throughput trace on the coordinator's cadence
    pub throughput_trace: Vec<ThroughputPoint>,
    /// elastic runs: `(t_secs, live workers)` after every pool resize
    pub scale_events: Vec<(f64, usize)>,
    /// elastic runs: members evicted by heartbeat timeout
    pub evictions: u64,
    /// elastic runs: final membership epoch (join/leave/evict count)
    pub cluster_epoch: u64,
}

impl rlgraph_dist::RunReport for NetApexStats {
    fn updates(&self) -> u64 {
        self.updates
    }

    fn wall_time(&self) -> Duration {
        self.wall_time
    }

    fn fragment_counters(&self) -> Vec<rlgraph_dist::FragmentCounter> {
        vec![
            rlgraph_dist::FragmentCounter::new("rollout", "env_frames", self.env_frames as f64),
            rlgraph_dist::FragmentCounter::new("rollout", "samples", self.samples_collected as f64),
            rlgraph_dist::FragmentCounter::new("learn", "updates", self.updates as f64),
            rlgraph_dist::FragmentCounter::new("broadcast", "heartbeats", self.heartbeats as f64),
        ]
    }
}

/// How a launched worker replica is reached for lifecycle operations.
enum WorkerHandle {
    Process(std::process::Child),
    Thread(std::thread::JoinHandle<RlResult<()>>),
}

impl WorkerHandle {
    /// Hard-kills a process replica (no-op for threads, which can only
    /// die cooperatively via `die_after_tasks`).
    fn kill(&mut self) {
        if let WorkerHandle::Process(child) = self {
            let _ = child.kill();
        }
    }
}

/// Coordinator-side cadence of elastic bookkeeping.
const ELASTIC_TICK: Duration = Duration::from_millis(50);
/// Throughput-trace sampling cadence.
const TRACE_INTERVAL: Duration = Duration::from_millis(250);

/// Mutable state of an elastic run, owned by the coordinator loop.
struct ElasticState {
    cfg: ElasticConfig,
    stage: ElasticStage<WorkerHandle>,
    autoscaler: Option<Autoscaler>,
    /// current desired pool size (schedule/autoscaler move it)
    target: usize,
    schedule_pos: usize,
    /// replicas flagged for clean retire, awaiting their exit
    retiring: Vec<WorkerHandle>,
    evictions: u64,
    chaos_done: bool,
    last_tick: Instant,
    last_trace: Instant,
    last_trace_updates: u64,
    trace: Vec<ThroughputPoint>,
    scale_events: Vec<(f64, usize)>,
    /// learner-starvation window counters, reset each tick
    starved_iters: u64,
    total_iters: u64,
}

impl ElasticState {
    fn new(cfg: ElasticConfig, stage: ElasticStage<WorkerHandle>, start: Instant) -> Self {
        let target = stage.len();
        ElasticState {
            autoscaler: cfg.autoscaler.clone().map(Autoscaler::new),
            cfg,
            stage,
            target,
            schedule_pos: 0,
            retiring: Vec::new(),
            evictions: 0,
            chaos_done: false,
            last_tick: start,
            last_trace: start,
            last_trace_updates: 0,
            trace: Vec::new(),
            scale_events: Vec::new(),
            starved_iters: 0,
            total_iters: 0,
        }
    }

    /// One learner-loop observation: was this iteration starved?
    fn observe_iteration(&mut self, starved: bool) {
        self.total_iters += 1;
        if starved {
            self.starved_iters += 1;
        }
    }

    /// True when the replay-ratio cap says the learner must wait for
    /// more collection inflow before its next update.
    fn update_capped(&self, updates: u64, samples: u64) -> bool {
        match self.cfg.max_updates_per_sample {
            Some(r) => (updates + 1) as f64 > samples as f64 * r,
            None => false,
        }
    }

    /// Coordinator-side elastic bookkeeping, rate-limited to
    /// [`ELASTIC_TICK`]: sweep membership (evict silent members, free
    /// their slots), advance the scripted schedule, consult the
    /// autoscaler, fire the chaos kill, resize the pool toward the
    /// target, and sample the throughput trace.
    ///
    /// # Errors
    ///
    /// Worker spawn failures while scaling up.
    fn tick(
        &mut self,
        start: Instant,
        coord_service: &CoordService,
        recorder: &Recorder,
        updates: u64,
        launch: &mut dyn FnMut(usize, u64) -> RlResult<WorkerHandle>,
    ) -> RlResult<()> {
        let now = Instant::now();
        if now.duration_since(self.last_tick) < ELASTIC_TICK {
            return Ok(());
        }
        self.last_tick = now;
        let before = self.stage.len();

        // Liveness: members that missed the beat timeout are evicted
        // from the table; their slots are freed here (the handle is
        // kept for reaping) and respawned below if the pool is under
        // target — at a bumped generation, so a zombie's late beats
        // are rejected as stale.
        for id in coord_service.sweep_membership() {
            if let Some(mut h) = self.stage.remove(id as usize) {
                h.kill();
                self.retiring.push(h);
                self.evictions += 1;
            }
        }

        // Scripted schedule first; the obs-driven policy takes over
        // once the script is exhausted.
        while self
            .cfg
            .schedule
            .get(self.schedule_pos)
            .is_some_and(|(off, _)| now.duration_since(start) >= *off)
        {
            self.target = self.cfg.schedule[self.schedule_pos].1;
            self.schedule_pos += 1;
        }
        if self.schedule_pos >= self.cfg.schedule.len() {
            if let Some(a) = &mut self.autoscaler {
                let starvation = if self.total_iters > 0 {
                    self.starved_iters as f64 / self.total_iters as f64
                } else {
                    0.0
                };
                let signals = ScaleSignals {
                    replay_mailbox_depth: recorder.gauge("frag.replay.mailbox_depth").value(),
                    learner_starvation: starvation,
                    heartbeat_rtt_us: coord_service.cluster().mean_rtt_us().unwrap_or(0.0),
                    alive_workers: self.stage.len(),
                };
                match a.decide(&signals) {
                    ScaleDecision::Up(n) => {
                        self.target = (self.target + n).min(self.cfg.max_workers);
                    }
                    ScaleDecision::Down(n) => {
                        self.target = self.target.saturating_sub(n).max(self.cfg.min_workers);
                    }
                    ScaleDecision::Hold => {}
                }
            }
        }
        self.starved_iters = 0;
        self.total_iters = 0;

        // Chaos: SIGKILL the highest-index replica without telling
        // anyone — eviction must come from the missed-beat sweep.
        if let Some(at) = self.cfg.chaos_kill {
            if !self.chaos_done && now.duration_since(start) >= at {
                self.chaos_done = true;
                if let Some(&idx) = self.stage.indices().last() {
                    if let Some(h) = self.stage.handle_mut(idx) {
                        h.kill();
                    }
                }
            }
        }

        // Resize toward the target: spawns go through `launch` (which
        // stamps the slot generation into the spec); retires are
        // cooperative — the member is flagged and exits cleanly after
        // its next heartbeat, so no in-flight insert is lost.
        if self.stage.len() != self.target {
            let retiring = &mut self.retiring;
            self.stage.scale_to(self.target, launch, |index, _gen, handle| {
                coord_service.flag_retire(index as u32);
                retiring.push(handle);
            })?;
        }
        if self.stage.len() != before {
            self.scale_events.push((now.duration_since(start).as_secs_f64(), self.stage.len()));
        }

        if now.duration_since(self.last_trace) >= TRACE_INTERVAL {
            let dt = now.duration_since(self.last_trace).as_secs_f64();
            let progress = coord_service.progress();
            self.trace.push(ThroughputPoint {
                t_secs: now.duration_since(start).as_secs_f64(),
                workers: self.stage.len(),
                updates,
                samples: progress.samples,
                updates_per_sec: (updates - self.last_trace_updates) as f64 / dt.max(1e-9),
            });
            self.last_trace = now;
            self.last_trace_updates = updates;
        }
        Ok(())
    }
}

/// Runs Ape-X across OS processes (or threads) on localhost TCP.
///
/// # Errors
///
/// Server bind/spawn failures, learner errors, or a fatal RPC failure
/// in the parent. Worker-side failures surface in
/// [`NetApexStats::workers_clean`] rather than failing the run — the
/// transport's whole point is that the learner outlives flaky peers.
pub fn run_apex_net(config: NetApexConfig) -> RlResult<NetApexStats> {
    let start = Instant::now();
    let recorder = config.recorder.clone();

    // The run is an instance of the declarative apex fragment graph,
    // with the rollout fragment placed per the launch mode; reject any
    // config whose declaration does not validate under remote caps.
    let (graph, _placement) = crate::fragment_remote::validate_net_apex(&config)?;
    for stage in graph.stages() {
        recorder.gauge(&format!("frag.{}.replicas", stage.name)).set(stage.replicas as f64);
    }

    // Replay shards, each behind its own RPC server.
    let mut shard_servers = Vec::with_capacity(config.num_shards);
    for i in 0..config.num_shards {
        let service = Arc::new(ShardService::new(
            config.agent.memory_capacity,
            config.agent.alpha,
            config.agent.seed.wrapping_add(1000 + i as u64),
        ));
        shard_servers.push(config.transport.spawn(
            &format!("shard-{}", i),
            service,
            recorder.clone(),
        )?);
    }

    // Optional fault proxies: workers dial the proxy, the proxy dials
    // the shard. The learner's own shard clients stay direct, so
    // injected faults hit exactly the worker↔shard edge.
    let mut proxies = Vec::new();
    let worker_shard_addrs: Vec<String> = if let Some(pcfg) = &config.shard_proxy {
        let mut addrs = Vec::with_capacity(config.num_shards);
        for (i, s) in shard_servers.iter().enumerate() {
            let mut pc = pcfg.clone();
            pc.seed = pcfg.seed.wrapping_add(i as u64);
            let proxy = FaultProxy::spawn(s.addr(), pc, recorder.clone())?;
            addrs.push(proxy.addr().to_string());
            proxies.push(proxy);
        }
        addrs
    } else {
        shard_servers.iter().map(|s| s.addr().to_string()).collect()
    };

    // Coordinator: weight distribution + progress + stop propagation;
    // elastic runs also make it the membership authority.
    let hub = Arc::new(WeightHub::new());
    let stop = Arc::new(AtomicBool::new(false));
    let mut coord = CoordService::new(hub.clone(), stop.clone()).with_recorder(&recorder);
    if let Some(e) = &config.elastic {
        coord = coord.with_beat_timeout(e.beat_timeout);
    }
    let coord_service = Arc::new(coord);
    let coord_server = config.transport.spawn("coord", coord_service.clone(), recorder.clone())?;

    // Workers. `num_workers_total` fixes the exploration ladder: an
    // elastic fleet ladders over `max_workers` so a worker's epsilon
    // does not depend on when it was spawned.
    let num_workers_total = config.elastic.as_ref().map_or(config.num_workers, |e| e.max_workers);
    let coord_addr = coord_server.addr().to_string();
    let mut launch = |index: usize, generation: u64| -> RlResult<WorkerHandle> {
        let spec = WorkerSpec {
            worker: index as u32,
            num_workers: num_workers_total as u32,
            agent: config.agent.clone(),
            env: config.env.clone(),
            envs_per_worker: config.envs_per_worker as u32,
            task_size: config.task_size as u32,
            coord_addr: coord_addr.clone(),
            shard_addrs: worker_shard_addrs.clone(),
            rpc_deadline_ms: config.rpc_deadline.as_millis() as u64,
            telemetry: recorder.is_enabled(),
            compression: config.compression,
            generation,
            die_after_tasks: None,
            task_throttle_ms: config
                .elastic
                .as_ref()
                .and_then(|e| e.worker_throttle)
                .map_or(0, |d| d.as_millis() as u64),
        };
        Ok(match config.launch {
            LaunchMode::Process => WorkerHandle::Process(spawn_worker(&spec)?),
            LaunchMode::Thread => WorkerHandle::Thread(
                std::thread::Builder::new()
                    .name(format!("net-worker-{}", index))
                    .spawn(move || run_worker(&spec))
                    .expect("spawn worker thread"),
            ),
        })
    };
    let mut workers: Vec<WorkerHandle> = Vec::new();
    let mut elastic_state: Option<ElasticState> = match &config.elastic {
        // Elastic: the pool is the graph's declared elastic rollout
        // stage; slot generations flow into WorkerSpec so every
        // replica joins the membership table with its incarnation.
        Some(e) => {
            let decl = graph.stage("rollout").expect("rollout stage declared");
            let mut stage = ElasticStage::new(decl, &recorder);
            stage.scale_to(config.num_workers, &mut launch, |_, _, _| {})?;
            Some(ElasticState::new(e.clone(), stage, start))
        }
        // Fixed fleet: generation 0 keeps membership off — the
        // pre-elastic wire behavior, bit for bit.
        None => {
            for w in 0..config.num_workers {
                workers.push(launch(w, 0)?);
            }
            None
        }
    };

    // Learner loop, sampling from its shards over TCP.
    let mut shard_clients = Vec::with_capacity(config.num_shards);
    for (i, s) in shard_servers.iter().enumerate() {
        let mut c = ShardClient::connect(&format!("shard-{}", i), s.addr(), &recorder)?;
        c.set_deadline(Some(config.rpc_deadline));
        if config.compression {
            c.set_codec(crate::codec::CodecProfile::COMPRESSED);
        } else {
            // True v1 baseline: no frame-layer LZ either (see proc.rs).
            c.set_plain_wire();
        }
        shard_clients.push(c);
    }
    let state_space = config.env.build(0).state_space();
    let action_space = config.env.build(0).action_space();
    let mut learner = DqnAgent::new(config.agent.clone(), &state_space, &action_space)?;
    let step_us = recorder.histogram("learner.step_us");
    let updates_ctr = recorder.counter("learner.updates");
    let update_rate = recorder.gauge("learner.update_rate");
    // The parent folds its own metric deltas into the same cluster
    // registry heartbeats feed, under the "learner" process name.
    let mut learner_tracker = DeltaTracker::new();
    let mut losses = Vec::new();
    let mut updates = 0u64;
    let mut rr = 0usize;
    let deadline = start + config.run_duration;
    // Sampling is pipelined: one prefetched request is always in
    // flight, issued a full learn step ahead of its use, so each shard
    // selects and encodes the next batch while the learner trains on
    // the current one — the sample round-trip leaves the critical path.
    let mut pending: Option<usize> = None;
    while Instant::now() < deadline && config.max_updates.map(|m| updates < m).unwrap_or(true) {
        if let Some(el) = elastic_state.as_mut() {
            el.tick(start, &coord_service, &recorder, updates, &mut launch)?;
            // Replay-ratio cap: hold for inflow rather than spin on
            // stale data. A capped iteration counts as starved — the
            // learner wants samples it does not have — which is
            // exactly the autoscaler's scale-up signal.
            if el.update_capped(updates, coord_service.progress().samples) {
                el.observe_iteration(true);
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        }
        let idx = match pending.take() {
            Some(i) => i,
            None => {
                let i = rr % shard_clients.len();
                rr += 1;
                match shard_clients[i].sample_prefetch(config.agent.batch_size, config.agent.beta) {
                    Ok(()) => i,
                    Err(e) if e.is_retryable() => continue,
                    Err(e) => return Err(e),
                }
            }
        };
        let collected = shard_clients[idx].sample_collect();
        // Queue the next sample before touching this one: it covers the
        // learn step below (or the under-filled backoff).
        let nxt = rr % shard_clients.len();
        rr += 1;
        match shard_clients[nxt].sample_prefetch(config.agent.batch_size, config.agent.beta) {
            Ok(()) => pending = Some(nxt),
            Err(e) if e.is_retryable() => {}
            Err(e) => return Err(e),
        }
        let batch = match collected {
            Ok(Some(b)) => b,
            Ok(None) => {
                if let Some(el) = elastic_state.as_mut() {
                    el.observe_iteration(true);
                }
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(e) if e.is_retryable() => continue,
            Err(e) => return Err(e),
        };
        let [s, a, r, s2, t] = batch.tensors;
        let t0 = Instant::now();
        let (loss, td) = learner.update_from_batch([s, a, r, s2, t, batch.weights])?;
        step_us.record_duration(t0.elapsed());
        updates_ctr.inc();
        losses.push(loss);
        updates += 1;
        if let Some(el) = elastic_state.as_mut() {
            el.observe_iteration(false);
        }
        let priorities = td.as_f32().map_err(CoreError::from)?.to_vec();
        if let Err(e) = shard_clients[idx].update_priorities(&batch.indices, &priorities) {
            if !e.is_retryable() {
                return Err(e);
            }
        }
        if updates.is_multiple_of(config.weight_sync_interval) {
            if recorder.is_enabled() {
                update_rate.set(updates as f64 / start.elapsed().as_secs_f64().max(1e-9));
                coord_service
                    .cluster()
                    .fold("learner", &learner_tracker.delta(&recorder.metrics_snapshot()));
            }
            let version = hub.publish(learner.get_weights());
            let mut watermarks = Vec::with_capacity(shard_clients.len());
            for c in &mut shard_clients {
                watermarks.push(c.watermark().unwrap_or(0));
            }
            coord_service.set_checkpoint(LearnerCheckpoint {
                updates,
                weight_version: version,
                variables: learner.export_variables(),
                shard_watermarks: watermarks,
            });
        }
    }

    // Tell workers (via heartbeat replies) the run is over, then reap.
    // Elastic pools drain into the same reap path: live replicas exit
    // on the stop beat; previously retired/evicted handles are already
    // in `retiring`.
    stop.store(true, Ordering::Relaxed);
    if let Some(el) = elastic_state.as_mut() {
        el.stage.drain(|_, _, h| workers.push(h));
        workers.append(&mut el.retiring);
    }
    let mut workers_clean = 0usize;
    let reap_deadline = Instant::now() + config.rpc_deadline + Duration::from_secs(10);
    for w in workers {
        match w {
            WorkerHandle::Process(mut child) => loop {
                match child.try_wait() {
                    Ok(Some(status)) => {
                        if status.success() {
                            workers_clean += 1;
                        }
                        break;
                    }
                    Ok(None) if Instant::now() < reap_deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            },
            WorkerHandle::Thread(h) => {
                if matches!(h.join(), Ok(Ok(()))) {
                    workers_clean += 1;
                }
            }
        }
    }

    let shard_watermarks: Vec<u64> =
        shard_clients.iter_mut().map(|c| c.watermark().unwrap_or(0)).collect();
    let progress = coord_service.progress();

    // Telemetry plane shutdown work, while the coordinator still
    // listens: one last learner fold, the cluster report fetched over
    // the real GET_TELEMETRY RPC, and the merged cluster trace (worker
    // dumps arrived via PUSH_TRACE when their stop beats were answered;
    // each shifts onto the coordinator's clock by its offset estimate).
    let (telemetry_dump, merged_trace) = if recorder.is_enabled() {
        update_rate.set(updates as f64 / start.elapsed().as_secs_f64().max(1e-9));
        coord_service
            .cluster()
            .fold("learner", &learner_tracker.delta(&recorder.metrics_snapshot()));
        let report = CoordClient::connect(coord_server.addr(), &recorder)
            .and_then(|mut c| {
                c.set_deadline(Some(config.rpc_deadline));
                c.get_telemetry()
            })
            .ok();
        let mut procs = vec![ProcessTrace {
            name: "coordinator".to_string(),
            offset_us: 0,
            dump: recorder.trace_dump(),
        }];
        for (name, dump) in coord_service.take_traces() {
            let offset_us = coord_service.cluster().offset(&name).map_or(0, |(o, _)| o);
            procs.push(ProcessTrace { name, offset_us, dump });
        }
        (report, Some(merged_chrome_trace(&procs)))
    } else {
        (None, None)
    };
    drop(proxies);
    for s in shard_servers {
        s.shutdown();
    }
    coord_server.shutdown();

    let cluster_epoch = coord_service.membership_view().epoch;
    let (throughput_trace, scale_events, evictions) = match elastic_state {
        Some(el) => (el.trace, el.scale_events, el.evictions),
        None => (Vec::new(), Vec::new(), 0),
    };

    let wall_time = start.elapsed();
    Ok(NetApexStats {
        env_frames: progress.env_frames,
        samples_collected: progress.samples,
        updates,
        losses,
        wall_time,
        frames_per_second: progress.env_frames as f64 / wall_time.as_secs_f64().max(1e-9),
        heartbeats: progress.heartbeats,
        returns: progress.returns,
        workers_clean,
        shard_watermarks,
        telemetry_dump,
        merged_trace,
        throughput_trace,
        scale_events,
        evictions,
        cluster_epoch,
    })
}
