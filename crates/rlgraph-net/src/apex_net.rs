//! The multi-process Ape-X runtime: real OS processes on localhost,
//! wired together with the crate's RPC layer.
//!
//! Topology (all sockets on 127.0.0.1):
//!
//! ```text
//!   child process per worker ──TCP──▶ shard RPC servers (parent)
//!        │  collect / insert              ▲ sample / update_priorities
//!        │                               │
//!        └──TCP──▶ coordinator ◀── WeightHub ◀── learner loop (parent)
//!            get_weights / heartbeat
//! ```
//!
//! The parent hosts the replay shards and the coordinator; workers are
//! launched by re-invoking the current executable ([`crate::proc`]).
//! The learner samples from its own shards **over TCP too** — every
//! replay byte crosses the wire codec in both directions, so the
//! measured gap to the in-process executor prices the full transport,
//! not half of it. Weight sync is parameter-server style: the learner
//! publishes into the same [`WeightHub`] the serving stack uses, and
//! workers poll versioned snapshots out through the coordinator.

use crate::proc::{run_worker, spawn_worker, EnvSpec, WorkerSpec};
use crate::proxy::{FaultProxy, FaultProxyConfig};
use crate::services::{CoordClient, CoordService, ShardClient, ShardService};
use crate::transport::Transport;
use rlgraph_agents::{DqnAgent, DqnConfig};
use rlgraph_core::{CoreError, RlResult};
use rlgraph_dist::checkpoint::LearnerCheckpoint;
use rlgraph_dist::sync::WeightHub;
use rlgraph_obs::{merged_chrome_trace, DeltaTracker, ProcessTrace, Recorder};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How workers are hosted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchMode {
    /// Real OS processes via [`crate::proc::spawn_worker`]. The driving
    /// binary **must** call [`crate::proc::maybe_run_child`] first thing
    /// in `main`.
    Process,
    /// Threads in this process running the same [`run_worker`] loop
    /// over the same TCP sockets. For tests and harnesses that cannot
    /// safely re-exec themselves.
    Thread,
}

/// Configuration of a multi-process Ape-X run.
#[derive(Clone)]
pub struct NetApexConfig {
    /// learner/worker agent configuration
    pub agent: DqnConfig,
    /// environment constructor shipped to workers
    pub env: EnvSpec,
    /// worker count (one OS process each in [`LaunchMode::Process`])
    pub num_workers: usize,
    /// vectorised environments per worker
    pub envs_per_worker: usize,
    /// samples per collection task
    pub task_size: usize,
    /// replay shards (each its own RPC server)
    pub num_shards: usize,
    /// publish weights every k learner updates
    pub weight_sync_interval: u64,
    /// stop after this wall-clock duration
    pub run_duration: Duration,
    /// optional hard cap on learner updates
    pub max_updates: Option<u64>,
    /// per-RPC deadline on worker and learner calls
    pub rpc_deadline: Duration,
    /// worker hosting mode
    pub launch: LaunchMode,
    /// optional fault proxy interposed between workers and every shard
    pub shard_proxy: Option<FaultProxyConfig>,
    /// server stack fronting the shards and the coordinator — clients
    /// are wire-compatible with both, so this flips freely
    pub transport: Transport,
    /// ship replay and weight traffic under the v2 wire codec
    /// (f16-quantized tensors, delta weight sync, columnar
    /// trajectories, LZ frame compression — DESIGN.md §14); servers
    /// decode transparently and old peers downgrade to plain v1
    pub compression: bool,
    /// observability recorder (servers, clients, learner)
    pub recorder: Recorder,
}

impl Default for NetApexConfig {
    fn default() -> Self {
        NetApexConfig {
            agent: DqnConfig::default(),
            env: EnvSpec::Random { shape: vec![4], actions: 2, episode_len: 20 },
            num_workers: 2,
            envs_per_worker: 4,
            task_size: 64,
            num_shards: 2,
            weight_sync_interval: 16,
            run_duration: Duration::from_secs(5),
            max_updates: None,
            rpc_deadline: Duration::from_secs(5),
            launch: LaunchMode::Process,
            shard_proxy: None,
            transport: Transport::default(),
            compression: false,
            recorder: Recorder::disabled(),
        }
    }
}

impl NetApexConfig {
    /// A builder seeded with the defaults, sharing the unified
    /// [`DriverConfigBuilder`](rlgraph_dist::DriverConfigBuilder)
    /// vocabulary with the in-process drivers.
    pub fn builder() -> NetApexConfigBuilder {
        NetApexConfigBuilder { draft: NetApexConfig::default() }
    }
}

/// Builder for [`NetApexConfig`]; validates on
/// [`build`](NetApexConfigBuilder::build).
#[derive(Clone, Default)]
pub struct NetApexConfigBuilder {
    draft: NetApexConfig,
}

impl NetApexConfigBuilder {
    /// Learner/worker agent configuration.
    pub fn agent(mut self, agent: DqnConfig) -> Self {
        self.draft.agent = agent;
        self
    }

    /// Environment constructor shipped to workers.
    pub fn env(mut self, env: EnvSpec) -> Self {
        self.draft.env = env;
        self
    }

    /// Worker count. Deprecated spelling of
    /// [`parallelism`](rlgraph_dist::DriverConfigBuilder::parallelism).
    pub fn num_workers(mut self, n: usize) -> Self {
        self.draft.num_workers = n;
        self
    }

    /// Vectorised environments per worker.
    pub fn envs_per_worker(mut self, n: usize) -> Self {
        self.draft.envs_per_worker = n;
        self
    }

    /// Samples per collection task.
    pub fn task_size(mut self, n: usize) -> Self {
        self.draft.task_size = n;
        self
    }

    /// Replay shard count (one RPC server each).
    pub fn num_shards(mut self, n: usize) -> Self {
        self.draft.num_shards = n;
        self
    }

    /// Publish weights every `k` learner updates. Deprecated spelling of
    /// [`sync_every`](rlgraph_dist::DriverConfigBuilder::sync_every).
    pub fn weight_sync_interval(mut self, k: u64) -> Self {
        self.draft.weight_sync_interval = k;
        self
    }

    /// Stop after this wall-clock duration. Deprecated spelling of
    /// [`budget`](rlgraph_dist::DriverConfigBuilder::budget).
    pub fn run_duration(mut self, d: Duration) -> Self {
        self.draft.run_duration = d;
        self
    }

    /// Optional hard cap on learner updates. Deprecated spelling of
    /// [`budget`](rlgraph_dist::DriverConfigBuilder::budget).
    pub fn max_updates(mut self, cap: Option<u64>) -> Self {
        self.draft.max_updates = cap;
        self
    }

    /// Per-RPC deadline on worker and learner calls.
    pub fn rpc_deadline(mut self, d: Duration) -> Self {
        self.draft.rpc_deadline = d;
        self
    }

    /// Worker hosting mode (the rollout fragment's placement).
    pub fn launch(mut self, mode: LaunchMode) -> Self {
        self.draft.launch = mode;
        self
    }

    /// Optional fault proxy between workers and every shard.
    pub fn shard_proxy(mut self, proxy: Option<FaultProxyConfig>) -> Self {
        self.draft.shard_proxy = proxy;
        self
    }

    /// Server stack fronting shards and coordinator.
    pub fn transport(mut self, transport: Transport) -> Self {
        self.draft.transport = transport;
        self
    }

    /// Ship replay and weight traffic under the v2 wire codec.
    pub fn compression(mut self, on: bool) -> Self {
        self.draft.compression = on;
        self
    }

    /// Observability recorder. Deprecated spelling of
    /// [`observe_with`](rlgraph_dist::DriverConfigBuilder::observe_with).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.draft.recorder = recorder;
        self
    }

    /// Validates and builds the config.
    ///
    /// # Errors
    ///
    /// Zero workers/shards/task size, a zero sync interval, or a
    /// declaration the fragment graph rejects.
    pub fn build(self) -> RlResult<NetApexConfig> {
        let c = self.draft;
        if c.num_workers == 0 {
            return Err(CoreError::new("num_workers must be >= 1").into());
        }
        if c.envs_per_worker == 0 {
            return Err(CoreError::new("envs_per_worker must be >= 1").into());
        }
        if c.task_size == 0 {
            return Err(CoreError::new("task_size must be >= 1").into());
        }
        if c.num_shards == 0 {
            return Err(CoreError::new("num_shards must be >= 1").into());
        }
        if c.weight_sync_interval == 0 {
            return Err(CoreError::new("weight_sync_interval must be >= 1").into());
        }
        // The declarative contract is part of validity: a config that
        // cannot be declared as a placed fragment graph is rejected here,
        // not at spawn time.
        crate::fragment_remote::validate_net_apex(&c)?;
        Ok(c)
    }
}

impl rlgraph_dist::DriverConfigBuilder for NetApexConfigBuilder {
    type Config = NetApexConfig;

    fn parallelism(self, n: usize) -> Self {
        self.num_workers(n)
    }

    fn sync_every(self, k: u64) -> Self {
        self.weight_sync_interval(k)
    }

    fn budget(self, budget: rlgraph_dist::RunBudget) -> Self {
        let b = match budget.wall {
            Some(d) => self.run_duration(d),
            None => self,
        };
        b.max_updates(budget.max_updates)
    }

    fn observe_with(self, recorder: Recorder) -> Self {
        self.recorder(recorder)
    }

    fn try_build(self) -> RlResult<NetApexConfig> {
        self.build()
    }
}

/// Statistics of a multi-process run.
#[derive(Debug, Clone, Default)]
pub struct NetApexStats {
    /// env frames consumed across worker processes (from heartbeats)
    pub env_frames: u64,
    /// post-processed samples shipped to shards
    pub samples_collected: u64,
    /// learner updates performed
    pub updates: u64,
    /// learner losses over time
    pub losses: Vec<f32>,
    /// wall time of the run
    pub wall_time: Duration,
    /// frames per second
    pub frames_per_second: f64,
    /// heartbeats received by the coordinator
    pub heartbeats: u64,
    /// episode returns in heartbeat arrival order
    pub returns: Vec<f32>,
    /// workers that exited cleanly (status 0 / `Ok`)
    pub workers_clean: usize,
    /// total records ever inserted, per shard (watermarks at shutdown)
    pub shard_watermarks: Vec<u64>,
    /// the coordinator's plain-text cluster telemetry report, fetched
    /// over `GET_TELEMETRY` at shutdown (`None` with a disabled recorder)
    pub telemetry_dump: Option<String>,
    /// merged Chrome trace across the coordinator and every worker
    /// process, on the coordinator's clock (`None` with a disabled
    /// recorder)
    pub merged_trace: Option<String>,
}

impl rlgraph_dist::RunReport for NetApexStats {
    fn updates(&self) -> u64 {
        self.updates
    }

    fn wall_time(&self) -> Duration {
        self.wall_time
    }

    fn fragment_counters(&self) -> Vec<rlgraph_dist::FragmentCounter> {
        vec![
            rlgraph_dist::FragmentCounter::new("rollout", "env_frames", self.env_frames as f64),
            rlgraph_dist::FragmentCounter::new("rollout", "samples", self.samples_collected as f64),
            rlgraph_dist::FragmentCounter::new("learn", "updates", self.updates as f64),
            rlgraph_dist::FragmentCounter::new("broadcast", "heartbeats", self.heartbeats as f64),
        ]
    }
}

/// Runs Ape-X across OS processes (or threads) on localhost TCP.
///
/// # Errors
///
/// Server bind/spawn failures, learner errors, or a fatal RPC failure
/// in the parent. Worker-side failures surface in
/// [`NetApexStats::workers_clean`] rather than failing the run — the
/// transport's whole point is that the learner outlives flaky peers.
pub fn run_apex_net(config: NetApexConfig) -> RlResult<NetApexStats> {
    let start = Instant::now();
    let recorder = config.recorder.clone();

    // The run is an instance of the declarative apex fragment graph,
    // with the rollout fragment placed per the launch mode; reject any
    // config whose declaration does not validate under remote caps.
    let (graph, _placement) = crate::fragment_remote::validate_net_apex(&config)?;
    for stage in graph.stages() {
        recorder.gauge(&format!("frag.{}.replicas", stage.name)).set(stage.replicas as f64);
    }

    // Replay shards, each behind its own RPC server.
    let mut shard_servers = Vec::with_capacity(config.num_shards);
    for i in 0..config.num_shards {
        let service = Arc::new(ShardService::new(
            config.agent.memory_capacity,
            config.agent.alpha,
            config.agent.seed.wrapping_add(1000 + i as u64),
        ));
        shard_servers.push(config.transport.spawn(
            &format!("shard-{}", i),
            service,
            recorder.clone(),
        )?);
    }

    // Optional fault proxies: workers dial the proxy, the proxy dials
    // the shard. The learner's own shard clients stay direct, so
    // injected faults hit exactly the worker↔shard edge.
    let mut proxies = Vec::new();
    let worker_shard_addrs: Vec<String> = if let Some(pcfg) = &config.shard_proxy {
        let mut addrs = Vec::with_capacity(config.num_shards);
        for (i, s) in shard_servers.iter().enumerate() {
            let mut pc = pcfg.clone();
            pc.seed = pcfg.seed.wrapping_add(i as u64);
            let proxy = FaultProxy::spawn(s.addr(), pc, recorder.clone())?;
            addrs.push(proxy.addr().to_string());
            proxies.push(proxy);
        }
        addrs
    } else {
        shard_servers.iter().map(|s| s.addr().to_string()).collect()
    };

    // Coordinator: weight distribution + progress + stop propagation.
    let hub = Arc::new(WeightHub::new());
    let stop = Arc::new(AtomicBool::new(false));
    let coord_service =
        Arc::new(CoordService::new(hub.clone(), stop.clone()).with_recorder(&recorder));
    let coord_server = config.transport.spawn("coord", coord_service.clone(), recorder.clone())?;

    // Workers.
    enum WorkerHandle {
        Process(std::process::Child),
        Thread(std::thread::JoinHandle<RlResult<()>>),
    }
    let mut workers = Vec::with_capacity(config.num_workers);
    for w in 0..config.num_workers {
        let spec = WorkerSpec {
            worker: w as u32,
            num_workers: config.num_workers as u32,
            agent: config.agent.clone(),
            env: config.env.clone(),
            envs_per_worker: config.envs_per_worker as u32,
            task_size: config.task_size as u32,
            coord_addr: coord_server.addr().to_string(),
            shard_addrs: worker_shard_addrs.clone(),
            rpc_deadline_ms: config.rpc_deadline.as_millis() as u64,
            telemetry: recorder.is_enabled(),
            compression: config.compression,
        };
        workers.push(match config.launch {
            LaunchMode::Process => WorkerHandle::Process(spawn_worker(&spec)?),
            LaunchMode::Thread => WorkerHandle::Thread(
                std::thread::Builder::new()
                    .name(format!("net-worker-{}", w))
                    .spawn(move || run_worker(&spec))
                    .expect("spawn worker thread"),
            ),
        });
    }

    // Learner loop, sampling from its shards over TCP.
    let mut shard_clients = Vec::with_capacity(config.num_shards);
    for (i, s) in shard_servers.iter().enumerate() {
        let mut c = ShardClient::connect(&format!("shard-{}", i), s.addr(), &recorder)?;
        c.set_deadline(Some(config.rpc_deadline));
        if config.compression {
            c.set_codec(crate::codec::CodecProfile::COMPRESSED);
        } else {
            // True v1 baseline: no frame-layer LZ either (see proc.rs).
            c.set_plain_wire();
        }
        shard_clients.push(c);
    }
    let state_space = config.env.build(0).state_space();
    let action_space = config.env.build(0).action_space();
    let mut learner = DqnAgent::new(config.agent.clone(), &state_space, &action_space)?;
    let step_us = recorder.histogram("learner.step_us");
    let updates_ctr = recorder.counter("learner.updates");
    let update_rate = recorder.gauge("learner.update_rate");
    // The parent folds its own metric deltas into the same cluster
    // registry heartbeats feed, under the "learner" process name.
    let mut learner_tracker = DeltaTracker::new();
    let mut losses = Vec::new();
    let mut updates = 0u64;
    let mut rr = 0usize;
    let deadline = start + config.run_duration;
    // Sampling is pipelined: one prefetched request is always in
    // flight, issued a full learn step ahead of its use, so each shard
    // selects and encodes the next batch while the learner trains on
    // the current one — the sample round-trip leaves the critical path.
    let mut pending: Option<usize> = None;
    while Instant::now() < deadline && config.max_updates.map(|m| updates < m).unwrap_or(true) {
        let idx = match pending.take() {
            Some(i) => i,
            None => {
                let i = rr % shard_clients.len();
                rr += 1;
                match shard_clients[i].sample_prefetch(config.agent.batch_size, config.agent.beta) {
                    Ok(()) => i,
                    Err(e) if e.is_retryable() => continue,
                    Err(e) => return Err(e),
                }
            }
        };
        let collected = shard_clients[idx].sample_collect();
        // Queue the next sample before touching this one: it covers the
        // learn step below (or the under-filled backoff).
        let nxt = rr % shard_clients.len();
        rr += 1;
        match shard_clients[nxt].sample_prefetch(config.agent.batch_size, config.agent.beta) {
            Ok(()) => pending = Some(nxt),
            Err(e) if e.is_retryable() => {}
            Err(e) => return Err(e),
        }
        let batch = match collected {
            Ok(Some(b)) => b,
            Ok(None) => {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(e) if e.is_retryable() => continue,
            Err(e) => return Err(e),
        };
        let [s, a, r, s2, t] = batch.tensors;
        let t0 = Instant::now();
        let (loss, td) = learner.update_from_batch([s, a, r, s2, t, batch.weights])?;
        step_us.record_duration(t0.elapsed());
        updates_ctr.inc();
        losses.push(loss);
        updates += 1;
        let priorities = td.as_f32().map_err(CoreError::from)?.to_vec();
        if let Err(e) = shard_clients[idx].update_priorities(&batch.indices, &priorities) {
            if !e.is_retryable() {
                return Err(e);
            }
        }
        if updates.is_multiple_of(config.weight_sync_interval) {
            if recorder.is_enabled() {
                update_rate.set(updates as f64 / start.elapsed().as_secs_f64().max(1e-9));
                coord_service
                    .cluster()
                    .fold("learner", &learner_tracker.delta(&recorder.metrics_snapshot()));
            }
            let version = hub.publish(learner.get_weights());
            let mut watermarks = Vec::with_capacity(shard_clients.len());
            for c in &mut shard_clients {
                watermarks.push(c.watermark().unwrap_or(0));
            }
            coord_service.set_checkpoint(LearnerCheckpoint {
                updates,
                weight_version: version,
                variables: learner.export_variables(),
                shard_watermarks: watermarks,
            });
        }
    }

    // Tell workers (via heartbeat replies) the run is over, then reap.
    stop.store(true, Ordering::Relaxed);
    let mut workers_clean = 0usize;
    let reap_deadline = Instant::now() + config.rpc_deadline + Duration::from_secs(10);
    for w in workers {
        match w {
            WorkerHandle::Process(mut child) => loop {
                match child.try_wait() {
                    Ok(Some(status)) => {
                        if status.success() {
                            workers_clean += 1;
                        }
                        break;
                    }
                    Ok(None) if Instant::now() < reap_deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            },
            WorkerHandle::Thread(h) => {
                if matches!(h.join(), Ok(Ok(()))) {
                    workers_clean += 1;
                }
            }
        }
    }

    let shard_watermarks: Vec<u64> =
        shard_clients.iter_mut().map(|c| c.watermark().unwrap_or(0)).collect();
    let progress = coord_service.progress();

    // Telemetry plane shutdown work, while the coordinator still
    // listens: one last learner fold, the cluster report fetched over
    // the real GET_TELEMETRY RPC, and the merged cluster trace (worker
    // dumps arrived via PUSH_TRACE when their stop beats were answered;
    // each shifts onto the coordinator's clock by its offset estimate).
    let (telemetry_dump, merged_trace) = if recorder.is_enabled() {
        update_rate.set(updates as f64 / start.elapsed().as_secs_f64().max(1e-9));
        coord_service
            .cluster()
            .fold("learner", &learner_tracker.delta(&recorder.metrics_snapshot()));
        let report = CoordClient::connect(coord_server.addr(), &recorder)
            .and_then(|mut c| {
                c.set_deadline(Some(config.rpc_deadline));
                c.get_telemetry()
            })
            .ok();
        let mut procs = vec![ProcessTrace {
            name: "coordinator".to_string(),
            offset_us: 0,
            dump: recorder.trace_dump(),
        }];
        for (name, dump) in coord_service.take_traces() {
            let offset_us = coord_service.cluster().offset(&name).map_or(0, |(o, _)| o);
            procs.push(ProcessTrace { name, offset_us, dump });
        }
        (report, Some(merged_chrome_trace(&procs)))
    } else {
        (None, None)
    };
    drop(proxies);
    for s in shard_servers {
        s.shutdown();
    }
    coord_server.shutdown();

    let wall_time = start.elapsed();
    Ok(NetApexStats {
        env_frames: progress.env_frames,
        samples_collected: progress.samples,
        updates,
        losses,
        wall_time,
        frames_per_second: progress.env_frames as f64 / wall_time.as_secs_f64().max(1e-9),
        heartbeats: progress.heartbeats,
        returns: progress.returns,
        workers_clean,
        shard_watermarks,
        telemetry_dump,
        merged_trace,
    })
}
