//! Request/response RPC over `std::net::TcpStream`.
//!
//! The server is thread-per-connection: an accept loop hands each peer
//! to a handler thread that reads request frames, dispatches into an
//! [`RpcService`], and writes response frames back on the same socket.
//! Requests carry a client-assigned id echoed in the response, so a
//! desynchronized stream is detected instead of silently answering the
//! wrong call.
//!
//! The client is synchronous (one outstanding call per client). Every
//! call takes an optional **deadline**: socket read/write timeouts are
//! armed from the remaining budget, and expiry surfaces as
//! [`RlError::DeadlineExpired`] — the same retryable severity class the
//! in-process executors use, so one [`RetryPolicy`] governs both worlds.
//! After any transport failure the client drops its stream and
//! reconnects on the next call (counted by `net.reconnects`): a stream
//! that timed out mid-frame can never be trusted again.
//!
//! Error mapping note: once a connection has been established, a
//! `BrokenPipe` on send or an `UnexpectedEof` mid-frame both mean "the
//! peer went away" exactly like `ConnectionReset` does; the client
//! normalizes them to `ConnectionReset` so the severity taxonomy sees
//! one retryable "connection died, reconnect and retry" class. Refused
//! connections (`ConnectionRefused`) stay fatal: there is no server to
//! reconnect to.
//!
//! Observability (all through the injected [`Recorder`]): `net.bytes_tx`
//! / `net.bytes_rx` counters on both sides (plus per-service
//! `net.svc.<name>.bytes_*` on the server), `net.rpc_us` overall and
//! `net.rpc.<method>.us` per-method latency histograms on the client,
//! `net.server.rpc_us` / `net.rpc.serve.<method>.us` on the server,
//! `net.reconnects` on the client, `net.server.conns` on the server.
//!
//! **Distributed tracing.** When the client's recorder is enabled, every
//! call derives a child [`TraceContext`] from the calling thread's
//! current context, records a client span flow-linked to the child's
//! span id, and ships the context as a [`FrameKind::RequestTraced`]
//! prefix. The server decodes it, opens a handler span flow-linked to
//! the same id, and installs the context for the handler thread
//! ([`ContextScope`]) so nested outbound calls chain onto the same
//! trace. With a disabled recorder the client emits plain
//! [`FrameKind::Request`] frames — byte-identical to untraced builds.

use crate::codec::{get_rl_error, get_trace_context, put_rl_error, put_trace_context};
use crate::frame::{
    read_frame_info_metered, write_frame_negotiated_metered, FrameKind, FrameMeter, LOCAL_CAPS,
};
use crate::wire::{ByteReader, ByteWriter};
use rlgraph_core::{RlError, RlResult};
use rlgraph_dist::retry::{RetryPolicy, Sleep, ThreadSleeper};
use rlgraph_obs::{ContextScope, Recorder, TraceContext};
use rlgraph_reactor::sys;
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// The dispatch trait moved down into `rlgraph-reactor` so the same
// service objects plug into the blocking server here and the mux
// server there; re-exported to keep `rlgraph_net::rpc::RpcService`
// paths working.
pub use rlgraph_reactor::service::RpcService;

/// How often blocked server threads surface from the kernel to check
/// the stop flag. Each check is a `poll(2)` timeout — a real kernel
/// sleep, not a spin — so the cost of liveness is ~10 wakeups/s.
const STOP_CHECK_TICK: Duration = Duration::from_millis(100);

/// `Read` adapter that sleeps in `poll(2)` until bytes arrive, exiting
/// with an error on EOF, a real failure, the server's stop flag, or —
/// only **between** frames — the idle timeout. Partial frame progress
/// disarms the idle reaper (`got_bytes`), so a slow sender can never be
/// reaped mid-frame and desynchronize the stream.
struct StopReader<'a> {
    stream: &'a TcpStream,
    stop: &'a AtomicBool,
    /// Reap the connection if no byte arrives by this instant.
    idle_until: Option<Instant>,
    /// Set once the current frame has started arriving.
    got_bytes: bool,
    /// Reports to `connection_loop` that the exit was an idle reap.
    idle_hit: bool,
}

impl<'a> StopReader<'a> {
    fn new(stream: &'a TcpStream, stop: &'a AtomicBool, idle: Option<Duration>) -> Self {
        StopReader {
            stream,
            stop,
            idle_until: idle.map(|d| Instant::now() + d),
            got_bytes: false,
            idle_hit: false,
        }
    }
}

impl Read for StopReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "server shutting down",
                ));
            }
            if !self.got_bytes {
                if let Some(at) = self.idle_until {
                    if Instant::now() >= at {
                        self.idle_hit = true;
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "idle connection reaped",
                        ));
                    }
                }
            }
            if !sys::wait_readable(self.stream.as_raw_fd(), Some(STOP_CHECK_TICK))? {
                continue; // timeout tick: re-check stop and idle
            }
            match (&mut self.stream).read(buf) {
                Ok(n) => {
                    self.got_bytes = true;
                    return Ok(n);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Decrements a gauge when dropped — balances `net.conns.open` on
/// every connection-loop exit path.
struct GaugeDec(rlgraph_obs::Gauge);

impl Drop for GaugeDec {
    fn drop(&mut self) {
        self.0.add(-1.0);
    }
}

/// Tuning for [`RpcServer`]; the defaults match production use.
#[derive(Debug, Clone, Copy)]
pub struct RpcServerConfig {
    /// Close connections with no inbound frame for this long (`None`
    /// never reaps). Reaps are counted by `net.conns.idle_reaped`.
    pub idle_timeout: Option<Duration>,
}

impl Default for RpcServerConfig {
    fn default() -> Self {
        RpcServerConfig { idle_timeout: Some(Duration::from_secs(60)) }
    }
}

/// A running RPC server bound to a localhost ephemeral port.
pub struct RpcServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl RpcServer {
    /// Binds `127.0.0.1:0` and starts accepting connections, dispatching
    /// every request into `service` from per-connection threads.
    ///
    /// # Errors
    ///
    /// `RlError::Io` when the listener cannot bind.
    pub fn spawn(name: &str, service: Arc<dyn RpcService>, recorder: Recorder) -> RlResult<Self> {
        Self::spawn_with(name, service, recorder, RpcServerConfig::default())
    }

    /// [`RpcServer::spawn`] with explicit [`RpcServerConfig`].
    ///
    /// # Errors
    ///
    /// `RlError::Io` when the listener cannot bind or the accept thread
    /// cannot spawn.
    pub fn spawn_with(
        name: &str,
        service: Arc<dyn RpcService>,
        recorder: Recorder,
        config: RpcServerConfig,
    ) -> RlResult<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let thread_name = format!("rpc-accept-{}", name);
        let svc_name: Arc<str> = Arc::from(name);
        let accept_handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                accept_loop(listener, service, accept_stop, recorder, svc_name, config);
            })
            .map_err(|e| RlError::Io { kind: e.kind(), message: format!("spawn accept: {e}") })?;
        Ok(RpcServer { addr, stop, accept_handle: Some(accept_handle) })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks handler threads, and joins them all.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<dyn RpcService>,
    stop: Arc<AtomicBool>,
    recorder: Recorder,
    svc_name: Arc<str>,
    config: RpcServerConfig,
) {
    let conns = recorder.counter("net.server.conns");
    let conns_open = recorder.gauge("net.conns.open");
    let idle_reaped = recorder.counter("net.conns.idle_reaped");
    // This thread's own CPU consumption, published so tests (and
    // operators) can see that an idle server sleeps instead of spinning.
    let accept_cpu = recorder.gauge("net.server.accept_cpu_us");
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        accept_cpu.set(sys::thread_cpu_time().as_micros() as f64);
        // Sleep in poll(2) until a peer arrives or a tick elapses — the
        // listener itself stays nonblocking so accept never hangs.
        match sys::wait_readable(listener.as_raw_fd(), Some(STOP_CHECK_TICK)) {
            Ok(true) => {}
            Ok(false) => {
                handlers.retain(|h| !h.is_finished());
                continue;
            }
            Err(_) => break,
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                conns.inc();
                conns_open.add(1.0);
                let service = service.clone();
                let stop = stop.clone();
                let recorder = recorder.clone();
                let svc_name = svc_name.clone();
                let idle = config.idle_timeout;
                let open_dec = GaugeDec(conns_open.clone());
                let reaped = idle_reaped.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("rpc-conn-{}", svc_name))
                    .spawn(move || {
                        let _open = open_dec;
                        connection_loop(stream, service, stop, recorder, svc_name, idle, reaped);
                    });
                // On thread exhaustion the connection is dropped (the
                // GaugeDec moved into the failed closure already
                // rebalanced the gauge) and the server keeps serving.
                if let Ok(handle) = spawned {
                    handlers.push(handle);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
    conns_open.set(0.0);
}

#[allow(clippy::too_many_arguments)]
fn connection_loop(
    stream: TcpStream,
    service: Arc<dyn RpcService>,
    stop: Arc<AtomicBool>,
    recorder: Recorder,
    svc_name: Arc<str>,
    idle_timeout: Option<Duration>,
    idle_reaped: rlgraph_obs::Counter,
) {
    let _ = stream.set_nodelay(true);
    let meter = FrameMeter::for_service(&recorder, &svc_name);
    let rpc_us = recorder.histogram("net.server.rpc_us");
    // Per-method histograms, registered lazily on first use so the
    // registry only holds methods this connection actually served.
    let mut method_us: HashMap<u16, rlgraph_obs::Histogram> = HashMap::new();
    // Capabilities this client has advertised (latched high across the
    // connection). A server only speaks flags to clients that advertised
    // first, so a strict version-1 client never sees a flagged frame.
    let mut peer_caps: u8 = 0;
    loop {
        // The idle clock re-arms per frame: quiet *between* requests is
        // reapable, a slow sender mid-frame is not.
        let mut reader = StopReader::new(&stream, &stop, idle_timeout);
        let (kind, payload) = match read_frame_info_metered(&mut reader, &meter) {
            Ok(f) => {
                peer_caps |= f.peer_caps;
                (f.kind, f.payload)
            }
            // EOF, reset, stop, idle reap: the connection is done either
            // way. A protocol violation also closes — the stream is
            // untrusted.
            Err(_) => {
                if reader.idle_hit {
                    idle_reaped.inc();
                }
                return;
            }
        };
        let t0 = Instant::now();
        let mut req = ByteReader::new(&payload);
        let ctx = match kind {
            FrameKind::Request => None,
            FrameKind::RequestTraced => match get_trace_context(&mut req) {
                Ok(c) => Some(c),
                Err(_) => return, // malformed context prefix: close
            },
            // A client sending responses is not speaking our protocol,
            // and the blocking stack does not speak the mux stack's
            // heartbeat extension.
            FrameKind::Response | FrameKind::Ping | FrameKind::Pong => return,
        };
        let (req_id, method) = match (req.get_u64(), req.get_u16()) {
            (Ok(id), Ok(m)) => (id, m),
            _ => return, // malformed request header: close
        };
        let body = req.get_bytes(req.remaining()).expect("remaining bytes");
        let result = {
            // Handler span flow-linked to the request's span id, with
            // the context installed so nested outbound calls chain.
            let _scope = ctx.map(ContextScope::enter);
            let _span = ctx.filter(|c| recorder.is_enabled() && c.is_sampled()).map(|c| {
                recorder
                    .span(format!("rpc.serve.{}", service.method_name(method)))
                    .flow_in(c.span_id)
            });
            service.call(method, body)
        };
        let elapsed = t0.elapsed();
        rpc_us.record_duration(elapsed);
        method_us
            .entry(method)
            .or_insert_with(|| {
                recorder.histogram(&format!("net.rpc.serve.{}.us", service.method_name(method)))
            })
            .record_duration(elapsed);
        let mut resp = ByteWriter::with_capacity(16);
        resp.put_u64(req_id);
        match result {
            Ok(reply) => {
                resp.put_u8(0);
                resp.put_bytes(&reply);
            }
            Err(e) => {
                resp.put_u8(1);
                put_rl_error(&mut resp, &e);
            }
        }
        let out = resp.into_bytes();
        let advertise = if peer_caps != 0 { LOCAL_CAPS } else { 0 };
        let write = write_frame_negotiated_metered(
            &mut &stream,
            FrameKind::Response,
            &out,
            advertise,
            peer_caps,
            &meter,
        );
        if write.is_err() {
            return;
        }
    }
}

/// Synchronous RPC client with per-call deadlines and transparent
/// reconnect-on-next-call after transport failures.
pub struct RpcClient {
    peer: String,
    addr: SocketAddr,
    stream: Option<TcpStream>,
    next_req_id: u64,
    connect_timeout: Duration,
    ever_connected: bool,
    /// Capability bits stamped into outbound version words. Starts at
    /// [`LOCAL_CAPS`] (the probe); dropped to zero permanently when an
    /// old server kills the probing connection (DESIGN.md §14).
    advertise: u8,
    /// What the server advertised back on its responses; gates response
    /// compression of our requests. Reset on reconnect (the new process
    /// behind the address may be older).
    peer_caps: u8,
    /// Whether any response arrived on the current connection while we
    /// were advertising — separates "old peer rejected our flags" from
    /// "the network hiccuped later".
    caps_confirmed: bool,
    recorder: Recorder,
    meter: FrameMeter,
    rpc_us: rlgraph_obs::Histogram,
    reconnects: rlgraph_obs::Counter,
    method_names: fn(u16) -> &'static str,
    /// Per-method latency histogram + span label, cached by method id.
    method_obs: HashMap<u16, (rlgraph_obs::Histogram, String)>,
    /// The one request sent by [`RpcClient::call_deferred`] whose
    /// response has not been read yet (req id + armed expiry).
    deferred: Option<(u64, Option<Instant>)>,
    /// The one request sent by [`RpcClient::call_prefetch`] whose
    /// response [`RpcClient::take_prefetched`] has not collected yet.
    prefetch: Option<PrefetchState>,
}

/// A prefetched request: still on the wire, or already resolved into a
/// stashed result by an intervening call that needed the stream.
enum PrefetchState {
    Sent { req_id: u64, expiry: Option<Instant>, method: u16 },
    Ready(RlResult<Vec<u8>>),
}

fn unnamed_method(_: u16) -> &'static str {
    "other"
}

impl RpcClient {
    /// Creates a client for `addr` and eagerly connects.
    ///
    /// `peer` names the remote for diagnostics ("replay-shard-2").
    ///
    /// # Errors
    ///
    /// `RlError::Io` when the initial connection fails.
    pub fn connect(peer: &str, addr: SocketAddr, recorder: &Recorder) -> RlResult<Self> {
        let mut client = RpcClient {
            peer: peer.to_string(),
            addr,
            stream: None,
            next_req_id: 0,
            connect_timeout: Duration::from_secs(5),
            ever_connected: false,
            advertise: LOCAL_CAPS,
            peer_caps: 0,
            caps_confirmed: false,
            recorder: recorder.clone(),
            meter: FrameMeter::new(recorder),
            rpc_us: recorder.histogram("net.rpc_us"),
            reconnects: recorder.counter("net.reconnects"),
            method_names: unnamed_method,
            method_obs: HashMap::new(),
            deferred: None,
            prefetch: None,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// The remote address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Overrides the TCP connect timeout (default 5s).
    pub fn set_connect_timeout(&mut self, t: Duration) {
        self.connect_timeout = t;
    }

    /// Opts this client out of capability negotiation permanently:
    /// every frame ships plain v1, and the server — which only speaks
    /// flags to clients that advertised first — replies plain too. The
    /// benchmark's compression-off arm uses this to measure a true v1
    /// baseline instead of a silently LZ-compressed one.
    pub fn set_plain_wire(&mut self) {
        self.advertise = 0;
        self.peer_caps = 0;
    }

    /// Installs the method-id → name table used to label per-method
    /// latency histograms (`net.rpc.<name>.us`) and client spans.
    pub fn set_method_names(&mut self, f: fn(u16) -> &'static str) {
        self.method_names = f;
        self.method_obs.clear();
    }

    fn method_obs(&mut self, method: u16) -> &(rlgraph_obs::Histogram, String) {
        let names = self.method_names;
        let recorder = &self.recorder;
        self.method_obs.entry(method).or_insert_with(|| {
            let name = names(method);
            (recorder.histogram(&format!("net.rpc.{}.us", name)), format!("rpc.{}", name))
        })
    }

    fn ensure_connected(&mut self) -> RlResult<()> {
        if self.stream.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)?;
        stream.set_nodelay(true)?;
        if self.ever_connected {
            self.reconnects.inc();
        }
        self.ever_connected = true;
        self.stream = Some(stream);
        Ok(())
    }

    /// Normalizes "the established connection died" io kinds onto
    /// `ConnectionReset` so they share one retryable class (see module
    /// docs), and maps timeout kinds onto [`RlError::DeadlineExpired`]
    /// when the call carried a deadline.
    fn classify_transport(&self, e: RlError, method: u16, had_deadline: bool) -> RlError {
        use std::io::ErrorKind;
        match e {
            RlError::Io { kind, message } => match kind {
                ErrorKind::WouldBlock | ErrorKind::TimedOut if had_deadline => {
                    RlError::DeadlineExpired { what: format!("rpc {}:{}", self.peer, method) }
                }
                ErrorKind::BrokenPipe | ErrorKind::UnexpectedEof => RlError::Io {
                    kind: ErrorKind::ConnectionReset,
                    message: format!("{} went away ({:?}: {})", self.peer, kind, message),
                },
                _ => RlError::Io { kind, message },
            },
            other => other,
        }
    }

    /// Issues one call and blocks for the response.
    ///
    /// `deadline` bounds the whole call (send + server time + receive);
    /// `None` blocks indefinitely. On expiry the stream is dropped (it
    /// may hold a half-read frame) and the call returns
    /// [`RlError::DeadlineExpired`]; the next call reconnects.
    ///
    /// # Errors
    ///
    /// [`RlError::DeadlineExpired`] on deadline expiry, `RlError::Io` on
    /// transport failure, [`RlError::Protocol`] if the peer violates the
    /// wire protocol, or whatever typed [`RlError`] the remote service
    /// returned.
    pub fn call(
        &mut self,
        method: u16,
        body: &[u8],
        deadline: Option<Duration>,
    ) -> RlResult<Vec<u8>> {
        self.drain_deferred()?;
        self.resolve_prefetch();
        let t0 = Instant::now();
        let expiry = deadline.map(|d| t0 + d);
        // Tracing: when the recorder records, derive a child context and
        // open a client span flow-linked to the child's span id — the
        // remote handler span adopts the same id from the wire.
        let (ctx, _span) = if self.recorder.is_enabled() {
            let child = TraceContext::current_or_root().child();
            let span_name = self.method_obs(method).1.clone();
            (Some(child), Some(self.recorder.span(span_name).flow_out(child.span_id)))
        } else {
            (None, None)
        };
        let result = self.call_inner(method, body, expiry, ctx);
        // Version negotiation fallback (DESIGN.md §14): a strict
        // version-1 server rejects our capability flags by closing the
        // connection before dispatching anything, which surfaces here as
        // a retryable transport error with the probe still unconfirmed.
        // Downgrade to plain version-1 words permanently; the caller's
        // retry (the error class is retryable) re-issues plain.
        if let Err(e) = &result {
            if self.advertise != 0 && !self.caps_confirmed && probe_rejected(e) {
                self.advertise = 0;
                self.peer_caps = 0;
            }
        }
        let elapsed = t0.elapsed();
        self.rpc_us.record_duration(elapsed);
        self.method_obs(method).0.record_duration(elapsed);
        match result {
            // A typed error the remote service returned arrives on a
            // clean, well-framed stream — keep the connection.
            Ok(reply) => reply,
            // Transport, protocol, or deadline failures poison the
            // stream (it may hold a half-read frame): drop it and let
            // the next call reconnect. The reconnect re-probes: the
            // process behind the address may have changed versions.
            Err(e) => {
                self.stream = None;
                self.peer_caps = 0;
                self.caps_confirmed = false;
                Err(self.classify_transport(e, method, deadline.is_some()))
            }
        }
    }

    /// Sends a request and returns without reading the response: the
    /// ack is drained just before the next request on this client. The
    /// blocking server answers strictly in order per connection, so by
    /// the time the caller comes back the response is normally already
    /// sitting in the socket buffer — the round-trip leaves the
    /// caller's critical path.
    ///
    /// At most one call is in flight; a second deferred call first
    /// drains the previous ack. Only fire-and-forget methods whose
    /// reply carries no data belong here: a **typed service error** in
    /// the drained ack is *dropped* (counted under
    /// `net.deferred_dropped_errors`), because surfacing it from an
    /// unrelated later call would corrupt that call's error contract.
    /// Transport failures at drain time poison the stream and surface
    /// retryable from the next call, exactly like a synchronous
    /// failure.
    ///
    /// Until capability negotiation resolves (and again after every
    /// reconnect) this degrades to a synchronous [`RpcClient::call`] —
    /// the probe must stay a lone request on the wire.
    ///
    /// # Errors
    ///
    /// Transport/deadline/protocol errors from the send (or from
    /// draining a previous deferred ack).
    pub fn call_deferred(
        &mut self,
        method: u16,
        body: &[u8],
        deadline: Option<Duration>,
    ) -> RlResult<()> {
        self.drain_deferred()?;
        self.resolve_prefetch();
        if self.advertise != 0 && !self.caps_confirmed {
            return self.call(method, body, deadline).map(|_| ());
        }
        let t0 = Instant::now();
        let expiry = deadline.map(|d| t0 + d);
        let result = self.send_only(method, body, expiry);
        let elapsed = t0.elapsed();
        self.rpc_us.record_duration(elapsed);
        self.method_obs(method).0.record_duration(elapsed);
        match result {
            Ok(req_id) => {
                self.deferred = Some((req_id, expiry));
                Ok(())
            }
            Err(e) => {
                self.stream = None;
                self.peer_caps = 0;
                self.caps_confirmed = false;
                Err(self.classify_transport(e, method, deadline.is_some()))
            }
        }
    }

    fn send_only(&mut self, method: u16, body: &[u8], expiry: Option<Instant>) -> RlResult<u64> {
        self.ensure_connected()?;
        self.next_req_id += 1;
        let req_id = self.next_req_id;
        let mut payload = ByteWriter::with_capacity(14 + body.len());
        payload.put_u64(req_id);
        payload.put_u16(method);
        payload.put_bytes(body);
        let stream = self.stream.as_ref().expect("connected above");
        arm_timeouts(stream, expiry)?;
        write_frame_negotiated_metered(
            &mut &*stream,
            FrameKind::Request,
            &payload.into_bytes(),
            self.advertise,
            self.peer_caps,
            &self.meter,
        )?;
        Ok(req_id)
    }

    /// Reads the ack of an outstanding [`RpcClient::call_deferred`], if
    /// any. Typed service errors are dropped (see `call_deferred`);
    /// transport failures poison the stream and return retryable.
    fn drain_deferred(&mut self) -> RlResult<()> {
        let Some((req_id, expiry)) = self.deferred.take() else {
            return Ok(());
        };
        let result = (|| -> RlResult<()> {
            let stream = self
                .stream
                .as_ref()
                .ok_or_else(|| RlError::Protocol("deferred ack on a dead stream".into()))?;
            arm_timeouts(stream, expiry)?;
            let frame = read_frame_info_metered(&mut &*stream, &self.meter)?;
            if self.advertise != 0 {
                self.peer_caps |= frame.peer_caps;
                self.caps_confirmed = true;
            }
            if frame.kind != FrameKind::Response {
                return Err(RlError::Protocol(format!(
                    "{} sent a {:?} frame to a client",
                    self.peer, frame.kind
                )));
            }
            let mut r = ByteReader::new(&frame.payload);
            let got_id = r.get_u64()?;
            if got_id != req_id {
                return Err(RlError::Protocol(format!(
                    "{} answered request {} while {} was pending",
                    self.peer, got_id, req_id
                )));
            }
            match r.get_u8()? {
                0 => {}
                1 => {
                    // Typed service error on a healthy stream: dropped
                    // by the deferred contract, but never silently.
                    get_rl_error(&mut r)?;
                    self.recorder.counter("net.deferred_dropped_errors").inc();
                }
                other => {
                    return Err(RlError::Protocol(format!("unknown response status {}", other)));
                }
            }
            Ok(())
        })();
        match result {
            Ok(()) => Ok(()),
            Err(e) => {
                self.stream = None;
                self.peer_caps = 0;
                self.caps_confirmed = false;
                Err(self.classify_transport(e, 0, expiry.is_some()))
            }
        }
    }

    /// Sends a request whose **response body the caller wants later**:
    /// the pipelined sibling of [`RpcClient::call_deferred`] for
    /// methods that return data. The caller collects the result with
    /// [`RpcClient::take_prefetched`]; in between it is free to do
    /// local work (or talk to *other* clients) while the server
    /// processes the request — the blocking server answers in order
    /// per connection, so by collection time the response is normally
    /// already in the socket buffer and the round-trip has left the
    /// caller's critical path.
    ///
    /// At most one prefetch is outstanding per client; a second
    /// prefetch before collection is a caller bug and fails with
    /// [`RlError::Protocol`]. An intervening [`RpcClient::call`] or
    /// [`RpcClient::call_deferred`] on this client resolves the
    /// pending response first (stashing it, typed errors included) so
    /// request/response pairing is never reordered. Until capability
    /// negotiation resolves this degrades to a synchronous call whose
    /// result is stashed — the probe must stay a lone request on the
    /// wire.
    ///
    /// # Errors
    ///
    /// Transport/deadline/protocol errors from the send or from
    /// draining a previous deferred ack. Errors of the prefetched call
    /// itself surface from `take_prefetched`.
    pub fn call_prefetch(
        &mut self,
        method: u16,
        body: &[u8],
        deadline: Option<Duration>,
    ) -> RlResult<()> {
        self.drain_deferred()?;
        if self.prefetch.is_some() {
            return Err(RlError::Protocol(format!(
                "{}: a prefetched call is already outstanding",
                self.peer
            )));
        }
        if self.advertise != 0 && !self.caps_confirmed {
            let result = self.call(method, body, deadline);
            self.prefetch = Some(PrefetchState::Ready(result));
            return Ok(());
        }
        let expiry = deadline.map(|d| Instant::now() + d);
        match self.send_only(method, body, expiry) {
            Ok(req_id) => {
                self.prefetch = Some(PrefetchState::Sent { req_id, expiry, method });
                Ok(())
            }
            Err(e) => {
                self.stream = None;
                self.peer_caps = 0;
                self.caps_confirmed = false;
                Err(self.classify_transport(e, method, deadline.is_some()))
            }
        }
    }

    /// Collects the response of the outstanding
    /// [`RpcClient::call_prefetch`], blocking only for whatever part of
    /// the round-trip the caller's local work did not already cover.
    /// The recorded per-method latency is exactly that residual wait.
    ///
    /// # Errors
    ///
    /// Whatever the synchronous call would have returned: the remote
    /// service's typed error (stream kept), transport/deadline/protocol
    /// failures (stream poisoned), or [`RlError::Protocol`] if no
    /// prefetch is outstanding.
    pub fn take_prefetched(&mut self) -> RlResult<Vec<u8>> {
        match self.prefetch.take() {
            None => {
                Err(RlError::Protocol(format!("{}: no prefetched call outstanding", self.peer)))
            }
            Some(PrefetchState::Ready(result)) => result,
            Some(PrefetchState::Sent { req_id, expiry, method }) => {
                let t0 = Instant::now();
                let result = self.read_response(req_id, expiry, method);
                let elapsed = t0.elapsed();
                self.rpc_us.record_duration(elapsed);
                self.method_obs(method).0.record_duration(elapsed);
                result
            }
        }
    }

    /// Turns a sent-but-uncollected prefetch into a stashed result so
    /// another request can use the stream. No-op otherwise.
    fn resolve_prefetch(&mut self) {
        match self.prefetch.take() {
            Some(PrefetchState::Sent { req_id, expiry, method }) => {
                let result = self.read_response(req_id, expiry, method);
                self.prefetch = Some(PrefetchState::Ready(result));
            }
            other => self.prefetch = other,
        }
    }

    /// Reads one response frame for `req_id`. Typed service errors
    /// return on a healthy stream; transport/protocol/deadline failures
    /// poison it, exactly like the synchronous path.
    fn read_response(
        &mut self,
        req_id: u64,
        expiry: Option<Instant>,
        method: u16,
    ) -> RlResult<Vec<u8>> {
        let result = (|| -> RlResult<RlResult<Vec<u8>>> {
            let stream = self
                .stream
                .as_ref()
                .ok_or_else(|| RlError::Protocol("pending response on a dead stream".into()))?;
            arm_timeouts(stream, expiry)?;
            let frame = read_frame_info_metered(&mut &*stream, &self.meter)?;
            if self.advertise != 0 {
                self.peer_caps |= frame.peer_caps;
                self.caps_confirmed = true;
            }
            if frame.kind != FrameKind::Response {
                return Err(RlError::Protocol(format!(
                    "{} sent a {:?} frame to a client",
                    self.peer, frame.kind
                )));
            }
            let mut r = ByteReader::new(&frame.payload);
            let got_id = r.get_u64()?;
            if got_id != req_id {
                return Err(RlError::Protocol(format!(
                    "{} answered request {} while {} was pending",
                    self.peer, got_id, req_id
                )));
            }
            match r.get_u8()? {
                0 => Ok(Ok(r.get_bytes(r.remaining()).expect("remaining").to_vec())),
                1 => Ok(Err(get_rl_error(&mut r)?)),
                other => Err(RlError::Protocol(format!("unknown response status {}", other))),
            }
        })();
        match result {
            Ok(reply) => reply,
            Err(e) => {
                self.stream = None;
                self.peer_caps = 0;
                self.caps_confirmed = false;
                Err(self.classify_transport(e, method, expiry.is_some()))
            }
        }
    }

    /// Outer error: transport/protocol failure (stream poisoned).
    /// Inner error: the remote service's typed reply (stream healthy).
    fn call_inner(
        &mut self,
        method: u16,
        body: &[u8],
        expiry: Option<Instant>,
        ctx: Option<TraceContext>,
    ) -> RlResult<RlResult<Vec<u8>>> {
        self.ensure_connected()?;
        self.next_req_id += 1;
        let req_id = self.next_req_id;
        let mut payload = ByteWriter::with_capacity(30 + body.len());
        let kind = match &ctx {
            Some(c) => {
                put_trace_context(&mut payload, c);
                FrameKind::RequestTraced
            }
            None => FrameKind::Request,
        };
        payload.put_u64(req_id);
        payload.put_u16(method);
        payload.put_bytes(body);
        let payload = payload.into_bytes();
        let stream = self.stream.as_ref().expect("connected above");
        arm_timeouts(stream, expiry)?;
        write_frame_negotiated_metered(
            &mut &*stream,
            kind,
            &payload,
            self.advertise,
            self.peer_caps,
            &self.meter,
        )?;
        arm_timeouts(stream, expiry)?;
        let frame = read_frame_info_metered(&mut &*stream, &self.meter)?;
        let (kind, resp) = (frame.kind, frame.payload);
        if self.advertise != 0 {
            self.peer_caps |= frame.peer_caps;
            self.caps_confirmed = true;
        }
        if kind != FrameKind::Response {
            return Err(RlError::Protocol(format!(
                "{} sent a {:?} frame to a client",
                self.peer, kind
            )));
        }
        let mut r = ByteReader::new(&resp);
        let got_id = r.get_u64()?;
        if got_id != req_id {
            return Err(RlError::Protocol(format!(
                "{} answered request {} while {} was pending",
                self.peer, got_id, req_id
            )));
        }
        match r.get_u8()? {
            0 => Ok(Ok(r.get_bytes(r.remaining()).expect("remaining").to_vec())),
            1 => Ok(Err(get_rl_error(&mut r)?)),
            other => Err(RlError::Protocol(format!("unknown response status {}", other))),
        }
    }

    /// Issues the call under a [`RetryPolicy`]: retryable failures
    /// (deadline expiry, reset connections, saturated remote mailboxes)
    /// back off and re-issue — reconnecting transparently — while fatal
    /// errors short-circuit.
    ///
    /// `deadline` applies per attempt; the policy's own deadline bounds
    /// the whole loop.
    ///
    /// # Errors
    ///
    /// [`RlError::RetriesExhausted`] wrapping the last failure, or the
    /// first fatal error.
    pub fn call_retry(
        &mut self,
        method: u16,
        body: &[u8],
        deadline: Option<Duration>,
        policy: &RetryPolicy,
    ) -> RlResult<Vec<u8>> {
        let sleeper = ThreadSleeper::new();
        self.call_retry_with(method, body, deadline, policy, &sleeper)
    }

    /// [`RpcClient::call_retry`] against an explicit [`Sleep`] (virtual
    /// time in tests).
    ///
    /// # Errors
    ///
    /// As [`RpcClient::call_retry`].
    pub fn call_retry_with(
        &mut self,
        method: u16,
        body: &[u8],
        deadline: Option<Duration>,
        policy: &RetryPolicy,
        sleeper: &dyn Sleep,
    ) -> RlResult<Vec<u8>> {
        policy.run(sleeper, |_| self.call(method, body, deadline))
    }
}

/// Whether a failed call looks like a version-1 peer rejecting our
/// capability flags: such a peer closes the connection (or answers
/// garbage) without dispatching. Deadline expiry and refused
/// connections are *not* probe rejections — the server never saw the
/// flags at all.
fn probe_rejected(e: &RlError) -> bool {
    use std::io::ErrorKind;
    match e {
        RlError::Protocol(_) => true,
        RlError::Io { kind, .. } => matches!(
            kind,
            ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::BrokenPipe
                | ErrorKind::UnexpectedEof
        ),
        _ => false,
    }
}

/// Arms socket timeouts from the remaining deadline budget; an already
/// expired deadline fails without touching the socket.
fn arm_timeouts(stream: &TcpStream, expiry: Option<Instant>) -> RlResult<()> {
    match expiry {
        None => {
            stream.set_read_timeout(None)?;
            stream.set_write_timeout(None)?;
        }
        Some(at) => {
            let remaining = at.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RlError::Io {
                    kind: std::io::ErrorKind::TimedOut,
                    message: "deadline already expired".into(),
                });
            }
            stream.set_read_timeout(Some(remaining))?;
            stream.set_write_timeout(Some(remaining))?;
        }
    }
    Ok(())
}
