//! Remote placement for the dataflow-fragment API (DESIGN.md §15).
//!
//! [`run_apex_net`](crate::run_apex_net) is the same logical Ape-X
//! graph the in-process drivers declare — rollout → replay → learn,
//! broadcast → rollout — with the rollout fragment placed
//! [`Placement::RemoteProcess`]: each replica is an OS process
//! re-execed via [`crate::proc`], its edges carried by the crate's RPC
//! layer instead of in-process mailboxes. This module derives that
//! declaration from a [`NetApexConfig`] so the TCP runtime validates
//! against the same graph/placement contract as every other driver
//! (placement swap = [`LaunchMode`] flip; the declaration does not
//! change).

use crate::apex_net::{LaunchMode, NetApexConfig};
use rlgraph_core::RlResult;
use rlgraph_dist::fragment::{FragmentGraph, Placement, PlacementCaps, PlacementMap, StageKind};
use rlgraph_dist::ReplayShard;

/// The logical Ape-X fragment graph of a TCP run: identical topology to
/// the in-process declaration, derived from the net config's replica
/// counts.
///
/// # Errors
///
/// Graph validation failures (zero replicas, zero-capacity edges).
pub fn net_apex_graph(config: &NetApexConfig) -> RlResult<FragmentGraph> {
    let b = FragmentGraph::builder();
    // An elastic run declares the rollout stage with its scaling
    // bounds; the runtime's ElasticStage pool enforces them.
    let b = match &config.elastic {
        Some(e) => b.elastic_stage(
            "rollout",
            StageKind::Rollout,
            config.num_workers,
            e.min_workers,
            e.max_workers,
        ),
        None => b.stage("rollout", StageKind::Rollout, config.num_workers),
    };
    b.stage("replay", StageKind::Replay, config.num_shards)
        .stage("learn", StageKind::Learn, 1)
        .stage("broadcast", StageKind::Broadcast, 1)
        .edge("rollout", "replay", ReplayShard::DEFAULT_MAILBOX_CAPACITY)
        .alias("shard.mailbox_depth")
        .edge("replay", "learn", 1)
        .latest_edge("broadcast", "rollout")
        .build()
}

/// The physical mapping of a TCP run: rollout replicas follow the
/// launch mode ([`LaunchMode::Process`] → [`Placement::RemoteProcess`],
/// [`LaunchMode::Thread`] → [`Placement::ActorThread`]); the replay and
/// broadcast fragments are RPC-server threads in the coordinator
/// process, and the learn fragment is the coordinator's own loop.
pub fn net_apex_placement(launch: LaunchMode) -> PlacementMap {
    let rollout = match launch {
        LaunchMode::Process => Placement::RemoteProcess,
        LaunchMode::Thread => Placement::ActorThread,
    };
    PlacementMap::new()
        .place("rollout", rollout)
        .place("replay", Placement::ActorThread)
        .place("learn", Placement::InThread)
        .place("broadcast", Placement::ActorThread)
}

/// Validates a net run's declaration: the graph must build and the
/// placement must be legal under remote-capable
/// [`PlacementCaps::with_remote`].
///
/// # Errors
///
/// Invalid graph or placement (e.g. a stage name the graph does not
/// declare).
pub fn validate_net_apex(config: &NetApexConfig) -> RlResult<(FragmentGraph, PlacementMap)> {
    let graph = net_apex_graph(config)?;
    let placement = net_apex_placement(config.launch);
    placement.validate(&graph, PlacementCaps::with_remote())?;
    Ok((graph, placement))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlgraph_dist::fragment::EdgePolicy;

    #[test]
    fn net_declaration_matches_the_in_process_apex_topology() {
        let config = NetApexConfig { num_workers: 3, num_shards: 2, ..NetApexConfig::default() };
        let (graph, placement) = validate_net_apex(&config).unwrap();
        assert_eq!(graph.stage("rollout").unwrap().replicas, 3);
        assert_eq!(graph.stage("replay").unwrap().replicas, 2);
        assert_eq!(placement.of("rollout"), Placement::RemoteProcess);
        assert_eq!(placement.of("learn"), Placement::InThread);
        let b2r =
            graph.edges().iter().find(|e| e.from == "broadcast").expect("broadcast edge declared");
        assert_eq!(b2r.policy, EdgePolicy::Latest);
    }

    #[test]
    fn placement_swaps_with_launch_mode_without_touching_the_graph() {
        let config = NetApexConfig { launch: LaunchMode::Thread, ..NetApexConfig::default() };
        let (_, placement) = validate_net_apex(&config).unwrap();
        assert_eq!(placement.of("rollout"), Placement::ActorThread);
        // Thread mode needs no remote capability at all.
        let graph = net_apex_graph(&config).unwrap();
        assert!(placement.validate(&graph, PlacementCaps::local()).is_ok());
    }
}
