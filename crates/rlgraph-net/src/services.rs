//! The RPC services of the multi-process Ape-X runtime: replay shards
//! and the learner-side coordinator, each with a typed client.
//!
//! A [`ShardService`] exposes one [`ShardCore`] — the exact replay state
//! machine the in-process executor drives through channels — over the
//! wire, so the TCP runtime exercises the production replay path rather
//! than a re-implementation. A [`CoordService`] is the parameter-server
//! face of the learner: workers poll versioned weight snapshots out of
//! the shared [`WeightHub`] and report progress through heartbeats whose
//! replies double as the shutdown signal.

use crate::codec::{
    dequantized_snapshot, get_checkpoint, get_membership, get_metrics_snapshot, get_snapshot,
    get_snapshot_delta, get_tensor, get_trace_dump, get_trajectory, get_trajectory_v2,
    put_checkpoint, put_membership, put_metrics_snapshot, put_snapshot, put_snapshot_delta,
    put_snapshot_enc, put_tensor, put_tensor_enc, put_trace_dump, put_trajectory,
    put_trajectory_v2, CodecProfile, TensorEnc,
};
use crate::rpc::{RpcClient, RpcService};
use crate::wire::{ByteReader, ByteWriter};
use parking_lot::Mutex;
use rlgraph_core::{RlError, RlResult};
use rlgraph_dist::checkpoint::LearnerCheckpoint;
use rlgraph_dist::cluster::{MembershipTable, MembershipView};
use rlgraph_dist::shard::{ShardBatch, ShardCore};
use rlgraph_dist::sync::{WeightHub, WeightsSnapshot};
use rlgraph_memory::Transition;
use rlgraph_obs::{ClusterRegistry, MetricsSnapshot, Recorder, TraceDump};
use std::collections::HashSet;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Method ids of the replay-shard service.
pub mod shard_method {
    /// `Insert { transitions, priorities }` → `()`
    pub const INSERT: u16 = 1;
    /// `Sample { batch, beta }` → `Option<ShardBatch>`
    pub const SAMPLE: u16 = 2;
    /// `UpdatePriorities { indices, priorities }` → `()`
    pub const UPDATE_PRIORITIES: u16 = 3;
    /// `Watermark` → `u64`
    pub const WATERMARK: u16 = 4;
    /// `InsertColumnar { columnar trajectory }` → `()` — the v2 form of
    /// [`INSERT`]; old servers answer with a typed `Protocol` error and
    /// the client falls back to v1.
    pub const INSERT_COLUMNAR: u16 = 5;
}

/// Method ids of the learner coordinator service.
pub mod coord_method {
    /// `GetWeights { seen }` → `Option<WeightsSnapshot>`
    pub const GET_WEIGHTS: u16 = 1;
    /// `Heartbeat { … }` → [`crate::services::HeartbeatReply`]
    pub const HEARTBEAT: u16 = 2;
    /// `GetCheckpoint` → `LearnerCheckpoint`
    pub const GET_CHECKPOINT: u16 = 3;
    /// `GetTelemetry` → plain-text cluster registry dump
    pub const GET_TELEMETRY: u16 = 4;
    /// `PushTrace { process, dump }` → `()` (workers ship their span
    /// buffers before exiting, for the merged cluster trace)
    pub const PUSH_TRACE: u16 = 5;
    /// `Join { worker, generation }` → `epoch u64` (membership admit;
    /// stale generations rejected with a typed error)
    pub const JOIN: u16 = 6;
    /// `Leave { worker }` → `()` (clean departure)
    pub const LEAVE: u16 = 7;
    /// `GetMembership` → [`rlgraph_dist::MembershipView`]
    pub const GET_MEMBERSHIP: u16 = 8;
}

/// Method-name table of [`shard_method`], for telemetry labels.
pub fn shard_method_name(method: u16) -> &'static str {
    match method {
        shard_method::INSERT => "insert",
        shard_method::SAMPLE => "sample",
        shard_method::UPDATE_PRIORITIES => "update_priorities",
        shard_method::WATERMARK => "watermark",
        shard_method::INSERT_COLUMNAR => "insert_columnar",
        _ => "other",
    }
}

/// Method-name table of [`coord_method`], for telemetry labels.
pub fn coord_method_name(method: u16) -> &'static str {
    match method {
        coord_method::GET_WEIGHTS => "get_weights",
        coord_method::HEARTBEAT => "heartbeat",
        coord_method::GET_CHECKPOINT => "get_checkpoint",
        coord_method::GET_TELEMETRY => "get_telemetry",
        coord_method::PUSH_TRACE => "push_trace",
        coord_method::JOIN => "join",
        coord_method::LEAVE => "leave",
        coord_method::GET_MEMBERSHIP => "get_membership",
        _ => "other",
    }
}

/// One replay shard behind an RPC server.
///
/// Requests from all connections serialize on an internal mutex — the
/// same total-order guarantee the channel-mailbox actor gives, so the
/// shard's determinism-per-seed property carries over to the wire.
pub struct ShardService {
    core: Mutex<ShardCore>,
}

impl ShardService {
    /// Wraps a fresh [`ShardCore`] with the given capacity, priority
    /// exponent, and sampling seed.
    pub fn new(capacity: usize, alpha: f32, seed: u64) -> Self {
        ShardService { core: Mutex::new(ShardCore::new(capacity, alpha, seed)) }
    }
}

impl RpcService for ShardService {
    fn method_name(&self, method: u16) -> &'static str {
        shard_method_name(method)
    }

    fn call(&self, method: u16, body: &[u8]) -> RlResult<Vec<u8>> {
        let mut r = ByteReader::new(body);
        let mut out = ByteWriter::new();
        match method {
            shard_method::INSERT => {
                let (transitions, priorities) = get_trajectory(&mut r)?;
                r.expect_end()?;
                self.core.lock().insert(transitions, priorities);
            }
            shard_method::INSERT_COLUMNAR => {
                let (transitions, priorities) = get_trajectory_v2(&mut r)?;
                r.expect_end()?;
                self.core.lock().insert(transitions, priorities);
            }
            shard_method::SAMPLE => {
                let batch = r.get_u32()? as usize;
                let beta = r.get_f32()?;
                // v2 requests append the state encoding for the reply;
                // v1 requests end here and get exact tensors back.
                let enc = if r.remaining() > 0 {
                    let enc = state_enc_from_tag(r.get_u8()?)?;
                    r.expect_end()?;
                    enc
                } else {
                    r.expect_end()?;
                    TensorEnc::F32
                };
                match self.core.lock().sample(batch, beta) {
                    None => out.put_u8(0),
                    Some(b) => {
                        out.put_u8(1);
                        put_shard_batch(&mut out, &b, enc);
                    }
                }
            }
            shard_method::UPDATE_PRIORITIES => {
                let n = r.get_u32()? as usize;
                let mut indices = Vec::with_capacity(n);
                for _ in 0..n {
                    indices.push(r.get_u64()? as usize);
                }
                let priorities = r.get_f32_vec()?;
                r.expect_end()?;
                self.core.lock().update_priorities(indices, priorities);
            }
            shard_method::WATERMARK => {
                r.expect_end()?;
                out.put_u64(self.core.lock().watermark());
            }
            other => {
                return Err(RlError::Protocol(format!("shard service: unknown method {}", other)))
            }
        }
        Ok(out.into_bytes())
    }
}

fn state_enc_from_tag(tag: u8) -> RlResult<TensorEnc> {
    if tag == 0 {
        return Ok(TensorEnc::F32);
    }
    TensorEnc::from_quant_tag(tag)
        .ok_or_else(|| RlError::Protocol(format!("unknown dtype tag {}", tag)))
}

fn put_shard_batch(w: &mut ByteWriter, b: &ShardBatch, enc: TensorEnc) {
    // Only the state tensors (s at 0, s2 at 3) are quantized; actions,
    // rewards, terminals, and importance weights ship exact.
    for (i, t) in b.tensors.iter().enumerate() {
        if i == 0 || i == 3 {
            put_tensor_enc(w, t, enc);
        } else {
            put_tensor(w, t);
        }
    }
    put_tensor(w, &b.weights);
    w.put_u32(b.indices.len() as u32);
    for &i in &b.indices {
        w.put_u64(i as u64);
    }
}

fn get_shard_batch(r: &mut ByteReader<'_>) -> RlResult<ShardBatch> {
    let tensors = [get_tensor(r)?, get_tensor(r)?, get_tensor(r)?, get_tensor(r)?, get_tensor(r)?];
    let weights = get_tensor(r)?;
    let n = r.get_u32()? as usize;
    let mut indices = Vec::with_capacity(n);
    for _ in 0..n {
        indices.push(r.get_u64()? as usize);
    }
    Ok(ShardBatch { tensors, weights, indices })
}

fn sample_request(batch: usize, beta: f32, quantized: bool, enc: TensorEnc) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(batch as u32);
    w.put_f32(beta);
    if quantized {
        w.put_u8(enc.tag());
    }
    w.into_bytes()
}

fn decode_sample(resp: &[u8]) -> RlResult<Option<ShardBatch>> {
    let mut r = ByteReader::new(resp);
    let out = match r.get_u8()? {
        0 => None,
        1 => Some(get_shard_batch(&mut r)?),
        other => return Err(RlError::Protocol(format!("bad sample flag {}", other))),
    };
    r.expect_end()?;
    Ok(out)
}

/// Typed client of one remote replay shard.
pub struct ShardClient {
    rpc: RpcClient,
    deadline: Option<Duration>,
    codec: CodecProfile,
    /// Cleared permanently after the server rejects a v2 form (an old
    /// peer); all later calls use the v1 wire forms.
    v2_ok: bool,
    /// Arguments of the outstanding [`ShardClient::sample_prefetch`]
    /// (batch, beta, request-was-quantized), kept for the old-peer
    /// downgrade retry at collection time.
    prefetch_args: Option<(usize, f32, bool)>,
}

impl ShardClient {
    /// Connects to a shard server.
    ///
    /// # Errors
    ///
    /// `RlError::Io` when the connection fails.
    pub fn connect(name: &str, addr: SocketAddr, recorder: &Recorder) -> RlResult<Self> {
        let mut rpc = RpcClient::connect(name, addr, recorder)?;
        rpc.set_method_names(shard_method_name);
        Ok(ShardClient {
            rpc,
            deadline: None,
            codec: CodecProfile::PLAIN,
            v2_ok: true,
            prefetch_args: None,
        })
    }

    /// Applies a per-call deadline to every subsequent request.
    pub fn set_deadline(&mut self, d: Option<Duration>) {
        self.deadline = d;
    }

    /// Selects the wire encodings for inserts and sample replies.
    pub fn set_codec(&mut self, codec: CodecProfile) {
        self.codec = codec;
        self.v2_ok = true;
    }

    /// Forces plain v1 frames (no capability negotiation, no LZ) — see
    /// [`RpcClient::set_plain_wire`].
    pub fn set_plain_wire(&mut self) {
        self.rpc.set_plain_wire();
    }

    /// Ships transitions with worker-side priorities.
    ///
    /// # Errors
    ///
    /// Transport/deadline/protocol errors from the RPC layer.
    pub fn insert(&mut self, transitions: &[Transition], priorities: &[f32]) -> RlResult<()> {
        if self.codec.columnar && self.v2_ok {
            let mut w = ByteWriter::new();
            // A heterogeneous batch refuses before writing; ship it v1.
            if put_trajectory_v2(&mut w, transitions, priorities, self.codec.states).is_ok() {
                match self.rpc.call(shard_method::INSERT_COLUMNAR, &w.into_bytes(), self.deadline) {
                    Ok(_) => return Ok(()),
                    Err(RlError::Protocol(_)) => self.v2_ok = false, // old peer
                    Err(e) => return Err(e),
                }
            }
        }
        let mut w = ByteWriter::new();
        put_trajectory(&mut w, transitions, priorities);
        self.rpc.call(shard_method::INSERT, &w.into_bytes(), self.deadline)?;
        Ok(())
    }

    /// Samples a batch; `None` while the shard is under-filled.
    ///
    /// # Errors
    ///
    /// Transport/deadline/protocol errors from the RPC layer.
    pub fn sample(&mut self, batch: usize, beta: f32) -> RlResult<Option<ShardBatch>> {
        let quantized = self.codec.states != TensorEnc::F32 && self.v2_ok;
        let req = sample_request(batch, beta, quantized, self.codec.states);
        let resp = match self.rpc.call(shard_method::SAMPLE, &req, self.deadline) {
            Err(RlError::Protocol(_)) if quantized => {
                // Old peer choked on the extra request byte: downgrade.
                self.v2_ok = false;
                let req = sample_request(batch, beta, false, self.codec.states);
                self.rpc.call(shard_method::SAMPLE, &req, self.deadline)?
            }
            other => other?,
        };
        decode_sample(&resp)
    }

    /// Requests a batch without waiting for it: the pipelined form of
    /// [`ShardClient::sample`]. The shard selects, gathers, and encodes
    /// the batch while the caller does local work (typically the learn
    /// step on the *previous* batch); [`ShardClient::sample_collect`]
    /// then blocks only for whatever the overlap did not cover.
    ///
    /// # Errors
    ///
    /// Transport/deadline/protocol errors from the RPC layer.
    pub fn sample_prefetch(&mut self, batch: usize, beta: f32) -> RlResult<()> {
        let quantized = self.codec.states != TensorEnc::F32 && self.v2_ok;
        let req = sample_request(batch, beta, quantized, self.codec.states);
        self.prefetch_args = Some((batch, beta, quantized));
        self.rpc.call_prefetch(shard_method::SAMPLE, &req, self.deadline)
    }

    /// Collects the batch of the outstanding
    /// [`ShardClient::sample_prefetch`]; `None` while the shard is
    /// under-filled. An old peer rejecting the quantized request is
    /// downgraded here exactly like in the synchronous path (resampled
    /// plain, once).
    ///
    /// # Errors
    ///
    /// Transport/deadline/protocol errors from the RPC layer, or
    /// [`RlError::Protocol`] when no prefetch is outstanding.
    pub fn sample_collect(&mut self) -> RlResult<Option<ShardBatch>> {
        let (batch, beta, quantized) = self
            .prefetch_args
            .take()
            .ok_or_else(|| RlError::Protocol("no prefetched sample outstanding".into()))?;
        let resp = match self.rpc.take_prefetched() {
            Err(RlError::Protocol(_)) if quantized => {
                self.v2_ok = false;
                return self.sample(batch, beta);
            }
            other => other?,
        };
        decode_sample(&resp)
    }

    /// Applies the learner's post-step priority updates. Pipelined: the
    /// request is sent immediately and its ack drained just before the
    /// next call on this client, keeping the round-trip off the
    /// learner's critical path. Priorities are advisory, so a typed
    /// error in the dropped ack costs one stale priority, nothing more.
    ///
    /// # Errors
    ///
    /// Transport/deadline/protocol errors from the RPC layer.
    pub fn update_priorities(&mut self, indices: &[usize], priorities: &[f32]) -> RlResult<()> {
        let mut w = ByteWriter::new();
        w.put_u32(indices.len() as u32);
        for &i in indices {
            w.put_u64(i as u64);
        }
        w.put_f32_slice(priorities);
        self.rpc.call_deferred(shard_method::UPDATE_PRIORITIES, &w.into_bytes(), self.deadline)
    }

    /// The shard's high-water mark (total records ever inserted).
    ///
    /// # Errors
    ///
    /// Transport/deadline/protocol errors from the RPC layer.
    pub fn watermark(&mut self) -> RlResult<u64> {
        let resp = self.rpc.call(shard_method::WATERMARK, &[], self.deadline)?;
        let mut r = ByteReader::new(&resp);
        let v = r.get_u64()?;
        r.expect_end()?;
        Ok(v)
    }
}

/// A worker's heartbeat: cumulative-progress deltas since its last beat,
/// plus the telemetry piggyback (metric deltas and the worker's current
/// clock-offset estimate, both optional and version-tolerant on the wire).
#[derive(Debug, Clone, Default)]
pub struct Heartbeat {
    /// worker index
    pub worker: u32,
    /// env frames consumed since the last beat
    pub frames: u64,
    /// post-processed samples shipped since the last beat
    pub samples: u64,
    /// episode returns completed since the last beat
    pub returns: Vec<f32>,
    /// the worker's estimate of (coordinator clock − its own clock),
    /// in microseconds; only meaningful when `rtt_us > 0`
    pub offset_us: i64,
    /// round-trip time of the beat that produced `offset_us`; `0`
    /// means "no estimate yet" and the coordinator ignores the pair
    pub rtt_us: u64,
    /// metric deltas since the last beat, stamped with the worker's
    /// own capture clock (`taken_at_us`), not coordinator receive time
    pub snapshot: Option<MetricsSnapshot>,
    /// the worker's incarnation (see DESIGN.md §16); `0` means "not
    /// membership-tracked" (legacy peers, fixed-fleet runs) and the
    /// coordinator then skips liveness accounting for the beat
    pub generation: u64,
}

/// The coordinator's reply to a [`Heartbeat`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HeartbeatReply {
    /// whether the run is over and the worker should exit
    pub stop: bool,
    /// the coordinator's clock at reply time, in microseconds; `0`
    /// when telemetry is disabled (workers then skip offset estimation)
    pub coord_now_us: u64,
    /// whether *this worker* should retire: finish cleanly (leave, then
    /// exit) while the run continues — the scale-down path
    pub retire: bool,
}

/// Aggregated worker progress, folded from heartbeats.
#[derive(Debug, Clone, Default)]
pub struct CoordProgress {
    /// total env frames across workers
    pub env_frames: u64,
    /// total samples shipped to shards
    pub samples: u64,
    /// episode returns in arrival order
    pub returns: Vec<f32>,
    /// heartbeats received
    pub heartbeats: u64,
}

/// The learner coordinator: weight distribution + progress aggregation
/// + shutdown propagation, behind one RPC server.
pub struct CoordService {
    hub: Arc<WeightHub>,
    stop: Arc<AtomicBool>,
    progress: Mutex<CoordProgress>,
    checkpoint: Mutex<Option<LearnerCheckpoint>>,
    recorder: Recorder,
    cluster: Arc<ClusterRegistry>,
    traces: Mutex<Vec<(String, TraceDump)>>,
    /// What each delta subscriber holds (bounded by idle eviction).
    subs: Mutex<rlgraph_dist::SubscriberTable>,
    /// Dequantized images of the current version, one per encoding —
    /// computed once per publish, `Arc`-shared into the subscriber
    /// table. Keyed `(version, enc tag)`; stale versions are dropped.
    deq_cache: Mutex<DeqCache>,
    /// Elastic membership (DESIGN.md §16): joins, generation-checked
    /// beats, and missed-beat eviction, all riding the existing RPCs.
    membership: Mutex<MembershipTable>,
    /// Anchor for membership timestamps — the recorder may be disabled
    /// (its clock then reads 0), liveness still needs real time.
    epoch0: Instant,
    /// Workers flagged for clean retirement; their next heartbeat
    /// reply carries `retire = true` (flag cleared when they leave).
    retiring: Mutex<HashSet<u32>>,
}

/// Cache entries of dequantized snapshot images, keyed `(version, enc)`.
type DeqCache = Vec<((u64, u8), Arc<WeightsSnapshot>)>;

/// Default idle window after which a delta subscriber's state is
/// evicted (it then gets one full snapshot and is re-tracked).
pub const DELTA_IDLE_WINDOW: Duration = Duration::from_secs(60);

/// Default beat-silence threshold before the membership sweep evicts a
/// worker. Generous: worker task loops run well under a second.
pub const DEFAULT_BEAT_TIMEOUT: Duration = Duration::from_secs(5);

impl CoordService {
    /// Creates a coordinator bridging the given hub and stop flag.
    pub fn new(hub: Arc<WeightHub>, stop: Arc<AtomicBool>) -> Self {
        CoordService {
            hub,
            stop,
            progress: Mutex::new(CoordProgress::default()),
            checkpoint: Mutex::new(None),
            recorder: Recorder::disabled(),
            cluster: Arc::new(ClusterRegistry::new(256)),
            traces: Mutex::new(Vec::new()),
            subs: Mutex::new(rlgraph_dist::SubscriberTable::new(DELTA_IDLE_WINDOW)),
            deq_cache: Mutex::new(Vec::new()),
            membership: Mutex::new(MembershipTable::new(DEFAULT_BEAT_TIMEOUT.as_micros() as u64)),
            epoch0: Instant::now(),
            retiring: Mutex::new(HashSet::new()),
        }
    }

    /// Overrides the missed-beat eviction timeout (the elastic runtime
    /// derives it from its heartbeat cadence).
    #[must_use]
    pub fn with_beat_timeout(self, timeout: Duration) -> Self {
        *self.membership.lock() = MembershipTable::new(timeout.as_micros() as u64);
        self
    }

    /// Microseconds since this coordinator started — the membership
    /// table's time base.
    pub fn now_us(&self) -> u64 {
        self.epoch0.elapsed().as_micros() as u64
    }

    /// Snapshot of the membership table.
    pub fn membership_view(&self) -> MembershipView {
        self.membership.lock().view()
    }

    /// Evicts every member whose last beat is older than the timeout;
    /// returns the evicted worker ids and updates `cluster.*` metrics.
    /// Evicted workers' telemetry is dropped from the registry so fleet
    /// aggregates track the live fleet.
    pub fn sweep_membership(&self) -> Vec<u32> {
        let evicted = {
            let mut m = self.membership.lock();
            let evicted = m.sweep(self.now_us());
            self.recorder.gauge("cluster.members").set(m.alive_count() as f64);
            self.recorder.gauge("cluster.epoch").set(m.epoch() as f64);
            evicted
        };
        for &w in &evicted {
            self.recorder.counter("cluster.evictions").inc();
            self.cluster.forget(&format!("worker-{}", w));
        }
        evicted
    }

    /// Flags a worker for clean retirement: its next heartbeat reply
    /// says `retire`, it finishes the task, leaves, and exits.
    pub fn flag_retire(&self, worker: u32) {
        self.retiring.lock().insert(worker);
    }

    /// Overrides the delta-state idle window (tests use tiny windows to
    /// force eviction).
    #[must_use]
    pub fn with_delta_idle_window(self, window: Duration) -> Self {
        *self.subs.lock() = rlgraph_dist::SubscriberTable::new(window);
        self
    }

    /// The dequantized image of `snap` under `enc` — what a subscriber
    /// holds after decoding it. Cached per `(version, enc)`.
    fn deq_image(&self, snap: &Arc<WeightsSnapshot>, enc: TensorEnc) -> Arc<WeightsSnapshot> {
        if enc == TensorEnc::F32 {
            return snap.clone();
        }
        let key = (snap.version, enc.tag());
        let mut cache = self.deq_cache.lock();
        if let Some((_, deq)) = cache.iter().find(|(k, _)| *k == key) {
            return deq.clone();
        }
        let deq = Arc::new(dequantized_snapshot(snap, enc));
        cache.retain(|((v, _), _)| *v == snap.version);
        cache.push((key, deq.clone()));
        deq
    }

    /// Enables the telemetry plane: heartbeat replies carry the
    /// coordinator's clock (so workers can estimate offsets) and
    /// shipped snapshots fold into the cluster registry.
    #[must_use]
    pub fn with_recorder(mut self, recorder: &Recorder) -> Self {
        self.recorder = recorder.clone();
        self
    }

    /// Takes the progress aggregated so far.
    pub fn progress(&self) -> CoordProgress {
        self.progress.lock().clone()
    }

    /// Publishes the checkpoint served to `GET_CHECKPOINT` callers.
    pub fn set_checkpoint(&self, c: LearnerCheckpoint) {
        *self.checkpoint.lock() = Some(c);
    }

    /// The cluster-wide metric registry heartbeat snapshots fold into.
    pub fn cluster(&self) -> &Arc<ClusterRegistry> {
        &self.cluster
    }

    /// Takes the trace dumps workers pushed before exiting, as
    /// `(process name, dump)` pairs in arrival order.
    pub fn take_traces(&self) -> Vec<(String, TraceDump)> {
        std::mem::take(&mut *self.traces.lock())
    }
}

impl RpcService for CoordService {
    fn method_name(&self, method: u16) -> &'static str {
        coord_method_name(method)
    }

    fn call(&self, method: u16, body: &[u8]) -> RlResult<Vec<u8>> {
        let mut r = ByteReader::new(body);
        let mut out = ByteWriter::new();
        match method {
            coord_method::GET_WEIGHTS => {
                let seen = r.get_u64()?;
                if r.remaining() == 0 {
                    // v1 peer: exact snapshot, no tracking.
                    match self.hub.poll(seen) {
                        None => out.put_u8(0),
                        Some(snap) => {
                            out.put_u8(1);
                            put_snapshot(&mut out, &snap);
                        }
                    }
                } else {
                    // v2 peer: [seen][sub_id u64][enc u8][flags u8].
                    let sub_id = r.get_u64()?;
                    let enc = state_enc_from_tag(r.get_u8()?)?;
                    let want_delta = r.get_u8()? & 1 != 0;
                    r.expect_end()?;
                    match self.hub.poll(seen) {
                        None => {
                            out.put_u8(0);
                            if want_delta {
                                self.subs.lock().touch(sub_id);
                            }
                        }
                        Some(snap) => {
                            let mut subs = self.subs.lock();
                            subs.sweep();
                            // Delta only against exactly what the peer
                            // says it holds; anything else (first
                            // contact, version gap, eviction) gets a
                            // full snapshot and is re-tracked.
                            let held = if want_delta { subs.touch(sub_id) } else { None };
                            let held = held.filter(|h| {
                                h.version == seen
                                    && h.weights.len() == snap.weights.len()
                                    && h.weights
                                        .iter()
                                        .zip(&snap.weights)
                                        .all(|((a, _), (b, _))| a == b)
                            });
                            match held {
                                Some(held) => {
                                    out.put_u8(3);
                                    put_snapshot_delta(&mut out, &held, &snap, enc)
                                        .expect("structure prechecked");
                                }
                                None => {
                                    out.put_u8(1);
                                    put_snapshot_enc(&mut out, &snap, enc);
                                }
                            }
                            if want_delta {
                                subs.record(sub_id, self.deq_image(&snap, enc));
                                self.recorder
                                    .gauge("net.coord.delta_state_bytes")
                                    .set(subs.approx_bytes() as f64);
                            }
                        }
                    }
                }
            }
            coord_method::HEARTBEAT => {
                let worker = r.get_u32()?;
                let frames = r.get_u64()?;
                let samples = r.get_u64()?;
                let returns = r.get_f32_vec()?;
                let offset_us = r.get_u64()? as i64;
                let rtt_us = r.get_u64()?;
                let snapshot = match r.get_u8()? {
                    0 => None,
                    _ => Some(get_metrics_snapshot(&mut r)?),
                };
                // Trailing generation: absent on legacy beats, 0 when
                // the worker is not membership-tracked.
                let generation = if r.remaining() > 0 { r.get_u64()? } else { 0 };
                r.expect_end()?;
                if generation > 0 {
                    // Liveness piggybacks here: a stale-generation beat
                    // is rejected *before* its progress is folded, so a
                    // zombie's numbers never pollute its successor's.
                    let mut m = self.membership.lock();
                    match m.beat(worker, generation, self.now_us()) {
                        Ok(()) => {
                            self.recorder.gauge("cluster.members").set(m.alive_count() as f64);
                            self.recorder.gauge("cluster.epoch").set(m.epoch() as f64);
                        }
                        Err(e) => {
                            self.recorder.counter("cluster.stale_beats").inc();
                            return Err(e);
                        }
                    }
                }
                {
                    let mut p = self.progress.lock();
                    p.env_frames += frames;
                    p.samples += samples;
                    p.returns.extend(returns);
                    p.heartbeats += 1;
                }
                let name = format!("worker-{}", worker);
                if rtt_us > 0 {
                    self.cluster.set_offset(&name, offset_us, rtt_us);
                }
                if let Some(snap) = snapshot {
                    self.cluster.fold(&name, &snap);
                }
                out.put_u8(u8::from(self.stop.load(Ordering::Relaxed)));
                out.put_u64(if self.recorder.is_enabled() {
                    self.recorder.now_micros()
                } else {
                    0
                });
                out.put_u8(u8::from(self.retiring.lock().contains(&worker)));
            }
            coord_method::GET_CHECKPOINT => {
                r.expect_end()?;
                match self.checkpoint.lock().as_ref() {
                    None => return Err(RlError::Checkpoint("no checkpoint published yet".into())),
                    Some(c) => put_checkpoint(&mut out, c),
                }
            }
            coord_method::GET_TELEMETRY => {
                r.expect_end()?;
                out.put_str(&self.cluster.dump());
            }
            coord_method::PUSH_TRACE => {
                let process = r.get_str()?;
                let dump = get_trace_dump(&mut r)?;
                r.expect_end()?;
                self.traces.lock().push((process, dump));
            }
            coord_method::JOIN => {
                let worker = r.get_u32()?;
                let generation = r.get_u64()?;
                r.expect_end()?;
                let mut m = self.membership.lock();
                let epoch = m.join(worker, generation, self.now_us())?;
                self.recorder.gauge("cluster.members").set(m.alive_count() as f64);
                self.recorder.gauge("cluster.epoch").set(m.epoch() as f64);
                out.put_u64(epoch);
            }
            coord_method::LEAVE => {
                let worker = r.get_u32()?;
                r.expect_end()?;
                let mut m = self.membership.lock();
                m.leave(worker, self.now_us());
                self.recorder.gauge("cluster.members").set(m.alive_count() as f64);
                self.recorder.gauge("cluster.epoch").set(m.epoch() as f64);
                drop(m);
                self.retiring.lock().remove(&worker);
                self.cluster.forget(&format!("worker-{}", worker));
            }
            coord_method::GET_MEMBERSHIP => {
                r.expect_end()?;
                put_membership(&mut out, &self.membership.lock().view());
            }
            other => {
                return Err(RlError::Protocol(format!("coord service: unknown method {}", other)))
            }
        }
        Ok(out.into_bytes())
    }
}

/// Typed client of the coordinator service (held by worker processes).
pub struct CoordClient {
    rpc: RpcClient,
    deadline: Option<Duration>,
    codec: CodecProfile,
    /// Unique subscriber id for delta sync (process id + local counter).
    sub_id: u64,
    /// The snapshot this client currently holds, the base deltas apply
    /// to. Only kept while the profile asks for deltas.
    held: Option<WeightsSnapshot>,
    /// Cleared permanently after the server rejects a v2 request.
    v2_ok: bool,
}

impl CoordClient {
    /// Connects to the coordinator.
    ///
    /// # Errors
    ///
    /// `RlError::Io` when the connection fails.
    pub fn connect(addr: SocketAddr, recorder: &Recorder) -> RlResult<Self> {
        static NEXT_SUB: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let mut rpc = RpcClient::connect("coordinator", addr, recorder)?;
        rpc.set_method_names(coord_method_name);
        let sub_id = ((std::process::id() as u64) << 32) | NEXT_SUB.fetch_add(1, Ordering::Relaxed);
        Ok(CoordClient {
            rpc,
            deadline: None,
            codec: CodecProfile::PLAIN,
            sub_id,
            held: None,
            v2_ok: true,
        })
    }

    /// Applies a per-call deadline to every subsequent request.
    pub fn set_deadline(&mut self, d: Option<Duration>) {
        self.deadline = d;
    }

    /// Selects the wire encodings for weight sync.
    pub fn set_codec(&mut self, codec: CodecProfile) {
        self.codec = codec;
        self.v2_ok = true;
        self.held = None;
    }

    /// Forces plain v1 frames (no capability negotiation, no LZ) — see
    /// [`RpcClient::set_plain_wire`].
    pub fn set_plain_wire(&mut self) {
        self.rpc.set_plain_wire();
    }

    /// Fetches a weight snapshot newer than `seen`, if one exists.
    /// With a compressed [`CodecProfile`] the reply may be quantized
    /// and/or a delta against the last fetch; this decodes either form
    /// transparently and self-heals version gaps by re-requesting a
    /// full snapshot.
    ///
    /// # Errors
    ///
    /// Transport/deadline/protocol errors from the RPC layer.
    pub fn get_weights(&mut self, seen: u64) -> RlResult<Option<WeightsSnapshot>> {
        if self.codec.is_plain() || !self.v2_ok {
            return self.get_weights_v1(seen);
        }
        // At most one self-healing retry: a failed delta apply clears
        // the held base, and the server (which just recorded us at the
        // new version ≠ `seen`) answers the retry with a full snapshot.
        for _ in 0..2 {
            let mut w = ByteWriter::new();
            w.put_u64(seen);
            w.put_u64(self.sub_id);
            w.put_u8(self.codec.weights.tag());
            w.put_u8(u8::from(self.codec.delta));
            let resp =
                match self.rpc.call(coord_method::GET_WEIGHTS, &w.into_bytes(), self.deadline) {
                    Ok(resp) => resp,
                    Err(RlError::Protocol(_)) => {
                        // Old coordinator: downgrade permanently.
                        self.v2_ok = false;
                        return self.get_weights_v1(seen);
                    }
                    Err(e) => return Err(e),
                };
            let mut r = ByteReader::new(&resp);
            match r.get_u8()? {
                0 => {
                    r.expect_end()?;
                    return Ok(None);
                }
                1 => {
                    let snap = get_snapshot(&mut r)?;
                    r.expect_end()?;
                    if self.codec.delta {
                        self.held = Some(snap.clone());
                    }
                    return Ok(Some(snap));
                }
                3 => {
                    let Some(held) = self.held.as_ref() else {
                        continue; // lost our base (restart?): re-request
                    };
                    match get_snapshot_delta(&mut r, held) {
                        Ok(snap) => {
                            r.expect_end()?;
                            self.held = Some(snap.clone());
                            return Ok(Some(snap));
                        }
                        Err(RlError::Protocol(_)) => {
                            self.held = None;
                            continue;
                        }
                        Err(e) => return Err(e),
                    }
                }
                other => {
                    return Err(RlError::Protocol(format!("bad weights flag {}", other)));
                }
            }
        }
        Err(RlError::Protocol("delta weight sync failed to converge".into()))
    }

    fn get_weights_v1(&mut self, seen: u64) -> RlResult<Option<WeightsSnapshot>> {
        let mut w = ByteWriter::new();
        w.put_u64(seen);
        let resp = self.rpc.call(coord_method::GET_WEIGHTS, &w.into_bytes(), self.deadline)?;
        let mut r = ByteReader::new(&resp);
        let out = match r.get_u8()? {
            0 => None,
            1 => Some(get_snapshot(&mut r)?),
            other => return Err(RlError::Protocol(format!("bad weights flag {}", other))),
        };
        r.expect_end()?;
        Ok(out)
    }

    /// Reports progress; the reply says whether the run is over and
    /// carries the coordinator's clock for offset estimation.
    ///
    /// # Errors
    ///
    /// Transport/deadline/protocol errors from the RPC layer.
    pub fn heartbeat(&mut self, beat: &Heartbeat) -> RlResult<HeartbeatReply> {
        let mut w = ByteWriter::new();
        w.put_u32(beat.worker);
        w.put_u64(beat.frames);
        w.put_u64(beat.samples);
        w.put_f32_slice(&beat.returns);
        w.put_u64(beat.offset_us as u64);
        w.put_u64(beat.rtt_us);
        match beat.snapshot.as_ref() {
            None => w.put_u8(0),
            Some(snap) => {
                w.put_u8(1);
                put_metrics_snapshot(&mut w, snap);
            }
        }
        w.put_u64(beat.generation);
        let resp = self.rpc.call(coord_method::HEARTBEAT, &w.into_bytes(), self.deadline)?;
        let mut r = ByteReader::new(&resp);
        let stop = r.get_u8()? != 0;
        let coord_now_us = r.get_u64()?;
        // Trailing retire flag: absent in replies from older coordinators.
        let retire = if r.remaining() > 0 { r.get_u8()? != 0 } else { false };
        r.expect_end()?;
        Ok(HeartbeatReply { stop, coord_now_us, retire })
    }

    /// Joins the cluster at `generation`; returns the membership epoch.
    ///
    /// # Errors
    ///
    /// [`RlError::StaleGeneration`] when the coordinator holds a newer
    /// incarnation for this worker; transport errors from the RPC layer.
    pub fn join(&mut self, worker: u32, generation: u64) -> RlResult<u64> {
        let mut w = ByteWriter::new();
        w.put_u32(worker);
        w.put_u64(generation);
        let resp = self.rpc.call(coord_method::JOIN, &w.into_bytes(), self.deadline)?;
        let mut r = ByteReader::new(&resp);
        let epoch = r.get_u64()?;
        r.expect_end()?;
        Ok(epoch)
    }

    /// Announces a clean departure.
    ///
    /// # Errors
    ///
    /// Transport/deadline/protocol errors from the RPC layer.
    pub fn leave(&mut self, worker: u32) -> RlResult<()> {
        let mut w = ByteWriter::new();
        w.put_u32(worker);
        self.rpc.call(coord_method::LEAVE, &w.into_bytes(), self.deadline)?;
        Ok(())
    }

    /// Fetches the coordinator's current membership view.
    ///
    /// # Errors
    ///
    /// Transport/deadline/protocol errors from the RPC layer.
    pub fn get_membership(&mut self) -> RlResult<MembershipView> {
        let resp = self.rpc.call(coord_method::GET_MEMBERSHIP, &[], self.deadline)?;
        let mut r = ByteReader::new(&resp);
        let view = get_membership(&mut r)?;
        r.expect_end()?;
        Ok(view)
    }

    /// Fetches the coordinator's plain-text cluster telemetry report.
    ///
    /// # Errors
    ///
    /// Transport/deadline/protocol errors from the RPC layer.
    pub fn get_telemetry(&mut self) -> RlResult<String> {
        let resp = self.rpc.call(coord_method::GET_TELEMETRY, &[], self.deadline)?;
        let mut r = ByteReader::new(&resp);
        let text = r.get_str()?;
        r.expect_end()?;
        Ok(text)
    }

    /// Ships this process's span buffer to the coordinator for the
    /// merged cluster trace.
    ///
    /// # Errors
    ///
    /// Transport/deadline/protocol errors from the RPC layer.
    pub fn push_trace(&mut self, process: &str, dump: &TraceDump) -> RlResult<()> {
        let mut w = ByteWriter::new();
        w.put_str(process);
        put_trace_dump(&mut w, dump);
        self.rpc.call(coord_method::PUSH_TRACE, &w.into_bytes(), self.deadline)?;
        Ok(())
    }

    /// Fetches the learner's latest checkpoint over the wire.
    ///
    /// # Errors
    ///
    /// [`RlError::Checkpoint`] before
    /// the first publish; transport errors from the RPC layer.
    pub fn get_checkpoint(&mut self) -> RlResult<LearnerCheckpoint> {
        let resp = self.rpc.call(coord_method::GET_CHECKPOINT, &[], self.deadline)?;
        let mut r = ByteReader::new(&resp);
        let c = get_checkpoint(&mut r)?;
        r.expect_end()?;
        Ok(c)
    }
}
