//! Deterministic network-fault injection: a TCP proxy that delays,
//! drops, or partitions traffic on its way to an upstream server.
//!
//! # Determinism contract
//!
//! All fault decisions are **pure coordinate-hashed draws** in the same
//! SplitMix64 style as `rlgraph_dist::fault`: a draw is a function of
//! `(seed, direction, connection serial, chunk index)` and nothing
//! else — no RNG state, no wall clock. Two proxies with equal configs
//! fault the same coordinates regardless of thread scheduling. The
//! *coordinate grid itself* is where nondeterminism can enter: chunk
//! boundaries follow TCP segmentation, so the mapping from payload byte
//! to chunk index depends on timing. The contract is therefore: **the
//! fault pattern over (connection, direction, chunk) coordinates is
//! deterministic**; tests assert on draws and on observed fault counts
//! under single-frame exchanges (where chunking is 1:1 with frames).
//!
//! A *drop* severs both directions of the connection — the client sees
//! a reset/EOF, exercising the RPC client's reconnect path. A *cut*
//! of connection serial `n` (scheduled partition) refuses to carry it
//! at all, simulating a partition that heals when the config says so.

use rlgraph_core::RlResult;
use rlgraph_obs::Recorder;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Direction of a pumped chunk, part of the draw coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// client → upstream
    Up,
    /// upstream → client
    Down,
}

impl Direction {
    fn tag(self) -> u64 {
        match self {
            Direction::Up => 0x9E37_79B9_0000_0011,
            Direction::Down => 0x9E37_79B9_0000_0012,
        }
    }
}

/// Fault rates and schedule of one proxy.
#[derive(Debug, Clone)]
pub struct FaultProxyConfig {
    /// seed of every draw
    pub seed: u64,
    /// per-chunk probability of an injected delay
    pub delay_rate: f64,
    /// how long an injected delay lasts
    pub delay: Duration,
    /// per-chunk probability of severing the connection
    pub drop_rate: f64,
    /// connection serials refused outright (scheduled partitions)
    pub cut_connections: Vec<u64>,
}

impl Default for FaultProxyConfig {
    fn default() -> Self {
        FaultProxyConfig {
            seed: 0,
            delay_rate: 0.0,
            delay: Duration::from_millis(5),
            drop_rate: 0.0,
            cut_connections: Vec::new(),
        }
    }
}

impl FaultProxyConfig {
    /// The deterministic draw: inject a fault with probability `rate`
    /// at coordinate `(direction, connection, chunk)`?
    ///
    /// Pure in all arguments — safe from any thread in any order.
    pub fn draw(&self, rate: f64, dir: Direction, conn: u64, chunk: u64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let h = splitmix64(self.seed ^ dir.tag() ^ conn.wrapping_mul(0xD129_0E40_5936_1FF5));
        let h = splitmix64(h ^ chunk.wrapping_mul(0xA076_1D64_78BD_642F));
        ((h >> 11) as f64) / ((1u64 << 53) as f64) < rate
    }
}

/// A running fault proxy in front of one upstream address.
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    drops: rlgraph_obs::Counter,
    delays: rlgraph_obs::Counter,
}

impl FaultProxy {
    /// Binds `127.0.0.1:0` and forwards every accepted connection to
    /// `upstream`, applying the config's faults.
    ///
    /// # Errors
    ///
    /// `RlError::Io` when the listener cannot bind.
    pub fn spawn(
        upstream: SocketAddr,
        config: FaultProxyConfig,
        recorder: Recorder,
    ) -> RlResult<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let drops = recorder.counter("net.proxy.drops");
        let delays = recorder.counter("net.proxy.delays");
        let accept_stop = stop.clone();
        let (d1, d2) = (drops.clone(), delays.clone());
        let accept_handle = std::thread::Builder::new()
            .name("fault-proxy".to_string())
            .spawn(move || proxy_accept_loop(listener, upstream, config, accept_stop, d1, d2))
            .expect("spawn proxy thread");
        Ok(FaultProxy { addr, stop, accept_handle: Some(accept_handle), drops, delays })
    }

    /// The address clients dial instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections severed by drop draws so far.
    pub fn drops(&self) -> u64 {
        self.drops.value()
    }

    /// Chunks delayed so far.
    pub fn delays(&self) -> u64 {
        self.delays.value()
    }

    /// Stops accepting and tears down the pump threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn proxy_accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    config: FaultProxyConfig,
    stop: Arc<AtomicBool>,
    drops: rlgraph_obs::Counter,
    delays: rlgraph_obs::Counter,
) {
    let conn_serial = AtomicU64::new(0);
    let mut pumps: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((client, _)) => {
                let conn = conn_serial.fetch_add(1, Ordering::Relaxed);
                if config.cut_connections.contains(&conn) {
                    drops.inc();
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                }
                let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(5))
                else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                for dir in [Direction::Up, Direction::Down] {
                    let (from, to) = match dir {
                        Direction::Up => (client.try_clone(), server.try_clone()),
                        Direction::Down => (server.try_clone(), client.try_clone()),
                    };
                    let (Ok(from), Ok(to)) = (from, to) else { continue };
                    let config = config.clone();
                    let stop = stop.clone();
                    let (drops, delays) = (drops.clone(), delays.clone());
                    let pump = std::thread::Builder::new()
                        .name("proxy-pump".to_string())
                        .spawn(move || pump_loop(from, to, dir, conn, config, stop, drops, delays))
                        .expect("spawn pump thread");
                    pumps.push(pump);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
        pumps.retain(|p| !p.is_finished());
    }
    for p in pumps {
        let _ = p.join();
    }
}

#[allow(clippy::too_many_arguments)]
fn pump_loop(
    from: TcpStream,
    to: TcpStream,
    dir: Direction,
    conn: u64,
    config: FaultProxyConfig,
    stop: Arc<AtomicBool>,
    drops: rlgraph_obs::Counter,
    delays: rlgraph_obs::Counter,
) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(100)));
    let mut from = from;
    let mut to = to;
    let mut buf = [0u8; 16 * 1024];
    let mut chunk = 0u64;
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) => break, // peer closed: propagate EOF
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        if config.draw(config.drop_rate, dir, conn, chunk) {
            drops.inc();
            break; // sever: both ends see the teardown below
        }
        if config.draw(config.delay_rate, dir, conn, chunk) {
            delays.inc();
            std::thread::sleep(config.delay);
        }
        chunk += 1;
        if to.write_all(&buf[..n]).is_err() || to.flush().is_err() {
            break;
        }
    }
    // Tear down both sockets so the opposite pump (and both peers)
    // unblock promptly instead of waiting out their timeouts.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// SplitMix64 finalizer — same mixer as `rlgraph_dist::fault`, so one
/// seed convention spans thread-level and network-level chaos.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
