//! Binary encodings for the values rlgraph ships across processes:
//! tensors, spaces, transitions/sample batches, weight snapshots, learner
//! checkpoints, and the unified error taxonomy.
//!
//! Encodings are little-endian, fixed-layout element streams with no
//! per-element tags or escaping — on little-endian hosts the element
//! loops compile down to straight buffer copies, so a tensor's trip
//! through the codec costs two memcpy-shaped passes and no intermediate
//! text. Every decoder is bounds-checked and returns
//! [`RlError::Protocol`] on malformed input; decoders never panic on
//! attacker-controlled bytes.

use crate::wire::{ByteReader, ByteWriter};
use rlgraph_core::RlError;
use rlgraph_core::RlResult;
use rlgraph_dist::LearnerCheckpoint;
use rlgraph_dist::WeightsSnapshot;
use rlgraph_memory::Transition;
use rlgraph_spaces::{Space, SpaceKind};
use rlgraph_tensor::{DType, Tensor};

pub mod quant;
pub mod v2;

pub use quant::{
    bf16_bits_to_f32, f16_bits_to_f32, f32_to_bf16_bits, f32_to_f16_bits, get_f32_column,
    i8_scale_for, put_f32_column, TensorEnc,
};
pub use v2::{
    dequantized_snapshot, get_snapshot_delta, get_trajectory_v2, put_snapshot_delta,
    put_snapshot_enc, put_tensor_enc, put_trajectory_v2, DELTA_CHUNK_ELEMS,
};

// The byte-level compression stage lives beside the frame codec in
// `rlgraph-reactor` (one home shared by both RPC stacks, like the wire
// and frame modules); re-exported here so all three compression stages
// — quantize, delta, LZ — compose from one import path.
pub use rlgraph_reactor::compress::{compress, decompress, LzEncoder, COMPRESS_OVERHEAD};

/// Which v2 encodings (DESIGN.md §14) a client asks its peers to apply
/// on top of the v1 wire forms. The learner always keeps f32 master
/// weights; encodings only change what crosses the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecProfile {
    /// Encoding for weight-snapshot tensors.
    pub weights: TensorEnc,
    /// Delta weight sync against the last-acked snapshot.
    pub delta: bool,
    /// Encoding for state tensors in trajectory inserts and sampled
    /// batches (actions/rewards/priorities always ship exact).
    pub states: TensorEnc,
    /// Columnar (v2) trajectory inserts.
    pub columnar: bool,
}

impl CodecProfile {
    /// Wire-identical to v1: no quantization, no deltas, no columns.
    pub const PLAIN: CodecProfile = CodecProfile {
        weights: TensorEnc::F32,
        delta: false,
        states: TensorEnc::F32,
        columnar: false,
    };

    /// The default compressed profile: f16 weights with delta sync,
    /// i8+scale state columns, columnar inserts. Weights stay f16
    /// because quantization error compounds through the optimizer;
    /// observations tolerate 1/255 resolution (Ape-X ships u8 frames),
    /// so states take the 4x encoding. Actions, rewards and priorities
    /// always ship exact.
    pub const COMPRESSED: CodecProfile = CodecProfile {
        weights: TensorEnc::F16,
        delta: true,
        states: TensorEnc::I8Scale,
        columnar: true,
    };

    /// Whether this profile changes nothing relative to v1.
    pub fn is_plain(self) -> bool {
        self == Self::PLAIN
    }
}

impl Default for CodecProfile {
    fn default() -> Self {
        Self::PLAIN
    }
}

// ----- dtype -----

fn dtype_tag(d: DType) -> u8 {
    match d {
        DType::F32 => 0,
        DType::I64 => 1,
        DType::Bool => 2,
    }
}

fn dtype_from_tag(t: u8) -> RlResult<DType> {
    match t {
        0 => Ok(DType::F32),
        1 => Ok(DType::I64),
        2 => Ok(DType::Bool),
        other => Err(RlError::Protocol(format!("unknown dtype tag {}", other))),
    }
}

// ----- tensor -----

/// Appends a tensor: `[dtype u8][rank u8][dim u32 …][raw elements]`.
pub fn put_tensor(w: &mut ByteWriter, t: &Tensor) {
    w.put_u8(dtype_tag(t.dtype()));
    w.put_u8(t.rank() as u8);
    for &d in t.shape() {
        w.put_u32(d as u32);
    }
    match t.dtype() {
        DType::F32 => {
            for &v in t.as_f32().expect("dtype checked") {
                w.put_f32(v);
            }
        }
        DType::I64 => {
            for &v in t.as_i64().expect("dtype checked") {
                w.put_i64(v);
            }
        }
        DType::Bool => {
            for &v in t.as_bool().expect("dtype checked") {
                w.put_u8(v as u8);
            }
        }
    }
}

/// Reads a tensor written by [`put_tensor`] or [`put_tensor_enc`];
/// quantized forms (tags 3–5) dequantize to f32.
///
/// # Errors
///
/// [`RlError::Protocol`] on truncation, an unknown dtype tag, or a
/// boolean byte that is neither 0 nor 1.
pub fn get_tensor(r: &mut ByteReader<'_>) -> RlResult<Tensor> {
    let tag = r.get_u8()?;
    let rank = r.get_u8()? as usize;
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(r.get_u32()? as usize);
    }
    let n = shape.iter().try_fold(1usize, |a, &d| a.checked_mul(d)).ok_or_else(|| {
        RlError::Protocol(format!("tensor shape {:?} overflows element count", shape))
    })?;
    if let Some(enc) = TensorEnc::from_quant_tag(tag) {
        let vals = get_f32_column(r, n, enc)?;
        return Tensor::from_vec(vals, &shape)
            .map_err(|e| RlError::Protocol(format!("tensor rebuild failed: {}", e.message())));
    }
    let dtype = dtype_from_tag(tag)?;
    let bytes = r.get_bytes(n.checked_mul(dtype.size_bytes()).ok_or_else(|| {
        RlError::Protocol(format!("tensor payload of {} elements overflows", n))
    })?)?;
    let tensor = match dtype {
        DType::F32 => Tensor::from_vec(
            bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().expect("4"))).collect(),
            &shape,
        ),
        DType::I64 => Tensor::from_vec_i64(
            bytes.chunks_exact(8).map(|c| i64::from_le_bytes(c.try_into().expect("8"))).collect(),
            &shape,
        ),
        DType::Bool => {
            let mut vals = Vec::with_capacity(n);
            for &b in bytes {
                match b {
                    0 => vals.push(false),
                    1 => vals.push(true),
                    other => {
                        return Err(RlError::Protocol(format!("bool byte 0x{:02x}", other)));
                    }
                }
            }
            Tensor::from_vec_bool(vals, &shape)
        }
    };
    tensor.map_err(|e| RlError::Protocol(format!("tensor rebuild failed: {}", e.message())))
}

// ----- space -----

/// Appends a space: recursive `[tag u8]…` plus the batch/time rank flags
/// on the outermost space.
pub fn put_space(w: &mut ByteWriter, s: &Space) {
    w.put_u8(s.has_batch_rank() as u8);
    w.put_u8(s.has_time_rank() as u8);
    put_space_kind(w, s);
}

fn put_space_kind(w: &mut ByteWriter, s: &Space) {
    match s.kind() {
        SpaceKind::Float { shape, low, high } => {
            w.put_u8(0);
            put_shape(w, shape);
            w.put_f32(*low);
            w.put_f32(*high);
        }
        SpaceKind::Int { shape, num_categories } => {
            w.put_u8(1);
            put_shape(w, shape);
            w.put_i64(*num_categories);
        }
        SpaceKind::Bool { shape } => {
            w.put_u8(2);
            put_shape(w, shape);
        }
        SpaceKind::Dict(entries) => {
            w.put_u8(3);
            w.put_u32(entries.len() as u32);
            for (name, sub) in entries {
                w.put_str(name);
                put_space_kind(w, sub);
            }
        }
        SpaceKind::Tuple(entries) => {
            w.put_u8(4);
            w.put_u32(entries.len() as u32);
            for sub in entries {
                put_space_kind(w, sub);
            }
        }
    }
}

fn put_shape(w: &mut ByteWriter, shape: &[usize]) {
    w.put_u8(shape.len() as u8);
    for &d in shape {
        w.put_u32(d as u32);
    }
}

/// Reads a space written by [`put_space`].
///
/// # Errors
///
/// [`RlError::Protocol`] on truncation or an unknown structure tag.
pub fn get_space(r: &mut ByteReader<'_>) -> RlResult<Space> {
    let batch = r.get_u8()? != 0;
    let time = r.get_u8()? != 0;
    let mut s = get_space_kind(r, 0)?;
    if batch {
        s = s.with_batch_rank();
    }
    if time {
        s = s.with_time_rank();
    }
    Ok(s)
}

fn get_space_kind(r: &mut ByteReader<'_>, depth: u8) -> RlResult<Space> {
    if depth > 16 {
        return Err(RlError::Protocol("space nesting deeper than 16".into()));
    }
    match r.get_u8()? {
        0 => {
            let shape = get_shape(r)?;
            let low = r.get_f32()?;
            let high = r.get_f32()?;
            Ok(Space::float_box_bounded(&shape, low, high))
        }
        1 => {
            let shape = get_shape(r)?;
            let n = r.get_i64()?;
            Ok(Space::int_box_shaped(&shape, n))
        }
        2 => Ok(Space::bool_box_shaped(&get_shape(r)?)),
        3 => {
            let n = r.get_u32()? as usize;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.get_str()?;
                entries.push((name, get_space_kind(r, depth + 1)?));
            }
            Ok(Space::dict(entries))
        }
        4 => {
            let n = r.get_u32()? as usize;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(get_space_kind(r, depth + 1)?);
            }
            Ok(Space::tuple(entries))
        }
        other => Err(RlError::Protocol(format!("unknown space tag {}", other))),
    }
}

fn get_shape(r: &mut ByteReader<'_>) -> RlResult<Vec<usize>> {
    let rank = r.get_u8()? as usize;
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(r.get_u32()? as usize);
    }
    Ok(shape)
}

// ----- transitions / sample batches -----

/// Appends one transition record.
pub fn put_transition(w: &mut ByteWriter, t: &Transition) {
    put_tensor(w, &t.state);
    put_tensor(w, &t.action);
    w.put_f32(t.reward);
    put_tensor(w, &t.next_state);
    w.put_u8(t.terminal as u8);
}

/// Reads a transition written by [`put_transition`].
///
/// # Errors
///
/// [`RlError::Protocol`] on malformed input.
pub fn get_transition(r: &mut ByteReader<'_>) -> RlResult<Transition> {
    let state = get_tensor(r)?;
    let action = get_tensor(r)?;
    let reward = r.get_f32()?;
    let next_state = get_tensor(r)?;
    let terminal = r.get_u8()? != 0;
    Ok(Transition::new(state, action, reward, next_state, terminal))
}

/// Appends a trajectory batch: transitions plus worker-side priorities,
/// the payload of a replay-shard insert.
pub fn put_trajectory(w: &mut ByteWriter, transitions: &[Transition], priorities: &[f32]) {
    w.put_u32(transitions.len() as u32);
    for t in transitions {
        put_transition(w, t);
    }
    w.put_f32_slice(priorities);
}

/// Reads a trajectory batch written by [`put_trajectory`].
///
/// # Errors
///
/// [`RlError::Protocol`] on malformed input or a priority count that
/// does not match the transition count.
pub fn get_trajectory(r: &mut ByteReader<'_>) -> RlResult<(Vec<Transition>, Vec<f32>)> {
    let n = r.get_u32()? as usize;
    let mut transitions = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        transitions.push(get_transition(r)?);
    }
    let priorities = r.get_f32_vec()?;
    if priorities.len() != transitions.len() {
        return Err(RlError::Protocol(format!(
            "{} priorities for {} transitions",
            priorities.len(),
            transitions.len()
        )));
    }
    Ok((transitions, priorities))
}

// ----- named weights / snapshots -----

/// Appends a named weight list (`export_weights` output).
pub fn put_weights(w: &mut ByteWriter, weights: &[(String, Tensor)]) {
    w.put_u32(weights.len() as u32);
    for (name, t) in weights {
        w.put_str(name);
        put_tensor(w, t);
    }
}

/// Reads a named weight list written by [`put_weights`].
///
/// # Errors
///
/// [`RlError::Protocol`] on malformed input.
pub fn get_weights(r: &mut ByteReader<'_>) -> RlResult<Vec<(String, Tensor)>> {
    let n = r.get_u32()? as usize;
    let mut weights = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        let name = r.get_str()?;
        weights.push((name, get_tensor(r)?));
    }
    Ok(weights)
}

/// Appends a versioned weight snapshot (the parameter-server payload).
pub fn put_snapshot(w: &mut ByteWriter, snap: &WeightsSnapshot) {
    w.put_u64(snap.version);
    put_weights(w, &snap.weights);
}

/// Reads a snapshot written by [`put_snapshot`].
///
/// # Errors
///
/// [`RlError::Protocol`] on malformed input.
pub fn get_snapshot(r: &mut ByteReader<'_>) -> RlResult<WeightsSnapshot> {
    let version = r.get_u64()?;
    let weights = get_weights(r)?;
    Ok(WeightsSnapshot { version, weights })
}

// ----- learner checkpoints -----

/// Appends a learner checkpoint in binary form (an order of magnitude
/// denser than its JSON document; the JSON path remains for on-disk
/// artifacts).
pub fn put_checkpoint(w: &mut ByteWriter, c: &LearnerCheckpoint) {
    w.put_u64(c.updates);
    w.put_u64(c.weight_version);
    put_weights(w, &c.variables);
    w.put_u32(c.shard_watermarks.len() as u32);
    for &m in &c.shard_watermarks {
        w.put_u64(m);
    }
}

/// Reads a checkpoint written by [`put_checkpoint`].
///
/// # Errors
///
/// [`RlError::Protocol`] on malformed input.
pub fn get_checkpoint(r: &mut ByteReader<'_>) -> RlResult<LearnerCheckpoint> {
    let updates = r.get_u64()?;
    let weight_version = r.get_u64()?;
    let variables = get_weights(r)?;
    let n = r.get_u32()? as usize;
    let mut shard_watermarks = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        shard_watermarks.push(r.get_u64()?);
    }
    Ok(LearnerCheckpoint { updates, weight_version, variables, shard_watermarks })
}

// ----- telemetry: trace context, metric snapshots, trace dumps -----

// The trace-context and error codecs moved down into
// `rlgraph-reactor::codec` so the mux protocol can carry traces and
// typed failures without depending on the tensor stack; re-exported to
// keep `rlgraph_net::codec::...` paths working.
pub use rlgraph_reactor::codec::{get_trace_context, put_trace_context};

fn put_f64(w: &mut ByteWriter, v: f64) {
    w.put_u64(v.to_bits());
}

fn get_f64(r: &mut ByteReader<'_>) -> RlResult<f64> {
    Ok(f64::from_bits(r.get_u64()?))
}

/// Appends a metrics snapshot (the heartbeat-piggybacked telemetry
/// payload): capture timestamp, counters, gauges, and histogram
/// summaries, each as length-prefixed `(name, value)` lists.
pub fn put_metrics_snapshot(w: &mut ByteWriter, s: &rlgraph_obs::MetricsSnapshot) {
    w.put_u64(s.taken_at_us);
    w.put_u32(s.counters.len() as u32);
    for (name, v) in &s.counters {
        w.put_str(name);
        w.put_u64(*v);
    }
    w.put_u32(s.gauges.len() as u32);
    for (name, v) in &s.gauges {
        w.put_str(name);
        put_f64(w, *v);
    }
    w.put_u32(s.histograms.len() as u32);
    for (name, h) in &s.histograms {
        w.put_str(name);
        w.put_u64(h.count);
        put_f64(w, h.mean);
        put_f64(w, h.p50);
        put_f64(w, h.p95);
        put_f64(w, h.p99);
        put_f64(w, h.max);
    }
}

/// Reads a snapshot written by [`put_metrics_snapshot`].
///
/// # Errors
///
/// [`RlError::Protocol`] on malformed input.
pub fn get_metrics_snapshot(r: &mut ByteReader<'_>) -> RlResult<rlgraph_obs::MetricsSnapshot> {
    let taken_at_us = r.get_u64()?;
    let n = r.get_u32()? as usize;
    let mut counters = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        let name = r.get_str()?;
        counters.push((name, r.get_u64()?));
    }
    let n = r.get_u32()? as usize;
    let mut gauges = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        let name = r.get_str()?;
        gauges.push((name, get_f64(r)?));
    }
    let n = r.get_u32()? as usize;
    let mut histograms = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        let name = r.get_str()?;
        histograms.push((
            name,
            rlgraph_obs::HistogramSummary {
                count: r.get_u64()?,
                mean: get_f64(r)?,
                p50: get_f64(r)?,
                p95: get_f64(r)?,
                p99: get_f64(r)?,
                max: get_f64(r)?,
            },
        ));
    }
    Ok(rlgraph_obs::MetricsSnapshot { taken_at_us, counters, gauges, histograms })
}

/// Appends a trace dump (a worker's whole span buffer, shipped to the
/// coordinator for the merged cluster trace).
pub fn put_trace_dump(w: &mut ByteWriter, d: &rlgraph_obs::TraceDump) {
    w.put_u32(d.tracks.len() as u32);
    for t in &d.tracks {
        w.put_str(t);
    }
    w.put_u32(d.events.len() as u32);
    for ev in &d.events {
        w.put_str(&ev.name);
        w.put_u32(ev.track);
        w.put_u64(ev.ts_us);
        match &ev.kind {
            rlgraph_obs::DumpKind::Complete { dur_us } => {
                w.put_u8(0);
                w.put_u64(*dur_us);
            }
            rlgraph_obs::DumpKind::Instant => w.put_u8(1),
            rlgraph_obs::DumpKind::Counter { value } => {
                w.put_u8(2);
                put_f64(w, *value);
            }
        }
        w.put_u64(ev.flow_in);
        w.put_u64(ev.flow_out);
    }
    w.put_u64(d.dropped);
}

/// Reads a dump written by [`put_trace_dump`].
///
/// # Errors
///
/// [`RlError::Protocol`] on malformed input.
pub fn get_trace_dump(r: &mut ByteReader<'_>) -> RlResult<rlgraph_obs::TraceDump> {
    let n = r.get_u32()? as usize;
    let mut tracks = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        tracks.push(r.get_str()?);
    }
    let n = r.get_u32()? as usize;
    let mut events = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        let name = r.get_str()?;
        let track = r.get_u32()?;
        let ts_us = r.get_u64()?;
        let kind = match r.get_u8()? {
            0 => rlgraph_obs::DumpKind::Complete { dur_us: r.get_u64()? },
            1 => rlgraph_obs::DumpKind::Instant,
            2 => rlgraph_obs::DumpKind::Counter { value: get_f64(r)? },
            other => return Err(RlError::Protocol(format!("unknown dump-event tag {}", other))),
        };
        let flow_in = r.get_u64()?;
        let flow_out = r.get_u64()?;
        events.push(rlgraph_obs::DumpEvent { name, track, ts_us, kind, flow_in, flow_out });
    }
    let dropped = r.get_u64()?;
    Ok(rlgraph_obs::TraceDump { tracks, events, dropped })
}

/// Appends a [`MembershipView`](rlgraph_dist::MembershipView): the
/// epoch followed by `(member, generation)` pairs for every alive
/// member. `alive` is reconstructed from the pairs on read.
pub fn put_membership(w: &mut ByteWriter, view: &rlgraph_dist::MembershipView) {
    w.put_u64(view.epoch);
    w.put_u32(view.generations.len() as u32);
    for &(id, generation) in &view.generations {
        w.put_u32(id);
        w.put_u64(generation);
    }
}

/// Reads a view written by [`put_membership`].
///
/// # Errors
///
/// [`RlError::Protocol`] on malformed input.
pub fn get_membership(r: &mut ByteReader<'_>) -> RlResult<rlgraph_dist::MembershipView> {
    let epoch = r.get_u64()?;
    let n = r.get_u32()? as usize;
    let mut generations = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        generations.push((r.get_u32()?, r.get_u64()?));
    }
    let alive = generations.iter().map(|&(id, _)| id).collect();
    Ok(rlgraph_dist::MembershipView { epoch, alive, generations })
}

// ----- errors -----

// Moved to `rlgraph-reactor::codec` (see note above); re-exported here.
pub use rlgraph_reactor::codec::{get_rl_error, put_rl_error};

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_tensor(t: &Tensor) -> Tensor {
        let mut w = ByteWriter::new();
        put_tensor(&mut w, t);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = get_tensor(&mut r).unwrap();
        r.expect_end().unwrap();
        back
    }

    #[test]
    fn tensor_roundtrips_all_dtypes() {
        let f = Tensor::from_vec(vec![1.0, -2.5, f32::MIN_POSITIVE, 0.0], &[2, 2]).unwrap();
        assert_eq!(roundtrip_tensor(&f), f);
        let i = Tensor::from_vec_i64(vec![i64::MIN, -1, 0, i64::MAX], &[4]).unwrap();
        assert_eq!(roundtrip_tensor(&i), i);
        let b = Tensor::from_vec_bool(vec![true, false, true], &[3]).unwrap();
        assert_eq!(roundtrip_tensor(&b), b);
        let scalar = Tensor::scalar(4.25);
        assert_eq!(roundtrip_tensor(&scalar), scalar);
    }

    #[test]
    fn nan_payloads_survive_bitwise() {
        let t = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, -0.0], &[3]).unwrap();
        let back = roundtrip_tensor(&t);
        let (a, b) = (t.as_f32().unwrap(), back.as_f32().unwrap());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn space_roundtrips_nested_containers() {
        let space = Space::dict([
            ("obs", Space::float_box_bounded(&[3, 4], -1.0, 1.0)),
            ("meta", Space::tuple([Space::int_box(6), Space::bool_box()])),
        ])
        .with_batch_rank();
        let mut w = ByteWriter::new();
        put_space(&mut w, &space);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_space(&mut r).unwrap(), space);
        r.expect_end().unwrap();
    }

    #[test]
    fn trajectory_roundtrip_and_mismatch_rejection() {
        let ts: Vec<Transition> = (0..3)
            .map(|i| {
                Transition::new(
                    Tensor::full(&[2], i as f32),
                    Tensor::scalar_i64(i),
                    0.5 * i as f32,
                    Tensor::full(&[2], i as f32 + 1.0),
                    i == 2,
                )
            })
            .collect();
        let mut w = ByteWriter::new();
        put_trajectory(&mut w, &ts, &[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let (back_ts, back_ps) = get_trajectory(&mut r).unwrap();
        assert_eq!(back_ts, ts);
        assert_eq!(back_ps, vec![1.0, 2.0, 3.0]);

        let mut w = ByteWriter::new();
        put_trajectory(&mut w, &ts, &[1.0]); // wrong count
        let bytes = w.into_bytes();
        assert!(matches!(get_trajectory(&mut ByteReader::new(&bytes)), Err(RlError::Protocol(_))));
    }

    #[test]
    fn checkpoint_roundtrip() {
        let ckpt = LearnerCheckpoint {
            updates: 31,
            weight_version: 4,
            variables: vec![
                ("policy/w".into(), Tensor::from_vec(vec![0.25; 6], &[2, 3]).unwrap()),
                ("adam/m".into(), Tensor::from_vec(vec![-1.0, 1.0], &[2]).unwrap()),
            ],
            shard_watermarks: vec![10, 20, 30],
        };
        let mut w = ByteWriter::new();
        put_checkpoint(&mut w, &ckpt);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_checkpoint(&mut r).unwrap(), ckpt);
        r.expect_end().unwrap();
    }

    #[test]
    fn membership_roundtrips() {
        let view = rlgraph_dist::MembershipView {
            epoch: 42,
            alive: vec![0, 2, 5],
            generations: vec![(0, 1), (2, 3), (5, 1)],
        };
        let mut w = ByteWriter::new();
        put_membership(&mut w, &view);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = get_membership(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.epoch, view.epoch);
        assert_eq!(back.alive, view.alive);
        assert_eq!(back.generations, view.generations);
    }

    #[test]
    fn errors_roundtrip_with_severity_preserved() {
        let cases = [
            RlError::deadline("shard.sample"),
            RlError::MailboxFull { capacity: 256 },
            RlError::QueueFull { capacity: 64 },
            RlError::Shed,
            RlError::Shutdown,
            RlError::disconnected("learner"),
            RlError::Exec("nan loss".into()),
            RlError::Checkpoint("short read".into()),
            RlError::QuorumLost { healthy: 1, required: 2 },
            RlError::ActorCrashed { actor: "w3".into(), reason: "panic".into() },
            RlError::Io { kind: std::io::ErrorKind::TimedOut, message: "slow".into() },
            RlError::Protocol("bad magic".into()),
            RlError::RetriesExhausted {
                attempts: 4,
                last: Box::new(RlError::MailboxFull { capacity: 8 }),
            },
            RlError::Core(rlgraph_core::CoreError::new("build failed")),
            RlError::StaleGeneration { member: 3, held: 7, presented: 2 },
        ];
        for e in cases {
            let mut w = ByteWriter::new();
            put_rl_error(&mut w, &e);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = get_rl_error(&mut r).unwrap();
            r.expect_end().unwrap();
            assert_eq!(back, e);
            assert_eq!(back.severity(), e.severity());
        }
    }

    #[test]
    fn trace_context_roundtrips_and_tolerates_newer_writers() {
        let ctx = rlgraph_obs::TraceContext { trace_id: 0xDEAD_BEEF, span_id: 7, flags: 1 };
        let mut w = ByteWriter::new();
        put_trace_context(&mut w, &ctx);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_trace_context(&mut r).unwrap(), ctx);
        r.expect_end().unwrap();

        // A "newer" writer appends extra fields inside the blob: the
        // decoder must skip them and keep the stream aligned.
        let mut w = ByteWriter::new();
        w.put_u8(1 + 8 + 8 + 1 + 4); // len includes 4 unknown bytes
        w.put_u8(1); // version
        w.put_u64(ctx.trace_id);
        w.put_u64(ctx.span_id);
        w.put_u8(ctx.flags);
        w.put_u32(0xAAAA_AAAA); // future field
        w.put_u16(0x1234); // unrelated trailing stream data
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_trace_context(&mut r).unwrap(), ctx);
        assert_eq!(r.get_u16().unwrap(), 0x1234, "stream stays aligned past the blob");
    }

    #[test]
    fn metrics_snapshot_roundtrips() {
        let snap = rlgraph_obs::MetricsSnapshot {
            taken_at_us: 123_456,
            counters: vec![("frames".into(), 99), ("net.bytes_tx".into(), u64::MAX)],
            gauges: vec![("depth".into(), -2.5), ("nanish".into(), f64::NAN)],
            histograms: vec![(
                "rpc_us".into(),
                rlgraph_obs::HistogramSummary {
                    count: 10,
                    mean: 5.5,
                    p50: 5.0,
                    p95: 9.0,
                    p99: 9.9,
                    max: 10.0,
                },
            )],
        };
        let mut w = ByteWriter::new();
        put_metrics_snapshot(&mut w, &snap);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = get_metrics_snapshot(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.taken_at_us, snap.taken_at_us);
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.histograms, snap.histograms);
        // NaN survives bitwise, so compare gauges by bits.
        for ((n1, v1), (n2, v2)) in back.gauges.iter().zip(&snap.gauges) {
            assert_eq!(n1, n2);
            assert_eq!(v1.to_bits(), v2.to_bits());
        }
    }

    #[test]
    fn trace_dump_roundtrips_all_event_kinds() {
        let dump = rlgraph_obs::TraceDump {
            tracks: vec!["worker-0".into(), "rpc".into()],
            events: vec![
                rlgraph_obs::DumpEvent {
                    name: "collect".into(),
                    track: 0,
                    ts_us: 10,
                    kind: rlgraph_obs::DumpKind::Complete { dur_us: 400 },
                    flow_in: 0,
                    flow_out: 7,
                },
                rlgraph_obs::DumpEvent {
                    name: "mark".into(),
                    track: 1,
                    ts_us: 20,
                    kind: rlgraph_obs::DumpKind::Instant,
                    flow_in: 7,
                    flow_out: 0,
                },
                rlgraph_obs::DumpEvent {
                    name: "depth".into(),
                    track: 1,
                    ts_us: 30,
                    kind: rlgraph_obs::DumpKind::Counter { value: 3.25 },
                    flow_in: 0,
                    flow_out: 0,
                },
            ],
            dropped: 5,
        };
        let mut w = ByteWriter::new();
        put_trace_dump(&mut w, &dump);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_trace_dump(&mut r).unwrap(), dump);
        r.expect_end().unwrap();
    }

    #[test]
    fn unknown_io_kind_collapses_but_stays_fatal() {
        let e =
            RlError::Io { kind: std::io::ErrorKind::PermissionDenied, message: "denied".into() };
        let mut w = ByteWriter::new();
        put_rl_error(&mut w, &e);
        let bytes = w.into_bytes();
        let back = get_rl_error(&mut ByteReader::new(&bytes)).unwrap();
        assert!(matches!(back, RlError::Io { kind: std::io::ErrorKind::Other, .. }));
        assert!(back.is_fatal());
    }
}
