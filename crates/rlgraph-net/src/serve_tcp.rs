//! TCP front-end for the serving stack: act requests over the wire.
//!
//! The front-end is a [`Transport`]-selected server whose service holds a
//! [`PolicyClient`]. Each connection gets its own handler thread, and
//! every handler submits into the **same admission queue** — so
//! concurrent TCP clients coalesce in the existing micro-batcher, and
//! the server's backpressure/deadline machinery (queue bounds, shed
//! policies, expiry) governs network traffic exactly as it governs
//! in-process callers. Remote failures arrive as typed
//! [`ServeError`]s with their severity class intact.

use crate::codec::{get_tensor, put_tensor};
use crate::rpc::{RpcClient, RpcService};
use crate::transport::{ServerHandle, Transport};
use crate::wire::{ByteReader, ByteWriter};
use rlgraph_core::{RlError, RlResult};
use rlgraph_obs::Recorder;
use rlgraph_serve::{PolicyClient, ServeError};
use rlgraph_tensor::Tensor;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Method ids of the serve front-end.
pub mod serve_method {
    /// `Act { deadline_us, observation }` → action tensor
    pub const ACT: u16 = 1;
}

/// Method-name table of [`serve_method`], for telemetry labels.
pub fn serve_method_name(method: u16) -> &'static str {
    match method {
        serve_method::ACT => "act",
        _ => "other",
    }
}

struct ServeFrontendService {
    client: PolicyClient,
}

impl RpcService for ServeFrontendService {
    fn method_name(&self, method: u16) -> &'static str {
        serve_method_name(method)
    }

    fn call(&self, method: u16, body: &[u8]) -> RlResult<Vec<u8>> {
        match method {
            serve_method::ACT => {
                let mut r = ByteReader::new(body);
                let deadline_us = r.get_u64()?;
                let obs = get_tensor(&mut r)?;
                r.expect_end()?;
                let deadline = (deadline_us > 0).then(|| Duration::from_micros(deadline_us));
                let action = self.client.act_with_deadline(obs, deadline).map_err(RlError::from)?;
                let mut out = ByteWriter::new();
                put_tensor(&mut out, &action);
                Ok(out.into_bytes())
            }
            other => Err(RlError::Protocol(format!("serve front-end: unknown method {}", other))),
        }
    }
}

/// A running TCP front-end in front of one policy server, on either
/// transport stack.
pub struct ServeTcpFrontend {
    server: ServerHandle,
}

impl ServeTcpFrontend {
    /// Spawns the front-end on a localhost ephemeral port, on the
    /// default ([`Transport::Blocking`]) stack.
    ///
    /// `client` comes from
    /// [`PolicyServer::client`](rlgraph_serve::PolicyServer::client); the
    /// policy server itself stays wherever it lives — the front-end only
    /// relays admissions.
    ///
    /// # Errors
    ///
    /// `RlError::Io` when the listener cannot bind.
    pub fn spawn(client: PolicyClient, recorder: Recorder) -> RlResult<Self> {
        Self::spawn_with(client, recorder, Transport::default())
    }

    /// [`ServeTcpFrontend::spawn`] on an explicit [`Transport`]. On
    /// [`Transport::Reactor`] one event loop multiplexes every remote
    /// policy client instead of a thread per connection; handlers still
    /// submit into the same admission queue either way.
    ///
    /// # Errors
    ///
    /// As [`ServeTcpFrontend::spawn`].
    pub fn spawn_with(
        client: PolicyClient,
        recorder: Recorder,
        transport: Transport,
    ) -> RlResult<Self> {
        let service = Arc::new(ServeFrontendService { client });
        Ok(ServeTcpFrontend { server: transport.spawn("serve", service, recorder)? })
    }

    /// The address remote policy clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Stops the front-end (the policy server keeps running).
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

/// A remote policy client: [`PolicyClient`]'s API over TCP.
pub struct NetPolicyClient {
    rpc: RpcClient,
}

impl NetPolicyClient {
    /// Connects to a [`ServeTcpFrontend`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Shutdown`] when the front-end is unreachable.
    pub fn connect(addr: SocketAddr, recorder: &Recorder) -> Result<Self, ServeError> {
        let mut rpc =
            RpcClient::connect("serve-frontend", addr, recorder).map_err(ServeError::from)?;
        rpc.set_method_names(serve_method_name);
        Ok(NetPolicyClient { rpc })
    }

    /// Submits one observation and blocks for the action, under the
    /// server's default deadline.
    ///
    /// # Errors
    ///
    /// See [`ServeError`] — remote admission/execution failures keep
    /// their type across the wire; transport failures fold in via
    /// `From<RlError>`.
    pub fn act(&mut self, observation: &Tensor) -> Result<Tensor, ServeError> {
        self.act_with_deadline(observation, None)
    }

    /// Like [`NetPolicyClient::act`] with an explicit deadline, enforced
    /// on **both** sides: the server expires the queued request, and the
    /// RPC call times out if even the expiry answer cannot arrive in
    /// time.
    ///
    /// # Errors
    ///
    /// See [`NetPolicyClient::act`].
    pub fn act_with_deadline(
        &mut self,
        observation: &Tensor,
        deadline: Option<Duration>,
    ) -> Result<Tensor, ServeError> {
        let mut w = ByteWriter::new();
        w.put_u64(deadline.map(|d| d.as_micros() as u64).unwrap_or(0));
        put_tensor(&mut w, observation);
        // Grace so a deadline expiring *inside* the server still reports
        // as the server's typed expiry rather than a client-side timeout.
        let rpc_deadline = deadline.map(|d| d + Duration::from_millis(250));
        let resp = self
            .rpc
            .call(serve_method::ACT, &w.into_bytes(), rpc_deadline)
            .map_err(ServeError::from)?;
        let mut r = ByteReader::new(&resp);
        let action = get_tensor(&mut r).map_err(ServeError::from)?;
        r.expect_end().map_err(ServeError::from)?;
        Ok(action)
    }
}
