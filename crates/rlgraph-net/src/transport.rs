//! Transport selection: one switch flips any service between the
//! blocking thread-per-connection stack ([`RpcServer`]) and the epoll
//! reactor ([`MuxServer`]).
//!
//! The two stacks are wire-compatible (same frames, same payloads), so
//! the choice is purely operational: `Blocking` spends one OS thread
//! per connection and favors simplicity; `Reactor` multiplexes every
//! connection through one event loop and holds thousands of mostly-idle
//! connections for the cost of their sockets. Clients never need to
//! know which one a server runs.

use crate::rpc::{RpcServer, RpcService};
use rlgraph_core::RlResult;
use rlgraph_obs::Recorder;
use rlgraph_reactor::mux::MuxServer;
use std::net::SocketAddr;
use std::sync::Arc;

/// Which server stack fronts a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Thread-per-connection blocking I/O — the default, and the only
    /// choice before the reactor existed.
    #[default]
    Blocking,
    /// One epoll event loop multiplexing every connection
    /// (`rlgraph-reactor`), with a handler pool running the service.
    Reactor,
}

impl Transport {
    /// Spawns `service` on this transport, bound to `127.0.0.1:0`.
    ///
    /// # Errors
    ///
    /// `RlError::Io` when binding or thread spawning fails.
    pub fn spawn(
        self,
        name: &str,
        service: Arc<dyn RpcService>,
        recorder: Recorder,
    ) -> RlResult<ServerHandle> {
        match self {
            Transport::Blocking => {
                Ok(ServerHandle::Blocking(RpcServer::spawn(name, service, recorder)?))
            }
            Transport::Reactor => {
                Ok(ServerHandle::Reactor(MuxServer::spawn(name, service, recorder)?))
            }
        }
    }
}

/// A running server on either transport; callers hold this without
/// caring which stack is underneath.
pub enum ServerHandle {
    /// A blocking [`RpcServer`].
    Blocking(RpcServer),
    /// A reactor-backed [`MuxServer`].
    Reactor(MuxServer),
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (kind, addr) = match self {
            ServerHandle::Blocking(s) => ("Blocking", s.addr()),
            ServerHandle::Reactor(s) => ("Reactor", s.addr()),
        };
        f.debug_struct("ServerHandle").field("transport", &kind).field("addr", &addr).finish()
    }
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        match self {
            ServerHandle::Blocking(s) => s.addr(),
            ServerHandle::Reactor(s) => s.addr(),
        }
    }

    /// Stops the server and joins its threads.
    pub fn shutdown(self) {
        match self {
            ServerHandle::Blocking(s) => s.shutdown(),
            ServerHandle::Reactor(s) => s.shutdown(),
        }
    }
}
