//! Property tests on the wire codec: anything the workspace can
//! produce survives encode → decode bit-for-bit, and corrupted or
//! truncated bytes are rejected with typed errors — never a panic.

use proptest::prelude::*;
use rand::SeedableRng;
use rlgraph_memory::Transition;
use rlgraph_net::codec::{
    get_metrics_snapshot, get_space, get_tensor, get_trace_context, get_trajectory,
    put_metrics_snapshot, put_space, put_tensor, put_trace_context, put_trajectory,
};
use rlgraph_net::{read_frame, write_frame, ByteReader, ByteWriter, FrameKind, FRAME_OVERHEAD};
use rlgraph_obs::{HistogramSummary, MetricsSnapshot, TraceContext};
use rlgraph_spaces::Space;
use rlgraph_tensor::Tensor;

/// Strategy generating arbitrary (nested) spaces up to depth 2 — same
/// shape/dtype coverage as the rlgraph-spaces property suite.
fn arb_space() -> impl Strategy<Value = Space> {
    let leaf = prop_oneof![
        prop::collection::vec(1usize..4, 0..3)
            .prop_map(|shape| Space::float_box_bounded(&shape, -2.0, 2.0)),
        (1i64..8).prop_map(Space::int_box),
        Just(Space::bool_box()),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Space::tuple),
            prop::collection::vec(inner, 1..3).prop_map(|spaces| {
                Space::dict(spaces.into_iter().enumerate().map(|(i, s)| (format!("k{}", i), s)))
            }),
        ]
    })
}

fn roundtrip_tensor(t: &Tensor) -> Tensor {
    let mut w = ByteWriter::new();
    put_tensor(&mut w, t);
    let bytes = w.into_bytes();
    let mut r = ByteReader::new(&bytes);
    let back = get_tensor(&mut r).expect("decode");
    r.expect_end().expect("fully consumed");
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every space — all shapes, dtypes, nesting, rank flags — survives
    /// the wire.
    #[test]
    fn space_roundtrip(space in arb_space(), batch in any::<bool>(), time in any::<bool>()) {
        let mut space = space;
        if batch { space = space.with_batch_rank(); }
        if time { space = space.with_time_rank(); }
        let mut w = ByteWriter::new();
        put_space(&mut w, &space);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = get_space(&mut r).unwrap();
        r.expect_end().unwrap();
        prop_assert_eq!(back, space);
    }

    /// Every leaf tensor a space can sample — F32, I64, Bool, any shape
    /// — round-trips bit-for-bit.
    #[test]
    fn sampled_tensors_roundtrip(space in arb_space(), seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let v = space.sample(&mut rng);
        for (_, t) in v.flatten() {
            prop_assert_eq!(roundtrip_tensor(t), t.clone());
        }
    }

    /// Trajectories (transitions + priorities) round-trip exactly.
    #[test]
    fn trajectory_roundtrip(
        n in 1usize..6,
        dim in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mix = |i: u64, j: u64| (seed ^ i.wrapping_mul(31) ^ j) as f32 * 0.125 - 4.0;
        let transitions: Vec<Transition> = (0..n)
            .map(|i| Transition::new(
                Tensor::from_vec(
                    (0..dim).map(|j| mix(i as u64, j as u64)).collect(), &[dim]).unwrap(),
                Tensor::scalar_i64(i as i64 % 3),
                mix(i as u64, 7),
                Tensor::from_vec(
                    (0..dim).map(|j| mix(i as u64 + 1, j as u64)).collect(), &[dim]).unwrap(),
                i % 2 == 0,
            ))
            .collect();
        let priorities: Vec<f32> = (0..n).map(|i| mix(i as u64, 13).abs()).collect();
        let mut w = ByteWriter::new();
        put_trajectory(&mut w, &transitions, &priorities);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let (ts, ps) = get_trajectory(&mut r).unwrap();
        r.expect_end().unwrap();
        prop_assert_eq!(ts, transitions);
        prop_assert_eq!(ps, priorities);
    }

    /// A frame survives the wire; flipping any single byte makes it
    /// fail loudly (header check, CRC, or truncation — never Ok).
    #[test]
    fn frame_rejects_any_single_byte_corruption(
        payload in prop::collection::vec(0usize..256, 0..200),
        flip in any::<usize>(),
        bit in 0usize..8,
    ) {
        let payload: Vec<u8> = payload.into_iter().map(|v| v as u8).collect();
        let mut bytes = Vec::new();
        write_frame(&mut bytes, FrameKind::Request, &payload).unwrap();
        let (kind, decoded) = read_frame(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(kind, FrameKind::Request);
        prop_assert_eq!(&decoded, &payload);

        let at = flip % bytes.len();
        bytes[at] ^= 1 << bit;
        prop_assert!(read_frame(&mut bytes.as_slice()).is_err());
    }

    /// Any truncation of a frame is rejected as a (fatal) I/O error or
    /// protocol violation — a partial frame can never decode.
    #[test]
    fn frame_rejects_any_truncation(
        payload in prop::collection::vec(0usize..256, 0..100),
        cut in any::<usize>(),
    ) {
        let payload: Vec<u8> = payload.into_iter().map(|v| v as u8).collect();
        let mut bytes = Vec::new();
        write_frame(&mut bytes, FrameKind::Response, &payload).unwrap();
        let keep = cut % bytes.len(); // strictly shorter than the frame
        prop_assert!(read_frame(&mut &bytes[..keep]).is_err());
    }

    /// Frame overhead is constant: encoded size is payload + overhead.
    #[test]
    fn frame_overhead_is_constant(payload in prop::collection::vec(0usize..256, 0..300)) {
        let payload: Vec<u8> = payload.into_iter().map(|v| v as u8).collect();
        let mut bytes = Vec::new();
        write_frame(&mut bytes, FrameKind::Request, &payload).unwrap();
        prop_assert_eq!(bytes.len(), payload.len() + FRAME_OVERHEAD);
    }

    /// Any trace context survives the wire, including the trailing
    /// payload that follows it in a traced request frame.
    #[test]
    fn trace_context_roundtrip(
        trace_id in any::<u64>(),
        span_id in any::<u64>(),
        flags in 0usize..256,
        tail in prop::collection::vec(0usize..256, 0..50),
    ) {
        let ctx = TraceContext { trace_id, span_id, flags: flags as u8 };
        let tail: Vec<u8> = tail.into_iter().map(|v| v as u8).collect();
        let mut w = ByteWriter::new();
        put_trace_context(&mut w, &ctx);
        w.put_bytes(&tail);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = get_trace_context(&mut r).unwrap();
        prop_assert_eq!(back, ctx);
        prop_assert_eq!(r.remaining(), tail.len());
    }

    /// Metric snapshots — counters, gauges, histogram summaries, the
    /// capture timestamp — round-trip bit-for-bit (f64s by bits, so
    /// negative zero and infinities survive too).
    #[test]
    fn metrics_snapshot_roundtrip(
        taken_at_us in any::<u64>(),
        counters in prop::collection::vec(any::<u64>(), 0..6),
        gauges in prop::collection::vec(any::<f64>(), 0..6),
        hists in prop::collection::vec((any::<u64>(), any::<f64>(), any::<f64>()), 0..4),
    ) {
        let snap = MetricsSnapshot {
            taken_at_us,
            counters: counters
                .into_iter()
                .enumerate()
                .map(|(i, v)| (format!("counter.{}", i), v))
                .collect(),
            gauges: gauges
                .into_iter()
                .enumerate()
                .map(|(i, v)| (format!("gauge.{}", i), if i == 0 { f64::NAN } else { v }))
                .collect(),
            histograms: hists
                .into_iter()
                .enumerate()
                .map(|(i, (count, a, b))| {
                    (
                        format!("hist.{}", i),
                        HistogramSummary { count, mean: a, p50: b, p95: a, p99: b, max: a },
                    )
                })
                .collect(),
        };
        let mut w = ByteWriter::new();
        put_metrics_snapshot(&mut w, &snap);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = get_metrics_snapshot(&mut r).unwrap();
        r.expect_end().unwrap();
        prop_assert_eq!(back.taken_at_us, snap.taken_at_us);
        prop_assert_eq!(back.counters, snap.counters);
        for ((n1, g1), (n2, g2)) in back.gauges.iter().zip(&snap.gauges) {
            prop_assert_eq!(n1, n2);
            prop_assert_eq!(g1.to_bits(), g2.to_bits());
        }
        for ((n1, h1), (n2, h2)) in back.histograms.iter().zip(&snap.histograms) {
            prop_assert_eq!(n1, n2);
            prop_assert_eq!(h1.count, h2.count);
            prop_assert_eq!(h1.mean.to_bits(), h2.mean.to_bits());
            prop_assert_eq!(h1.p50.to_bits(), h2.p50.to_bits());
            prop_assert_eq!(h1.p99.to_bits(), h2.p99.to_bits());
        }
    }
}

// ----- wire compression (DESIGN.md §14) -----

use rlgraph_core::RlError;
use rlgraph_net::codec::{
    compress, decompress, get_f32_column, i8_scale_for, put_f32_column, TensorEnc,
    COMPRESS_OVERHEAD,
};

fn arb_enc() -> impl Strategy<Value = TensorEnc> {
    prop_oneof![
        Just(TensorEnc::F32),
        Just(TensorEnc::F16),
        Just(TensorEnc::Bf16),
        Just(TensorEnc::I8Scale),
    ]
}

/// Arbitrary bytes (the stub strategy set has no `any::<u8>()`).
fn arb_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0usize..256, 0..max)
        .prop_map(|v| v.into_iter().map(|b| b as u8).collect())
}

/// Arbitrary weight-ish f32 values in ±10⁴.
fn arb_vals(max: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(any::<u64>(), 0..max).prop_map(|v| {
        v.into_iter().map(|u| ((u >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 2.0e4).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LZ round-trips arbitrary bytes exactly.
    #[test]
    fn lz_roundtrip_arbitrary_bytes(data in arb_bytes(4096)) {
        let blob = compress(&data);
        prop_assert_eq!(decompress(&blob, data.len()).unwrap(), data);
    }

    /// LZ round-trips repetitive data (where the match path actually
    /// fires) and compresses it.
    #[test]
    fn lz_roundtrip_repetitive_bytes(
        data in prop::collection::vec(0usize..4, 512..4096),
    ) {
        let data: Vec<u8> = data.into_iter().map(|b| b as u8).collect();
        let blob = compress(&data);
        prop_assert_eq!(decompress(&blob, data.len()).unwrap(), data.clone());
        prop_assert!(blob.len() < data.len(), "4-symbol data must compress");
    }

    /// The decompressor never panics on arbitrary garbage: every
    /// outcome is Ok or a typed protocol error.
    #[test]
    fn lz_decompress_never_panics_on_garbage(
        blob in arb_bytes(2048),
        max_len in 0usize..8192,
    ) {
        match decompress(&blob, max_len) {
            Ok(out) => prop_assert!(out.len() <= max_len),
            Err(e) => prop_assert!(matches!(e, RlError::Protocol(_)), "untyped error {}", e),
        }
    }

    /// Nor on a *mostly* valid blob with one byte flipped (integrity is
    /// the frame CRC's job; the decompressor just must stay memory-safe
    /// and typed).
    #[test]
    fn lz_decompress_never_panics_on_corruption(
        data in prop::collection::vec(0usize..8, 64..1024),
        flip in any::<usize>(),
        bit in 0usize..8,
    ) {
        let data: Vec<u8> = data.into_iter().map(|b| b as u8).collect();
        let mut blob = compress(&data);
        let at = flip % blob.len();
        blob[at] ^= 1 << bit;
        match decompress(&blob, data.len()) {
            Ok(out) => prop_assert!(out.len() <= data.len()),
            Err(e) => prop_assert!(matches!(e, RlError::Protocol(_)), "untyped error {}", e),
        }
    }

    /// Incompressible input grows by at most the fixed passthrough
    /// overhead, never more.
    #[test]
    fn lz_incompressible_growth_is_bounded(data in arb_bytes(4096)) {
        prop_assert!(compress(&data).len() <= data.len() + COMPRESS_OVERHEAD);
    }

    /// Quantization error bounds hold for every encoding: f16/bf16
    /// within the format's epsilon, i8 within half the per-tensor
    /// scale, f32 exact.
    #[test]
    fn quantization_error_is_bounded(vals in arb_vals(256), enc in arb_enc()) {
        let mut w = ByteWriter::new();
        put_f32_column(&mut w, &vals, enc);
        let bytes = w.into_bytes();
        let back = get_f32_column(&mut ByteReader::new(&bytes), vals.len(), enc).unwrap();
        prop_assert_eq!(back.len(), vals.len());
        for (&a, &b) in vals.iter().zip(&back) {
            let bound = match enc {
                TensorEnc::F32 => 0.0,
                // Half-ulp is 2⁻¹¹ relative; one ulp (2⁻¹⁰) plus the
                // subnormal quantum is a safe outer bound.
                TensorEnc::F16 => a.abs() / 1024.0 + 6.0e-8,
                TensorEnc::Bf16 => a.abs() / 128.0 + f32::MIN_POSITIVE,
                TensorEnc::I8Scale => i8_scale_for(&vals) / 2.0 + f32::EPSILON,
            };
            prop_assert!(
                (a - b).abs() <= bound,
                "{:?}: {} -> {} error {} exceeds {}", enc, a, b, (a - b).abs(), bound
            );
        }
    }

    /// Every encoding is idempotent: re-encoding a decoded column
    /// reproduces the same bytes, so values never drift past the first
    /// trip across the wire.
    #[test]
    fn quantization_is_idempotent(vals in arb_vals(256), enc in arb_enc()) {
        let mut w = ByteWriter::new();
        put_f32_column(&mut w, &vals, enc);
        let bytes = w.into_bytes();
        let back = get_f32_column(&mut ByteReader::new(&bytes), vals.len(), enc).unwrap();
        let mut w2 = ByteWriter::new();
        put_f32_column(&mut w2, &back, enc);
        let bytes2 = w2.into_bytes();
        prop_assert_eq!(bytes2, bytes);
    }

    /// Quantized-column decoding never panics on arbitrary bytes — a
    /// malicious peer gets a typed error, not a crash.
    #[test]
    fn quantized_decode_never_panics_on_garbage(
        bytes in arb_bytes(512),
        n in 0usize..512,
        enc in arb_enc(),
    ) {
        match get_f32_column(&mut ByteReader::new(&bytes), n, enc) {
            Ok(out) => prop_assert_eq!(out.len(), n),
            Err(e) => prop_assert!(
                matches!(e, RlError::Protocol(_) | RlError::Io { .. }),
                "untyped error {}", e
            ),
        }
    }
}
