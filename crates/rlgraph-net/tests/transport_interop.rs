//! Cross-stack interoperability: the blocking and reactor transports
//! speak the same wire protocol, so any client works against any
//! server, and [`Transport::spawn`] flips a service between stacks
//! without the caller changing anything else.

use rlgraph_core::RlError;
use rlgraph_net::rpc::{RpcClient, RpcService};
use rlgraph_net::{ServerHandle, Transport};
use rlgraph_obs::{DumpKind, Recorder};
use rlgraph_reactor::mux::{MuxClient, MuxClientConfig};
use std::sync::Arc;
use std::time::Duration;

const ECHO: u16 = 1;
const FAIL: u16 = 2;

struct EchoService;

impl RpcService for EchoService {
    fn call(&self, method: u16, body: &[u8]) -> Result<Vec<u8>, RlError> {
        match method {
            ECHO => Ok(body.to_vec()),
            FAIL => Err(RlError::MailboxFull { capacity: 3 }),
            other => Err(RlError::Protocol(format!("unknown method {}", other))),
        }
    }

    fn method_name(&self, method: u16) -> &'static str {
        method_names(method)
    }
}

fn method_names(method: u16) -> &'static str {
    match method {
        ECHO => "echo",
        FAIL => "fail",
        _ => "other",
    }
}

fn spawn_on(transport: Transport) -> (ServerHandle, Recorder) {
    let recorder = Recorder::wall();
    let server = transport.spawn("interop", Arc::new(EchoService), recorder.clone()).unwrap();
    (server, recorder)
}

/// A blocking thread-per-call client against the epoll mux server —
/// the upgrade path where servers move to the reactor first.
#[test]
fn blocking_client_against_reactor_server() {
    let (server, recorder) = spawn_on(Transport::Reactor);
    let mut client = RpcClient::connect("interop", server.addr(), &recorder).unwrap();
    client.set_method_names(method_names);
    for i in 0..5u8 {
        assert_eq!(client.call(ECHO, &[i], Some(Duration::from_secs(5))).unwrap(), vec![i]);
    }
    let err = client.call(FAIL, b"", Some(Duration::from_secs(5))).unwrap_err();
    assert!(matches!(err, RlError::MailboxFull { capacity: 3 }), "got {err}");
    // Telemetry parity: the reactor server records under the same
    // names the blocking server uses.
    assert!(recorder.histogram("net.server.rpc_us").count() >= 6);
    assert!(recorder.histogram("net.rpc.serve.echo.us").count() >= 5);
    server.shutdown();
}

/// The mux client against the classic blocking server — the reverse
/// path. Heartbeats stay off by default so the blocking server never
/// sees an unknown frame kind.
#[test]
fn mux_client_against_blocking_server() {
    let (server, recorder) = spawn_on(Transport::Blocking);
    let config = MuxClientConfig { method_names, ..MuxClientConfig::default() };
    let client = MuxClient::connect_with("interop", server.addr(), &recorder, config).unwrap();
    for i in 0..5u8 {
        assert_eq!(client.call(ECHO, &[i], Some(Duration::from_secs(5))).unwrap(), vec![i]);
    }
    let err = client.call(FAIL, b"", Some(Duration::from_secs(5))).unwrap_err();
    assert!(matches!(err, RlError::MailboxFull { capacity: 3 }), "got {err}");
    server.shutdown();
}

/// Trace flow linkage holds across stacks: a blocking client's span
/// links to the reactor server's handler span.
#[test]
fn flow_linkage_across_stacks() {
    let (server, recorder) = spawn_on(Transport::Reactor);
    let mut client = RpcClient::connect("interop", server.addr(), &recorder).unwrap();
    client.set_method_names(method_names);
    client.call(ECHO, b"traced", Some(Duration::from_secs(5))).unwrap();
    server.shutdown();
    let dump = recorder.trace_dump();
    let call = dump
        .events
        .iter()
        .find(|e| {
            e.name.starts_with("rpc.") && !e.name.starts_with("rpc.serve.") && e.flow_out != 0
        })
        .expect("client call span");
    let handler = dump
        .events
        .iter()
        .find(|e| e.name.starts_with("rpc.serve.") && e.flow_in == call.flow_out)
        .expect("reactor handler span linked across the stack boundary");
    assert!(matches!(handler.kind, DumpKind::Complete { .. }));
}

/// Both transports behave identically through the `Transport` switch.
#[test]
fn transport_switch_is_behavior_preserving() {
    for transport in [Transport::Blocking, Transport::Reactor] {
        let (server, recorder) = spawn_on(transport);
        assert!(format!("{:?}", server).contains(match transport {
            Transport::Blocking => "Blocking",
            Transport::Reactor => "Reactor",
        }));
        let mut client = RpcClient::connect("interop", server.addr(), &recorder).unwrap();
        assert_eq!(
            client.call(ECHO, b"same wire", Some(Duration::from_secs(5))).unwrap(),
            b"same wire"
        );
        server.shutdown();
    }
}

/// Capability negotiation engages across both stack pairings: after the
/// first advertised request, large compressible payloads ship
/// LZ-compressed in both directions, and the decoded bytes are intact.
#[test]
fn negotiated_compression_across_stacks() {
    // Blocking client against the reactor server, then the blocking
    // server (the mux-client pairing is covered below) — both must
    // land on the same negotiated state from the same probe protocol.
    for transport in [Transport::Blocking, Transport::Reactor] {
        let (server, recorder) = spawn_on(transport);
        let mut client = RpcClient::connect("interop", server.addr(), &recorder).unwrap();
        let payload = vec![0x42u8; 8192];
        for _ in 0..3 {
            assert_eq!(client.call(ECHO, &payload, Some(Duration::from_secs(5))).unwrap(), payload);
        }
        server.shutdown();
        // 3 requests + 3 responses; plain would meter ≥ 6 × 8 KiB. The
        // probe request ships plain (peer caps unknown), everything
        // after must compress.
        let tx = recorder.counter("net.bytes_tx").value();
        assert!(
            tx < 6 * 8192,
            "compression never engaged over {:?}: {} bytes on the wire",
            transport,
            tx
        );
    }

    // Mux client against the blocking server.
    let (server, recorder) = spawn_on(Transport::Blocking);
    let config = MuxClientConfig { method_names, ..MuxClientConfig::default() };
    let client = MuxClient::connect_with("interop", server.addr(), &recorder, config).unwrap();
    let payload = vec![0x42u8; 8192];
    for _ in 0..3 {
        assert_eq!(client.call(ECHO, &payload, Some(Duration::from_secs(5))).unwrap(), payload);
    }
    server.shutdown();
    let tx = recorder.counter("net.bytes_tx").value();
    assert!(tx < 6 * 8192, "mux client never negotiated compression: {} bytes", tx);
}

/// Deferred (pipelined) calls interleave with synchronous ones on both
/// stacks: acks drain before the next request, results stay correct,
/// and a typed service error in a dropped ack is counted, not raised.
#[test]
fn deferred_calls_pipeline_across_stacks() {
    for transport in [Transport::Blocking, Transport::Reactor] {
        let (server, recorder) = spawn_on(transport);
        let mut client = RpcClient::connect("interop", server.addr(), &recorder).unwrap();
        client.set_method_names(method_names);
        // Resolve the capability probe first (deferred degrades to sync
        // until then).
        assert_eq!(client.call(ECHO, b"probe", Some(Duration::from_secs(5))).unwrap(), b"probe");
        for i in 0..5u8 {
            client.call_deferred(ECHO, &[i], Some(Duration::from_secs(5))).unwrap();
            // The drained ack must belong to the deferred request, not
            // bleed into this call's response.
            assert_eq!(
                client.call(ECHO, &[100 + i], Some(Duration::from_secs(5))).unwrap(),
                vec![100 + i]
            );
        }
        // A failing deferred call: the typed error is dropped on drain
        // and counted; the next call is unaffected.
        client.call_deferred(FAIL, b"", Some(Duration::from_secs(5))).unwrap();
        assert_eq!(client.call(ECHO, b"after", Some(Duration::from_secs(5))).unwrap(), b"after");
        assert_eq!(
            recorder.counter("net.deferred_dropped_errors").value(),
            1,
            "dropped typed error must be counted ({:?})",
            transport
        );
        server.shutdown();
    }
}

/// Prefetched calls return their own response on both stacks: a sync
/// call issued while a prefetch is outstanding resolves and stashes
/// the prefetched response instead of stealing it, and a typed error
/// surfaces from collection — not from an unrelated call.
#[test]
fn prefetched_calls_pipeline_across_stacks() {
    for transport in [Transport::Blocking, Transport::Reactor] {
        let (server, recorder) = spawn_on(transport);
        let mut client = RpcClient::connect("interop", server.addr(), &recorder).unwrap();
        client.set_method_names(method_names);
        // Plain prefetch → collect round trips.
        for i in 0..5u8 {
            client.call_prefetch(ECHO, &[i], Some(Duration::from_secs(5))).unwrap();
            assert_eq!(client.take_prefetched().unwrap(), vec![i], "{:?}", transport);
        }
        // A sync call between prefetch and collection must not steal
        // the prefetched response.
        client.call_prefetch(ECHO, b"stashed", Some(Duration::from_secs(5))).unwrap();
        assert_eq!(client.call(ECHO, b"sync", Some(Duration::from_secs(5))).unwrap(), b"sync");
        assert_eq!(client.take_prefetched().unwrap(), b"stashed");
        // Double prefetch is a caller bug.
        client.call_prefetch(ECHO, b"one", Some(Duration::from_secs(5))).unwrap();
        let err = client.call_prefetch(ECHO, b"two", Some(Duration::from_secs(5))).unwrap_err();
        assert!(matches!(err, RlError::Protocol(_)), "got {err}");
        assert_eq!(client.take_prefetched().unwrap(), b"one");
        // A typed service error surfaces from collection, stream kept.
        client.call_prefetch(FAIL, b"", Some(Duration::from_secs(5))).unwrap();
        let err = client.take_prefetched().unwrap_err();
        assert!(matches!(err, RlError::MailboxFull { capacity: 3 }), "got {err}");
        assert_eq!(client.call(ECHO, b"after", Some(Duration::from_secs(5))).unwrap(), b"after");
        // Collecting with nothing outstanding is a caller bug.
        assert!(matches!(client.take_prefetched(), Err(RlError::Protocol(_))));
        server.shutdown();
    }
}

/// A strict version-1 peer (the previous release): it drops any
/// connection whose version word carries capability flags. Both client
/// stacks must downgrade to plain v1 on the failed probe and succeed on
/// the caller's retry — old peers keep working, just uncompressed.
#[test]
fn old_v1_server_downgrades_clients_to_plain() {
    use rlgraph_net::frame::{write_frame, FrameKind};
    use std::io::Read;
    use std::net::TcpListener;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let _old_server = std::thread::spawn(move || {
        // Serve connections sequentially; clients reconnect after the
        // rejected probe.
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { return };
            loop {
                let mut header = [0u8; 12];
                if stream.read_exact(&mut header).is_err() {
                    break;
                }
                let word = u16::from_le_bytes([header[4], header[5]]);
                if word != 1 {
                    // Old peer: "unsupported protocol version" → close
                    // the connection unanswered.
                    break;
                }
                let len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
                let mut rest = vec![0u8; len + 4]; // payload + CRC
                if stream.read_exact(&mut rest).is_err() {
                    break;
                }
                // Request payload: [req_id u64][method u16][body…];
                // answer [req_id][status 0 = ok][body…] in plain v1.
                let payload = &rest[..len];
                let mut resp = payload[..8].to_vec();
                resp.push(0);
                resp.extend_from_slice(&payload[10..]);
                if write_frame(&mut stream, FrameKind::Response, &resp).is_err() {
                    break;
                }
            }
        }
    });

    let recorder = Recorder::disabled();

    // Blocking client: the advertised probe dies, the retry goes plain.
    let mut client = RpcClient::connect("interop", addr, &recorder).unwrap();
    let probe = client.call(ECHO, b"hello", Some(Duration::from_secs(5)));
    assert!(probe.is_err(), "v1 peer must reject the capability probe");
    assert_eq!(
        client.call(ECHO, b"hello", Some(Duration::from_secs(5))).unwrap(),
        b"hello",
        "blocking client did not fall back to plain v1"
    );
    // The fake server handles one connection at a time: release the
    // blocking client's socket before the mux client dials in.
    drop(client);

    // Mux client: same protocol, severed-before-first-frame heuristic.
    let config = MuxClientConfig { method_names, ..MuxClientConfig::default() };
    let client = MuxClient::connect_with("interop", addr, &recorder, config).unwrap();
    let probe = client.call(ECHO, b"hello", Some(Duration::from_secs(5)));
    assert!(probe.is_err(), "v1 peer must reject the mux capability probe");
    let mut ok = false;
    for _ in 0..10 {
        // The mux reconnect is asynchronous; give it a few tries.
        match client.call(ECHO, b"hello", Some(Duration::from_secs(5))) {
            Ok(body) => {
                assert_eq!(body, b"hello");
                ok = true;
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    assert!(ok, "mux client did not fall back to plain v1");
}
