//! Cross-stack interoperability: the blocking and reactor transports
//! speak the same wire protocol, so any client works against any
//! server, and [`Transport::spawn`] flips a service between stacks
//! without the caller changing anything else.

use rlgraph_core::RlError;
use rlgraph_net::rpc::{RpcClient, RpcService};
use rlgraph_net::{ServerHandle, Transport};
use rlgraph_obs::{DumpKind, Recorder};
use rlgraph_reactor::mux::{MuxClient, MuxClientConfig};
use std::sync::Arc;
use std::time::Duration;

const ECHO: u16 = 1;
const FAIL: u16 = 2;

struct EchoService;

impl RpcService for EchoService {
    fn call(&self, method: u16, body: &[u8]) -> Result<Vec<u8>, RlError> {
        match method {
            ECHO => Ok(body.to_vec()),
            FAIL => Err(RlError::MailboxFull { capacity: 3 }),
            other => Err(RlError::Protocol(format!("unknown method {}", other))),
        }
    }

    fn method_name(&self, method: u16) -> &'static str {
        method_names(method)
    }
}

fn method_names(method: u16) -> &'static str {
    match method {
        ECHO => "echo",
        FAIL => "fail",
        _ => "other",
    }
}

fn spawn_on(transport: Transport) -> (ServerHandle, Recorder) {
    let recorder = Recorder::wall();
    let server = transport.spawn("interop", Arc::new(EchoService), recorder.clone()).unwrap();
    (server, recorder)
}

/// A blocking thread-per-call client against the epoll mux server —
/// the upgrade path where servers move to the reactor first.
#[test]
fn blocking_client_against_reactor_server() {
    let (server, recorder) = spawn_on(Transport::Reactor);
    let mut client = RpcClient::connect("interop", server.addr(), &recorder).unwrap();
    client.set_method_names(method_names);
    for i in 0..5u8 {
        assert_eq!(client.call(ECHO, &[i], Some(Duration::from_secs(5))).unwrap(), vec![i]);
    }
    let err = client.call(FAIL, b"", Some(Duration::from_secs(5))).unwrap_err();
    assert!(matches!(err, RlError::MailboxFull { capacity: 3 }), "got {err}");
    // Telemetry parity: the reactor server records under the same
    // names the blocking server uses.
    assert!(recorder.histogram("net.server.rpc_us").count() >= 6);
    assert!(recorder.histogram("net.rpc.serve.echo.us").count() >= 5);
    server.shutdown();
}

/// The mux client against the classic blocking server — the reverse
/// path. Heartbeats stay off by default so the blocking server never
/// sees an unknown frame kind.
#[test]
fn mux_client_against_blocking_server() {
    let (server, recorder) = spawn_on(Transport::Blocking);
    let config = MuxClientConfig { method_names, ..MuxClientConfig::default() };
    let client = MuxClient::connect_with("interop", server.addr(), &recorder, config).unwrap();
    for i in 0..5u8 {
        assert_eq!(client.call(ECHO, &[i], Some(Duration::from_secs(5))).unwrap(), vec![i]);
    }
    let err = client.call(FAIL, b"", Some(Duration::from_secs(5))).unwrap_err();
    assert!(matches!(err, RlError::MailboxFull { capacity: 3 }), "got {err}");
    server.shutdown();
}

/// Trace flow linkage holds across stacks: a blocking client's span
/// links to the reactor server's handler span.
#[test]
fn flow_linkage_across_stacks() {
    let (server, recorder) = spawn_on(Transport::Reactor);
    let mut client = RpcClient::connect("interop", server.addr(), &recorder).unwrap();
    client.set_method_names(method_names);
    client.call(ECHO, b"traced", Some(Duration::from_secs(5))).unwrap();
    server.shutdown();
    let dump = recorder.trace_dump();
    let call = dump
        .events
        .iter()
        .find(|e| {
            e.name.starts_with("rpc.") && !e.name.starts_with("rpc.serve.") && e.flow_out != 0
        })
        .expect("client call span");
    let handler = dump
        .events
        .iter()
        .find(|e| e.name.starts_with("rpc.serve.") && e.flow_in == call.flow_out)
        .expect("reactor handler span linked across the stack boundary");
    assert!(matches!(handler.kind, DumpKind::Complete { .. }));
}

/// Both transports behave identically through the `Transport` switch.
#[test]
fn transport_switch_is_behavior_preserving() {
    for transport in [Transport::Blocking, Transport::Reactor] {
        let (server, recorder) = spawn_on(transport);
        assert!(format!("{:?}", server).contains(match transport {
            Transport::Blocking => "Blocking",
            Transport::Reactor => "Reactor",
        }));
        let mut client = RpcClient::connect("interop", server.addr(), &recorder).unwrap();
        assert_eq!(
            client.call(ECHO, b"same wire", Some(Duration::from_secs(5))).unwrap(),
            b"same wire"
        );
        server.shutdown();
    }
}
