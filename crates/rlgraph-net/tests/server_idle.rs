//! The blocking server must *sleep* when idle, not spin: its stop-flag
//! accept/read loops wait in `poll(2)` with real timeouts. These tests
//! pin that down by reading the accept thread's own CPU clock, and
//! exercise the idle-connection reaper.

use rlgraph_core::RlError;
use rlgraph_net::rpc::{RpcClient, RpcServer, RpcServerConfig, RpcService};
use rlgraph_obs::Recorder;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct EchoService;

impl RpcService for EchoService {
    fn call(&self, _method: u16, body: &[u8]) -> Result<Vec<u8>, RlError> {
        Ok(body.to_vec())
    }
}

/// With one idle client attached and no traffic, the accept thread's
/// thread-CPU clock (published as `net.server.accept_cpu_us`) must stay
/// far below wall time — the old 2ms-sleep busy-poll burned CPU every
/// tick; the poll(2) loop wakes ~10×/s and does nothing.
#[test]
fn idle_server_burns_no_cpu() {
    let recorder = Recorder::wall();
    let server = RpcServer::spawn("idlecpu", Arc::new(EchoService), recorder.clone()).unwrap();
    let mut client = RpcClient::connect("idlecpu", server.addr(), &recorder).unwrap();
    client.call(1, b"warm", Some(Duration::from_secs(5))).unwrap();

    // Let CPU-time publication settle past at least one tick, then
    // measure over a full second of idleness.
    std::thread::sleep(Duration::from_millis(200));
    let cpu0 = recorder.gauge("net.server.accept_cpu_us").value();
    std::thread::sleep(Duration::from_secs(1));
    // The gauge updates on the accept thread's next wakeup.
    std::thread::sleep(Duration::from_millis(200));
    let cpu1 = recorder.gauge("net.server.accept_cpu_us").value();

    let burned_us = cpu1 - cpu0;
    assert!(
        burned_us < 50_000.0,
        "idle accept loop burned {burned_us}us CPU over ~1s wall — busy-polling again?"
    );
    server.shutdown();
}

/// Connections quiet past the configured idle timeout are closed and
/// counted; `net.conns.open` rebalances, and the client transparently
/// reconnects on a later call.
#[test]
fn blocking_server_reaps_idle_connections() {
    let recorder = Recorder::wall();
    let config = RpcServerConfig { idle_timeout: Some(Duration::from_millis(150)) };
    let server =
        RpcServer::spawn_with("reap", Arc::new(EchoService), recorder.clone(), config).unwrap();
    let mut client = RpcClient::connect("reap", server.addr(), &recorder).unwrap();
    client.call(1, b"x", Some(Duration::from_secs(5))).unwrap();
    assert_eq!(recorder.gauge("net.conns.open").value(), 1.0);

    let t0 = Instant::now();
    while recorder.counter("net.conns.idle_reaped").value() == 0 {
        assert!(t0.elapsed() < Duration::from_secs(5), "idle connection never reaped");
        std::thread::sleep(Duration::from_millis(20));
    }
    // The gauge drops once the connection thread unwinds.
    let t1 = Instant::now();
    while recorder.gauge("net.conns.open").value() > 0.0 {
        assert!(t1.elapsed() < Duration::from_secs(5), "conns.open gauge never rebalanced");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Reconnect-on-next-call: the first call may observe the dead
    // stream; a retry lands on a fresh connection.
    let mut reply = Err(RlError::Shutdown);
    for _ in 0..10 {
        reply = client.call(1, b"back", Some(Duration::from_secs(2)));
        if reply.is_ok() {
            break;
        }
    }
    assert_eq!(reply.unwrap(), b"back");
    assert!(recorder.counter("net.reconnects").value() >= 1);
    server.shutdown();
}

/// An in-flight request slower than the idle timeout must NOT be
/// reaped: the idle clock only runs between frames, and bytes that have
/// started arriving disarm it entirely.
#[test]
fn slow_requests_survive_the_idle_reaper() {
    struct SlowService;
    impl RpcService for SlowService {
        fn call(&self, _m: u16, body: &[u8]) -> Result<Vec<u8>, RlError> {
            std::thread::sleep(Duration::from_millis(400));
            Ok(body.to_vec())
        }
    }
    let recorder = Recorder::wall();
    let config = RpcServerConfig { idle_timeout: Some(Duration::from_millis(150)) };
    let server =
        RpcServer::spawn_with("slow", Arc::new(SlowService), recorder.clone(), config).unwrap();
    let mut client = RpcClient::connect("slow", server.addr(), &recorder).unwrap();
    // Handler time (400ms) far exceeds the idle timeout (150ms); the
    // reply must still arrive because the request frame already landed.
    assert_eq!(client.call(1, b"slow", Some(Duration::from_secs(5))).unwrap(), b"slow");
    server.shutdown();
}
