//! Loopback RPC tests: deadlines, typed error propagation, retry, and
//! reconnect — all over real TCP sockets on 127.0.0.1.

use rlgraph_core::{RlError, Severity};
use rlgraph_dist::retry::RetryPolicy;
use rlgraph_net::{read_frame, write_frame, FrameKind, RpcClient, RpcServer, RpcService};
use rlgraph_obs::{DumpKind, Recorder};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ECHO: u16 = 1;
const SLEEP_MS: u16 = 2;
const FAIL_RETRYABLE: u16 = 3;
const FLAKY: u16 = 4;

struct TestService {
    flaky_calls: AtomicU32,
}

impl TestService {
    fn new() -> Self {
        TestService { flaky_calls: AtomicU32::new(0) }
    }
}

impl RpcService for TestService {
    fn call(&self, method: u16, body: &[u8]) -> Result<Vec<u8>, RlError> {
        match method {
            ECHO => Ok(body.to_vec()),
            SLEEP_MS => {
                let ms = u64::from(body.first().copied().unwrap_or(0)) * 10;
                std::thread::sleep(Duration::from_millis(ms));
                Ok(body.to_vec())
            }
            FAIL_RETRYABLE => Err(RlError::MailboxFull { capacity: 7 }),
            FLAKY => {
                // Fails twice, then succeeds — exercises call_retry.
                if self.flaky_calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(RlError::MailboxFull { capacity: 3 })
                } else {
                    Ok(b"ok".to_vec())
                }
            }
            other => Err(RlError::Protocol(format!("unknown method {}", other))),
        }
    }
}

fn spawn_server() -> (RpcServer, Recorder) {
    let recorder = Recorder::wall();
    let server = RpcServer::spawn("test", Arc::new(TestService::new()), recorder.clone())
        .expect("bind loopback");
    (server, recorder)
}

#[test]
fn echo_roundtrip_and_metrics() {
    let (server, recorder) = spawn_server();
    let mut client = RpcClient::connect("test", server.addr(), &recorder).unwrap();
    for i in 0..10u8 {
        let reply = client.call(ECHO, &[i, i + 1], None).unwrap();
        assert_eq!(reply, vec![i, i + 1]);
    }
    assert!(recorder.counter("net.bytes_tx").value() > 0);
    assert!(recorder.counter("net.bytes_rx").value() > 0);
    assert_eq!(recorder.counter("net.reconnects").value(), 0);
    assert!(recorder.histogram("net.rpc_us").count() >= 10);
    server.shutdown();
}

#[test]
fn deadline_expiry_is_typed_and_client_recovers() {
    let (server, recorder) = spawn_server();
    let mut client = RpcClient::connect("test", server.addr(), &recorder).unwrap();
    // Server will sleep 500ms; the call allows 50ms.
    let t0 = Instant::now();
    let err = client.call(SLEEP_MS, &[50], Some(Duration::from_millis(50))).unwrap_err();
    assert!(matches!(err, RlError::DeadlineExpired { .. }), "expected DeadlineExpired, got {err}");
    assert_eq!(err.severity(), Severity::Retryable);
    assert!(t0.elapsed() < Duration::from_millis(450), "deadline did not cut the wait short");
    // The timed-out stream is untrusted and was dropped; the next call
    // transparently reconnects and succeeds.
    let reply = client.call(ECHO, b"after", None).unwrap();
    assert_eq!(reply, b"after");
    assert_eq!(recorder.counter("net.reconnects").value(), 1);
    server.shutdown();
}

#[test]
fn remote_errors_keep_their_type_and_severity() {
    let (server, recorder) = spawn_server();
    let mut client = RpcClient::connect("test", server.addr(), &recorder).unwrap();
    let err = client.call(FAIL_RETRYABLE, &[], None).unwrap_err();
    assert!(matches!(err, RlError::MailboxFull { capacity: 7 }), "got {err}");
    assert!(err.is_retryable());
    // A service-level error does not poison the connection.
    assert_eq!(client.call(ECHO, b"x", None).unwrap(), b"x");
    assert_eq!(recorder.counter("net.reconnects").value(), 0);
    server.shutdown();
}

#[test]
fn call_retry_rides_out_retryable_failures() {
    let (server, recorder) = spawn_server();
    let mut client = RpcClient::connect("test", server.addr(), &recorder).unwrap();
    let policy = RetryPolicy {
        max_attempts: 5,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(5),
        multiplier: 2.0,
        deadline: None,
    };
    let reply = client.call_retry(FLAKY, &[], None, &policy).unwrap();
    assert_eq!(reply, b"ok");
    server.shutdown();
}

#[test]
fn concurrent_clients_each_get_their_own_answers() {
    let (server, recorder) = spawn_server();
    let addr = server.addr();
    let mut handles = Vec::new();
    for t in 0..4u8 {
        let recorder = recorder.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = RpcClient::connect("test", addr, &recorder).unwrap();
            for i in 0..25u8 {
                let body = [t, i];
                assert_eq!(client.call(ECHO, &body, None).unwrap(), body);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}

/// Zero-cost-when-disabled, asserted at the byte level: with a disabled
/// recorder the client emits plain `Request` frames whose payload is
/// exactly `req_id + method + body` — not one byte of trace context.
#[test]
fn disabled_recorder_sends_untraced_frames() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let body = b"payload".to_vec();
    let expect_len = 8 + 2 + body.len(); // req_id u64 + method u16 + body
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let (kind, payload) = read_frame(&mut stream).unwrap();
        assert_eq!(kind, FrameKind::Request, "tracing off must not change the frame kind");
        assert_eq!(payload.len(), expect_len, "tracing off must add zero payload bytes");
        // Minimal valid response: echo req_id, status 0, empty body.
        let mut resp = payload[..8].to_vec();
        resp.push(0);
        write_frame(&mut stream, FrameKind::Response, &resp).unwrap();
    });
    let recorder = Recorder::disabled();
    let mut client = RpcClient::connect("raw", addr, &recorder).unwrap();
    client.call(ECHO, &body, Some(Duration::from_secs(5))).unwrap();
    server.join().unwrap();
}

/// With tracing on, the client's call span and the server's handler
/// span share a flow id, so the merged trace can stitch the RPC edge
/// across processes.
#[test]
fn traced_calls_link_client_and_server_spans() {
    let (server, recorder) = spawn_server();
    let mut client = RpcClient::connect("test", server.addr(), &recorder).unwrap();
    client.call(ECHO, b"traced", None).unwrap();
    server.shutdown();
    let dump = recorder.trace_dump();
    let call = dump
        .events
        .iter()
        .find(|e| {
            e.name.starts_with("rpc.") && !e.name.starts_with("rpc.serve.") && e.flow_out != 0
        })
        .expect("client call span with a flow out-edge");
    let handler = dump
        .events
        .iter()
        .find(|e| e.name.starts_with("rpc.serve.") && e.flow_in == call.flow_out)
        .expect("server handler span linked to the client span");
    assert!(matches!(handler.kind, DumpKind::Complete { .. }));
}

#[test]
fn calls_against_a_dead_server_fail_fast() {
    let (server, recorder) = spawn_server();
    let addr = server.addr();
    let mut client = RpcClient::connect("test", addr, &recorder).unwrap();
    assert_eq!(client.call(ECHO, b"up", None).unwrap(), b"up");
    server.shutdown();
    // The connection died with the server: the next call errors (reset /
    // EOF normalized to a retryable "connection died" class), and a
    // reconnect attempt against the closed port fails fatally.
    let err = client.call(ECHO, b"down", Some(Duration::from_millis(500))).unwrap_err();
    assert!(matches!(err, RlError::Io { .. } | RlError::DeadlineExpired { .. }), "got {err}");
    let err2 = client.call(ECHO, b"still down", Some(Duration::from_millis(500))).unwrap_err();
    assert!(matches!(err2, RlError::Io { .. } | RlError::DeadlineExpired { .. }), "got {err2}");
}
