//! End-to-end tests of the networked runtime: shard/coordinator
//! services over loopback TCP, the Ape-X net run in thread mode (real
//! sockets, in-process workers), deterministic fault-proxy draws, and
//! checkpoint transfer over the wire.

use rlgraph_agents::{Backend, DqnConfig};
use rlgraph_core::RlError;
use rlgraph_dist::checkpoint::LearnerCheckpoint;
use rlgraph_dist::sync::WeightHub;
use rlgraph_net::proxy::Direction;
use rlgraph_net::{
    run_apex_net, CoordClient, CoordService, EnvSpec, FaultProxy, FaultProxyConfig, LaunchMode,
    NetApexConfig, RpcClient, RpcServer, RpcService, ShardClient, ShardService, Transport,
};
use rlgraph_nn::{Activation, NetworkSpec};
use rlgraph_obs::Recorder;
use rlgraph_tensor::Tensor;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

fn tiny_agent() -> DqnConfig {
    DqnConfig {
        backend: Backend::Static,
        network: NetworkSpec::mlp(&[8], Activation::Tanh),
        memory_capacity: 512,
        batch_size: 8,
        n_step: 2,
        target_sync_every: 50,
        seed: 11,
        ..DqnConfig::default()
    }
}

#[test]
fn shard_service_over_tcp_serves_the_replay_path() {
    let recorder = Recorder::disabled();
    let server =
        RpcServer::spawn("shard", Arc::new(ShardService::new(64, 0.6, 0)), recorder.clone())
            .unwrap();
    let mut client = ShardClient::connect("shard", server.addr(), &recorder).unwrap();

    // Under-filled: sample declines rather than errors.
    assert!(client.sample(8, 0.4).unwrap().is_none());

    let transitions: Vec<_> = (0..16)
        .map(|i| {
            rlgraph_memory::Transition::new(
                Tensor::full(&[3], i as f32),
                Tensor::scalar_i64(0),
                1.0,
                Tensor::full(&[3], i as f32 + 1.0),
                false,
            )
        })
        .collect();
    client.insert(&transitions, &vec![1.0; 16]).unwrap();
    assert_eq!(client.watermark().unwrap(), 16);

    let batch = client.sample(8, 0.4).unwrap().expect("filled");
    assert_eq!(batch.tensors[0].shape(), &[8, 3]);
    assert_eq!(batch.indices.len(), 8);
    client.update_priorities(&batch.indices, &vec![2.0; 8]).unwrap();
    assert!(client.sample(8, 0.4).unwrap().is_some());
    server.shutdown();
}

#[test]
fn coordinator_distributes_weights_and_checkpoints_over_tcp() {
    let recorder = Recorder::disabled();
    let hub = Arc::new(WeightHub::new());
    let stop = Arc::new(AtomicBool::new(false));
    let service = Arc::new(CoordService::new(hub.clone(), stop.clone()));
    let server = RpcServer::spawn("coord", service.clone(), recorder.clone()).unwrap();
    let mut client = CoordClient::connect(server.addr(), &recorder).unwrap();

    // Nothing published yet: quiet poll, typed checkpoint miss.
    assert!(client.get_weights(0).unwrap().is_none());
    assert!(matches!(client.get_checkpoint().unwrap_err(), RlError::Checkpoint(_)));

    hub.publish(vec![("w".into(), Tensor::full(&[2, 3], 1.5))]);
    let snap = client.get_weights(0).unwrap().expect("published");
    assert_eq!(snap.version, 1);
    assert_eq!(snap.weights[0].1.shape(), &[2, 3]);
    // Already seen: the poll stays quiet.
    assert!(client.get_weights(snap.version).unwrap().is_none());

    service.set_checkpoint(LearnerCheckpoint {
        updates: 42,
        weight_version: 1,
        variables: vec![("v".into(), Tensor::full(&[4], -0.25))],
        shard_watermarks: vec![10, 20],
    });
    let ck = client.get_checkpoint().unwrap();
    assert_eq!(ck.updates, 42);
    assert_eq!(ck.shard_watermarks, vec![10, 20]);
    assert_eq!(ck.variables[0].1.as_f32().unwrap(), &[-0.25; 4]);

    // Heartbeats aggregate and relay the stop flag.
    let beat = rlgraph_net::Heartbeat {
        worker: 0,
        frames: 100,
        samples: 32,
        returns: vec![1.0],
        ..Default::default()
    };
    assert!(!client.heartbeat(&beat).unwrap().stop);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    assert!(client.heartbeat(&beat).unwrap().stop);
    let progress = service.progress();
    assert_eq!(progress.env_frames, 200);
    assert_eq!(progress.heartbeats, 2);
    server.shutdown();
}

#[test]
fn apex_over_tcp_trains_end_to_end() {
    let config = NetApexConfig {
        agent: tiny_agent(),
        env: EnvSpec::Random { shape: vec![4], actions: 2, episode_len: 20 },
        num_workers: 2,
        envs_per_worker: 2,
        task_size: 32,
        num_shards: 2,
        weight_sync_interval: 4,
        run_duration: Duration::from_secs(30),
        max_updates: Some(12),
        rpc_deadline: Duration::from_secs(5),
        launch: LaunchMode::Thread,
        shard_proxy: None,
        transport: Transport::default(),
        compression: false,
        elastic: None,
        recorder: Recorder::disabled(),
    };
    let stats = run_apex_net(config).unwrap();
    assert_eq!(stats.updates, 12);
    assert!(stats.env_frames > 0, "no heartbeats reached the coordinator");
    assert!(stats.samples_collected > 0);
    assert_eq!(stats.workers_clean, 2, "workers did not stop cleanly");
    assert!(stats.losses.iter().all(|l| l.is_finite()));
    assert!(stats.shard_watermarks.iter().sum::<u64>() > 0);
}

/// The same end-to-end run with every shard and the coordinator fronted
/// by the epoll reactor ([`Transport::Reactor`]) and the v2 compressed
/// codec on (DESIGN.md §14): unchanged workers and learner clients,
/// identical training outcome.
#[test]
fn apex_over_reactor_transport_trains_end_to_end() {
    let config = NetApexConfig {
        agent: tiny_agent(),
        env: EnvSpec::Random { shape: vec![4], actions: 2, episode_len: 20 },
        num_workers: 2,
        envs_per_worker: 2,
        task_size: 32,
        num_shards: 2,
        weight_sync_interval: 4,
        run_duration: Duration::from_secs(30),
        max_updates: Some(12),
        rpc_deadline: Duration::from_secs(5),
        launch: LaunchMode::Thread,
        shard_proxy: None,
        transport: Transport::Reactor,
        compression: true,
        elastic: None,
        recorder: Recorder::disabled(),
    };
    let stats = run_apex_net(config).unwrap();
    assert_eq!(stats.updates, 12);
    assert!(stats.env_frames > 0, "no heartbeats reached the coordinator");
    assert!(stats.samples_collected > 0);
    assert_eq!(stats.workers_clean, 2, "workers did not stop cleanly");
    assert!(stats.losses.iter().all(|l| l.is_finite()));
    assert!(stats.shard_watermarks.iter().sum::<u64>() > 0);
}

/// The full telemetry plane over real sockets (thread-mode workers run
/// the exact process-mode loop): worker snapshots fold into the cluster
/// registry, GET_TELEMETRY serves the report, worker trace dumps arrive
/// via PUSH_TRACE, and the merged Chrome trace stitches the processes.
#[test]
fn telemetry_plane_folds_workers_and_merges_traces() {
    let config = NetApexConfig {
        agent: tiny_agent(),
        env: EnvSpec::Random { shape: vec![4], actions: 2, episode_len: 20 },
        num_workers: 2,
        envs_per_worker: 2,
        task_size: 32,
        num_shards: 2,
        weight_sync_interval: 4,
        run_duration: Duration::from_secs(30),
        max_updates: Some(12),
        rpc_deadline: Duration::from_secs(5),
        launch: LaunchMode::Thread,
        shard_proxy: None,
        transport: Transport::default(),
        compression: false,
        elastic: None,
        recorder: Recorder::wall(),
    };
    let stats = run_apex_net(config).unwrap();
    assert_eq!(stats.updates, 12);
    assert_eq!(stats.workers_clean, 2);

    let report = stats.telemetry_dump.expect("GET_TELEMETRY answered");
    assert!(report.contains("worker-0"), "missing worker section:\n{}", report);
    assert!(report.contains("worker-1"), "missing worker section:\n{}", report);
    assert!(report.contains("learner"), "missing learner section:\n{}", report);
    assert!(report.contains("worker.mailbox_depth"), "missing mailbox gauge:\n{}", report);
    assert!(report.contains("learner.update_rate"), "missing update-rate gauge:\n{}", report);
    assert!(report.contains("net.bytes_tx"), "missing wire accounting:\n{}", report);

    let trace = stats.merged_trace.expect("merged trace rendered");
    assert!(trace.contains("\"coordinator\""), "missing parent row:\n{}", &trace[..500]);
    assert!(trace.contains("\"worker-0\""), "missing worker row");
    assert!(trace.contains("\"worker-1\""), "missing worker row");
    assert!(trace.contains("worker.collect"), "missing worker-side span");
    assert!(trace.contains("rpc.serve.heartbeat"), "missing server handler span");
    // Flow events stitch client call spans to server handler spans.
    assert!(trace.contains("\"ph\":\"s\""), "missing flow start events");
    assert!(trace.contains("\"ph\":\"f\""), "missing flow finish events");
}

#[test]
fn proxy_draws_are_pure_and_seed_sensitive() {
    let a = FaultProxyConfig { seed: 9, drop_rate: 0.3, ..FaultProxyConfig::default() };
    let b = FaultProxyConfig { seed: 9, drop_rate: 0.3, ..FaultProxyConfig::default() };
    let c = FaultProxyConfig { seed: 10, drop_rate: 0.3, ..FaultProxyConfig::default() };
    let mut same = 0;
    let mut diff = 0;
    let mut hits = 0;
    for conn in 0..20u64 {
        for chunk in 0..50u64 {
            for dir in [Direction::Up, Direction::Down] {
                let da = a.draw(a.drop_rate, dir, conn, chunk);
                assert_eq!(da, b.draw(b.drop_rate, dir, conn, chunk), "same seed, same draw");
                // Repeated evaluation is stateless.
                assert_eq!(da, a.draw(a.drop_rate, dir, conn, chunk));
                if da == c.draw(c.drop_rate, dir, conn, chunk) {
                    same += 1
                } else {
                    diff += 1
                }
                if da {
                    hits += 1
                }
            }
        }
    }
    assert!(hits > 0, "a 30% rate never fired in 2000 draws");
    assert!(diff > 0, "different seeds produced identical fault patterns");
    assert!(same > 0);
}

const ECHO: u16 = 1;

struct Echo;
impl RpcService for Echo {
    fn call(&self, _method: u16, body: &[u8]) -> Result<Vec<u8>, RlError> {
        Ok(body.to_vec())
    }
}

#[test]
fn severed_proxy_connection_exercises_reconnect() {
    let recorder = Recorder::wall();
    let server = RpcServer::spawn("echo", Arc::new(Echo), recorder.clone()).unwrap();
    // Connection serial 0 is cut outright (a scheduled partition);
    // serial 1 passes cleanly.
    let proxy = FaultProxy::spawn(
        server.addr(),
        FaultProxyConfig { seed: 1, cut_connections: vec![0], ..FaultProxyConfig::default() },
        recorder.clone(),
    )
    .unwrap();
    let mut client = RpcClient::connect("echo-via-proxy", proxy.addr(), &recorder).unwrap();
    let err = client.call(ECHO, b"cut", Some(Duration::from_secs(2))).unwrap_err();
    assert!(
        matches!(err, RlError::Io { .. } | RlError::DeadlineExpired { .. }),
        "partitioned call must fail, got {err}"
    );
    assert_eq!(proxy.drops(), 1);
    // Next call reconnects through the healed proxy and succeeds.
    let reply = client.call(ECHO, b"healed", Some(Duration::from_secs(2))).unwrap();
    assert_eq!(reply, b"healed");
    assert_eq!(recorder.counter("net.reconnects").value(), 1);
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn delaying_proxy_slows_calls_without_corrupting_them() {
    let recorder = Recorder::wall();
    let server = RpcServer::spawn("echo", Arc::new(Echo), recorder.clone()).unwrap();
    let proxy = FaultProxy::spawn(
        server.addr(),
        FaultProxyConfig {
            seed: 2,
            delay_rate: 1.0,
            delay: Duration::from_millis(40),
            ..FaultProxyConfig::default()
        },
        recorder.clone(),
    )
    .unwrap();
    let mut client = RpcClient::connect("echo-delayed", proxy.addr(), &recorder).unwrap();
    let t0 = std::time::Instant::now();
    let reply = client.call(ECHO, b"slow but intact", None).unwrap();
    assert_eq!(reply, b"slow but intact");
    assert!(t0.elapsed() >= Duration::from_millis(40), "delay was not applied");
    assert!(proxy.delays() >= 1);
    proxy.shutdown();
    server.shutdown();
}

/// Idle eviction of coordinator delta state forces a clean
/// full-snapshot resync: the subscriber keeps getting correct weights,
/// the coordinator's memory stays bounded, and the post-eviction
/// response is a full snapshot (visibly larger on the wire than the
/// delta it replaces).
#[test]
fn idle_eviction_forces_full_snapshot_resync() {
    use rlgraph_net::codec::{dequantized_snapshot, CodecProfile, TensorEnc};

    let recorder = Recorder::wall();
    let hub = Arc::new(WeightHub::new());
    let stop = Arc::new(AtomicBool::new(false));
    let service = Arc::new(
        CoordService::new(hub.clone(), stop.clone())
            .with_delta_idle_window(Duration::from_millis(40))
            .with_recorder(&recorder),
    );
    let server = RpcServer::spawn("coord", service, recorder.clone()).unwrap();
    let mut client = CoordClient::connect(server.addr(), &recorder).unwrap();
    client.set_codec(CodecProfile::COMPRESSED);

    // Varied weights so LZ cannot collapse a full snapshot to delta
    // size (the wire-size comparison below depends on it).
    let mut seed = 9u64;
    let mut vals: Vec<f32> = (0..256)
        .map(|_| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        })
        .collect();
    let weights =
        |vals: &[f32]| vec![("w".to_string(), Tensor::from_vec(vals.to_vec(), &[256]).unwrap())];

    let rx = recorder.counter("net.bytes_rx");

    // First contact: full snapshot, subscriber tracked.
    hub.publish(weights(&vals));
    let snap1 = client.get_weights(0).unwrap().expect("published");
    assert_eq!(snap1.version, 1);
    let tracked = recorder.gauge("net.coord.delta_state_bytes").value();
    assert!(tracked > 0.0, "subscriber state not tracked: {} bytes", tracked);

    // Small move while tracked: the delta path serves it.
    vals[3] += 1.0;
    hub.publish(weights(&vals));
    let before = rx.value();
    let snap2 = client.get_weights(snap1.version).unwrap().expect("moved");
    let delta_wire = rx.value() - before;
    assert_eq!(snap2.version, 2);
    let want = dequantized_snapshot(
        &rlgraph_dist::WeightsSnapshot { version: 2, weights: weights(&vals) },
        TensorEnc::F16,
    );
    assert_eq!(snap2.weights, want.weights, "delta-applied weights diverge");

    // Idle past the window, then the same small move: the sweep on the
    // next serve has evicted this subscriber, so it must get a clean
    // full snapshot — correct values, and full-size on the wire.
    std::thread::sleep(Duration::from_millis(90));
    vals[200] += 1.0;
    hub.publish(weights(&vals));
    let before = rx.value();
    let snap3 = client.get_weights(snap2.version).unwrap().expect("moved");
    let full_wire = rx.value() - before;
    assert_eq!(snap3.version, 3);
    let want = dequantized_snapshot(
        &rlgraph_dist::WeightsSnapshot { version: 3, weights: weights(&vals) },
        TensorEnc::F16,
    );
    assert_eq!(snap3.weights, want.weights, "post-eviction resync diverges");
    assert!(
        full_wire > delta_wire + 100,
        "expected a full snapshot after eviction, but the response ({} wire bytes) \
         is delta-sized (delta was {})",
        full_wire,
        delta_wire
    );

    // The resync re-tracked the subscriber: the next move deltas again.
    vals[7] += 1.0;
    hub.publish(weights(&vals));
    let before = rx.value();
    let snap4 = client.get_weights(snap3.version).unwrap().expect("moved");
    let redelta_wire = rx.value() - before;
    assert_eq!(snap4.version, 4);
    assert!(
        redelta_wire < full_wire,
        "subscriber was not re-tracked after the full resync ({} vs {})",
        redelta_wire,
        full_wire
    );
    server.shutdown();
}
