//! Integration tests for the elastic cluster plane (DESIGN.md §16):
//! a scripted scale-up/down through the real net runtime, and the
//! crash path — a worker killed mid-run is evicted by missed-beat
//! timeout, its replacement rejoins at a bumped generation, the zombie
//! generation is rejected over the wire, and no transition is lost.

use rlgraph_agents::{Backend, DqnConfig};
use rlgraph_core::RlError;
use rlgraph_dist::sync::WeightHub;
use rlgraph_net::{
    run_apex_net, CoordClient, CoordService, ElasticConfig, EnvSpec, Heartbeat, LaunchMode,
    NetApexConfig, RpcServer, ShardClient, ShardService, WorkerSpec,
};
use rlgraph_nn::{Activation, NetworkSpec};
use rlgraph_obs::Recorder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_agent() -> DqnConfig {
    DqnConfig {
        backend: Backend::Static,
        network: NetworkSpec::mlp(&[8], Activation::Tanh),
        memory_capacity: 512,
        batch_size: 8,
        n_step: 2,
        target_sync_every: 50,
        seed: 11,
        ..DqnConfig::default()
    }
}

/// Scripted elasticity through the full runtime: the fleet starts at
/// 2, grows to 4, shrinks back to 2 — all mid-run, with membership
/// tracked and retires clean — and every sample a worker ever reported
/// is present in a shard (zero lost transitions).
#[test]
fn scripted_schedule_resizes_the_fleet_without_losing_transitions() {
    let config = NetApexConfig::builder()
        .agent(tiny_agent())
        .env(EnvSpec::Random { shape: vec![4], actions: 2, episode_len: 20 })
        .num_workers(2)
        .envs_per_worker(2)
        .task_size(32)
        .num_shards(2)
        .weight_sync_interval(4)
        .run_duration(Duration::from_secs(6))
        .rpc_deadline(Duration::from_secs(5))
        .launch(LaunchMode::Thread)
        .elastic(Some(ElasticConfig {
            min_workers: 1,
            max_workers: 4,
            schedule: vec![(Duration::from_millis(700), 4), (Duration::from_millis(2500), 2)],
            ..ElasticConfig::default()
        }))
        .build()
        .unwrap();
    let stats = run_apex_net(config).unwrap();

    assert!(stats.updates > 0, "learner never trained");
    assert!(stats.samples_collected > 0);
    // The schedule actually moved the pool: up to 4 and back to 2.
    let peaks: Vec<usize> = stats.scale_events.iter().map(|&(_, n)| n).collect();
    assert!(peaks.contains(&4), "fleet never reached 4 workers: {:?}", stats.scale_events);
    assert_eq!(*peaks.last().unwrap(), 2, "fleet did not shrink back: {:?}", stats.scale_events);
    // Membership churned: 4 joins + 2 retires at minimum.
    assert!(stats.cluster_epoch >= 6, "epoch {} too low", stats.cluster_epoch);
    assert_eq!(stats.evictions, 0, "clean retires must not count as evictions");
    // The trace sampled throughout the run and saw the wide fleet.
    assert!(!stats.throughput_trace.is_empty());
    assert!(stats.throughput_trace.iter().any(|p| p.workers == 4));
    // Zero lost transitions: everything workers reported via
    // heartbeats landed in a shard first (insert precedes beat).
    let inserted: u64 = stats.shard_watermarks.iter().sum();
    assert!(
        inserted >= stats.samples_collected,
        "lost transitions: {} inserted < {} reported",
        inserted,
        stats.samples_collected
    );
}

/// The crash path against real services: a worker that dies between
/// insert and heartbeat is evicted by missed-beat timeout, a
/// replacement at a bumped generation rejoins, a zombie beat from the
/// dead incarnation is rejected over the wire with the typed
/// [`RlError::StaleGeneration`], and the shard watermarks still cover
/// every coordinator-reported sample.
#[test]
fn killed_worker_is_evicted_and_a_zombie_generation_is_rejected() {
    let recorder = Recorder::disabled();
    let hub = Arc::new(WeightHub::new());
    let stop = Arc::new(AtomicBool::new(false));
    let coord_service = Arc::new(
        CoordService::new(hub, stop.clone()).with_beat_timeout(Duration::from_millis(300)),
    );
    let coord = RpcServer::spawn("coord", coord_service.clone(), recorder.clone()).unwrap();
    let mut shards = Vec::new();
    for i in 0..2 {
        shards.push(
            RpcServer::spawn(
                &format!("shard-{}", i),
                Arc::new(ShardService::new(4096, 0.6, i)),
                recorder.clone(),
            )
            .unwrap(),
        );
    }
    let spec = WorkerSpec {
        worker: 0,
        num_workers: 2,
        agent: tiny_agent(),
        env: EnvSpec::Random { shape: vec![4], actions: 2, episode_len: 20 },
        envs_per_worker: 2,
        task_size: 16,
        coord_addr: coord.addr().to_string(),
        shard_addrs: shards.iter().map(|s| s.addr().to_string()).collect(),
        rpc_deadline_ms: 5000,
        telemetry: false,
        compression: false,
        generation: 1,
        die_after_tasks: Some(2),
        task_throttle_ms: 0,
    };

    // Incarnation 1: joins, completes 2 tasks, dies after the second
    // insert *without* beating for it and without a LEAVE.
    let doomed = spec.clone();
    let crash = std::thread::spawn(move || rlgraph_net::run_worker(&doomed));
    assert!(
        matches!(crash.join().unwrap(), Err(RlError::ActorCrashed { .. })),
        "worker must die via the crash hook"
    );
    assert_eq!(coord_service.membership_view().alive, vec![0], "join must have registered");

    // Liveness: the sweep alone must discover the death.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let evicted = coord_service.sweep_membership();
        if evicted == vec![0] {
            break;
        }
        assert!(evicted.is_empty(), "unexpected evictions: {:?}", evicted);
        assert!(Instant::now() < deadline, "worker 0 was never evicted");
        std::thread::sleep(Duration::from_millis(20));
    }
    let epoch_after_evict = coord_service.membership_view().epoch;
    assert!(coord_service.membership_view().alive.is_empty());

    // Zero loss across the crash: the un-beaten task is *extra* data
    // in the shards, never missing data.
    let mut watermarks = 0u64;
    for (i, s) in shards.iter().enumerate() {
        let mut c = ShardClient::connect(&format!("shard-{}", i), s.addr(), &recorder).unwrap();
        watermarks += c.watermark().unwrap();
    }
    let progress = coord_service.progress();
    assert!(
        watermarks >= progress.samples,
        "lost transitions: {} inserted < {} reported",
        watermarks,
        progress.samples
    );
    assert!(watermarks > 0, "the crashed worker inserted nothing");

    // Incarnation 2 rejoins at the same slot with a bumped generation
    // and runs until told to stop.
    let mut respawned = spec;
    respawned.generation = 2;
    respawned.die_after_tasks = None;
    let replacement = std::thread::spawn(move || rlgraph_net::run_worker(&respawned));
    let deadline = Instant::now() + Duration::from_secs(10);
    while coord_service.membership_view().generations != vec![(0, 2)] {
        assert!(Instant::now() < deadline, "replacement never rejoined");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(coord_service.membership_view().epoch > epoch_after_evict);

    // The zombie speaks: a beat from dead incarnation 1 must come back
    // as the typed StaleGeneration error, not fold into the successor.
    let mut zombie = CoordClient::connect(coord.addr(), &recorder).unwrap();
    let beat =
        Heartbeat { worker: 0, frames: 640, samples: 640, generation: 1, ..Heartbeat::default() };
    match zombie.heartbeat(&beat).unwrap_err() {
        RlError::StaleGeneration { member, held, presented } => {
            assert_eq!((member, held, presented), (0, 2, 1));
        }
        other => panic!("expected StaleGeneration over the wire, got {:?}", other),
    }
    // ... and its numbers were NOT folded into progress.
    assert!(coord_service.progress().env_frames < 640 + progress.env_frames);

    stop.store(true, Ordering::Relaxed);
    assert!(replacement.join().unwrap().is_ok(), "replacement must exit cleanly on stop");
    let final_progress = coord_service.progress();
    let mut final_watermarks = 0u64;
    for (i, s) in shards.iter().enumerate() {
        let mut c = ShardClient::connect(&format!("shard-{}", i), s.addr(), &recorder).unwrap();
        final_watermarks += c.watermark().unwrap();
    }
    assert!(final_watermarks >= final_progress.samples);
    for s in shards {
        s.shutdown();
    }
    coord.shutdown();
}
