//! Parameter initialisation.

use crate::spec::ParamInit;
use rlgraph_tensor::Tensor;

/// Materialises an initial value for a parameter.
pub fn initialize<R: rand::Rng>(init: &ParamInit, shape: &[usize], rng: &mut R) -> Tensor {
    match init {
        ParamInit::XavierUniform { fan_in, fan_out } => {
            let a = (6.0f32 / (*fan_in as f32 + *fan_out as f32)).sqrt();
            Tensor::rand_uniform(shape, -a, a, rng)
        }
        ParamInit::HeUniform { fan_in } => {
            let a = (6.0f32 / *fan_in as f32).sqrt();
            Tensor::rand_uniform(shape, -a, a, rng)
        }
        ParamInit::Constant(v) => Tensor::full(shape, *v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let t = initialize(&ParamInit::XavierUniform { fan_in: 10, fan_out: 10 }, &[100], &mut rng);
        let a = (6.0f32 / 20.0).sqrt();
        assert!(t.as_f32().unwrap().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn he_within_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let t = initialize(&ParamInit::HeUniform { fan_in: 6 }, &[100], &mut rng);
        assert!(t.as_f32().unwrap().iter().all(|&x| x.abs() <= 1.0));
    }

    #[test]
    fn constant_fill() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let t = initialize(&ParamInit::Constant(0.5), &[3], &mut rng);
        assert_eq!(t.as_f32().unwrap(), &[0.5, 0.5, 0.5]);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(7);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(7);
        let init = ParamInit::XavierUniform { fan_in: 4, fan_out: 4 };
        assert_eq!(initialize(&init, &[8], &mut r1), initialize(&init, &[8], &mut r2));
    }
}
