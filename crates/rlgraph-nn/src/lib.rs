//! Backend-agnostic neural-network building blocks for rlgraph.
//!
//! Layers are *parameterised pure functions over an
//! [`OpEmitter`](rlgraph_tensor::OpEmitter)*: the same forward definition
//! emits static-graph nodes when driven by a `Graph` and computes eagerly
//! when driven by a `Tape`. Parameter shapes and initial values are
//! declared separately ([`LayerSpec::params`]) so each backend can create
//! its variables wherever it stores state — the separation the RLgraph
//! paper's build phases require (variables are created only once input
//! spaces are known, §3.3).
//!
//! * [`LayerSpec`]/[`NetworkSpec`] — serde-serialisable layer configs
//!   (JSON network definitions, paper §3.4).
//! * [`forward`] — functional forward builders (dense, conv2d, LSTM step,
//!   dueling head).
//! * [`init`] — Xavier/He/constant initializers.
//! * [`optim`] — SGD/momentum/RMSProp/Adam update math emitted as ops.

pub mod forward;
pub mod init;
pub mod optim;
pub mod spec;

pub use forward::{dense, dueling_combine, lstm_step, network_forward, LstmState};
pub use optim::{adam_step, momentum_step, rmsprop_step, sgd_step, OptimizerSpec};
pub use spec::{Activation, LayerSpec, NetworkSpec, ParamDef, ParamInit};
