//! Functional forward builders, generic over the backend via [`OpEmitter`].
//!
//! The same function emits static-graph nodes (when the emitter is a
//! `Graph`) or computes eagerly (when it is a `Tape`) — one forward
//! definition per layer, two execution paradigms.

use crate::spec::{Activation, LayerSpec, NetworkSpec};
use rlgraph_tensor::{tensor_err, FusedAct, OpEmitter, OpKind, Result};

/// Applies an activation.
///
/// # Errors
///
/// Propagates emitter errors.
pub fn activate<E: OpEmitter>(em: &mut E, x: E::Ref, act: Activation) -> Result<E::Ref> {
    match act {
        Activation::Linear => Ok(x),
        Activation::Relu => em.emit(OpKind::Relu, &[x]),
        Activation::Tanh => em.emit(OpKind::Tanh, &[x]),
        Activation::Sigmoid => em.emit(OpKind::Sigmoid, &[x]),
    }
}

fn fused_act(act: Activation) -> FusedAct {
    match act {
        Activation::Linear => FusedAct::Linear,
        Activation::Relu => FusedAct::Relu,
        Activation::Tanh => FusedAct::Tanh,
        Activation::Sigmoid => FusedAct::Sigmoid,
    }
}

/// Fully connected layer: `act(x @ w + b)` with `x [b, in]`, `w [in, out]`,
/// `b [out]`. Bias add and activation are emitted as one fused
/// [`OpKind::BiasActivation`] node (bit-identical to the unfused pair).
///
/// # Errors
///
/// Propagates emitter errors.
pub fn dense<E: OpEmitter>(
    em: &mut E,
    x: E::Ref,
    weight: E::Ref,
    bias: E::Ref,
    act: Activation,
) -> Result<E::Ref> {
    let mm = em.emit(OpKind::MatMul, &[x, weight])?;
    em.emit(OpKind::BiasActivation { act: fused_act(act) }, &[mm, bias])
}

/// Convolution layer: `act(conv2d(x, f) + b)` with NCHW `x`, OIHW `f`, and
/// `b [o,1,1]` broadcast over batch and space. Bias add and activation are
/// emitted as one fused [`OpKind::BiasActivation`] node.
///
/// # Errors
///
/// Propagates emitter errors.
pub fn conv2d<E: OpEmitter>(
    em: &mut E,
    x: E::Ref,
    filters: E::Ref,
    bias: E::Ref,
    stride: usize,
    padding: usize,
    act: Activation,
) -> Result<E::Ref> {
    let c = em.emit(OpKind::Conv2d { stride, padding }, &[x, filters])?;
    em.emit(OpKind::BiasActivation { act: fused_act(act) }, &[c, bias])
}

/// Recurrent state of an LSTM.
#[derive(Debug, Clone, Copy)]
pub struct LstmState<R: Copy> {
    /// hidden state `[b, units]`
    pub h: R,
    /// cell state `[b, units]`
    pub c: R,
}

/// One LSTM step. Gate layout along the `4h` axis: input, forget, cell,
/// output.
///
/// # Errors
///
/// Propagates emitter errors.
pub fn lstm_step<E: OpEmitter>(
    em: &mut E,
    x_t: E::Ref,
    state: LstmState<E::Ref>,
    w_ih: E::Ref,
    w_hh: E::Ref,
    bias: E::Ref,
    units: usize,
) -> Result<LstmState<E::Ref>> {
    let xm = em.emit(OpKind::MatMul, &[x_t, w_ih])?;
    let hm = em.emit(OpKind::MatMul, &[state.h, w_hh])?;
    let s = em.emit(OpKind::Add, &[xm, hm])?;
    let z = em.emit(OpKind::Add, &[s, bias])?;
    let gate = |em: &mut E, idx: usize| {
        em.emit(OpKind::Slice { axis: 1, start: idx * units, len: units }, &[z])
    };
    let i_raw = gate(em, 0)?;
    let f_raw = gate(em, 1)?;
    let g_raw = gate(em, 2)?;
    let o_raw = gate(em, 3)?;
    let i = em.emit(OpKind::Sigmoid, &[i_raw])?;
    let f = em.emit(OpKind::Sigmoid, &[f_raw])?;
    let g = em.emit(OpKind::Tanh, &[g_raw])?;
    let o = em.emit(OpKind::Sigmoid, &[o_raw])?;
    let fc = em.emit(OpKind::Mul, &[f, state.c])?;
    let ig = em.emit(OpKind::Mul, &[i, g])?;
    let c_new = em.emit(OpKind::Add, &[fc, ig])?;
    let ct = em.emit(OpKind::Tanh, &[c_new])?;
    let h_new = em.emit(OpKind::Mul, &[o, ct])?;
    Ok(LstmState { h: h_new, c: c_new })
}

/// Statically unrolled LSTM over `[b, t, in]`, returning `[b, t, units]`
/// and the final state.
///
/// # Errors
///
/// Propagates emitter errors.
#[allow(clippy::too_many_arguments)]
pub fn lstm_unroll<E: OpEmitter>(
    em: &mut E,
    x: E::Ref,
    time_steps: usize,
    initial: LstmState<E::Ref>,
    w_ih: E::Ref,
    w_hh: E::Ref,
    bias: E::Ref,
    units: usize,
) -> Result<(E::Ref, LstmState<E::Ref>)> {
    if time_steps == 0 {
        return Err(tensor_err!("lstm_unroll needs at least one time step"));
    }
    let mut state = initial;
    let mut outputs = Vec::with_capacity(time_steps);
    for t in 0..time_steps {
        let sl = em.emit(OpKind::Slice { axis: 1, start: t, len: 1 }, &[x])?;
        let x_t = em.emit(OpKind::Squeeze { axis: 1 }, &[sl])?;
        state = lstm_step(em, x_t, state, w_ih, w_hh, bias, units)?;
        outputs.push(state.h);
    }
    let stacked = em.emit(OpKind::Stack { axis: 1 }, &outputs)?;
    Ok((stacked, state))
}

/// Dueling-head combination (paper's evaluation architecture):
/// `q = v + a - mean(a, actions)`, with `v [b,1]` and `a [b,n]`.
///
/// # Errors
///
/// Propagates emitter errors.
pub fn dueling_combine<E: OpEmitter>(
    em: &mut E,
    value: E::Ref,
    advantage: E::Ref,
) -> Result<E::Ref> {
    let mean_a = em.emit(OpKind::Mean { axes: Some(vec![1]), keep_dims: true }, &[advantage])?;
    let centered = em.emit(OpKind::Sub, &[advantage, mean_a])?;
    em.emit(OpKind::Add, &[value, centered])
}

/// Applies a [`NetworkSpec`] to `x [b, ...core]`, consuming `params` in
/// [`NetworkSpec::all_params`] order (one `Vec` per layer).
///
/// LSTM layers are not supported here (they need a time axis); use
/// [`lstm_unroll`] in a time-aware head instead.
///
/// # Errors
///
/// Errors on parameter arity mismatch or unsupported layers.
pub fn network_forward<E: OpEmitter>(
    em: &mut E,
    x: E::Ref,
    spec: &NetworkSpec,
    params: &[Vec<E::Ref>],
) -> Result<E::Ref> {
    if params.len() != spec.layers.len() {
        return Err(tensor_err!(
            "network has {} layers but {} parameter sets were provided",
            spec.layers.len(),
            params.len()
        ));
    }
    let mut h = x;
    for (layer, ps) in spec.layers.iter().zip(params) {
        h = match layer {
            LayerSpec::Dense { activation, .. } => {
                let [w, b] = ps[..] else {
                    return Err(tensor_err!("dense layer expects 2 params, got {}", ps.len()));
                };
                dense(em, h, w, b, *activation)?
            }
            LayerSpec::Conv2d { stride, padding, activation, .. } => {
                let [f, b] = ps[..] else {
                    return Err(tensor_err!("conv2d layer expects 2 params, got {}", ps.len()));
                };
                conv2d(em, h, f, b, *stride, *padding, *activation)?
            }
            LayerSpec::Flatten => flatten_keep_batch(em, h)?,
            LayerSpec::Lstm { .. } => {
                return Err(tensor_err!(
                    "lstm layers require a time axis; use lstm_unroll in a recurrent head"
                ));
            }
        };
    }
    Ok(h)
}

/// Flattens all dimensions after the batch axis. Works with runtime batch
/// sizes by folding into `[-1, 1]` rows per element and regrouping against
/// the input's leading dim.
fn flatten_keep_batch<E: OpEmitter>(em: &mut E, x: E::Ref) -> Result<E::Ref> {
    // [b, rest...] -> flat [b*rest] -> unfold first dim like x's batch
    // (n = 1 leading dim), giving [b, rest_flat].
    let flat = em.emit(OpKind::Reshape { shape: vec![-1] }, &[x])?;
    let two_d = em.emit(OpKind::UnfoldLike { n: 1 }, &[flat, x])?;
    Ok(two_d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlgraph_tensor::{Tape, Tensor};

    #[test]
    fn dense_computes_affine() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap(), false);
        let w = tape.leaf(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap(), false);
        let b = tape.leaf(Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap(), false);
        let y = dense(&mut tape, x, w, b, Activation::Linear).unwrap();
        assert_eq!(tape.value(y).as_f32().unwrap(), &[11.0, 22.0]);
        let yr = dense(&mut tape, x, w, b, Activation::Relu).unwrap();
        assert_eq!(tape.value(yr).as_f32().unwrap(), &[11.0, 22.0]);
    }

    #[test]
    fn conv_bias_broadcasts() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[1, 1, 3, 3]), false);
        let f = tape.leaf(Tensor::ones(&[2, 1, 2, 2]), false);
        let b = tape.leaf(Tensor::from_vec(vec![0.5, -0.5], &[2, 1, 1]).unwrap(), false);
        let y = conv2d(&mut tape, x, f, b, 1, 0, Activation::Linear).unwrap();
        let v = tape.value(y);
        assert_eq!(v.shape(), &[1, 2, 2, 2]);
        assert_eq!(v.get_f32(&[0, 0, 0, 0]).unwrap(), 4.5);
        assert_eq!(v.get_f32(&[0, 1, 0, 0]).unwrap(), 3.5);
    }

    #[test]
    fn lstm_step_shapes_and_bounds() {
        let mut tape = Tape::new();
        let b = 2;
        let (input, units) = (3, 4);
        let x = tape.leaf(Tensor::full(&[b, input], 0.5), false);
        let h0 = tape.leaf(Tensor::zeros(&[b, units], rlgraph_tensor::DType::F32), false);
        let c0 = tape.leaf(Tensor::zeros(&[b, units], rlgraph_tensor::DType::F32), false);
        let w_ih = tape.leaf(Tensor::full(&[input, 4 * units], 0.1), false);
        let w_hh = tape.leaf(Tensor::full(&[units, 4 * units], 0.1), false);
        let bias = tape.leaf(Tensor::zeros(&[4 * units], rlgraph_tensor::DType::F32), false);
        let s =
            lstm_step(&mut tape, x, LstmState { h: h0, c: c0 }, w_ih, w_hh, bias, units).unwrap();
        let h = tape.value(s.h);
        assert_eq!(h.shape(), &[b, units]);
        // h = o * tanh(c) is bounded by (-1, 1)
        assert!(h.as_f32().unwrap().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn lstm_unroll_stacks_time() {
        let mut tape = Tape::new();
        let (b, t, input, units) = (2, 3, 2, 2);
        let x = tape.leaf(Tensor::full(&[b, t, input], 0.3), false);
        let h0 = tape.leaf(Tensor::zeros(&[b, units], rlgraph_tensor::DType::F32), false);
        let c0 = tape.leaf(Tensor::zeros(&[b, units], rlgraph_tensor::DType::F32), false);
        let w_ih = tape.leaf(Tensor::full(&[input, 4 * units], 0.2), false);
        let w_hh = tape.leaf(Tensor::full(&[units, 4 * units], 0.2), false);
        let bias = tape.leaf(Tensor::zeros(&[4 * units], rlgraph_tensor::DType::F32), false);
        let (ys, _last) =
            lstm_unroll(&mut tape, x, t, LstmState { h: h0, c: c0 }, w_ih, w_hh, bias, units)
                .unwrap();
        assert_eq!(tape.value(ys).shape(), &[b, t, units]);
        // state accumulates: later steps differ from the first
        let v = tape.value(ys);
        assert!(v.get_f32(&[0, 0, 0]).unwrap() != v.get_f32(&[0, 2, 0]).unwrap());
    }

    #[test]
    fn dueling_identity_when_centered() {
        let mut tape = Tape::new();
        let v = tape.leaf(Tensor::from_vec(vec![1.0], &[1, 1]).unwrap(), false);
        let a = tape.leaf(Tensor::from_vec(vec![1.0, -1.0], &[1, 2]).unwrap(), false);
        let q = dueling_combine(&mut tape, v, a).unwrap();
        // mean(a) = 0, so q = v + a
        assert_eq!(tape.value(q).as_f32().unwrap(), &[2.0, 0.0]);
    }

    #[test]
    fn network_forward_mlp() {
        use crate::init::initialize;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let spec = NetworkSpec::mlp(&[4, 2], Activation::Relu);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::rand_uniform(&[3, 6], -1.0, 1.0, &mut rng), false);
        let mut params = Vec::new();
        for (_i, defs) in spec.all_params(&[6]).unwrap() {
            let refs: Vec<_> = defs
                .iter()
                .map(|d| tape.leaf(initialize(&d.init, &d.shape, &mut rng), false))
                .collect();
            params.push(refs);
        }
        let y = network_forward(&mut tape, x, &spec, &params).unwrap();
        assert_eq!(tape.value(y).shape(), &[3, 2]);
    }

    #[test]
    fn network_forward_conv_then_dense() {
        use crate::init::initialize;
        use crate::spec::LayerSpec;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let spec = NetworkSpec::new(vec![
            LayerSpec::Conv2d {
                filters: 2,
                kernel: 3,
                stride: 1,
                padding: 1,
                activation: Activation::Relu,
            },
            LayerSpec::Flatten,
            LayerSpec::Dense { units: 3, activation: Activation::Linear },
        ]);
        let in_shape = [1usize, 4, 4];
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::rand_uniform(&[2, 1, 4, 4], -1.0, 1.0, &mut rng), false);
        let mut params = Vec::new();
        for (_i, defs) in spec.all_params(&in_shape).unwrap() {
            let refs: Vec<_> = defs
                .iter()
                .map(|d| tape.leaf(initialize(&d.init, &d.shape, &mut rng), false))
                .collect();
            params.push(refs);
        }
        let y = network_forward(&mut tape, x, &spec, &params).unwrap();
        assert_eq!(tape.value(y).shape(), &[2, 3]);
    }

    #[test]
    fn network_forward_param_arity_checked() {
        let spec = NetworkSpec::mlp(&[4], Activation::Relu);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[1, 2]), false);
        assert!(network_forward(&mut tape, x, &spec, &[]).is_err());
        assert!(network_forward(&mut tape, x, &spec, &[vec![x]]).is_err());
    }
}
