//! Layer and network specifications (serde-serialisable configs).

use rlgraph_tensor::{tensor_err, Result};

/// Activation applied after a parameterised layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Activation {
    /// no activation
    #[default]
    Linear,
    /// rectified linear
    Relu,
    /// hyperbolic tangent
    Tanh,
    /// logistic sigmoid
    Sigmoid,
}

/// How a parameter tensor is initialised.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ParamInit {
    /// Xavier/Glorot uniform: `U(-a, a)`, `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform {
        /// input fan
        fan_in: usize,
        /// output fan
        fan_out: usize,
    },
    /// He uniform: `U(-a, a)`, `a = sqrt(6 / fan_in)`.
    HeUniform {
        /// input fan
        fan_in: usize,
    },
    /// Constant fill.
    Constant(f32),
}

/// Declaration of one parameter tensor a layer needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDef {
    /// parameter name within the layer scope (`"weight"`, `"bias"`, …)
    pub name: String,
    /// tensor shape
    pub shape: Vec<usize>,
    /// initialisation scheme
    pub init: ParamInit,
}

/// One layer of a network.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum LayerSpec {
    /// Fully connected layer.
    Dense {
        /// output width
        units: usize,
        /// post-activation
        #[serde(default)]
        activation: Activation,
    },
    /// 2-D convolution over NCHW inputs.
    Conv2d {
        /// output channels
        filters: usize,
        /// square kernel size
        kernel: usize,
        /// spatial stride
        stride: usize,
        /// symmetric zero padding
        #[serde(default)]
        padding: usize,
        /// post-activation
        #[serde(default)]
        activation: Activation,
    },
    /// Flattens all but the batch dimension.
    Flatten,
    /// LSTM over the time dimension (input `[batch, time, features]`).
    Lstm {
        /// hidden width
        units: usize,
    },
}

impl LayerSpec {
    /// The output core shape for an input core shape (excluding batch and,
    /// for LSTM, time dimensions).
    ///
    /// # Errors
    ///
    /// Errors when the layer cannot consume the given shape.
    pub fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        match self {
            LayerSpec::Dense { units, .. } => {
                if input.len() != 1 {
                    return Err(tensor_err!(
                        "dense layer expects flat input, found {:?} (add a flatten layer)",
                        input
                    ));
                }
                Ok(vec![*units])
            }
            LayerSpec::Conv2d { filters, kernel, stride, padding, .. } => {
                if input.len() != 3 {
                    return Err(tensor_err!("conv2d expects [c,h,w] input, found {:?}", input));
                }
                let out = |d: usize| -> Result<usize> {
                    let padded = d + 2 * padding;
                    if padded < *kernel {
                        return Err(tensor_err!("conv kernel {} larger than input {}", kernel, d));
                    }
                    Ok((padded - kernel) / stride + 1)
                };
                Ok(vec![*filters, out(input[1])?, out(input[2])?])
            }
            LayerSpec::Flatten => Ok(vec![input.iter().product()]),
            LayerSpec::Lstm { units } => {
                if input.len() != 1 {
                    return Err(tensor_err!("lstm expects flat per-step input, found {:?}", input));
                }
                Ok(vec![*units])
            }
        }
    }

    /// Parameter declarations for this layer given its input core shape.
    ///
    /// # Errors
    ///
    /// Errors when the layer cannot consume the given shape.
    pub fn params(&self, input: &[usize]) -> Result<Vec<ParamDef>> {
        match self {
            LayerSpec::Dense { units, .. } => {
                let in_dim = match input {
                    [d] => *d,
                    _ => {
                        return Err(tensor_err!(
                            "dense layer expects flat input, found {:?}",
                            input
                        ))
                    }
                };
                Ok(vec![
                    ParamDef {
                        name: "weight".into(),
                        shape: vec![in_dim, *units],
                        init: ParamInit::XavierUniform { fan_in: in_dim, fan_out: *units },
                    },
                    ParamDef {
                        name: "bias".into(),
                        shape: vec![*units],
                        init: ParamInit::Constant(0.0),
                    },
                ])
            }
            LayerSpec::Conv2d { filters, kernel, .. } => {
                let c = match input {
                    [c, _, _] => *c,
                    _ => {
                        return Err(tensor_err!("conv2d expects [c,h,w] input, found {:?}", input))
                    }
                };
                let fan_in = c * kernel * kernel;
                Ok(vec![
                    ParamDef {
                        name: "filters".into(),
                        shape: vec![*filters, c, *kernel, *kernel],
                        init: ParamInit::HeUniform { fan_in },
                    },
                    ParamDef {
                        name: "bias".into(),
                        shape: vec![*filters, 1, 1],
                        init: ParamInit::Constant(0.0),
                    },
                ])
            }
            LayerSpec::Flatten => Ok(vec![]),
            LayerSpec::Lstm { units } => {
                let in_dim = match input {
                    [d] => *d,
                    _ => return Err(tensor_err!("lstm expects flat input, found {:?}", input)),
                };
                Ok(vec![
                    ParamDef {
                        name: "w_ih".into(),
                        shape: vec![in_dim, 4 * units],
                        init: ParamInit::XavierUniform { fan_in: in_dim, fan_out: 4 * units },
                    },
                    ParamDef {
                        name: "w_hh".into(),
                        shape: vec![*units, 4 * units],
                        init: ParamInit::XavierUniform { fan_in: *units, fan_out: 4 * units },
                    },
                    ParamDef {
                        name: "bias".into(),
                        shape: vec![4 * units],
                        init: ParamInit::Constant(0.0),
                    },
                ])
            }
        }
    }
}

/// An ordered stack of layers.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct NetworkSpec {
    /// the layers, applied in order
    pub layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// A network with the given layers.
    pub fn new(layers: Vec<LayerSpec>) -> Self {
        NetworkSpec { layers }
    }

    /// A small MLP: hidden dense layers with one activation each.
    pub fn mlp(hidden: &[usize], activation: Activation) -> Self {
        NetworkSpec {
            layers: hidden.iter().map(|&units| LayerSpec::Dense { units, activation }).collect(),
        }
    }

    /// The Atari-style conv stack from the paper's evaluation (3 conv
    /// layers), scaled by a width factor.
    pub fn atari_conv(width: usize) -> Self {
        NetworkSpec {
            layers: vec![
                LayerSpec::Conv2d {
                    filters: 8 * width,
                    kernel: 4,
                    stride: 2,
                    padding: 1,
                    activation: Activation::Relu,
                },
                LayerSpec::Conv2d {
                    filters: 16 * width,
                    kernel: 4,
                    stride: 2,
                    padding: 1,
                    activation: Activation::Relu,
                },
                LayerSpec::Conv2d {
                    filters: 16 * width,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                    activation: Activation::Relu,
                },
                LayerSpec::Flatten,
                LayerSpec::Dense { units: 64 * width, activation: Activation::Relu },
            ],
        }
    }

    /// Output core shape after all layers.
    ///
    /// # Errors
    ///
    /// Errors if any layer rejects its input shape.
    pub fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        let mut shape = input.to_vec();
        for layer in &self.layers {
            shape = layer.output_shape(&shape)?;
        }
        Ok(shape)
    }

    /// Per-layer parameter declarations: `(layer_index, defs)`.
    ///
    /// # Errors
    ///
    /// Errors if any layer rejects its input shape.
    pub fn all_params(&self, input: &[usize]) -> Result<Vec<(usize, Vec<ParamDef>)>> {
        let mut shape = input.to_vec();
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            out.push((i, layer.params(&shape)?));
            shape = layer.output_shape(&shape)?;
        }
        Ok(out)
    }

    /// Total number of scalar parameters for the given input core shape
    /// (e.g. to size weight-snapshot transfer budgets in serving/sync).
    ///
    /// # Errors
    ///
    /// Errors if any layer rejects its input shape.
    pub fn param_count(&self, input: &[usize]) -> Result<usize> {
        Ok(self
            .all_params(input)?
            .iter()
            .flat_map(|(_, defs)| defs.iter())
            .map(|d| d.shape.iter().product::<usize>())
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_shapes_and_params() {
        let l = LayerSpec::Dense { units: 32, activation: Activation::Relu };
        assert_eq!(l.output_shape(&[16]).unwrap(), vec![32]);
        assert!(l.output_shape(&[4, 4]).is_err());
        let ps = l.params(&[16]).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].shape, vec![16, 32]);
        assert_eq!(ps[1].shape, vec![32]);
    }

    #[test]
    fn conv_shapes() {
        let l = LayerSpec::Conv2d {
            filters: 8,
            kernel: 3,
            stride: 2,
            padding: 1,
            activation: Activation::Relu,
        };
        assert_eq!(l.output_shape(&[4, 16, 16]).unwrap(), vec![8, 8, 8]);
        let ps = l.params(&[4, 16, 16]).unwrap();
        assert_eq!(ps[0].shape, vec![8, 4, 3, 3]);
        assert_eq!(ps[1].shape, vec![8, 1, 1]);
        assert!(l.output_shape(&[16]).is_err());
    }

    #[test]
    fn flatten_and_lstm() {
        assert_eq!(LayerSpec::Flatten.output_shape(&[2, 3, 4]).unwrap(), vec![24]);
        assert!(LayerSpec::Flatten.params(&[2, 3]).unwrap().is_empty());
        let l = LayerSpec::Lstm { units: 8 };
        assert_eq!(l.output_shape(&[4]).unwrap(), vec![8]);
        let ps = l.params(&[4]).unwrap();
        assert_eq!(ps[0].shape, vec![4, 32]);
        assert_eq!(ps[1].shape, vec![8, 32]);
        assert_eq!(ps[2].shape, vec![32]);
    }

    #[test]
    fn network_shape_chain() {
        let net = NetworkSpec::new(vec![
            LayerSpec::Conv2d {
                filters: 4,
                kernel: 3,
                stride: 1,
                padding: 1,
                activation: Activation::Relu,
            },
            LayerSpec::Flatten,
            LayerSpec::Dense { units: 10, activation: Activation::Linear },
        ]);
        assert_eq!(net.output_shape(&[1, 8, 8]).unwrap(), vec![10]);
        let params = net.all_params(&[1, 8, 8]).unwrap();
        assert_eq!(params.len(), 3);
        assert!(params[1].1.is_empty());
    }

    #[test]
    fn mlp_and_atari_builders() {
        let mlp = NetworkSpec::mlp(&[32, 16], Activation::Tanh);
        assert_eq!(mlp.layers.len(), 2);
        assert_eq!(mlp.output_shape(&[8]).unwrap(), vec![16]);
        let atari = NetworkSpec::atari_conv(1);
        // 16x16 input runs through the stack
        assert_eq!(atari.output_shape(&[4, 16, 16]).unwrap(), vec![64]);
    }

    #[test]
    fn param_count_matches_hand_count() {
        let net = NetworkSpec::mlp(&[32, 16], Activation::Tanh);
        // dense(8→32): 8*32+32; dense(32→16): 32*16+16
        assert_eq!(net.param_count(&[8]).unwrap(), 8 * 32 + 32 + 32 * 16 + 16);
        assert!(NetworkSpec::new(vec![LayerSpec::Flatten]).param_count(&[4]).unwrap() == 0);
    }

    #[test]
    fn json_roundtrip() {
        let net = NetworkSpec::new(vec![
            LayerSpec::Dense { units: 64, activation: Activation::Relu },
            LayerSpec::Dense { units: 4, activation: Activation::Linear },
        ]);
        let json = serde_json::to_string(&net).unwrap();
        let back: NetworkSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, net);
        // hand-written JSON in the paper's declarative style
        let parsed: NetworkSpec = serde_json::from_str(
            r#"{"layers": [{"type": "dense", "units": 8, "activation": "relu"},
                           {"type": "flatten"}]}"#,
        )
        .unwrap();
        assert_eq!(parsed.layers.len(), 2);
    }
}
