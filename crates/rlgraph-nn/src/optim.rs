//! Optimizer update math, emitted as ops.
//!
//! Each `*_step` function expresses one parameter update as emitted ops and
//! returns the new slot states plus the weight delta. Backends persist the
//! slots their own way: the static graph assigns them to variables, the
//! define-by-run executor stores tensors in the optimizer component.

use rlgraph_tensor::{OpEmitter, OpKind, Result};

/// Which optimizer an agent uses, with its hyper-parameters
/// (serde-serialisable for JSON agent configs).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum OptimizerSpec {
    /// Plain stochastic gradient descent.
    Sgd {
        /// learning rate
        lr: f32,
    },
    /// SGD with classical momentum.
    Momentum {
        /// learning rate
        lr: f32,
        /// momentum coefficient
        momentum: f32,
    },
    /// RMSProp (as used by the paper's IMPALA configuration).
    RmsProp {
        /// learning rate
        lr: f32,
        /// moving-average decay
        decay: f32,
        /// numerical stabiliser
        epsilon: f32,
    },
    /// Adam (as used by the paper's Ape-X configuration).
    Adam {
        /// learning rate
        lr: f32,
        /// first-moment decay
        beta1: f32,
        /// second-moment decay
        beta2: f32,
        /// numerical stabiliser
        epsilon: f32,
    },
}

impl OptimizerSpec {
    /// Adam with the common defaults.
    pub fn adam(lr: f32) -> Self {
        OptimizerSpec::Adam { lr, beta1: 0.9, beta2: 0.999, epsilon: 1e-8 }
    }

    /// RMSProp with common defaults.
    pub fn rmsprop(lr: f32) -> Self {
        OptimizerSpec::RmsProp { lr, decay: 0.99, epsilon: 1e-6 }
    }

    /// Number of per-parameter slot tensors this optimizer maintains.
    pub fn num_slots(&self) -> usize {
        match self {
            OptimizerSpec::Sgd { .. } => 0,
            OptimizerSpec::Momentum { .. } | OptimizerSpec::RmsProp { .. } => 1,
            OptimizerSpec::Adam { .. } => 2,
        }
    }
}

/// Result of one optimizer step for one parameter.
#[derive(Debug, Clone)]
pub struct StepResult<R: Copy> {
    /// amount to subtract from the weight
    pub delta: R,
    /// updated slot states, in the same order as the inputs
    pub new_slots: Vec<R>,
}

/// SGD: `delta = lr * grad`.
///
/// # Errors
///
/// Propagates emitter errors.
pub fn sgd_step<E: OpEmitter>(em: &mut E, grad: E::Ref, lr: f32) -> Result<StepResult<E::Ref>> {
    let lr_c = em.scalar_const(lr);
    let delta = em.emit(OpKind::Mul, &[grad, lr_c])?;
    Ok(StepResult { delta, new_slots: vec![] })
}

/// Momentum: `v' = mu * v + grad; delta = lr * v'`.
///
/// # Errors
///
/// Propagates emitter errors.
pub fn momentum_step<E: OpEmitter>(
    em: &mut E,
    grad: E::Ref,
    velocity: E::Ref,
    lr: f32,
    momentum: f32,
) -> Result<StepResult<E::Ref>> {
    let mu = em.scalar_const(momentum);
    let scaled = em.emit(OpKind::Mul, &[velocity, mu])?;
    let v_new = em.emit(OpKind::Add, &[scaled, grad])?;
    let lr_c = em.scalar_const(lr);
    let delta = em.emit(OpKind::Mul, &[v_new, lr_c])?;
    Ok(StepResult { delta, new_slots: vec![v_new] })
}

/// RMSProp: `s' = d*s + (1-d)*g²; delta = lr * g / sqrt(s' + eps)`.
///
/// # Errors
///
/// Propagates emitter errors.
pub fn rmsprop_step<E: OpEmitter>(
    em: &mut E,
    grad: E::Ref,
    sq_avg: E::Ref,
    lr: f32,
    decay: f32,
    epsilon: f32,
) -> Result<StepResult<E::Ref>> {
    let d = em.scalar_const(decay);
    let omd = em.scalar_const(1.0 - decay);
    let g2 = em.emit(OpKind::Square, &[grad])?;
    let s_old = em.emit(OpKind::Mul, &[sq_avg, d])?;
    let s_inc = em.emit(OpKind::Mul, &[g2, omd])?;
    let s_new = em.emit(OpKind::Add, &[s_old, s_inc])?;
    let eps = em.scalar_const(epsilon);
    let s_eps = em.emit(OpKind::Add, &[s_new, eps])?;
    let denom = em.emit(OpKind::Sqrt, &[s_eps])?;
    let lr_c = em.scalar_const(lr);
    let lg = em.emit(OpKind::Mul, &[grad, lr_c])?;
    let delta = em.emit(OpKind::Div, &[lg, denom])?;
    Ok(StepResult { delta, new_slots: vec![s_new] })
}

/// Adam with bias correction driven by the step count `t` (1-based).
///
/// # Errors
///
/// Propagates emitter errors.
#[allow(clippy::too_many_arguments)]
pub fn adam_step<E: OpEmitter>(
    em: &mut E,
    grad: E::Ref,
    m: E::Ref,
    v: E::Ref,
    t: u64,
    lr: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
) -> Result<StepResult<E::Ref>> {
    let b1 = em.scalar_const(beta1);
    let omb1 = em.scalar_const(1.0 - beta1);
    let b2 = em.scalar_const(beta2);
    let omb2 = em.scalar_const(1.0 - beta2);
    let m_old = em.emit(OpKind::Mul, &[m, b1])?;
    let m_inc = em.emit(OpKind::Mul, &[grad, omb1])?;
    let m_new = em.emit(OpKind::Add, &[m_old, m_inc])?;
    let g2 = em.emit(OpKind::Square, &[grad])?;
    let v_old = em.emit(OpKind::Mul, &[v, b2])?;
    let v_inc = em.emit(OpKind::Mul, &[g2, omb2])?;
    let v_new = em.emit(OpKind::Add, &[v_old, v_inc])?;
    // Bias-corrected learning rate (scalar, computed host-side).
    let t = t.max(1) as i32;
    let corr = lr * (1.0 - beta2.powi(t)).sqrt() / (1.0 - beta1.powi(t));
    let corr_c = em.scalar_const(corr);
    let eps = em.scalar_const(epsilon);
    let sq = em.emit(OpKind::Sqrt, &[v_new])?;
    let denom = em.emit(OpKind::Add, &[sq, eps])?;
    let num = em.emit(OpKind::Mul, &[m_new, corr_c])?;
    let delta = em.emit(OpKind::Div, &[num, denom])?;
    Ok(StepResult { delta, new_slots: vec![m_new, v_new] })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlgraph_tensor::{Tape, Tensor};

    #[test]
    fn sgd_scales_gradient() {
        let mut tape = Tape::new();
        let g = tape.leaf(Tensor::from_vec(vec![2.0, -4.0], &[2]).unwrap(), false);
        let r = sgd_step(&mut tape, g, 0.5).unwrap();
        assert_eq!(tape.value(r.delta).as_f32().unwrap(), &[1.0, -2.0]);
        assert!(r.new_slots.is_empty());
    }

    #[test]
    fn momentum_accumulates() {
        let mut tape = Tape::new();
        let g = tape.leaf(Tensor::scalar(1.0), false);
        let v0 = tape.leaf(Tensor::scalar(0.0), false);
        let s1 = momentum_step(&mut tape, g, v0, 1.0, 0.9).unwrap();
        assert_eq!(tape.value(s1.delta).scalar_value().unwrap(), 1.0);
        let s2 = momentum_step(&mut tape, g, s1.new_slots[0], 1.0, 0.9).unwrap();
        assert!((tape.value(s2.delta).scalar_value().unwrap() - 1.9).abs() < 1e-6);
    }

    #[test]
    fn rmsprop_normalises_scale() {
        // With decay 0 the step is lr * g / sqrt(g² + eps) ≈ lr * sign(g).
        let mut tape = Tape::new();
        let g = tape.leaf(Tensor::from_vec(vec![100.0, -0.01], &[2]).unwrap(), false);
        let s = tape.leaf(Tensor::zeros(&[2], rlgraph_tensor::DType::F32), false);
        let r = rmsprop_step(&mut tape, g, s, 0.1, 0.0, 1e-8).unwrap();
        let d = tape.value(r.delta).as_f32().unwrap().to_vec();
        assert!((d[0] - 0.1).abs() < 1e-3);
        assert!((d[1] + 0.1).abs() < 1e-2);
    }

    #[test]
    fn adam_first_step_matches_reference() {
        // After one step from zero slots, delta ≈ lr * sign(g).
        let mut tape = Tape::new();
        let g = tape.leaf(Tensor::from_vec(vec![0.5, -3.0], &[2]).unwrap(), false);
        let m = tape.leaf(Tensor::zeros(&[2], rlgraph_tensor::DType::F32), false);
        let v = tape.leaf(Tensor::zeros(&[2], rlgraph_tensor::DType::F32), false);
        let r = adam_step(&mut tape, g, m, v, 1, 0.001, 0.9, 0.999, 1e-8).unwrap();
        let d = tape.value(r.delta).as_f32().unwrap().to_vec();
        assert!((d[0] - 0.001).abs() < 1e-5, "got {}", d[0]);
        assert!((d[1] + 0.001).abs() < 1e-5, "got {}", d[1]);
        assert_eq!(r.new_slots.len(), 2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise (w-3)² with eager Adam; w should approach 3.
        let mut w = Tensor::scalar(0.0);
        let mut m = Tensor::scalar(0.0);
        let mut v = Tensor::scalar(0.0);
        for t in 1..=2000u64 {
            let mut tape = Tape::new();
            let wi = tape.leaf(w.clone(), true);
            let c = tape.leaf(Tensor::scalar(3.0), false);
            let diff = tape.apply(OpKind::Sub, &[wi, c]).unwrap();
            let loss = tape.apply(OpKind::Square, &[diff]).unwrap();
            let grads = tape.backward(loss).unwrap();
            let gi = tape.leaf(grads[&wi].clone(), false);
            let mi = tape.leaf(m.clone(), false);
            let vi = tape.leaf(v.clone(), false);
            let r = adam_step(&mut tape, gi, mi, vi, t, 0.05, 0.9, 0.999, 1e-8).unwrap();
            let delta = tape.value(r.delta).scalar_value().unwrap();
            m = tape.value(r.new_slots[0]).clone();
            v = tape.value(r.new_slots[1]).clone();
            w = Tensor::scalar(w.scalar_value().unwrap() - delta);
        }
        assert!((w.scalar_value().unwrap() - 3.0).abs() < 0.05, "w = {:?}", w);
    }

    #[test]
    fn spec_defaults_and_slots() {
        assert_eq!(OptimizerSpec::adam(0.001).num_slots(), 2);
        assert_eq!(OptimizerSpec::rmsprop(0.01).num_slots(), 1);
        assert_eq!(OptimizerSpec::Sgd { lr: 0.1 }.num_slots(), 0);
        assert_eq!(OptimizerSpec::Momentum { lr: 0.1, momentum: 0.9 }.num_slots(), 1);
        let json = serde_json::to_string(&OptimizerSpec::adam(0.001)).unwrap();
        let back: OptimizerSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, OptimizerSpec::adam(0.001));
    }
}
