//! Space objects: the typed tensor layouts that drive rlgraph's build.
//!
//! In RLgraph (SysML 2019), users never create placeholders or variables by
//! hand. They declare the *spaces* of the data entering the root component
//! (state/action layouts with optional batch and time ranks), and the build
//! infers every internal shape from there. Spaces also power sub-graph
//! testing: any component can be built from example spaces and fed sampled
//! inputs (paper §3.3, Listing 1).
//!
//! * [`Space`] — `FloatBox`, `IntBox`, `BoolBox`, and the `Dict`/`Tuple`
//!   containers, with `add_batch_rank`/`add_time_rank` markers.
//! * [`SpaceValue`] — a concrete value drawn from a space (tensor or nested
//!   containers of tensors).
//! * Flattening — containers flatten to ordered `(scope-path, leaf)` lists,
//!   the mechanism behind rlgraph's automatic split/merge of nested spaces.
//!
//! # Example
//!
//! ```
//! use rlgraph_spaces::Space;
//! use rand::SeedableRng;
//!
//! let space = Space::dict([
//!     ("pixels", Space::float_box(&[4, 4])),
//!     ("speed", Space::int_box(5)),
//! ]).with_batch_rank();
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let value = space.sample_batch(3, &mut rng);
//! assert!(space.contains(&value));
//! assert_eq!(space.flatten().len(), 2);
//! ```

pub mod error;
pub mod space;
pub mod value;

pub use error::SpaceError;
pub use space::{Space, SpaceKind};
pub use value::SpaceValue;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SpaceError>;
