//! Error type for space operations.

use std::fmt;

/// Error produced by space validation, flattening, or sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceError {
    message: String,
}

impl SpaceError {
    /// Creates a new error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        SpaceError { message: message.into() }
    }

    /// The human-readable error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SpaceError {}

impl From<rlgraph_tensor::TensorError> for SpaceError {
    fn from(e: rlgraph_tensor::TensorError) -> Self {
        SpaceError::new(e.message())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = SpaceError::new("bad space");
        assert_eq!(e.to_string(), "bad space");
        let t = rlgraph_tensor::TensorError::new("tensor oops");
        let s: SpaceError = t.into();
        assert_eq!(s.message(), "tensor oops");
    }
}
