//! Concrete values drawn from spaces.

use crate::{Result, SpaceError};
use rlgraph_tensor::Tensor;
use std::collections::BTreeMap;

/// A concrete value belonging to a [`Space`](crate::Space): a tensor, or
/// nested containers of tensors mirroring the space's structure.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SpaceValue {
    /// Leaf tensor.
    Tensor(Tensor),
    /// Named container.
    Dict(BTreeMap<String, SpaceValue>),
    /// Positional container.
    Tuple(Vec<SpaceValue>),
}

impl SpaceValue {
    /// Borrows the leaf tensor.
    ///
    /// # Errors
    ///
    /// Errors for container values.
    pub fn as_tensor(&self) -> Result<&Tensor> {
        match self {
            SpaceValue::Tensor(t) => Ok(t),
            _ => Err(SpaceError::new("expected a leaf tensor, found a container value")),
        }
    }

    /// Takes ownership of the leaf tensor.
    ///
    /// # Errors
    ///
    /// Errors for container values.
    pub fn into_tensor(self) -> Result<Tensor> {
        match self {
            SpaceValue::Tensor(t) => Ok(t),
            _ => Err(SpaceError::new("expected a leaf tensor, found a container value")),
        }
    }

    /// Depth-first flattening into `(scope-path, tensor)` pairs, matching
    /// [`Space::flatten`](crate::Space::flatten) ordering.
    pub fn flatten(&self) -> Vec<(String, &Tensor)> {
        let mut out = Vec::new();
        self.flatten_into("", &mut out);
        out
    }

    fn flatten_into<'a>(&'a self, prefix: &str, out: &mut Vec<(String, &'a Tensor)>) {
        match self {
            SpaceValue::Tensor(t) => out.push((prefix.to_string(), t)),
            SpaceValue::Dict(m) => {
                for (k, v) in m {
                    v.flatten_into(&format!("{}/{}", prefix, k), out);
                }
            }
            SpaceValue::Tuple(v) => {
                for (i, item) in v.iter().enumerate() {
                    item.flatten_into(&format!("{}/{}", prefix, i), out);
                }
            }
        }
    }

    /// Rebuilds a value with the structure of `space` from flattened leaves
    /// in [`Space::flatten`](crate::Space::flatten) order.
    ///
    /// # Errors
    ///
    /// Errors if the number of leaves does not match the space.
    pub fn unflatten(space: &crate::Space, leaves: &[Tensor]) -> Result<SpaceValue> {
        let mut iter = leaves.iter();
        let v = Self::unflatten_inner(space, &mut iter)?;
        if iter.next().is_some() {
            return Err(SpaceError::new("too many leaves for space during unflatten"));
        }
        Ok(v)
    }

    fn unflatten_inner<'a>(
        space: &crate::Space,
        leaves: &mut impl Iterator<Item = &'a Tensor>,
    ) -> Result<SpaceValue> {
        use crate::SpaceKind;
        match space.kind() {
            SpaceKind::Dict(m) => {
                let mut out = BTreeMap::new();
                for (k, s) in m {
                    out.insert(k.clone(), Self::unflatten_inner(s, leaves)?);
                }
                Ok(SpaceValue::Dict(out))
            }
            SpaceKind::Tuple(v) => {
                let mut out = Vec::with_capacity(v.len());
                for s in v {
                    out.push(Self::unflatten_inner(s, leaves)?);
                }
                Ok(SpaceValue::Tuple(out))
            }
            _ => leaves
                .next()
                .cloned()
                .map(SpaceValue::Tensor)
                .ok_or_else(|| SpaceError::new("not enough leaves for space during unflatten")),
        }
    }

    /// Looks up a leaf by scope path.
    ///
    /// # Errors
    ///
    /// Errors if the path does not resolve to a leaf.
    pub fn lookup(&self, path: &str) -> Result<&Tensor> {
        if path.is_empty() {
            return self.as_tensor();
        }
        let (head, rest) = match path.trim_start_matches('/').split_once('/') {
            Some((h, r)) => (h, format!("/{}", r)),
            None => (path.trim_start_matches('/'), String::new()),
        };
        match self {
            SpaceValue::Dict(m) => m
                .get(head)
                .ok_or_else(|| SpaceError::new(format!("no key '{}' in dict value", head)))?
                .lookup(&rest),
            SpaceValue::Tuple(v) => {
                let idx: usize = head
                    .parse()
                    .map_err(|_| SpaceError::new(format!("invalid tuple index '{}'", head)))?;
                v.get(idx)
                    .ok_or_else(|| SpaceError::new(format!("tuple index {} out of range", idx)))?
                    .lookup(&rest)
            }
            SpaceValue::Tensor(_) => {
                Err(SpaceError::new(format!("cannot descend into tensor at '{}'", head)))
            }
        }
    }
}

impl From<Tensor> for SpaceValue {
    fn from(t: Tensor) -> Self {
        SpaceValue::Tensor(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Space;
    use rand::SeedableRng;

    #[test]
    fn flatten_unflatten_roundtrip() {
        let space = Space::dict([
            ("a", Space::float_box(&[2])),
            ("nest", Space::tuple([Space::int_box(3), Space::bool_box()])),
        ]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let v = space.sample(&mut rng);
        let flat: Vec<Tensor> = v.flatten().into_iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(flat.len(), 3);
        let back = SpaceValue::unflatten(&space, &flat).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unflatten_arity_checked() {
        let space = Space::tuple([Space::float_box(&[1]), Space::float_box(&[1])]);
        let one = vec![Tensor::scalar(1.0)];
        assert!(SpaceValue::unflatten(&space, &one).is_err());
        let three = vec![Tensor::scalar(1.0); 3];
        assert!(SpaceValue::unflatten(&space, &three).is_err());
    }

    #[test]
    fn lookup_paths() {
        let space = Space::dict([("x", Space::tuple([Space::float_box(&[1])]))]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let v = space.sample(&mut rng);
        assert!(v.lookup("/x/0").is_ok());
        assert!(v.lookup("/x/1").is_err());
        assert!(v.lookup("/y").is_err());
        assert!(v.lookup("/x/0/deep").is_err());
    }

    #[test]
    fn tensor_conversions() {
        let v: SpaceValue = Tensor::scalar(2.0).into();
        assert_eq!(v.as_tensor().unwrap().scalar_value().unwrap(), 2.0);
        assert_eq!(v.clone().into_tensor().unwrap().scalar_value().unwrap(), 2.0);
        let d = SpaceValue::Dict(BTreeMap::new());
        assert!(d.as_tensor().is_err());
        assert!(d.into_tensor().is_err());
    }

    #[test]
    fn flatten_paths_match_space() {
        let space = Space::dict([("b", Space::bool_box()), ("a", Space::float_box(&[1]))]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let v = space.sample(&mut rng);
        let space_paths: Vec<String> = space.flatten().into_iter().map(|(p, _)| p).collect();
        let value_paths: Vec<String> = v.flatten().into_iter().map(|(p, _)| p).collect();
        assert_eq!(space_paths, value_paths);
    }
}
