//! The [`Space`] type: boxes, containers, and rank markers.

use crate::value::SpaceValue;
use crate::{Result, SpaceError};
use rand::RngExt as _;
use rlgraph_tensor::{DType, Tensor};
use std::collections::BTreeMap;
use std::fmt;

/// The structural kind of a space.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SpaceKind {
    /// Continuous box with per-space bounds.
    Float {
        /// core shape (without batch/time ranks)
        shape: Vec<usize>,
        /// inclusive lower bound
        low: f32,
        /// exclusive upper bound used for sampling; inclusive for `contains`
        high: f32,
    },
    /// Discrete categorical values `0..num_categories` (scalar core shape
    /// unless `shape` says otherwise).
    Int {
        /// core shape
        shape: Vec<usize>,
        /// number of categories
        num_categories: i64,
    },
    /// Boolean flags.
    Bool {
        /// core shape
        shape: Vec<usize>,
    },
    /// Named, ordered mapping of sub-spaces.
    Dict(BTreeMap<String, Space>),
    /// Positional collection of sub-spaces.
    Tuple(Vec<Space>),
}

/// A typed tensor layout with optional batch and time ranks.
///
/// The rank markers mirror RLgraph's `add_batch_rank` / `add_time_rank`
/// options: they declare that concrete values carry extra leading
/// dimensions whose sizes are unknown until runtime (batch first, then
/// time: `[batch, time, ...core]`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Space {
    kind: SpaceKind,
    batch_rank: bool,
    time_rank: bool,
}

impl Space {
    // ----- constructors -----

    /// Continuous box in `[0, 1)` with the given core shape.
    pub fn float_box(shape: &[usize]) -> Self {
        Space::float_box_bounded(shape, 0.0, 1.0)
    }

    /// Continuous box with explicit bounds.
    pub fn float_box_bounded(shape: &[usize], low: f32, high: f32) -> Self {
        Space {
            kind: SpaceKind::Float { shape: shape.to_vec(), low, high },
            batch_rank: false,
            time_rank: false,
        }
    }

    /// Scalar categorical space with `num_categories` values.
    pub fn int_box(num_categories: i64) -> Self {
        Space {
            kind: SpaceKind::Int { shape: vec![], num_categories },
            batch_rank: false,
            time_rank: false,
        }
    }

    /// Shaped categorical space.
    pub fn int_box_shaped(shape: &[usize], num_categories: i64) -> Self {
        Space {
            kind: SpaceKind::Int { shape: shape.to_vec(), num_categories },
            batch_rank: false,
            time_rank: false,
        }
    }

    /// Scalar boolean space.
    pub fn bool_box() -> Self {
        Space { kind: SpaceKind::Bool { shape: vec![] }, batch_rank: false, time_rank: false }
    }

    /// Shaped boolean space.
    pub fn bool_box_shaped(shape: &[usize]) -> Self {
        Space {
            kind: SpaceKind::Bool { shape: shape.to_vec() },
            batch_rank: false,
            time_rank: false,
        }
    }

    /// Dict container from `(key, space)` pairs (ordered by key).
    pub fn dict<K: Into<String>>(entries: impl IntoIterator<Item = (K, Space)>) -> Self {
        let map = entries.into_iter().map(|(k, v)| (k.into(), v)).collect();
        Space { kind: SpaceKind::Dict(map), batch_rank: false, time_rank: false }
    }

    /// Tuple container.
    pub fn tuple(entries: impl IntoIterator<Item = Space>) -> Self {
        Space {
            kind: SpaceKind::Tuple(entries.into_iter().collect()),
            batch_rank: false,
            time_rank: false,
        }
    }

    /// Marks this space (and all leaves) as carrying a batch rank.
    pub fn with_batch_rank(mut self) -> Self {
        self.set_batch_rank(true);
        self
    }

    /// Marks this space (and all leaves) as carrying a time rank.
    pub fn with_time_rank(mut self) -> Self {
        self.set_time_rank(true);
        self
    }

    /// Returns a copy with both rank markers cleared (the "core" space).
    pub fn strip_ranks(&self) -> Self {
        let mut s = self.clone();
        s.set_batch_rank(false);
        s.set_time_rank(false);
        s
    }

    fn set_batch_rank(&mut self, on: bool) {
        self.batch_rank = on;
        match &mut self.kind {
            SpaceKind::Dict(m) => m.values_mut().for_each(|s| s.set_batch_rank(on)),
            SpaceKind::Tuple(v) => v.iter_mut().for_each(|s| s.set_batch_rank(on)),
            _ => {}
        }
    }

    fn set_time_rank(&mut self, on: bool) {
        self.time_rank = on;
        match &mut self.kind {
            SpaceKind::Dict(m) => m.values_mut().for_each(|s| s.set_time_rank(on)),
            SpaceKind::Tuple(v) => v.iter_mut().for_each(|s| s.set_time_rank(on)),
            _ => {}
        }
    }

    // ----- accessors -----

    /// The structural kind.
    pub fn kind(&self) -> &SpaceKind {
        &self.kind
    }

    /// Whether values carry a leading batch dimension.
    pub fn has_batch_rank(&self) -> bool {
        self.batch_rank
    }

    /// Whether values carry a leading time dimension.
    pub fn has_time_rank(&self) -> bool {
        self.time_rank
    }

    /// `true` for `Dict`/`Tuple` spaces.
    pub fn is_container(&self) -> bool {
        matches!(self.kind, SpaceKind::Dict(_) | SpaceKind::Tuple(_))
    }

    /// Core shape of a primitive space.
    ///
    /// # Errors
    ///
    /// Errors for container spaces, which have no single shape.
    pub fn shape(&self) -> Result<&[usize]> {
        match &self.kind {
            SpaceKind::Float { shape, .. }
            | SpaceKind::Int { shape, .. }
            | SpaceKind::Bool { shape } => Ok(shape),
            _ => Err(SpaceError::new("container spaces have no single shape")),
        }
    }

    /// Element dtype of a primitive space.
    ///
    /// # Errors
    ///
    /// Errors for container spaces.
    pub fn dtype(&self) -> Result<DType> {
        match &self.kind {
            SpaceKind::Float { .. } => Ok(DType::F32),
            SpaceKind::Int { .. } => Ok(DType::I64),
            SpaceKind::Bool { .. } => Ok(DType::Bool),
            _ => Err(SpaceError::new("container spaces have no single dtype")),
        }
    }

    /// Number of categories for an [`SpaceKind::Int`] space.
    ///
    /// # Errors
    ///
    /// Errors for non-Int spaces.
    pub fn num_categories(&self) -> Result<i64> {
        match &self.kind {
            SpaceKind::Int { num_categories, .. } => Ok(*num_categories),
            _ => Err(SpaceError::new("num_categories is only defined for int spaces")),
        }
    }

    /// Flat element count of a primitive core shape (1 for scalars).
    ///
    /// # Errors
    ///
    /// Errors for container spaces.
    pub fn flat_dim(&self) -> Result<usize> {
        Ok(self.shape()?.iter().product())
    }

    /// Total number of rank dimensions prepended at runtime (batch + time).
    pub fn leading_ranks(&self) -> usize {
        usize::from(self.batch_rank) + usize::from(self.time_rank)
    }

    // ----- flattening -----

    /// Depth-first flattening into ordered `(scope-path, leaf-space)` pairs.
    ///
    /// Scope paths use `/` separators (`"/obs/pixels"`); a primitive space
    /// flattens to a single pair with the empty path.
    pub fn flatten(&self) -> Vec<(String, Space)> {
        let mut out = Vec::new();
        self.flatten_into("", &mut out);
        out
    }

    fn flatten_into(&self, prefix: &str, out: &mut Vec<(String, Space)>) {
        match &self.kind {
            SpaceKind::Dict(m) => {
                for (k, v) in m {
                    v.flatten_into(&format!("{}/{}", prefix, k), out);
                }
            }
            SpaceKind::Tuple(v) => {
                for (i, s) in v.iter().enumerate() {
                    s.flatten_into(&format!("{}/{}", prefix, i), out);
                }
            }
            _ => out.push((prefix.to_string(), self.clone())),
        }
    }

    /// Looks up a sub-space by scope path (as produced by [`Space::flatten`]).
    ///
    /// # Errors
    ///
    /// Errors if the path does not resolve.
    pub fn lookup(&self, path: &str) -> Result<&Space> {
        if path.is_empty() {
            return Ok(self);
        }
        let (head, rest) = match path.trim_start_matches('/').split_once('/') {
            Some((h, r)) => (h, format!("/{}", r)),
            None => (path.trim_start_matches('/'), String::new()),
        };
        match &self.kind {
            SpaceKind::Dict(m) => m
                .get(head)
                .ok_or_else(|| SpaceError::new(format!("no key '{}' in dict space", head)))?
                .lookup(&rest),
            SpaceKind::Tuple(v) => {
                let idx: usize = head
                    .parse()
                    .map_err(|_| SpaceError::new(format!("invalid tuple index '{}'", head)))?;
                v.get(idx)
                    .ok_or_else(|| SpaceError::new(format!("tuple index {} out of range", idx)))?
                    .lookup(&rest)
            }
            _ => Err(SpaceError::new(format!("cannot descend into primitive space at '{}'", head))),
        }
    }

    // ----- sampling / validation -----

    /// Samples a value with explicit leading dimensions prepended to every
    /// leaf (ignores the rank markers; used by the test harness).
    pub fn sample_with_leading<R: rand::Rng>(&self, leading: &[usize], rng: &mut R) -> SpaceValue {
        match &self.kind {
            SpaceKind::Float { shape, low, high } => {
                let mut s = leading.to_vec();
                s.extend_from_slice(shape);
                SpaceValue::Tensor(Tensor::rand_uniform(&s, *low, *high, rng))
            }
            SpaceKind::Int { shape, num_categories } => {
                let mut s = leading.to_vec();
                s.extend_from_slice(shape);
                SpaceValue::Tensor(Tensor::rand_int(&s, 0, *num_categories, rng))
            }
            SpaceKind::Bool { shape } => {
                let mut s = leading.to_vec();
                s.extend_from_slice(shape);
                let n: usize = s.iter().product();
                let data: Vec<bool> = (0..n).map(|_| rng.random_range(0..2) == 1).collect();
                SpaceValue::Tensor(Tensor::from_vec_bool(data, &s).expect("shape consistent"))
            }
            SpaceKind::Dict(m) => SpaceValue::Dict(
                m.iter().map(|(k, v)| (k.clone(), v.sample_with_leading(leading, rng))).collect(),
            ),
            SpaceKind::Tuple(v) => {
                SpaceValue::Tuple(v.iter().map(|s| s.sample_with_leading(leading, rng)).collect())
            }
        }
    }

    /// Samples a single un-batched value.
    pub fn sample<R: rand::Rng>(&self, rng: &mut R) -> SpaceValue {
        self.sample_with_leading(&[], rng)
    }

    /// Samples a batch of values (the batch rank must be declared).
    ///
    /// # Panics
    ///
    /// Debug-asserts the space has a batch rank.
    pub fn sample_batch<R: rand::Rng>(&self, batch: usize, rng: &mut R) -> SpaceValue {
        debug_assert!(self.batch_rank, "sample_batch on a space without batch rank");
        self.sample_with_leading(&[batch], rng)
    }

    /// A zero value with explicit leading dimensions.
    pub fn zeros_with_leading(&self, leading: &[usize]) -> SpaceValue {
        match &self.kind {
            SpaceKind::Float { shape, .. } => {
                let mut s = leading.to_vec();
                s.extend_from_slice(shape);
                SpaceValue::Tensor(Tensor::zeros(&s, DType::F32))
            }
            SpaceKind::Int { shape, .. } => {
                let mut s = leading.to_vec();
                s.extend_from_slice(shape);
                SpaceValue::Tensor(Tensor::zeros(&s, DType::I64))
            }
            SpaceKind::Bool { shape } => {
                let mut s = leading.to_vec();
                s.extend_from_slice(shape);
                SpaceValue::Tensor(Tensor::zeros(&s, DType::Bool))
            }
            SpaceKind::Dict(m) => SpaceValue::Dict(
                m.iter().map(|(k, v)| (k.clone(), v.zeros_with_leading(leading))).collect(),
            ),
            SpaceKind::Tuple(v) => {
                SpaceValue::Tuple(v.iter().map(|s| s.zeros_with_leading(leading)).collect())
            }
        }
    }

    /// Validates single observations against this space's core shape and
    /// dtype, then stacks them along a new leading batch dimension.
    ///
    /// This is the micro-batching primitive of the serving path: many
    /// single-observation `act` requests are coalesced into one
    /// `[batch, ...core]` tensor matching `self.with_batch_rank()`.
    /// Container spaces (dict/tuple) are rejected, as are empty batches.
    ///
    /// # Errors
    ///
    /// Errors on container spaces, empty input, or any observation whose
    /// shape/dtype does not match the space.
    pub fn stack_batch(&self, observations: &[Tensor]) -> Result<Tensor> {
        let core = self.shape()?;
        let dtype = self.dtype()?;
        if observations.is_empty() {
            return Err(SpaceError::new("cannot stack an empty observation batch"));
        }
        for (i, t) in observations.iter().enumerate() {
            if t.shape() != core {
                return Err(SpaceError::new(format!(
                    "observation {} shape {:?} does not match space core shape {:?}",
                    i,
                    t.shape(),
                    core
                )));
            }
            if t.dtype() != dtype {
                return Err(SpaceError::new(format!(
                    "observation {} dtype {} does not match space dtype {}",
                    i,
                    t.dtype(),
                    dtype
                )));
            }
        }
        Ok(Tensor::stack(observations)?)
    }

    /// Whether `value` structurally and numerically belongs to this space
    /// (leading rank dimensions of any size are accepted).
    pub fn contains(&self, value: &SpaceValue) -> bool {
        match (&self.kind, value) {
            (SpaceKind::Float { shape, low, high }, SpaceValue::Tensor(t)) => {
                t.dtype() == DType::F32
                    && self.shape_matches(shape, t.shape())
                    && t.as_f32()
                        .map(|d| d.iter().all(|&x| x >= *low && x <= *high))
                        .unwrap_or(false)
            }
            (SpaceKind::Int { shape, num_categories }, SpaceValue::Tensor(t)) => {
                t.dtype() == DType::I64
                    && self.shape_matches(shape, t.shape())
                    && t.as_i64()
                        .map(|d| d.iter().all(|&x| x >= 0 && x < *num_categories))
                        .unwrap_or(false)
            }
            (SpaceKind::Bool { shape }, SpaceValue::Tensor(t)) => {
                t.dtype() == DType::Bool && self.shape_matches(shape, t.shape())
            }
            (SpaceKind::Dict(m), SpaceValue::Dict(vm)) => {
                m.len() == vm.len()
                    && m.iter().all(|(k, s)| vm.get(k).map(|v| s.contains(v)).unwrap_or(false))
            }
            (SpaceKind::Tuple(ss), SpaceValue::Tuple(vs)) => {
                ss.len() == vs.len() && ss.iter().zip(vs).all(|(s, v)| s.contains(v))
            }
            _ => false,
        }
    }

    fn shape_matches(&self, core: &[usize], actual: &[usize]) -> bool {
        if actual.len() < core.len() {
            return false;
        }
        let extra = actual.len() - core.len();
        extra <= self.leading_ranks() && actual[extra..] == *core
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SpaceKind::Float { shape, low, high } => {
                write!(f, "FloatBox{:?}[{}, {})", shape, low, high)?;
            }
            SpaceKind::Int { shape, num_categories } => {
                write!(f, "IntBox{:?}<{}>", shape, num_categories)?;
            }
            SpaceKind::Bool { shape } => write!(f, "BoolBox{:?}", shape)?,
            SpaceKind::Dict(m) => {
                write!(f, "Dict{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}: {}", k, v)?;
                }
                write!(f, "}}")?;
            }
            SpaceKind::Tuple(v) => {
                write!(f, "Tuple(")?;
                for (i, s) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", s)?;
                }
                write!(f, ")")?;
            }
        }
        if self.batch_rank {
            write!(f, "+B")?;
        }
        if self.time_rank {
            write!(f, "+T")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn float_box_sample_contains() {
        let s = Space::float_box_bounded(&[3], -1.0, 1.0);
        let v = s.sample(&mut rng());
        assert!(s.contains(&v));
        let SpaceValue::Tensor(t) = &v else { panic!("expected tensor") };
        assert_eq!(t.shape(), &[3]);
    }

    #[test]
    fn int_box_bounds() {
        let s = Space::int_box(4);
        let v = s.sample(&mut rng());
        assert!(s.contains(&v));
        let bad = SpaceValue::Tensor(Tensor::scalar_i64(4));
        assert!(!s.contains(&bad));
        let neg = SpaceValue::Tensor(Tensor::scalar_i64(-1));
        assert!(!s.contains(&neg));
    }

    #[test]
    fn stack_batch_validates_and_stacks() {
        let s = Space::float_box_bounded(&[2], -1.0, 1.0);
        let obs = vec![Tensor::full(&[2], 0.5), Tensor::full(&[2], -0.5)];
        let batch = s.stack_batch(&obs).unwrap();
        assert_eq!(batch.shape(), &[2, 2]);
        assert_eq!(batch.as_f32().unwrap(), vec![0.5, 0.5, -0.5, -0.5]);
        // shape mismatch
        assert!(s.stack_batch(&[Tensor::full(&[3], 0.0)]).is_err());
        // dtype mismatch
        assert!(s.stack_batch(&[Tensor::zeros(&[2], DType::I64)]).is_err());
        // empty batch
        assert!(s.stack_batch(&[]).is_err());
        // container spaces cannot batch
        assert!(Space::dict([("a", Space::float_box(&[1]))]).stack_batch(&obs).is_err());
    }

    #[test]
    fn batch_rank_accepts_leading_dim() {
        let s = Space::float_box(&[2]).with_batch_rank();
        let v = s.sample_batch(5, &mut rng());
        assert!(s.contains(&v));
        let SpaceValue::Tensor(t) = &v else { panic!() };
        assert_eq!(t.shape(), &[5, 2]);
        // without batch rank, a leading dim is rejected
        let s2 = Space::float_box(&[2]);
        assert!(!s2.contains(&v));
    }

    #[test]
    fn batch_and_time_ranks() {
        let s = Space::float_box(&[2]).with_batch_rank().with_time_rank();
        assert_eq!(s.leading_ranks(), 2);
        let v = s.sample_with_leading(&[4, 6], &mut rng());
        assert!(s.contains(&v));
    }

    #[test]
    fn dict_flatten_order_and_lookup() {
        let s = Space::dict([("b", Space::int_box(3)), ("a", Space::float_box(&[2]))]);
        let flat = s.flatten();
        assert_eq!(flat.len(), 2);
        // BTreeMap: sorted by key
        assert_eq!(flat[0].0, "/a");
        assert_eq!(flat[1].0, "/b");
        assert_eq!(s.lookup("/a").unwrap().dtype().unwrap(), DType::F32);
        assert!(s.lookup("/c").is_err());
        assert!(s.lookup("/a/b").is_err());
    }

    #[test]
    fn nested_containers_flatten() {
        let s = Space::dict([("obs", Space::tuple([Space::float_box(&[1]), Space::bool_box()]))]);
        let flat = s.flatten();
        assert_eq!(
            flat.iter().map(|(p, _)| p.as_str()).collect::<Vec<_>>(),
            vec!["/obs/0", "/obs/1"]
        );
        assert_eq!(s.lookup("/obs/1").unwrap().dtype().unwrap(), DType::Bool);
    }

    #[test]
    fn rank_markers_propagate_to_leaves() {
        let s = Space::dict([("x", Space::float_box(&[1]))]).with_batch_rank();
        let flat = s.flatten();
        assert!(flat[0].1.has_batch_rank());
        let stripped = s.strip_ranks();
        assert!(!stripped.flatten()[0].1.has_batch_rank());
    }

    #[test]
    fn container_sample_contains() {
        let s = Space::dict([("discrete", Space::int_box(2)), ("cont", Space::float_box(&[3]))])
            .with_batch_rank();
        let v = s.sample_batch(4, &mut rng());
        assert!(s.contains(&v));
    }

    #[test]
    fn zeros_belongs_to_space() {
        let s = Space::dict([("a", Space::float_box(&[2])), ("b", Space::bool_box())]);
        let z = s.zeros_with_leading(&[]);
        assert!(s.contains(&z));
    }

    #[test]
    fn flat_dim_and_categories() {
        assert_eq!(Space::float_box(&[3, 4]).flat_dim().unwrap(), 12);
        assert_eq!(Space::int_box(7).num_categories().unwrap(), 7);
        assert!(Space::float_box(&[1]).num_categories().is_err());
        assert!(Space::dict([("a", Space::bool_box())]).shape().is_err());
    }

    #[test]
    fn display_is_readable() {
        let s = Space::dict([("a", Space::float_box(&[2]))]).with_batch_rank();
        let d = s.to_string();
        assert!(d.contains("FloatBox"));
        assert!(d.contains("+B"));
    }

    #[test]
    fn serde_roundtrip() {
        let s = Space::dict([
            ("x", Space::float_box_bounded(&[4], -2.0, 2.0)),
            ("y", Space::int_box(6)),
        ])
        .with_batch_rank();
        let json = serde_json::to_string(&s).unwrap();
        let back: Space = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
