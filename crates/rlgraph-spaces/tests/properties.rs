//! Property tests on space invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use rlgraph_spaces::{Space, SpaceValue};

/// Strategy generating arbitrary (nested) spaces up to depth 2.
fn arb_space() -> impl Strategy<Value = Space> {
    let leaf = prop_oneof![
        prop::collection::vec(1usize..4, 0..3)
            .prop_map(|shape| Space::float_box_bounded(&shape, -2.0, 2.0)),
        (1i64..8).prop_map(Space::int_box),
        Just(Space::bool_box()),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Space::tuple),
            prop::collection::vec(inner, 1..3).prop_map(|spaces| {
                Space::dict(spaces.into_iter().enumerate().map(|(i, s)| (format!("k{}", i), s)))
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Samples always belong to the space that produced them.
    #[test]
    fn contains_its_samples(space in arb_space(), seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let v = space.sample(&mut rng);
        prop_assert!(space.contains(&v));
    }

    /// Batched samples belong to the batch-ranked space.
    #[test]
    fn contains_batched_samples(space in arb_space(), batch in 1usize..5, seed in 0u64..1000) {
        let space = space.with_batch_rank();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let v = space.sample_batch(batch, &mut rng);
        prop_assert!(space.contains(&v));
    }

    /// Flatten → unflatten is the identity on sampled values.
    #[test]
    fn flatten_unflatten_roundtrip(space in arb_space(), seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let v = space.sample(&mut rng);
        let leaves: Vec<_> = v.flatten().into_iter().map(|(_, t)| t.clone()).collect();
        let back = SpaceValue::unflatten(&space, &leaves).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Space paths and value paths coincide in order and name.
    #[test]
    fn paths_align(space in arb_space(), seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let v = space.sample(&mut rng);
        let sp: Vec<String> = space.flatten().into_iter().map(|(p, _)| p).collect();
        let vp: Vec<String> = v.flatten().into_iter().map(|(p, _)| p).collect();
        prop_assert_eq!(sp, vp);
    }

    /// Every flattened path resolves through lookup on both space and value.
    #[test]
    fn lookup_resolves_all_paths(space in arb_space(), seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let v = space.sample(&mut rng);
        for (path, _) in space.flatten() {
            prop_assert!(space.lookup(&path).is_ok(), "space lookup failed for '{}'", path);
            prop_assert!(v.lookup(&path).is_ok(), "value lookup failed for '{}'", path);
        }
    }

    /// Zeros belong to the space whenever the box bounds include zero.
    #[test]
    fn zeros_contained(space in arb_space()) {
        let z = space.zeros_with_leading(&[]);
        prop_assert!(space.contains(&z));
    }

    /// Serde JSON round-trips arbitrary spaces exactly.
    #[test]
    fn serde_roundtrip(space in arb_space()) {
        let json = serde_json::to_string(&space).unwrap();
        let back: Space = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, space);
    }
}
