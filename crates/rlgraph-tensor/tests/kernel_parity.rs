//! Parity and determinism suite for the kernel engine.
//!
//! * The blocked GEMM variants must match the reference loops within 1e-4:
//!   both fix the same ascending-k accumulation order per element, but the
//!   blocked kernel uses single-rounding fused multiply-adds where the
//!   naive loops round after every multiply.
//! * The im2col convolution paths must match the direct loops within a
//!   small tolerance (they reassociate across channel/kernel dims).
//! * Every parallel kernel must produce identical bits at any thread count:
//!   the thread count decides who runs a block, never what a block computes.

use proptest::prelude::*;
use rlgraph_tensor::kernels::{conv, gemm, reference};
use rlgraph_tensor::{forward, pool, OpKind, Tensor};

fn rng_tensor(shape: &[usize], seed: u64) -> Tensor {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(shape, -2.0, 2.0, &mut rng)
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    let av = a.as_f32().unwrap();
    let bv = b.as_f32().unwrap();
    assert_eq!(av.len(), bv.len(), "{what}: length mismatch");
    for (i, (x, y)) in av.iter().zip(bv).enumerate() {
        assert!(x.to_bits() == y.to_bits(), "{what}: bit mismatch at {i}: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked NN GEMM matches the naive loops for arbitrary (ragged,
    /// multi-slab) shapes, up to FMA-vs-mul+add rounding.
    #[test]
    fn gemm_nn_matches_reference(m in 1usize..80, k in 1usize..300, n in 1usize..80, seed in 0u64..1000) {
        let a = rng_tensor(&[m, k], seed);
        let b = rng_tensor(&[k, n], seed.wrapping_add(1));
        let blocked = gemm::matmul_nn(&a, &b).unwrap();
        let naive = reference::matmul(&a, &b).unwrap();
        prop_assert!(blocked.allclose(&naive, 1e-4));
    }

    /// Blocked NT GEMM matches the naive row-dot-row loops within 1e-4.
    #[test]
    fn gemm_nt_matches_reference(m in 1usize..64, k in 1usize..300, n in 1usize..64, seed in 0u64..1000) {
        let a = rng_tensor(&[m, k], seed);
        let b = rng_tensor(&[n, k], seed.wrapping_add(1));
        let blocked = gemm::matmul_nt(&a, &b).unwrap();
        let naive = reference::matmul_nt(&a, &b).unwrap();
        prop_assert!(blocked.allclose(&naive, 1e-4));
    }

    /// Blocked TN GEMM matches the naive loops within 1e-4.
    #[test]
    fn gemm_tn_matches_reference(m in 1usize..64, k in 1usize..300, n in 1usize..64, seed in 0u64..1000) {
        let a = rng_tensor(&[k, m], seed);
        let b = rng_tensor(&[k, n], seed.wrapping_add(1));
        let blocked = gemm::matmul_tn(&a, &b).unwrap();
        let naive = reference::matmul_tn(&a, &b).unwrap();
        prop_assert!(blocked.allclose(&naive, 1e-4));
    }

    /// im2col conv forward and both backprops match the direct loops within
    /// 1e-4 for random shapes, strides and paddings.
    #[test]
    fn conv_im2col_matches_direct(
        b in 1usize..3,
        c in 1usize..4,
        h in 4usize..10,
        w in 4usize..10,
        o in 1usize..4,
        kh in 1usize..4,
        kw in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * padding >= kh && w + 2 * padding >= kw);
        let x = rng_tensor(&[b, c, h, w], seed);
        let f = rng_tensor(&[o, c, kh, kw], seed.wrapping_add(1));
        let direct = reference::conv2d(&x, &f, stride, padding).unwrap();
        let fast = conv::conv2d_im2col(&x, &f, stride, padding).unwrap();
        prop_assert!(fast.allclose(&direct, 1e-4), "forward mismatch");

        let g = rng_tensor(direct.shape(), seed.wrapping_add(2));
        let gi_direct = reference::conv2d_backprop_input(&f, &g, &x, stride, padding).unwrap();
        let gi_fast = conv::conv2d_backprop_input_im2col(&f, &g, &x, stride, padding).unwrap();
        prop_assert!(gi_fast.allclose(&gi_direct, 1e-4), "input-grad mismatch");

        let gf_direct = reference::conv2d_backprop_filter(&x, &g, &f, stride, padding).unwrap();
        let gf_fast = conv::conv2d_backprop_filter_im2col(&x, &g, &f, stride, padding).unwrap();
        prop_assert!(gf_fast.allclose(&gf_direct, 1e-4), "filter-grad mismatch");
    }
}

/// Kernels above the parallel cutoffs produce identical bits at 1, 2 and 8
/// threads: parallelism only redistributes blocks, never reorders the
/// arithmetic inside an output element.
#[test]
fn thread_count_is_bit_invisible() {
    let a = rng_tensor(&[128, 96], 11);
    let b = rng_tensor(&[96, 112], 12);
    let bt = rng_tensor(&[112, 96], 13);
    let x = rng_tensor(&[4, 3, 16, 16], 14);
    let f = rng_tensor(&[8, 3, 3, 3], 15);
    let big = rng_tensor(&[70, 1000], 16);
    let bias = rng_tensor(&[1000], 17);

    let run = || {
        let mm = gemm::matmul_nn(&a, &b).unwrap();
        let nt = gemm::matmul_nt(&a, &bt).unwrap();
        let cv = conv::conv2d_im2col(&x, &f, 1, 1).unwrap();
        let red = forward(&OpKind::Sum { axes: Some(vec![1]), keep_dims: false }, &[&big]).unwrap();
        let ew = forward(
            &OpKind::BiasActivation { act: rlgraph_tensor::FusedAct::Tanh },
            &[&big, &bias],
        )
        .unwrap();
        (mm, nt, cv, red, ew)
    };

    pool::set_threads(Some(1));
    let base = run();
    for threads in [2usize, 8] {
        pool::set_threads(Some(threads));
        let got = run();
        assert_bits_eq(&got.0, &base.0, &format!("matmul @ {threads} threads"));
        assert_bits_eq(&got.1, &base.1, &format!("matmul_nt @ {threads} threads"));
        assert_bits_eq(&got.2, &base.2, &format!("conv2d @ {threads} threads"));
        assert_bits_eq(&got.3, &base.3, &format!("reduce @ {threads} threads"));
        assert_bits_eq(&got.4, &base.4, &format!("bias_activation @ {threads} threads"));
    }
    pool::set_threads(None);
}

/// The fused bias+activation op and its gradients are bit-identical to the
/// unfused `Add` + activation pair, forward and backward.
#[test]
fn fused_bias_activation_matches_unfused_grads() {
    use rlgraph_tensor::{FusedAct, Tape};
    for (fused, unary) in [
        (FusedAct::Relu, Some(OpKind::Relu)),
        (FusedAct::Tanh, Some(OpKind::Tanh)),
        (FusedAct::Sigmoid, Some(OpKind::Sigmoid)),
        (FusedAct::Linear, None),
    ] {
        let xv = rng_tensor(&[6, 5], 21);
        let bv = rng_tensor(&[5], 22);

        let mut t1 = Tape::new();
        let x1 = t1.leaf(xv.clone(), true);
        let b1 = t1.leaf(bv.clone(), true);
        let y1 = t1.apply(OpKind::BiasActivation { act: fused }, &[x1, b1]).unwrap();
        let g1 = t1.backward(y1).unwrap();

        let mut t2 = Tape::new();
        let x2 = t2.leaf(xv.clone(), true);
        let b2 = t2.leaf(bv.clone(), true);
        let mut y2 = t2.apply(OpKind::Add, &[x2, b2]).unwrap();
        if let Some(u) = unary {
            y2 = t2.apply(u, &[y2]).unwrap();
        }
        let g2 = t2.backward(y2).unwrap();

        assert_bits_eq(&t1.value(y1), &t2.value(y2), &format!("{fused:?} forward"));
        assert_bits_eq(&g1[&x1], &g2[&x2], &format!("{fused:?} grad wrt x"));
        assert_bits_eq(&g1[&b1], &g2[&b2], &format!("{fused:?} grad wrt bias"));
    }
}

/// MatMul backward through the NT/TN variants is bit-identical to the old
/// materialize-the-transpose formulation.
#[test]
fn matmul_backward_matches_transpose_formulation() {
    use rlgraph_tensor::Tape;
    let av = rng_tensor(&[9, 7], 31);
    let bv = rng_tensor(&[7, 11], 32);
    // backward seeds the output gradient with ones of y's shape
    let gv = Tensor::ones(&[9, 11]);

    let mut tape = Tape::new();
    let a = tape.leaf(av.clone(), true);
    let b = tape.leaf(bv.clone(), true);
    let y = tape.apply(OpKind::MatMul, &[a, b]).unwrap();
    let grads = tape.backward(y).unwrap();

    // the old rule: gA = g @ B^T, gB = A^T @ g via materialized transposes
    let bt = forward(&OpKind::Transpose { perm: vec![1, 0] }, &[&bv]).unwrap();
    let at = forward(&OpKind::Transpose { perm: vec![1, 0] }, &[&av]).unwrap();
    let ga_old = forward(&OpKind::MatMul, &[&gv, &bt]).unwrap();
    let gb_old = forward(&OpKind::MatMul, &[&at, &gv]).unwrap();

    assert_bits_eq(&grads[&a], &ga_old, "grad wrt a");
    assert_bits_eq(&grads[&b], &gb_old, "grad wrt b");
}
