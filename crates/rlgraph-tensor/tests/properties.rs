//! Property-based tests for tensor kernels and autodiff.

use proptest::prelude::*;
use rlgraph_tensor::{forward, OpKind, Tape, Tensor};

fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..4, 0..3)
}

fn tensor_with_shape(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    prop::collection::vec(-10.0f32..10.0, n..=n)
        .prop_map(move |data| Tensor::from_vec(data, &shape).unwrap())
}

fn small_tensor() -> impl Strategy<Value = Tensor> {
    small_shape().prop_flat_map(tensor_with_shape)
}

proptest! {
    /// a + b == b + a under broadcasting.
    #[test]
    fn add_commutes(a in small_tensor(), b in small_tensor()) {
        let ab = forward(&OpKind::Add, &[&a, &b]);
        let ba = forward(&OpKind::Add, &[&b, &a]);
        match (ab, ba) {
            (Ok(x), Ok(y)) => prop_assert!(x.allclose(&y, 1e-6)),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "one direction broadcast, the other failed"),
        }
    }

    /// (a + b) + c ≈ a + (b + c) for same-shape tensors.
    #[test]
    fn add_associates(shape in small_shape(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&shape, -5.0, 5.0, &mut rng);
        let b = Tensor::rand_uniform(&shape, -5.0, 5.0, &mut rng);
        let c = Tensor::rand_uniform(&shape, -5.0, 5.0, &mut rng);
        let l = forward(&OpKind::Add, &[&forward(&OpKind::Add, &[&a, &b]).unwrap(), &c]).unwrap();
        let r = forward(&OpKind::Add, &[&a, &forward(&OpKind::Add, &[&b, &c]).unwrap()]).unwrap();
        prop_assert!(l.allclose(&r, 1e-4));
    }

    /// Multiplying by ones is the identity.
    #[test]
    fn mul_ones_identity(a in small_tensor()) {
        let ones = Tensor::ones(a.shape());
        let r = forward(&OpKind::Mul, &[&a, &ones]).unwrap();
        prop_assert!(r.allclose(&a, 0.0));
    }

    /// Sum over all axes equals the scalar sum of the data.
    #[test]
    fn sum_matches_iter(a in small_tensor()) {
        prop_assume!(!a.is_empty());
        let s = forward(&OpKind::Sum { axes: None, keep_dims: false }, &[&a]).unwrap();
        let expect: f32 = a.as_f32().unwrap().iter().sum();
        prop_assert!((s.scalar_value().unwrap() - expect).abs() < 1e-3);
    }

    /// Reducing one axis then the other equals reducing both at once.
    #[test]
    fn staged_reduction(r in 1usize..4, c in 1usize..4, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&[r, c], -5.0, 5.0, &mut rng);
        let both = forward(&OpKind::Sum { axes: None, keep_dims: false }, &[&a]).unwrap();
        let ax0 = forward(&OpKind::Sum { axes: Some(vec![0]), keep_dims: false }, &[&a]).unwrap();
        let staged = forward(&OpKind::Sum { axes: None, keep_dims: false }, &[&ax0]).unwrap();
        prop_assert!((both.scalar_value().unwrap() - staged.scalar_value().unwrap()).abs() < 1e-3);
    }

    /// Transpose twice with the same 2-D perm is the identity.
    #[test]
    fn transpose_involution(r in 1usize..5, c in 1usize..5, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&[r, c], -5.0, 5.0, &mut rng);
        let t = forward(&OpKind::Transpose { perm: vec![1, 0] }, &[&a]).unwrap();
        let tt = forward(&OpKind::Transpose { perm: vec![1, 0] }, &[&t]).unwrap();
        prop_assert_eq!(tt, a);
    }

    /// Softmax outputs are a probability distribution for any logits.
    #[test]
    fn softmax_is_distribution(n in 1usize..8, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&[n], -30.0, 30.0, &mut rng);
        let s = forward(&OpKind::Softmax { axis: 0 }, &[&a]).unwrap();
        let v = s.as_f32().unwrap();
        prop_assert!(v.iter().all(|&x| (0.0..=1.0 + 1e-5).contains(&x)));
        prop_assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    /// Autodiff of sum(a * b) w.r.t. a is exactly b (linearity).
    #[test]
    fn autodiff_linear_in_weights(shape in small_shape(), seed in 0u64..1000) {
        use rand::SeedableRng;
        prop_assume!(!shape.is_empty() && shape.iter().product::<usize>() > 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&shape, -5.0, 5.0, &mut rng);
        let b = Tensor::rand_uniform(&shape, -5.0, 5.0, &mut rng);
        let mut tape = Tape::new();
        let ai = tape.leaf(a, true);
        let bi = tape.leaf(b.clone(), false);
        let m = tape.apply(OpKind::Mul, &[ai, bi]).unwrap();
        let l = tape.apply(OpKind::Sum { axes: None, keep_dims: false }, &[m]).unwrap();
        let grads = tape.backward(l).unwrap();
        prop_assert!(grads[&ai].allclose(&b, 1e-5));
    }

    /// Gradient of a composite scalar function matches finite differences.
    #[test]
    fn autodiff_matches_finite_difference(n in 1usize..5, seed in 0u64..200) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x0 = Tensor::rand_uniform(&[n], 0.5, 2.0, &mut rng);
        let eval = |x: &Tensor| -> (f32, Option<Vec<f32>>) {
            let mut t = Tape::new();
            let xi = t.leaf(x.clone(), true);
            let lg = t.apply(OpKind::Log, &[xi]).unwrap();
            let sq = t.apply(OpKind::Square, &[xi]).unwrap();
            let s = t.apply(OpKind::Add, &[lg, sq]).unwrap();
            let l = t.apply(OpKind::Mean { axes: None, keep_dims: false }, &[s]).unwrap();
            let v = t.value(l).scalar_value().unwrap();
            let g = t.backward(l).unwrap().get(&xi).map(|g| g.as_f32().unwrap().to_vec());
            (v, g)
        };
        let (f0, grad) = eval(&x0);
        let grad = grad.unwrap();
        let eps = 1e-3f32;
        for i in 0..n {
            let mut xp = x0.clone();
            xp.as_f32_mut().unwrap()[i] += eps;
            let (f1, _) = eval(&xp);
            let num = (f1 - f0) / eps;
            prop_assert!((num - grad[i]).abs() < 2e-2,
                "index {}: numeric {} vs analytic {}", i, num, grad[i]);
        }
    }

    /// Gather then gather_grad conserves the gradient mass.
    #[test]
    fn gather_grad_conserves_mass(rows in 1usize..6, picks in 1usize..6, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let params = Tensor::rand_uniform(&[rows, 2], -1.0, 1.0, &mut rng);
        let idx = Tensor::rand_int(&[picks], 0, rows as i64, &mut rng);
        let g = Tensor::rand_uniform(&[picks, 2], -1.0, 1.0, &mut rng);
        let scattered = forward(&OpKind::GatherGrad, &[&g, &idx, &params]).unwrap();
        let total_g: f32 = g.as_f32().unwrap().iter().sum();
        let total_s: f32 = scattered.as_f32().unwrap().iter().sum();
        prop_assert!((total_g - total_s).abs() < 1e-4);
    }

    /// Reshape round-trips through any compatible factorisation.
    #[test]
    fn reshape_roundtrip(a in small_tensor()) {
        let n = a.len();
        let flat = forward(&OpKind::Reshape { shape: vec![-1] }, &[&a]);
        if n == 0 {
            return Ok(());
        }
        let flat = flat.unwrap();
        prop_assert_eq!(flat.len(), n);
        let spec: Vec<isize> = a.shape().iter().map(|&d| d as isize).collect();
        if !spec.is_empty() {
            let back = forward(&OpKind::Reshape { shape: spec }, &[&flat]).unwrap();
            prop_assert_eq!(back, a);
        }
    }
}
