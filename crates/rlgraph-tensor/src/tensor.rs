//! The dense n-dimensional array type.

use crate::shape::{num_elements, strides};
use crate::{tensor_err, DType, Result};
use rand::RngExt as _;
use std::fmt;

/// Storage for tensor elements.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Buffer {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit signed integers.
    I64(Vec<i64>),
    /// Booleans.
    Bool(Vec<bool>),
}

impl Buffer {
    fn len(&self) -> usize {
        match self {
            Buffer::F32(v) => v.len(),
            Buffer::I64(v) => v.len(),
            Buffer::Bool(v) => v.len(),
        }
    }

    fn dtype(&self) -> DType {
        match self {
            Buffer::F32(_) => DType::F32,
            Buffer::I64(_) => DType::I64,
            Buffer::Bool(_) => DType::Bool,
        }
    }
}

/// A dense, row-major n-dimensional array.
///
/// Tensors are the values that flow through both rlgraph backends. A rank-0
/// tensor (empty shape) is a scalar.
///
/// # Example
///
/// ```
/// use rlgraph_tensor::Tensor;
///
/// # fn main() -> Result<(), rlgraph_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.get_f32(&[1, 0])?, 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    buffer: Buffer,
}

impl Tensor {
    // ----- constructors -----

    /// Builds an f32 tensor from a flat vector and a shape.
    ///
    /// # Errors
    ///
    /// Errors if `data.len()` does not match the element count of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        if data.len() != num_elements(shape) {
            return Err(tensor_err!(
                "data length {} does not match shape {:?} ({} elements)",
                data.len(),
                shape,
                num_elements(shape)
            ));
        }
        Ok(Tensor { shape: shape.to_vec(), buffer: Buffer::F32(data) })
    }

    /// Builds an i64 tensor from a flat vector and a shape.
    ///
    /// # Errors
    ///
    /// Errors if `data.len()` does not match the element count of `shape`.
    pub fn from_vec_i64(data: Vec<i64>, shape: &[usize]) -> Result<Self> {
        if data.len() != num_elements(shape) {
            return Err(tensor_err!("data length {} does not match shape {:?}", data.len(), shape));
        }
        Ok(Tensor { shape: shape.to_vec(), buffer: Buffer::I64(data) })
    }

    /// Builds a bool tensor from a flat vector and a shape.
    ///
    /// # Errors
    ///
    /// Errors if `data.len()` does not match the element count of `shape`.
    pub fn from_vec_bool(data: Vec<bool>, shape: &[usize]) -> Result<Self> {
        if data.len() != num_elements(shape) {
            return Err(tensor_err!("data length {} does not match shape {:?}", data.len(), shape));
        }
        Ok(Tensor { shape: shape.to_vec(), buffer: Buffer::Bool(data) })
    }

    /// A rank-0 f32 scalar.
    pub fn scalar(v: f32) -> Self {
        Tensor { shape: vec![], buffer: Buffer::F32(vec![v]) }
    }

    /// A rank-0 i64 scalar.
    pub fn scalar_i64(v: i64) -> Self {
        Tensor { shape: vec![], buffer: Buffer::I64(vec![v]) }
    }

    /// A rank-0 bool scalar.
    pub fn scalar_bool(v: bool) -> Self {
        Tensor { shape: vec![], buffer: Buffer::Bool(vec![v]) }
    }

    /// All-zero tensor of the given dtype.
    pub fn zeros(shape: &[usize], dtype: DType) -> Self {
        let n = num_elements(shape);
        let buffer = match dtype {
            DType::F32 => Buffer::F32(vec![0.0; n]),
            DType::I64 => Buffer::I64(vec![0; n]),
            DType::Bool => Buffer::Bool(vec![false; n]),
        };
        Tensor { shape: shape.to_vec(), buffer }
    }

    /// All-one f32 tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// f32 tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor { shape: shape.to_vec(), buffer: Buffer::F32(vec![value; num_elements(shape)]) }
    }

    // ----- accessors -----

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// `true` when the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The element type.
    pub fn dtype(&self) -> DType {
        self.buffer.dtype()
    }

    /// Borrows the f32 data.
    ///
    /// # Errors
    ///
    /// Errors if the tensor is not [`DType::F32`].
    pub fn as_f32(&self) -> Result<&[f32]> {
        match &self.buffer {
            Buffer::F32(v) => Ok(v),
            other => Err(tensor_err!("expected f32 tensor, found {}", other.dtype())),
        }
    }

    /// Mutably borrows the f32 data.
    ///
    /// # Errors
    ///
    /// Errors if the tensor is not [`DType::F32`].
    pub fn as_f32_mut(&mut self) -> Result<&mut [f32]> {
        match &mut self.buffer {
            Buffer::F32(v) => Ok(v),
            other => Err(tensor_err!("expected f32 tensor, found {}", other.dtype())),
        }
    }

    /// Borrows the i64 data.
    ///
    /// # Errors
    ///
    /// Errors if the tensor is not [`DType::I64`].
    pub fn as_i64(&self) -> Result<&[i64]> {
        match &self.buffer {
            Buffer::I64(v) => Ok(v),
            other => Err(tensor_err!("expected i64 tensor, found {}", other.dtype())),
        }
    }

    /// Borrows the bool data.
    ///
    /// # Errors
    ///
    /// Errors if the tensor is not [`DType::Bool`].
    pub fn as_bool(&self) -> Result<&[bool]> {
        match &self.buffer {
            Buffer::Bool(v) => Ok(v),
            other => Err(tensor_err!("expected bool tensor, found {}", other.dtype())),
        }
    }

    /// The single value of a rank-0/one-element f32 tensor.
    ///
    /// # Errors
    ///
    /// Errors if the tensor has more than one element or is not f32.
    pub fn scalar_value(&self) -> Result<f32> {
        let data = self.as_f32()?;
        if data.len() != 1 {
            return Err(tensor_err!("expected scalar, found shape {:?}", self.shape));
        }
        Ok(data[0])
    }

    /// The single value of a rank-0/one-element i64 tensor.
    ///
    /// # Errors
    ///
    /// Errors if the tensor has more than one element or is not i64.
    pub fn scalar_value_i64(&self) -> Result<i64> {
        let data = self.as_i64()?;
        if data.len() != 1 {
            return Err(tensor_err!("expected scalar, found shape {:?}", self.shape));
        }
        Ok(data[0])
    }

    /// Reads the f32 element at the given coordinates.
    ///
    /// # Errors
    ///
    /// Errors on rank mismatch, out-of-bounds coordinates, or wrong dtype.
    pub fn get_f32(&self, coords: &[usize]) -> Result<f32> {
        let idx = self.flat_index(coords)?;
        Ok(self.as_f32()?[idx])
    }

    /// Reads the i64 element at the given coordinates.
    ///
    /// # Errors
    ///
    /// Errors on rank mismatch, out-of-bounds coordinates, or wrong dtype.
    pub fn get_i64(&self, coords: &[usize]) -> Result<i64> {
        let idx = self.flat_index(coords)?;
        Ok(self.as_i64()?[idx])
    }

    fn flat_index(&self, coords: &[usize]) -> Result<usize> {
        if coords.len() != self.rank() {
            return Err(tensor_err!(
                "coordinate rank {} does not match tensor rank {}",
                coords.len(),
                self.rank()
            ));
        }
        for (i, (&c, &d)) in coords.iter().zip(&self.shape).enumerate() {
            if c >= d {
                return Err(tensor_err!("index {} out of bounds for axis {} (size {})", c, i, d));
            }
        }
        Ok(coords.iter().zip(strides(&self.shape)).map(|(c, s)| c * s).sum())
    }

    // ----- conversions -----

    /// Casts to another dtype. Bool becomes 0/1; floats truncate toward zero
    /// when cast to i64; nonzero numbers become `true` when cast to bool.
    pub fn cast(&self, to: DType) -> Tensor {
        if self.dtype() == to {
            return self.clone();
        }
        let buffer = match (&self.buffer, to) {
            (Buffer::F32(v), DType::I64) => Buffer::I64(v.iter().map(|&x| x as i64).collect()),
            (Buffer::F32(v), DType::Bool) => Buffer::Bool(v.iter().map(|&x| x != 0.0).collect()),
            (Buffer::I64(v), DType::F32) => Buffer::F32(v.iter().map(|&x| x as f32).collect()),
            (Buffer::I64(v), DType::Bool) => Buffer::Bool(v.iter().map(|&x| x != 0).collect()),
            (Buffer::Bool(v), DType::F32) => {
                Buffer::F32(v.iter().map(|&x| if x { 1.0 } else { 0.0 }).collect())
            }
            (Buffer::Bool(v), DType::I64) => Buffer::I64(v.iter().map(|&x| i64::from(x)).collect()),
            _ => unreachable!("same-dtype cast handled above"),
        };
        Tensor { shape: self.shape.clone(), buffer }
    }

    /// Returns the data as f32, casting if necessary.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        match &self.buffer {
            Buffer::F32(v) => v.clone(),
            Buffer::I64(v) => v.iter().map(|&x| x as f32).collect(),
            Buffer::Bool(v) => v.iter().map(|&x| if x { 1.0 } else { 0.0 }).collect(),
        }
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Errors if element counts differ.
    pub fn reshaped(&self, shape: &[usize]) -> Result<Tensor> {
        if num_elements(shape) != self.len() {
            return Err(tensor_err!(
                "cannot reshape {:?} ({} elements) to {:?}",
                self.shape,
                self.len(),
                shape
            ));
        }
        Ok(Tensor { shape: shape.to_vec(), buffer: self.buffer.clone() })
    }

    /// Concatenates `items` along a new leading axis (they must share shape
    /// and dtype). Used for batching environment observations.
    ///
    /// # Errors
    ///
    /// Errors if `items` is empty or shapes/dtypes disagree.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        let first = items.first().ok_or_else(|| tensor_err!("cannot stack zero tensors"))?;
        let mut shape = vec![items.len()];
        shape.extend_from_slice(first.shape());
        for t in items {
            if t.shape() != first.shape() || t.dtype() != first.dtype() {
                return Err(tensor_err!("stack requires identical shapes and dtypes"));
            }
        }
        let buffer = match first.dtype() {
            DType::F32 => {
                let mut v = Vec::with_capacity(num_elements(&shape));
                for t in items {
                    v.extend_from_slice(t.as_f32()?);
                }
                Buffer::F32(v)
            }
            DType::I64 => {
                let mut v = Vec::with_capacity(num_elements(&shape));
                for t in items {
                    v.extend_from_slice(t.as_i64()?);
                }
                Buffer::I64(v)
            }
            DType::Bool => {
                let mut v = Vec::with_capacity(num_elements(&shape));
                for t in items {
                    v.extend_from_slice(t.as_bool()?);
                }
                Buffer::Bool(v)
            }
        };
        Ok(Tensor { shape, buffer })
    }

    /// Splits along the leading axis into `shape[0]` tensors.
    ///
    /// # Errors
    ///
    /// Errors on rank-0 tensors.
    pub fn unstack(&self) -> Result<Vec<Tensor>> {
        if self.rank() == 0 {
            return Err(tensor_err!("cannot unstack a scalar"));
        }
        let n = self.shape[0];
        let inner: Vec<usize> = self.shape[1..].to_vec();
        let chunk = num_elements(&inner);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let buffer = match &self.buffer {
                Buffer::F32(v) => Buffer::F32(v[i * chunk..(i + 1) * chunk].to_vec()),
                Buffer::I64(v) => Buffer::I64(v[i * chunk..(i + 1) * chunk].to_vec()),
                Buffer::Bool(v) => Buffer::Bool(v[i * chunk..(i + 1) * chunk].to_vec()),
            };
            out.push(Tensor { shape: inner.clone(), buffer });
        }
        Ok(out)
    }

    // ----- random constructors -----

    /// Uniform random f32 tensor in `[lo, hi)`.
    pub fn rand_uniform<R: rand::Rng>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let n = num_elements(shape);
        let data: Vec<f32> = (0..n).map(|_| rng.random_range(lo..hi)).collect();
        Tensor { shape: shape.to_vec(), buffer: Buffer::F32(data) }
    }

    /// Standard-normal random f32 tensor scaled by `std` around `mean`
    /// (Box–Muller transform; no external distribution crate needed).
    pub fn rand_normal<R: rand::Rng>(shape: &[usize], mean: f32, std: f32, rng: &mut R) -> Self {
        let n = num_elements(shape);
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.random_range(f32::EPSILON..1.0);
            let u2: f32 = rng.random_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor { shape: shape.to_vec(), buffer: Buffer::F32(data) }
    }

    /// Uniform random i64 tensor in `[lo, hi)`.
    pub fn rand_int<R: rand::Rng>(shape: &[usize], lo: i64, hi: i64, rng: &mut R) -> Self {
        let n = num_elements(shape);
        let data: Vec<i64> = (0..n).map(|_| rng.random_range(lo..hi)).collect();
        Tensor { shape: shape.to_vec(), buffer: Buffer::I64(data) }
    }

    /// Approximate element-wise equality for f32 tensors (absolute
    /// tolerance); exact equality for other dtypes.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        if self.shape != other.shape || self.dtype() != other.dtype() {
            return false;
        }
        match (&self.buffer, &other.buffer) {
            (Buffer::F32(a), Buffer::F32(b)) => {
                a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol || (x.is_nan() && y.is_nan()))
            }
            _ => self.buffer == other.buffer,
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor<{}>{:?}", self.dtype(), self.shape)?;
        const MAX: usize = 16;
        match &self.buffer {
            Buffer::F32(v) => {
                write!(f, " {:?}{}", &v[..v.len().min(MAX)], if v.len() > MAX { "…" } else { "" })
            }
            Buffer::I64(v) => {
                write!(f, " {:?}{}", &v[..v.len().min(MAX)], if v.len() > MAX { "…" } else { "" })
            }
            Buffer::Bool(v) => {
                write!(f, " {:?}{}", &v[..v.len().min(MAX)], if v.len() > MAX { "…" } else { "" })
            }
        }
    }
}

impl From<f32> for Tensor {
    fn from(v: f32) -> Self {
        Tensor::scalar(v)
    }
}

impl From<i64> for Tensor {
    fn from(v: i64) -> Self {
        Tensor::scalar_i64(v)
    }
}

impl From<bool> for Tensor {
    fn from(v: bool) -> Self {
        Tensor::scalar_bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.get_f32(&[0, 0]).unwrap(), 1.0);
        assert_eq!(t.get_f32(&[1, 2]).unwrap(), 6.0);
        assert!(t.get_f32(&[2, 0]).is_err());
        assert!(t.get_f32(&[0]).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec_i64(vec![1], &[2]).is_err());
        assert!(Tensor::from_vec_bool(vec![true], &[0]).is_err());
    }

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(Tensor::scalar(3.5).scalar_value().unwrap(), 3.5);
        assert_eq!(Tensor::scalar_i64(7).scalar_value_i64().unwrap(), 7);
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap().scalar_value().is_err());
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2], DType::F32).as_f32().unwrap(), &[0.0; 4]);
        assert_eq!(Tensor::zeros(&[3], DType::I64).as_i64().unwrap(), &[0; 3]);
        assert_eq!(Tensor::ones(&[2]).as_f32().unwrap(), &[1.0, 1.0]);
        assert_eq!(Tensor::full(&[2], 4.5).as_f32().unwrap(), &[4.5, 4.5]);
    }

    #[test]
    fn casting() {
        let t = Tensor::from_vec(vec![0.0, 1.9, -2.5], &[3]).unwrap();
        assert_eq!(t.cast(DType::I64).as_i64().unwrap(), &[0, 1, -2]);
        assert_eq!(t.cast(DType::Bool).as_bool().unwrap(), &[false, true, true]);
        let b = Tensor::from_vec_bool(vec![true, false], &[2]).unwrap();
        assert_eq!(b.cast(DType::F32).as_f32().unwrap(), &[1.0, 0.0]);
        assert_eq!(b.cast(DType::I64).as_i64().unwrap(), &[1, 0]);
    }

    #[test]
    fn stack_unstack_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        let parts = s.unstack().unwrap();
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn stack_rejects_mismatch() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0], &[1]).unwrap();
        assert!(Tensor::stack(&[a, b]).is_err());
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn random_constructors_in_range() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let u = Tensor::rand_uniform(&[100], -1.0, 1.0, &mut rng);
        assert!(u.as_f32().unwrap().iter().all(|&x| (-1.0..1.0).contains(&x)));
        let i = Tensor::rand_int(&[100], 0, 5, &mut rng);
        assert!(i.as_i64().unwrap().iter().all(|&x| (0..5).contains(&x)));
        let n = Tensor::rand_normal(&[1001], 0.0, 1.0, &mut rng);
        let mean: f32 = n.as_f32().unwrap().iter().sum::<f32>() / 1001.0;
        assert!(mean.abs() < 0.2, "sample mean {} too far from 0", mean);
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0005, 2.0], &[2]).unwrap();
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-5));
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(&[100], DType::F32);
        let s = t.to_string();
        assert!(s.contains("…"));
        assert!(s.starts_with("Tensor<f32>"));
    }
}
