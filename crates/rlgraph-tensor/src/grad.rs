//! Reverse-mode gradient rules, written once for both backends.
//!
//! Each rule expresses the vector–Jacobian product of an [`OpKind`] as *more
//! ops*, emitted through an [`OpEmitter`]. The static-graph backend
//! implements [`OpEmitter`] by appending nodes to the graph (so taking
//! gradients is a graph transformation, exactly as in TensorFlow); the
//! define-by-run tape implements it by evaluating kernels eagerly (as in
//! PyTorch). This is the "single-stream graph function" design the RLgraph
//! paper anticipates for backend unification (§4.2).

use crate::kernels::{FusedAct, OpKind};
use crate::{tensor_err, DType, Result};

/// Abstraction over "a place ops can be emitted to".
///
/// `Ref` identifies a value in the emitter's world: a graph `NodeId` for the
/// static backend, a tape value id for the define-by-run backend.
pub trait OpEmitter {
    /// Handle to an emitted value.
    type Ref: Copy;

    /// Emits one op application and returns a handle to its output.
    ///
    /// # Errors
    ///
    /// Propagates kernel/shape errors (eager emitters) or graph-construction
    /// errors (static emitters).
    fn emit(&mut self, kind: OpKind, inputs: &[Self::Ref]) -> Result<Self::Ref>;

    /// Emits an f32 scalar constant.
    fn scalar_const(&mut self, v: f32) -> Self::Ref;
}

/// Emits the gradients of one op application.
///
/// * `inputs` — handles of the op's original inputs.
/// * `output` — handle of the op's original output.
/// * `grad_out` — handle of the incoming gradient (same shape as `output`).
///
/// Returns one optional gradient per input; `None` marks a
/// non-differentiable path (e.g. indices, conditions, `StopGradient`).
///
/// # Errors
///
/// Errors for ops that have no gradient defined (pure bookkeeping kernels
/// such as the `*Grad` helpers, which never appear on a forward path).
pub fn emit_grad<E: OpEmitter>(
    em: &mut E,
    kind: &OpKind,
    inputs: &[E::Ref],
    output: E::Ref,
    grad_out: E::Ref,
) -> Result<Vec<Option<E::Ref>>> {
    use OpKind::*;
    let g = grad_out;
    match kind {
        Add => {
            let ga = em.emit(ReduceToLike, &[g, inputs[0]])?;
            let gb = em.emit(ReduceToLike, &[g, inputs[1]])?;
            Ok(vec![Some(ga), Some(gb)])
        }
        Sub => {
            let ga = em.emit(ReduceToLike, &[g, inputs[0]])?;
            let ng = em.emit(Neg, &[g])?;
            let gb = em.emit(ReduceToLike, &[ng, inputs[1]])?;
            Ok(vec![Some(ga), Some(gb)])
        }
        Mul => {
            let ga_full = em.emit(Mul, &[g, inputs[1]])?;
            let gb_full = em.emit(Mul, &[g, inputs[0]])?;
            let ga = em.emit(ReduceToLike, &[ga_full, inputs[0]])?;
            let gb = em.emit(ReduceToLike, &[gb_full, inputs[1]])?;
            Ok(vec![Some(ga), Some(gb)])
        }
        Div => {
            // d/da (a/b) = 1/b ; d/db (a/b) = -a/b^2 = -out/b
            let ga_full = em.emit(Div, &[g, inputs[1]])?;
            let ga = em.emit(ReduceToLike, &[ga_full, inputs[0]])?;
            let out_over_b = em.emit(Div, &[output, inputs[1]])?;
            let gb_full0 = em.emit(Mul, &[g, out_over_b])?;
            let gb_full = em.emit(Neg, &[gb_full0])?;
            let gb = em.emit(ReduceToLike, &[gb_full, inputs[1]])?;
            Ok(vec![Some(ga), Some(gb)])
        }
        Pow => {
            // d/da a^b = b * a^(b-1); d/db a^b = out * ln(a)
            let one = em.scalar_const(1.0);
            let bm1 = em.emit(Sub, &[inputs[1], one])?;
            let apow = em.emit(Pow, &[inputs[0], bm1])?;
            let ga_full0 = em.emit(Mul, &[inputs[1], apow])?;
            let ga_full = em.emit(Mul, &[g, ga_full0])?;
            let ga = em.emit(ReduceToLike, &[ga_full, inputs[0]])?;
            let lna = em.emit(Log, &[inputs[0]])?;
            let gb_full0 = em.emit(Mul, &[output, lna])?;
            let gb_full = em.emit(Mul, &[g, gb_full0])?;
            let gb = em.emit(ReduceToLike, &[gb_full, inputs[1]])?;
            Ok(vec![Some(ga), Some(gb)])
        }
        Maximum | Minimum => {
            let mask_bool = if matches!(kind, Maximum) {
                em.emit(GreaterEqual, &[inputs[0], inputs[1]])?
            } else {
                em.emit(LessEqual, &[inputs[0], inputs[1]])?
            };
            let mask = em.emit(Cast { to: DType::F32 }, &[mask_bool])?;
            let one = em.scalar_const(1.0);
            let inv = em.emit(Sub, &[one, mask])?;
            let ga_full = em.emit(Mul, &[g, mask])?;
            let gb_full = em.emit(Mul, &[g, inv])?;
            let ga = em.emit(ReduceToLike, &[ga_full, inputs[0]])?;
            let gb = em.emit(ReduceToLike, &[gb_full, inputs[1]])?;
            Ok(vec![Some(ga), Some(gb)])
        }
        Greater
        | GreaterEqual
        | Less
        | LessEqual
        | Equal
        | NotEqual
        | LogicalAnd
        | LogicalOr
        | Not
        | Sign
        | Floor
        | ArgMax { .. }
        | OneHot { .. }
        | ZerosLike
        | OnesLike
        | Cast { .. } => Ok(vec![None; inputs.len()]),
        Neg => Ok(vec![Some(em.emit(Neg, &[g])?)]),
        Abs => {
            let s = em.emit(Sign, &[inputs[0]])?;
            Ok(vec![Some(em.emit(Mul, &[g, s])?)])
        }
        Exp => Ok(vec![Some(em.emit(Mul, &[g, output])?)]),
        Log => Ok(vec![Some(em.emit(Div, &[g, inputs[0]])?)]),
        Sqrt => {
            // 0.5 / sqrt(a) = 0.5 / out
            let half = em.scalar_const(0.5);
            let h = em.emit(Div, &[half, output])?;
            Ok(vec![Some(em.emit(Mul, &[g, h])?)])
        }
        Square => {
            let two = em.scalar_const(2.0);
            let t = em.emit(Mul, &[inputs[0], two])?;
            Ok(vec![Some(em.emit(Mul, &[g, t])?)])
        }
        Relu => {
            let zero = em.scalar_const(0.0);
            let mask_bool = em.emit(Greater, &[inputs[0], zero])?;
            let mask = em.emit(Cast { to: DType::F32 }, &[mask_bool])?;
            Ok(vec![Some(em.emit(Mul, &[g, mask])?)])
        }
        Tanh => {
            // 1 - out^2
            let sq = em.emit(Square, &[output])?;
            let one = em.scalar_const(1.0);
            let d = em.emit(Sub, &[one, sq])?;
            Ok(vec![Some(em.emit(Mul, &[g, d])?)])
        }
        Sigmoid => {
            // out * (1 - out)
            let one = em.scalar_const(1.0);
            let om = em.emit(Sub, &[one, output])?;
            let d = em.emit(Mul, &[output, om])?;
            Ok(vec![Some(em.emit(Mul, &[g, d])?)])
        }
        Clip { lo, hi } => {
            let lo_c = em.scalar_const(*lo);
            let hi_c = em.scalar_const(*hi);
            let ge = em.emit(GreaterEqual, &[inputs[0], lo_c])?;
            let le = em.emit(LessEqual, &[inputs[0], hi_c])?;
            let in_range = em.emit(LogicalAnd, &[ge, le])?;
            let mask = em.emit(Cast { to: DType::F32 }, &[in_range])?;
            Ok(vec![Some(em.emit(Mul, &[g, mask])?)])
        }
        Identity => Ok(vec![Some(g)]),
        StopGradient => Ok(vec![None]),
        Where => {
            let mask = em.emit(Cast { to: DType::F32 }, &[inputs[0]])?;
            let one = em.scalar_const(1.0);
            let inv = em.emit(Sub, &[one, mask])?;
            let ga_full = em.emit(Mul, &[g, mask])?;
            let gb_full = em.emit(Mul, &[g, inv])?;
            let ga = em.emit(ReduceToLike, &[ga_full, inputs[1]])?;
            let gb = em.emit(ReduceToLike, &[gb_full, inputs[2]])?;
            Ok(vec![None, Some(ga), Some(gb)])
        }
        MatMul => {
            // gA = g @ B^T ; gB = A^T @ g — expressed with the transposing
            // matmul variants so no transpose is ever materialized.
            let ga = em.emit(MatMulNT, &[g, inputs[1]])?;
            let gb = em.emit(MatMulTN, &[inputs[0], g])?;
            Ok(vec![Some(ga), Some(gb)])
        }
        MatMulNT => {
            // out = A @ B^T with A [m,k], B [n,k], g [m,n]
            // gA = g @ B ; gB = g^T @ A
            let ga = em.emit(MatMul, &[g, inputs[1]])?;
            let gb = em.emit(MatMulTN, &[g, inputs[0]])?;
            Ok(vec![Some(ga), Some(gb)])
        }
        MatMulTN => {
            // out = A^T @ B with A [k,m], B [k,n], g [m,n]
            // gA = B @ g^T ; gB = A @ g
            let ga = em.emit(MatMulNT, &[inputs[1], g])?;
            let gb = em.emit(MatMul, &[inputs[0], g])?;
            Ok(vec![Some(ga), Some(gb)])
        }
        BiasActivation { act } => {
            // Same local derivative as the standalone activation, computed
            // from the fused output, then the bias gradient reduces over the
            // broadcast axes exactly like Add's rule.
            let gz = match act {
                FusedAct::Linear => g,
                FusedAct::Relu => {
                    // y > 0 ⇔ z > 0 where y = relu(z)
                    let zero = em.scalar_const(0.0);
                    let mask_bool = em.emit(Greater, &[output, zero])?;
                    let mask = em.emit(Cast { to: DType::F32 }, &[mask_bool])?;
                    em.emit(Mul, &[g, mask])?
                }
                FusedAct::Tanh => {
                    let sq = em.emit(Square, &[output])?;
                    let one = em.scalar_const(1.0);
                    let d = em.emit(Sub, &[one, sq])?;
                    em.emit(Mul, &[g, d])?
                }
                FusedAct::Sigmoid => {
                    let one = em.scalar_const(1.0);
                    let om = em.emit(Sub, &[one, output])?;
                    let d = em.emit(Mul, &[output, om])?;
                    em.emit(Mul, &[g, d])?
                }
            };
            let gx = em.emit(ReduceToLike, &[gz, inputs[0]])?;
            let gb = em.emit(ReduceToLike, &[gz, inputs[1]])?;
            Ok(vec![Some(gx), Some(gb)])
        }
        Conv2d { stride, padding } => {
            let gx = em.emit(
                Conv2dBackpropInput { stride: *stride, padding: *padding },
                &[inputs[1], g, inputs[0]],
            )?;
            let gf = em.emit(
                Conv2dBackpropFilter { stride: *stride, padding: *padding },
                &[inputs[0], g, inputs[1]],
            )?;
            Ok(vec![Some(gx), Some(gf)])
        }
        Sum { axes, keep_dims } => {
            let gx = em.emit(
                Unreduce { axes: axes.clone(), keep_dims: *keep_dims, mean: false },
                &[g, inputs[0]],
            )?;
            Ok(vec![Some(gx)])
        }
        Mean { axes, keep_dims } => {
            let gx = em.emit(
                Unreduce { axes: axes.clone(), keep_dims: *keep_dims, mean: true },
                &[g, inputs[0]],
            )?;
            Ok(vec![Some(gx)])
        }
        MaxReduce { axes, keep_dims } | MinReduce { axes, keep_dims } => {
            // Route the gradient to the extremal element(s): mask where
            // input equals the broadcast output. Ties split the gradient
            // across all maximising positions (like TF's behaviour of
            // sending it to each tied element; we normalise by tie count to
            // conserve the gradient sum).
            let ub = Unreduce { axes: axes.clone(), keep_dims: *keep_dims, mean: false };
            let out_b = em.emit(ub.clone(), &[output, inputs[0]])?;
            let g_b = em.emit(ub, &[g, inputs[0]])?;
            let eq = em.emit(Equal, &[inputs[0], out_b])?;
            let mask = em.emit(Cast { to: DType::F32 }, &[eq])?;
            // tie count per lane
            let ties = em.emit(Sum { axes: axes.clone(), keep_dims: *keep_dims }, &[mask])?;
            let ties_b = em.emit(
                Unreduce { axes: axes.clone(), keep_dims: *keep_dims, mean: false },
                &[ties, inputs[0]],
            )?;
            let weighted = em.emit(Mul, &[g_b, mask])?;
            let gx = em.emit(Div, &[weighted, ties_b])?;
            Ok(vec![Some(gx)])
        }
        Softmax { axis } => {
            // g_in = out * (g - sum(g * out, axis, keep))
            let go = em.emit(Mul, &[g, output])?;
            let s = em.emit(Sum { axes: Some(vec![*axis]), keep_dims: true }, &[go])?;
            let diff = em.emit(Sub, &[g, s])?;
            Ok(vec![Some(em.emit(Mul, &[output, diff])?)])
        }
        LogSoftmax { axis } => {
            // g_in = g - exp(out) * sum(g, axis, keep)
            let s = em.emit(Sum { axes: Some(vec![*axis]), keep_dims: true }, &[g])?;
            let sm = em.emit(Exp, &[output])?;
            let corr = em.emit(Mul, &[sm, s])?;
            Ok(vec![Some(em.emit(Sub, &[g, corr])?)])
        }
        Gather => {
            let gx = em.emit(GatherGrad, &[g, inputs[1], inputs[0]])?;
            Ok(vec![Some(gx), None])
        }
        SelectIndex => {
            let gx = em.emit(SelectIndexGrad, &[g, inputs[1], inputs[0]])?;
            Ok(vec![Some(gx), None])
        }
        Reshape { .. } | ExpandDims { .. } | Squeeze { .. } => {
            Ok(vec![Some(em.emit(ReshapeLike, &[g, inputs[0]])?)])
        }
        ReshapeLike | UnfoldLike { .. } => {
            Ok(vec![Some(em.emit(ReshapeLike, &[g, inputs[0]])?), None])
        }
        Transpose { perm } => {
            let mut inv = vec![0usize; perm.len()];
            for (i, &p) in perm.iter().enumerate() {
                inv[p] = i;
            }
            Ok(vec![Some(em.emit(Transpose { perm: inv }, &[g])?)])
        }
        Concat { axis } => {
            let mut grads = Vec::with_capacity(inputs.len());
            for index in 0..inputs.len() {
                let mut args = vec![g];
                args.extend_from_slice(inputs);
                grads.push(Some(em.emit(ConcatGrad { axis: *axis, index }, &args)?));
            }
            Ok(grads)
        }
        Stack { axis } => {
            let mut grads = Vec::with_capacity(inputs.len());
            for (i, input) in inputs.iter().enumerate() {
                let sl = em.emit(Slice { axis: *axis, start: i, len: 1 }, &[g])?;
                grads.push(Some(em.emit(ReshapeLike, &[sl, *input])?));
            }
            Ok(grads)
        }
        Slice { axis, start, len } => {
            let gx =
                em.emit(SliceGrad { axis: *axis, start: *start, len: *len }, &[g, inputs[0]])?;
            Ok(vec![Some(gx)])
        }
        Tile { reps } => {
            let gx = em.emit(TileGrad { reps: reps.clone() }, &[g, inputs[0]])?;
            Ok(vec![Some(gx)])
        }
        ReduceToLike
        | Unreduce { .. }
        | GatherGrad
        | SelectIndexGrad
        | ConcatGrad { .. }
        | SliceGrad { .. }
        | TileGrad { .. }
        | Conv2dBackpropInput { .. }
        | Conv2dBackpropFilter { .. } => Err(tensor_err!(
            "no gradient rule for helper op {} (it should not appear on a forward path)",
            kind.name()
        )),
    }
}

#[cfg(test)]
mod tests {
    // The gradient rules are exercised end-to-end through the tape tests in
    // `crate::tape` and through the static-graph gradient tests in
    // `rlgraph-graph`; here we only sanity-check the helper-op rejection.
    use super::*;
    use crate::Tensor;

    struct Eager {
        vals: Vec<Tensor>,
    }

    impl OpEmitter for Eager {
        type Ref = usize;
        fn emit(&mut self, kind: OpKind, inputs: &[usize]) -> Result<usize> {
            let tensors: Vec<&Tensor> = inputs.iter().map(|&i| &self.vals[i]).collect();
            let out = crate::kernels::forward(&kind, &tensors)?;
            self.vals.push(out);
            Ok(self.vals.len() - 1)
        }
        fn scalar_const(&mut self, v: f32) -> usize {
            self.vals.push(Tensor::scalar(v));
            self.vals.len() - 1
        }
    }

    #[test]
    fn helper_ops_have_no_grad() {
        let mut em = Eager { vals: vec![Tensor::scalar(1.0), Tensor::scalar(1.0)] };
        let err = emit_grad(&mut em, &OpKind::ReduceToLike, &[0, 1], 0, 1);
        assert!(err.is_err());
    }

    #[test]
    fn identity_passes_gradient_through() {
        let mut em = Eager { vals: vec![Tensor::scalar(2.0), Tensor::scalar(5.0)] };
        let grads = emit_grad(&mut em, &OpKind::Identity, &[0], 0, 1).unwrap();
        assert_eq!(grads.len(), 1);
        assert_eq!(em.vals[grads[0].unwrap()].scalar_value().unwrap(), 5.0);
    }

    #[test]
    fn stop_gradient_blocks() {
        let mut em = Eager { vals: vec![Tensor::scalar(2.0), Tensor::scalar(5.0)] };
        let grads = emit_grad(&mut em, &OpKind::StopGradient, &[0], 0, 1).unwrap();
        assert!(grads[0].is_none());
    }
}
