//! Error type for tensor operations.

use std::fmt;

/// Error produced by tensor kernels and autodiff.
///
/// The message is lowercase, concise, and describes what went wrong, e.g.
/// `"shape mismatch in matmul: [2, 3] x [4, 5]"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorError {
    message: String,
}

impl TensorError {
    /// Creates a new error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        TensorError { message: message.into() }
    }

    /// The human-readable error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TensorError {}

/// Shorthand for building a [`TensorError`] with format arguments.
#[macro_export]
macro_rules! tensor_err {
    ($($arg:tt)*) => {
        $crate::TensorError::new(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_message() {
        let e = TensorError::new("bad shape");
        assert_eq!(e.to_string(), "bad shape");
        assert_eq!(e.message(), "bad shape");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn macro_formats() {
        let e = tensor_err!("axis {} out of range", 3);
        assert_eq!(e.message(), "axis 3 out of range");
    }
}
