//! Element data types.

use std::fmt;

/// The element type of a [`Tensor`](crate::Tensor).
///
/// RL workloads need three element families: floating point data (model
/// inputs, weights, rewards), integers (discrete actions, indices), and
/// booleans (terminal flags, masks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DType {
    /// 32-bit IEEE float.
    F32,
    /// 64-bit signed integer.
    I64,
    /// Boolean.
    Bool,
}

impl DType {
    /// Size of one element in bytes, as stored.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::I64 => 8,
            DType::Bool => 1,
        }
    }

    /// `true` if this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, DType::F32)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::I64 => "i64",
            DType::Bool => "bool",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(DType::F32.to_string(), "f32");
        assert_eq!(DType::I64.to_string(), "i64");
        assert_eq!(DType::Bool.to_string(), "bool");
    }

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::I64.size_bytes(), 8);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }

    #[test]
    fn float_predicate() {
        assert!(DType::F32.is_float());
        assert!(!DType::I64.is_float());
        assert!(!DType::Bool.is_float());
    }
}
