//! Eager reverse-mode autodiff for the define-by-run backend.

use crate::grad::{emit_grad, OpEmitter};
use crate::kernels::{forward, OpKind};
use crate::{tensor_err, Result, Tensor};
use std::collections::HashMap;

/// Handle to a value recorded on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValId(usize);

impl ValId {
    /// The raw index (for diagnostics).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
struct Entry {
    kind: OpKind,
    inputs: Vec<ValId>,
    output: ValId,
}

/// Records eager op applications so that [`Tape::backward`] can replay them
/// in reverse, evaluating the shared gradient rules eagerly.
///
/// # Example
///
/// ```
/// use rlgraph_tensor::{Tape, Tensor, OpKind};
///
/// # fn main() -> Result<(), rlgraph_tensor::TensorError> {
/// let mut tape = Tape::new();
/// let w = tape.leaf(Tensor::scalar(3.0), true);
/// let x = tape.leaf(Tensor::scalar(2.0), false);
/// let y = tape.apply(OpKind::Mul, &[w, x])?;
/// let grads = tape.backward(y)?;
/// assert_eq!(grads[&w].scalar_value()?, 2.0);
/// assert!(!grads.contains_key(&x));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Tape {
    values: Vec<Tensor>,
    requires_grad: Vec<bool>,
    entries: Vec<Entry>,
    recording: bool,
}

impl Tape {
    /// Creates an empty, recording tape.
    pub fn new() -> Self {
        Tape { values: Vec::new(), requires_grad: Vec::new(), entries: Vec::new(), recording: true }
    }

    /// Registers an input value. `requires_grad` marks it as a
    /// differentiation target for [`Tape::backward`].
    pub fn leaf(&mut self, value: Tensor, requires_grad: bool) -> ValId {
        self.values.push(value);
        self.requires_grad.push(requires_grad);
        ValId(self.values.len() - 1)
    }

    /// The tensor behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tape.
    pub fn value(&self, id: ValId) -> &Tensor {
        &self.values[id.0]
    }

    /// Takes the tensor behind a handle by cloning it out.
    pub fn take(&self, id: ValId) -> Tensor {
        self.values[id.0].clone()
    }

    /// Number of recorded values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether ops are currently recorded for backward.
    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// Enables/disables recording (inference mode when disabled).
    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
    }

    /// Applies `kind` eagerly, recording the application when recording is
    /// enabled and any input requires grad.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn apply(&mut self, kind: OpKind, inputs: &[ValId]) -> Result<ValId> {
        let tensors: Vec<&Tensor> = inputs.iter().map(|&i| &self.values[i.0]).collect();
        let out = forward(&kind, &tensors)?;
        let needs = self.recording
            && !matches!(kind, OpKind::StopGradient)
            && inputs.iter().any(|&i| self.requires_grad[i.0]);
        self.values.push(out);
        self.requires_grad.push(needs);
        let output = ValId(self.values.len() - 1);
        if needs {
            self.entries.push(Entry { kind, inputs: inputs.to_vec(), output });
        }
        Ok(output)
    }

    /// Runs reverse-mode accumulation from `loss` (which must be a scalar or
    /// will be seeded with ones) and returns gradients for every leaf marked
    /// `requires_grad` that `loss` depends on.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors raised while evaluating gradient rules.
    pub fn backward(&mut self, loss: ValId) -> Result<HashMap<ValId, Tensor>> {
        if loss.0 >= self.values.len() {
            return Err(tensor_err!("unknown value id {} in backward", loss.0));
        }
        let mut grads: HashMap<ValId, Tensor> = HashMap::new();
        grads.insert(loss, Tensor::ones(self.values[loss.0].shape()));
        // Entries are recorded in execution order; walk them backwards.
        // Disable recording so gradient evaluation does not grow `entries`
        // while we iterate.
        let entries = std::mem::take(&mut self.entries);
        let was_recording = self.recording;
        self.recording = false;
        let mut result: Result<()> = Ok(());
        for entry in entries.iter().rev() {
            let Some(gout) = grads.get(&entry.output).cloned() else {
                continue;
            };
            let gid = self.leaf(gout, false);
            let in_grads = match emit_grad(self, &entry.kind, &entry.inputs, entry.output, gid) {
                Ok(gs) => gs,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            };
            for (input, gref) in entry.inputs.iter().zip(in_grads) {
                let Some(gref) = gref else { continue };
                let g = self.values[gref.0].clone();
                match grads.entry(*input) {
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        let sum = forward(&OpKind::Add, &[o.get(), &g])?;
                        o.insert(sum);
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(g);
                    }
                }
            }
        }
        self.entries = entries;
        self.recording = was_recording;
        result?;
        grads.retain(|id, _| self.requires_grad.get(id.0).copied().unwrap_or(false) || *id == loss);
        Ok(grads)
    }
}

impl OpEmitter for Tape {
    type Ref = ValId;

    fn emit(&mut self, kind: OpKind, inputs: &[ValId]) -> Result<ValId> {
        self.apply(kind, inputs)
    }

    fn scalar_const(&mut self, v: f32) -> ValId {
        self.leaf(Tensor::scalar(v), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(tape: &mut Tape, data: &[f32], shape: &[usize]) -> ValId {
        tape.leaf(Tensor::from_vec(data.to_vec(), shape).unwrap(), true)
    }

    #[test]
    fn linear_gradient() {
        // loss = sum(w * x), dw = x
        let mut tape = Tape::new();
        let w = leaf(&mut tape, &[1.0, 2.0], &[2]);
        let x = tape.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap(), false);
        let y = tape.apply(OpKind::Mul, &[w, x]).unwrap();
        let loss = tape.apply(OpKind::Sum { axes: None, keep_dims: false }, &[y]).unwrap();
        let grads = tape.backward(loss).unwrap();
        assert_eq!(grads[&w].as_f32().unwrap(), &[3.0, 4.0]);
        assert!(!grads.contains_key(&x));
    }

    #[test]
    fn chain_rule_through_nonlinearity() {
        // loss = sum(relu(x)^2), grad = 2x for x > 0 else 0
        let mut tape = Tape::new();
        let x = leaf(&mut tape, &[-1.0, 2.0, 3.0], &[3]);
        let r = tape.apply(OpKind::Relu, &[x]).unwrap();
        let s = tape.apply(OpKind::Square, &[r]).unwrap();
        let loss = tape.apply(OpKind::Sum { axes: None, keep_dims: false }, &[s]).unwrap();
        let grads = tape.backward(loss).unwrap();
        assert_eq!(grads[&x].as_f32().unwrap(), &[0.0, 4.0, 6.0]);
    }

    #[test]
    fn matmul_gradients() {
        let mut tape = Tape::new();
        let a = leaf(&mut tape, &[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = leaf(&mut tape, &[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let y = tape.apply(OpKind::MatMul, &[a, b]).unwrap();
        let loss = tape.apply(OpKind::Sum { axes: None, keep_dims: false }, &[y]).unwrap();
        let grads = tape.backward(loss).unwrap();
        // dA = ones @ B^T
        assert_eq!(grads[&a].as_f32().unwrap(), &[11.0, 15.0, 11.0, 15.0]);
        // dB = A^T @ ones
        assert_eq!(grads[&b].as_f32().unwrap(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn gradient_accumulates_over_fanout() {
        // loss = sum(x * x) recorded as Mul(x, x): grad = 2x
        let mut tape = Tape::new();
        let x = leaf(&mut tape, &[3.0], &[1]);
        let y = tape.apply(OpKind::Mul, &[x, x]).unwrap();
        let loss = tape.apply(OpKind::Sum { axes: None, keep_dims: false }, &[y]).unwrap();
        let grads = tape.backward(loss).unwrap();
        assert_eq!(grads[&x].as_f32().unwrap(), &[6.0]);
    }

    #[test]
    fn stop_gradient_blocks_path() {
        let mut tape = Tape::new();
        let x = leaf(&mut tape, &[2.0], &[1]);
        let sg = tape.apply(OpKind::StopGradient, &[x]).unwrap();
        let y = tape.apply(OpKind::Mul, &[sg, sg]).unwrap();
        let loss = tape.apply(OpKind::Sum { axes: None, keep_dims: false }, &[y]).unwrap();
        let grads = tape.backward(loss).unwrap();
        assert!(!grads.contains_key(&x));
    }

    #[test]
    fn broadcast_bias_gradient() {
        // y = x + b with x [2,3], b [3]: db = column sums of ones = [2,2,2]
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(&[2, 3], crate::DType::F32), false);
        let b = leaf(&mut tape, &[0.0, 0.0, 0.0], &[3]);
        let y = tape.apply(OpKind::Add, &[x, b]).unwrap();
        let loss = tape.apply(OpKind::Sum { axes: None, keep_dims: false }, &[y]).unwrap();
        let grads = tape.backward(loss).unwrap();
        assert_eq!(grads[&b].as_f32().unwrap(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn softmax_grad_sums_to_zero() {
        let mut tape = Tape::new();
        let x = leaf(&mut tape, &[1.0, 2.0, 3.0], &[3]);
        let s = tape.apply(OpKind::Softmax { axis: 0 }, &[x]).unwrap();
        // loss = first element of softmax
        let idx = tape.leaf(Tensor::scalar_i64(0), false);
        let loss = tape.apply(OpKind::Gather, &[s, idx]).unwrap();
        let grads = tape.backward(loss).unwrap();
        let gx = grads[&x].as_f32().unwrap();
        let total: f32 = gx.iter().sum();
        assert!(total.abs() < 1e-5, "softmax grad should sum to ~0, got {}", total);
    }

    #[test]
    fn recording_toggle_skips_backward() {
        let mut tape = Tape::new();
        tape.set_recording(false);
        assert!(!tape.is_recording());
        let x = leaf(&mut tape, &[2.0], &[1]);
        let y = tape.apply(OpKind::Square, &[x]).unwrap();
        let grads = tape.backward(y).unwrap();
        assert!(!grads.contains_key(&x));
    }

    #[test]
    fn finite_difference_composite() {
        // f(x) = mean(sigmoid(x) * tanh(x))
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let x0 = Tensor::rand_uniform(&[5], -2.0, 2.0, &mut rng);
        let f = |x: &Tensor| -> f32 {
            let mut t = Tape::new();
            let xi = t.leaf(x.clone(), false);
            let s = t.apply(OpKind::Sigmoid, &[xi]).unwrap();
            let h = t.apply(OpKind::Tanh, &[xi]).unwrap();
            let m = t.apply(OpKind::Mul, &[s, h]).unwrap();
            let l = t.apply(OpKind::Mean { axes: None, keep_dims: false }, &[m]).unwrap();
            t.value(l).scalar_value().unwrap()
        };
        let mut tape = Tape::new();
        let xi = tape.leaf(x0.clone(), true);
        let s = tape.apply(OpKind::Sigmoid, &[xi]).unwrap();
        let h = tape.apply(OpKind::Tanh, &[xi]).unwrap();
        let m = tape.apply(OpKind::Mul, &[s, h]).unwrap();
        let l = tape.apply(OpKind::Mean { axes: None, keep_dims: false }, &[m]).unwrap();
        let grads = tape.backward(l).unwrap();
        let ana = grads[&xi].as_f32().unwrap().to_vec();
        let eps = 1e-3f32;
        for i in 0..5 {
            let mut xp = x0.clone();
            xp.as_f32_mut().unwrap()[i] += eps;
            let num = (f(&xp) - f(&x0)) / eps;
            assert!((num - ana[i]).abs() < 1e-2, "index {}: {} vs {}", i, num, ana[i]);
        }
    }

    #[test]
    fn backward_unknown_id_errors() {
        let mut tape = Tape::new();
        assert!(tape.backward(ValId(42)).is_err());
    }
}
