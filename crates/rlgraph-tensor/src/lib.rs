//! Eager tensors, operation kernels, and shared reverse-mode gradient rules.
//!
//! This crate is the numeric substrate for `rlgraph`. It plays the role that
//! TensorFlow/PyTorch kernels play for the original RLgraph (SysML 2019):
//!
//! * [`Tensor`] — a dense n-dimensional array over `f32`, `i64` or `bool`
//!   with NumPy-style broadcasting.
//! * [`OpKind`] — the closed vocabulary of operations. Every op has a
//!   *forward kernel* ([`forward`]) shared by the static-graph interpreter
//!   and the define-by-run backend.
//! * [`OpEmitter`] — the abstraction against which *gradient rules* are
//!   written exactly once ([`grad::emit_grad`]). The static backend
//!   implements [`OpEmitter`] by appending graph nodes (gradients become a
//!   graph transformation, as in TensorFlow); the define-by-run backend
//!   implements it by evaluating kernels eagerly (tape backward, as in
//!   PyTorch).
//! * [`Tape`] — eager reverse-mode autodiff for the define-by-run backend.
//!
//! # Example
//!
//! ```
//! use rlgraph_tensor::{Tensor, Tape, OpKind};
//!
//! # fn main() -> Result<(), rlgraph_tensor::TensorError> {
//! let mut tape = Tape::new();
//! let x = tape.leaf(Tensor::from_vec(vec![1.0f32, 2.0, 3.0], &[3])?, true);
//! let y = tape.apply(OpKind::Square, &[x])?;
//! let loss = tape.apply(OpKind::Sum { axes: None, keep_dims: false }, &[y])?;
//! let grads = tape.backward(loss)?;
//! assert_eq!(grads[&x].as_f32()?, &[2.0, 4.0, 6.0]);
//! # Ok(())
//! # }
//! ```

pub mod dtype;
pub mod error;
pub mod grad;
pub mod kernels;
pub mod pool;
pub mod shape;
pub mod tape;
pub mod tensor;

pub use dtype::DType;
pub use error::TensorError;
pub use grad::{emit_grad, OpEmitter};
pub use kernels::{forward, result_dtype, FusedAct, OpKind};
pub use tape::{Tape, ValId};
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
