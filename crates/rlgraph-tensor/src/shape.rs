//! Shape arithmetic: strides, broadcasting, and index iteration.

use crate::{tensor_err, Result};

/// Number of elements implied by a shape.
pub fn num_elements(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for a shape.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut out = vec![0usize; shape.len()];
    let mut acc = 1usize;
    for i in (0..shape.len()).rev() {
        out[i] = acc;
        acc *= shape[i];
    }
    out
}

/// Computes the NumPy-style broadcast of two shapes.
///
/// # Errors
///
/// Returns an error if the shapes are not broadcast-compatible.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Result<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() { 1 } else { a[i - (rank - a.len())] };
        let db = if i < rank - b.len() { 1 } else { b[i - (rank - b.len())] };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return Err(tensor_err!("shapes {:?} and {:?} are not broadcastable", a, b));
        };
    }
    Ok(out)
}

/// Strides for reading a tensor of shape `from` as if broadcast to `to`
/// (stride 0 on broadcast axes). `from` must be broadcastable to `to`.
pub fn broadcast_strides(from: &[usize], to: &[usize]) -> Vec<usize> {
    let base = strides(from);
    let offset = to.len() - from.len();
    let mut out = vec![0usize; to.len()];
    for i in 0..to.len() {
        if i < offset {
            out[i] = 0;
        } else {
            let d = from[i - offset];
            out[i] = if d == 1 && to[i] != 1 { 0 } else { base[i - offset] };
        }
    }
    out
}

/// Converts a flat index in `shape` into its multi-dimensional coordinates.
pub fn unravel(mut flat: usize, shape: &[usize]) -> Vec<usize> {
    let st = strides(shape);
    let mut coords = vec![0usize; shape.len()];
    for i in 0..shape.len() {
        coords[i] = flat / st[i];
        flat %= st[i];
    }
    coords
}

/// Dot product of coordinates with strides (flat offset).
pub fn ravel(coords: &[usize], strides: &[usize]) -> usize {
    coords.iter().zip(strides).map(|(c, s)| c * s).sum()
}

/// Resolves a shape spec that may contain a single `-1` wildcard against a
/// known element count (as in `reshape`).
///
/// # Errors
///
/// Errors if more than one `-1` appears, or the element counts disagree.
pub fn resolve_reshape(spec: &[isize], num: usize) -> Result<Vec<usize>> {
    let wilds = spec.iter().filter(|&&d| d == -1).count();
    if wilds > 1 {
        return Err(tensor_err!("reshape spec {:?} has more than one -1", spec));
    }
    let known: usize = spec.iter().filter(|&&d| d != -1).map(|&d| d as usize).product();
    let mut out = Vec::with_capacity(spec.len());
    for &d in spec {
        if d == -1 {
            if known == 0 || !num.is_multiple_of(known) {
                return Err(tensor_err!(
                    "cannot infer -1 in reshape {:?} for {} elements",
                    spec,
                    num
                ));
            }
            out.push(num / known);
        } else if d < 0 {
            return Err(tensor_err!("negative dimension {} in reshape {:?}", d, spec));
        } else {
            out.push(d as usize);
        }
    }
    if num_elements(&out) != num {
        return Err(tensor_err!("reshape {:?} incompatible with {} elements", spec, num));
    }
    Ok(out)
}

/// Normalises reduction axes: `None` means all axes; validates bounds and
/// returns a sorted, deduplicated list.
pub fn normalize_axes(axes: Option<&[usize]>, rank: usize) -> Result<Vec<usize>> {
    match axes {
        None => Ok((0..rank).collect()),
        Some(list) => {
            let mut v: Vec<usize> = list.to_vec();
            v.sort_unstable();
            v.dedup();
            if let Some(&bad) = v.iter().find(|&&a| a >= rank) {
                return Err(tensor_err!("axis {} out of range for rank {}", bad, rank));
            }
            Ok(v)
        }
    }
}

/// The shape remaining after reducing `axes` of `shape` (axes sorted).
pub fn reduced_shape(shape: &[usize], axes: &[usize], keep_dims: bool) -> Vec<usize> {
    let mut out = Vec::with_capacity(shape.len());
    for (i, &d) in shape.iter().enumerate() {
        if axes.contains(&i) {
            if keep_dims {
                out.push(1);
            }
        } else {
            out.push(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 4]).unwrap(), vec![2, 4]);
        assert_eq!(broadcast_shapes(&[], &[5]).unwrap(), vec![5]);
        assert!(broadcast_shapes(&[2, 3], &[4]).is_err());
    }

    #[test]
    fn broadcast_strides_zero_on_expanded() {
        assert_eq!(broadcast_strides(&[3], &[2, 3]), vec![0, 1]);
        assert_eq!(broadcast_strides(&[2, 1], &[2, 4]), vec![1, 0]);
    }

    #[test]
    fn unravel_ravel_roundtrip() {
        let shape = [2, 3, 4];
        let st = strides(&shape);
        for flat in 0..num_elements(&shape) {
            let coords = unravel(flat, &shape);
            assert_eq!(ravel(&coords, &st), flat);
        }
    }

    #[test]
    fn reshape_wildcard() {
        assert_eq!(resolve_reshape(&[-1, 4], 12).unwrap(), vec![3, 4]);
        assert_eq!(resolve_reshape(&[2, 6], 12).unwrap(), vec![2, 6]);
        assert!(resolve_reshape(&[-1, -1], 12).is_err());
        assert!(resolve_reshape(&[5], 12).is_err());
        assert!(resolve_reshape(&[-1, 5], 12).is_err());
    }

    #[test]
    fn axes_and_reduced_shape() {
        assert_eq!(normalize_axes(None, 3).unwrap(), vec![0, 1, 2]);
        assert_eq!(normalize_axes(Some(&[2, 0, 2]), 3).unwrap(), vec![0, 2]);
        assert!(normalize_axes(Some(&[3]), 3).is_err());
        assert_eq!(reduced_shape(&[2, 3, 4], &[1], false), vec![2, 4]);
        assert_eq!(reduced_shape(&[2, 3, 4], &[1], true), vec![2, 1, 4]);
    }
}
