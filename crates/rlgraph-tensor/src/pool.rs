//! Persistent intra-op worker pool shared by all kernels.
//!
//! The pool is spawned lazily on the first parallel kernel dispatch and
//! lives for the process. Its size comes from `RLGRAPH_NUM_THREADS`
//! (default: the machine's available parallelism); a value of `1` disables
//! the pool entirely and reproduces the single-thread execution path
//! instruction for instruction.
//!
//! # Determinism contract
//!
//! [`parallel_for`] distributes *disjoint* block indices to workers; every
//! output element is computed wholly inside one block, and kernels fix the
//! accumulation order per element independently of the block partition.
//! Results are therefore bit-identical for any thread count — parallelism
//! changes only which core runs a block, never what the block computes.
//!
//! Workers claim blocks dynamically from a shared atomic cursor and the
//! calling thread always participates, so a dispatch completes even when
//! every pool worker is busy with other jobs (this also makes nested
//! `parallel_for` calls deadlock-free).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::kernels::observe;

/// Hard cap on spawned workers, a guard against absurd env values.
const MAX_WORKERS: usize = 64;

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// `RLGRAPH_NUM_THREADS`, read once per process.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("RLGRAPH_NUM_THREADS") {
        Ok(v) => v.trim().parse().ok().filter(|&n| n >= 1).unwrap_or_else(default_threads),
        Err(_) => default_threads(),
    })
}

/// Process-wide programmatic override of the thread count (0 = none).
/// Used by benchmarks and the determinism tests to sweep thread counts
/// within one process; the env var is only read once.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the kernel thread count for subsequent dispatches.
///
/// `None` restores the `RLGRAPH_NUM_THREADS` / auto-detected default.
/// Changing the thread count never changes results (see the module-level
/// determinism contract); this exists so benchmarks and tests can sweep
/// thread counts in-process.
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0).min(MAX_WORKERS), Ordering::SeqCst);
}

/// The thread count the next parallel dispatch will use.
pub fn current_threads() -> usize {
    match OVERRIDE.load(Ordering::SeqCst) {
        0 => env_threads().min(MAX_WORKERS),
        n => n,
    }
}

/// Type-erased pointer to the per-block closure of an in-flight dispatch.
///
/// The pointee is borrowed from the dispatching stack frame;
/// [`parallel_for`] blocks until every block has run, so the borrow is live
/// for as long as any worker can dereference it.
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and `parallel_for` keeps the referent alive until all workers are done
// with it, so sending the pointer to pool threads is sound.
unsafe impl Send for TaskRef {}
unsafe impl Sync for TaskRef {}

/// Shared state of one `parallel_for` dispatch.
struct Job {
    task: TaskRef,
    blocks: usize,
    /// next unclaimed block index
    cursor: AtomicUsize,
    /// count of completed blocks, guarded for the completion condvar
    completed: Mutex<usize>,
    done: Condvar,
    poisoned: AtomicBool,
}

impl Job {
    /// Claims and runs blocks until the cursor is exhausted.
    fn work(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.blocks {
                return;
            }
            let task = self.task.0;
            // SAFETY: `parallel_for` keeps the closure alive until all
            // blocks are completed, and this block is not yet counted.
            let res =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (*task)(i) }));
            if res.is_err() {
                self.poisoned.store(true, Ordering::SeqCst);
            }
            let mut done = self.completed.lock().unwrap();
            *done += 1;
            if *done == self.blocks {
                self.done.notify_all();
            }
        }
    }
}

struct Pool {
    tx: Sender<Arc<Job>>,
    rx: Receiver<Arc<Job>>,
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let (tx, rx) = unbounded();
        Pool { tx, rx, spawned: Mutex::new(0) }
    })
}

impl Pool {
    /// Grows the worker set to at least `want` threads.
    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_WORKERS);
        let mut spawned = self.spawned.lock().unwrap();
        while *spawned < want {
            let rx = self.rx.clone();
            std::thread::Builder::new()
                .name(format!("rlgraph-kernel-{}", *spawned))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job.work();
                    }
                })
                .expect("failed to spawn kernel pool worker");
            *spawned += 1;
        }
    }
}

/// Runs `f(block)` for every `block in 0..blocks`, using up to the
/// configured number of threads. Blocks are claimed dynamically; the caller
/// participates and the call returns only when every block has run.
///
/// # Panics
///
/// Re-raises (as a panic on the calling thread) if any block panicked.
pub fn parallel_for(blocks: usize, f: &(dyn Fn(usize) + Sync)) {
    let threads = current_threads().min(blocks);
    if threads <= 1 {
        for i in 0..blocks {
            f(i);
        }
        return;
    }
    let pool = pool();
    pool.ensure_workers(threads - 1);
    // SAFETY: erases `f`'s lifetime to build a sendable pointer. Workers
    // only dereference it while running a claimed block, and `parallel_for`
    // blocks until every block has completed, so no dereference happens
    // after `f` goes out of scope (late workers see an exhausted cursor and
    // return without touching the pointer).
    let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    let job = Arc::new(Job {
        task: TaskRef(task as *const (dyn Fn(usize) + Sync)),
        blocks,
        cursor: AtomicUsize::new(0),
        completed: Mutex::new(0),
        done: Condvar::new(),
        poisoned: AtomicBool::new(false),
    });
    observe::pool_dispatch(pool.tx.len(), threads);
    for _ in 0..threads - 1 {
        let _ = pool.tx.send(Arc::clone(&job));
    }
    job.work();
    let mut done = job.completed.lock().unwrap();
    while *done < blocks {
        done = job.done.wait(done).unwrap();
    }
    drop(done);
    if job.poisoned.load(Ordering::SeqCst) {
        panic!("rlgraph-tensor kernel pool worker panicked");
    }
}

/// Runs `f(start, chunk)` over disjoint `chunk_len`-sized chunks of `out`
/// in parallel. Chunk boundaries depend only on `chunk_len`, never on the
/// thread count.
pub fn parallel_fill<T, F>(out: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = out.len();
    assert!(chunk_len > 0, "parallel_fill chunk_len must be positive");
    if n == 0 {
        return;
    }
    if current_threads() <= 1 || n <= chunk_len {
        f(0, out);
        return;
    }
    let chunks = n.div_ceil(chunk_len);
    let base = out.as_mut_ptr() as usize;
    parallel_for(chunks, &|ci| {
        let start = ci * chunk_len;
        let len = chunk_len.min(n - start);
        // SAFETY: chunks are disjoint subranges of `out`, which outlives
        // the dispatch (parallel_for blocks until all chunks complete).
        let chunk = unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(start), len) };
        f(start, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_when_one_thread() {
        set_threads(Some(1));
        let hits = Mutex::new(vec![false; 10]);
        parallel_for(10, &|i| hits.lock().unwrap()[i] = true);
        assert!(hits.lock().unwrap().iter().all(|&h| h));
        set_threads(None);
    }

    #[test]
    fn covers_all_blocks_in_parallel() {
        set_threads(Some(4));
        let count = AtomicUsize::new(0);
        parallel_for(100, &|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 100);
        set_threads(None);
    }

    #[test]
    fn parallel_fill_covers_disjoint_chunks() {
        set_threads(Some(3));
        let mut out = vec![0usize; 1000];
        parallel_fill(&mut out, 64, |start, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                *v = start + off;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
        set_threads(None);
    }

    #[test]
    fn nested_dispatch_completes() {
        set_threads(Some(2));
        let total = AtomicUsize::new(0);
        parallel_for(4, &|_| {
            parallel_for(4, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 16);
        set_threads(None);
    }

    #[test]
    fn worker_panic_propagates() {
        set_threads(Some(2));
        let res = std::panic::catch_unwind(|| {
            parallel_for(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(res.is_err());
        set_threads(None);
    }
}
