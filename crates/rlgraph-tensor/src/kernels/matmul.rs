//! 2-D matrix multiplication entry points.
//!
//! Each variant dispatches by problem size: tiny products run the naive
//! loops in [`super::reference`] (packing overhead dominates there), and
//! everything else runs the cache-blocked engine in [`super::gemm`]. Both
//! paths accumulate each output element in the same ascending-k order;
//! the blocked path uses fused multiply-adds, so the two agree within FMA
//! rounding (1e-4 in the parity suite). The cutoff depends only on the
//! problem shape, so which path runs — and therefore the result — is a
//! pure function of the inputs, never of the thread count.

use crate::{Result, Tensor};

use super::{gemm, observe, reference};

/// Below this many multiply-adds (`m*n*k`) the naive loops win.
const BLOCKED_MIN_WORK: usize = 8 * 1024;

fn work(a: &Tensor, b: &Tensor) -> usize {
    if a.rank() == 2 && b.rank() == 2 {
        a.shape()[0] * a.shape()[1] * b.shape()[1]
    } else {
        0
    }
}

/// `[m,k] x [k,n] -> [m,n]`, row-major.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if work(a, b) < BLOCKED_MIN_WORK {
        observe::record_small_matmul();
        return reference::matmul(a, b);
    }
    gemm::matmul_nn(a, b)
}

/// `[m,k] x [n,k]ᵀ -> [m,n]` without materializing the transpose.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if work(a, b) < BLOCKED_MIN_WORK {
        observe::record_small_matmul();
        return reference::matmul_nt(a, b);
    }
    gemm::matmul_nt(a, b)
}

/// `[k,m]ᵀ x [k,n] -> [m,n]` without materializing the transpose.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if work(a, b) < BLOCKED_MIN_WORK {
        observe::record_small_matmul();
        return reference::matmul_tn(a, b);
    }
    gemm::matmul_tn(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let r = matmul(&a, &b).unwrap();
        assert_eq!(r.as_f32().unwrap(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let r = matmul(&a, &b).unwrap();
        assert_eq!(r.shape(), &[2, 2]);
        assert_eq!(r.as_f32().unwrap(), &[4.0, 5.0, 10.0, 11.0]);
    }

    #[test]
    fn identity_preserves() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(matmul(&a, &eye).unwrap(), a);
    }

    #[test]
    fn shape_errors() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        assert!(matmul(&a, &b).is_err());
        let a2 = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b2 = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]).unwrap();
        assert!(matmul(&a2, &b2).is_err());
    }

    #[test]
    fn dispatch_paths_agree() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        // Straddle the cutoff: both paths compute the same ascending-k sum,
        // differing only by FMA vs mul+add rounding.
        for (m, k, n) in [(4, 16, 8), (48, 48, 48), (70, 33, 41)] {
            let a = Tensor::rand_uniform(&[m, k], -2.0, 2.0, &mut rng);
            let b = Tensor::rand_uniform(&[k, n], -2.0, 2.0, &mut rng);
            let blocked = gemm::matmul_nn(&a, &b).unwrap();
            let naive = reference::matmul(&a, &b).unwrap();
            assert!(blocked.allclose(&naive, 1e-4), "blocked and naive differ for {m}x{k}x{n}");
        }
    }
}
