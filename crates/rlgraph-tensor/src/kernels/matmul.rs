//! 2-D matrix multiplication.

use crate::{tensor_err, Result, Tensor};

/// `[m,k] x [k,n] -> [m,n]`, row-major, ikj loop order for cache locality.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(tensor_err!(
            "matmul requires rank-2 tensors, found {:?} x {:?}",
            a.shape(),
            b.shape()
        ));
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(tensor_err!("shape mismatch in matmul: {:?} x {:?}", a.shape(), b.shape()));
    }
    let av = a.as_f32()?;
    let bv = b.as_f32()?;
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let brow = &bv[p * n..(p + 1) * n];
            for j in 0..n {
                orow[j] += aval * brow[j];
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let r = matmul(&a, &b).unwrap();
        assert_eq!(r.as_f32().unwrap(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let r = matmul(&a, &b).unwrap();
        assert_eq!(r.shape(), &[2, 2]);
        assert_eq!(r.as_f32().unwrap(), &[4.0, 5.0, 10.0, 11.0]);
    }

    #[test]
    fn identity_preserves() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(matmul(&a, &eye).unwrap(), a);
    }

    #[test]
    fn shape_errors() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        assert!(matmul(&a, &b).is_err());
        let a2 = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b2 = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]).unwrap();
        assert!(matmul(&a2, &b2).is_err());
    }
}
