//! Kernel-engine observability: op counters, flops/bytes tallies, and pool
//! gauges, reported through an installed [`rlgraph_obs::Recorder`].
//!
//! The sink is process-global (kernels have no session handle to thread a
//! recorder through) and costs one relaxed atomic load per kernel when no
//! recorder is installed. Metric handles are resolved once at install time
//! and cached, so the per-kernel cost with a recorder is a mutex-free
//! counter bump.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use rlgraph_obs::{Counter, Gauge, Recorder};

struct Sink {
    gemm_calls: Counter,
    gemm_small_calls: Counter,
    gemm_nn: Counter,
    gemm_nt: Counter,
    gemm_tn: Counter,
    conv_calls: Counter,
    flops: Gauge,
    bytes: Gauge,
    pool_jobs: Counter,
    pool_queue_depth: Gauge,
    pool_threads: Gauge,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static Mutex<Option<Arc<Sink>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Sink>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs `rec` as the process-wide kernel metrics sink (replacing any
/// previous one). A disabled recorder uninstalls the sink, returning the
/// kernels to their zero-cost path.
pub fn install_recorder(rec: &Recorder) {
    let mut guard = slot().lock().unwrap();
    if !rec.is_enabled() {
        *guard = None;
        ENABLED.store(false, Ordering::SeqCst);
        return;
    }
    *guard = Some(Arc::new(Sink {
        gemm_calls: rec.counter("kernel.gemm.calls"),
        gemm_small_calls: rec.counter("kernel.gemm.small_calls"),
        gemm_nn: rec.counter("kernel.gemm.nn"),
        gemm_nt: rec.counter("kernel.gemm.nt"),
        gemm_tn: rec.counter("kernel.gemm.tn"),
        conv_calls: rec.counter("kernel.conv2d.calls"),
        flops: rec.gauge("kernel.flops_total"),
        bytes: rec.gauge("kernel.bytes_total"),
        pool_jobs: rec.counter("kernel.pool.jobs"),
        pool_queue_depth: rec.gauge("kernel.pool.queue_depth"),
        pool_threads: rec.gauge("kernel.pool.threads"),
    }));
    ENABLED.store(true, Ordering::SeqCst);
}

fn sink() -> Option<Arc<Sink>> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    slot().lock().unwrap().clone()
}

/// Records one blocked-GEMM dispatch of the given layout and dimensions.
pub(crate) fn record_gemm(layout: &str, m: usize, n: usize, k: usize) {
    if let Some(s) = sink() {
        s.gemm_calls.inc();
        match layout {
            "nn" => s.gemm_nn.inc(),
            "nt" => s.gemm_nt.inc(),
            _ => s.gemm_tn.inc(),
        }
        s.flops.add(2.0 * m as f64 * n as f64 * k as f64);
        // packed operand + output traffic, one f32 each way
        s.bytes.add(4.0 * (m as f64 * k as f64 + k as f64 * n as f64 + 2.0 * m as f64 * n as f64));
    }
}

/// Records one small-shape matmul that took the naive path.
pub(crate) fn record_small_matmul() {
    if let Some(s) = sink() {
        s.gemm_small_calls.inc();
    }
}

/// Records one im2col conv dispatch with its total multiply-add count.
pub(crate) fn record_conv(madds: usize) {
    if let Some(s) = sink() {
        s.conv_calls.inc();
        s.flops.add(2.0 * madds as f64);
    }
}

/// Records one pool dispatch: channel backlog at submit time and the
/// thread count used.
pub(crate) fn pool_dispatch(queue_depth: usize, threads: usize) {
    if let Some(s) = sink() {
        s.pool_jobs.inc();
        s.pool_queue_depth.set(queue_depth as f64);
        s.pool_threads.set(threads as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn metrics_flow_into_recorder() {
        let rec = Recorder::wall();
        install_recorder(&rec);
        let a = Tensor::ones(&[32, 32]);
        let b = Tensor::ones(&[32, 32]);
        let _ = crate::kernels::gemm::matmul_nn(&a, &b).unwrap();
        install_recorder(&Recorder::disabled());
        let snap = rec.metrics_snapshot();
        // Other tests in this binary may run kernels concurrently while the
        // sink is installed, so assert lower bounds rather than equality.
        let calls = snap.counters.iter().find(|(n, _)| n == "kernel.gemm.calls").map(|(_, v)| *v);
        assert!(calls.unwrap_or(0) >= 1);
        let flops =
            snap.gauges.iter().find(|(n, _)| n == "kernel.flops_total").map(|(_, v)| *v).unwrap();
        assert!(flops >= 2.0 * 32.0 * 32.0 * 32.0);
    }
}
