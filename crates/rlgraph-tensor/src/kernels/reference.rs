//! Reference kernels: the straightforward loop implementations.
//!
//! These are the ground truth for the parity test suite and the fast path
//! for tiny shapes, where the blocked engine's packing overhead dominates.
//! The matmul variants accumulate each output element in ascending-k order
//! with separate multiply and add. The blocked engine in [`super::gemm`]
//! keeps the same per-element order but uses fused multiply-adds, so the
//! two agree within FMA rounding (1e-4 in the parity suite); the size-based
//! dispatch in `super::matmul` depends only on the shape, so it never
//! introduces thread-count or run-to-run variation.

use crate::{tensor_err, Result, Tensor};

use super::conv::{check, conv_out_dim, dims4};

/// Naive `[m,k] x [k,n] -> [m,n]`, row-major, ikj loop order.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(tensor_err!(
            "matmul requires rank-2 tensors, found {:?} x {:?}",
            a.shape(),
            b.shape()
        ));
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(tensor_err!("shape mismatch in matmul: {:?} x {:?}", a.shape(), b.shape()));
    }
    let av = a.as_f32()?;
    let bv = b.as_f32()?;
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            let brow = &bv[p * n..(p + 1) * n];
            for j in 0..n {
                orow[j] += aval * brow[j];
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Naive `[m,k] x [n,k]ᵀ -> [m,n]` (row-dot-row).
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(tensor_err!(
            "matmul_nt requires rank-2 tensors, found {:?} x {:?}",
            a.shape(),
            b.shape()
        ));
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(tensor_err!("shape mismatch in matmul_nt: {:?} x {:?}", a.shape(), b.shape()));
    }
    let av = a.as_f32()?;
    let bv = b.as_f32()?;
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += arow[p] * brow[p];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Naive `[k,m]ᵀ x [k,n] -> [m,n]`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(tensor_err!(
            "matmul_tn requires rank-2 tensors, found {:?} x {:?}",
            a.shape(),
            b.shape()
        ));
    }
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(tensor_err!("shape mismatch in matmul_tn: {:?} x {:?}", a.shape(), b.shape()));
    }
    let av = a.as_f32()?;
    let bv = b.as_f32()?;
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += av[p * m + i] * bv[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Direct-loop forward convolution: input `[b,c,h,w]`, filters
/// `[o,c,kh,kw]` → `[b,o,h',w']`.
pub fn conv2d(input: &Tensor, filters: &Tensor, stride: usize, padding: usize) -> Result<Tensor> {
    check(input, filters, stride)?;
    let (b, c, h, w) = dims4(input);
    let (o, _, kh, kw) = dims4(filters);
    let oh = conv_out_dim(h, kh, stride, padding)?;
    let ow = conv_out_dim(w, kw, stride, padding)?;
    let x = input.as_f32()?;
    let f = filters.as_f32()?;
    let mut out = vec![0.0f32; b * o * oh * ow];
    for bi in 0..b {
        for oi in 0..o {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ci in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let xi = ((bi * c + ci) * h + iy as usize) * w + ix as usize;
                                let fi = ((oi * c + ci) * kh + ky) * kw + kx;
                                acc += x[xi] * f[fi];
                            }
                        }
                    }
                    out[((bi * o + oi) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, &[b, o, oh, ow])
}

/// Direct-loop gradient of [`conv2d`] w.r.t. the input.
///
/// Arguments: `filters [o,c,kh,kw]`, `grad_out [b,o,h',w']`, and the
/// original input (only its shape is read).
pub fn conv2d_backprop_input(
    filters: &Tensor,
    grad_out: &Tensor,
    input_ref: &Tensor,
    stride: usize,
    padding: usize,
) -> Result<Tensor> {
    check(input_ref, filters, stride)?;
    let (b, c, h, w) = dims4(input_ref);
    let (o, _, kh, kw) = dims4(filters);
    let (gb, go, oh, ow) = dims4(grad_out);
    if gb != b || go != o {
        return Err(tensor_err!(
            "conv2d_backprop_input grad shape {:?} inconsistent with input {:?} filters {:?}",
            grad_out.shape(),
            input_ref.shape(),
            filters.shape()
        ));
    }
    let g = grad_out.as_f32()?;
    let f = filters.as_f32()?;
    let mut out = vec![0.0f32; b * c * h * w];
    for bi in 0..b {
        for oi in 0..o {
            for oy in 0..oh {
                for ox in 0..ow {
                    let gval = g[((bi * o + oi) * oh + oy) * ow + ox];
                    if gval == 0.0 {
                        continue;
                    }
                    for ci in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let xi = ((bi * c + ci) * h + iy as usize) * w + ix as usize;
                                let fi = ((oi * c + ci) * kh + ky) * kw + kx;
                                out[xi] += gval * f[fi];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[b, c, h, w])
}

/// Direct-loop gradient of [`conv2d`] w.r.t. the filters.
///
/// Arguments: `input [b,c,h,w]`, `grad_out [b,o,h',w']`, and the original
/// filters (only their shape is read).
pub fn conv2d_backprop_filter(
    input: &Tensor,
    grad_out: &Tensor,
    filter_ref: &Tensor,
    stride: usize,
    padding: usize,
) -> Result<Tensor> {
    check(input, filter_ref, stride)?;
    let (b, c, h, w) = dims4(input);
    let (o, _, kh, kw) = dims4(filter_ref);
    let (gb, go, oh, ow) = dims4(grad_out);
    if gb != b || go != o {
        return Err(tensor_err!(
            "conv2d_backprop_filter grad shape {:?} inconsistent with input {:?} filters {:?}",
            grad_out.shape(),
            input.shape(),
            filter_ref.shape()
        ));
    }
    let x = input.as_f32()?;
    let g = grad_out.as_f32()?;
    let mut out = vec![0.0f32; o * c * kh * kw];
    for bi in 0..b {
        for oi in 0..o {
            for oy in 0..oh {
                for ox in 0..ow {
                    let gval = g[((bi * o + oi) * oh + oy) * ow + ox];
                    if gval == 0.0 {
                        continue;
                    }
                    for ci in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let xi = ((bi * c + ci) * h + iy as usize) * w + ix as usize;
                                let fi = ((oi * c + ci) * kh + ky) * kw + kx;
                                out[fi] += gval * x[xi];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[o, c, kh, kw])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let r = matmul(&a, &b).unwrap();
        assert_eq!(r.as_f32().unwrap(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn nt_tn_agree_with_nn_on_transposed_inputs() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let (m, k, n) = (3, 5, 4);
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
        let at = crate::kernels::shape_ops::transpose(&a, &[1, 0]).unwrap();
        let bt = crate::kernels::shape_ops::transpose(&b, &[1, 0]).unwrap();
        let nn = matmul(&a, &b).unwrap();
        assert_eq!(matmul_nt(&a, &bt).unwrap(), nn);
        assert_eq!(matmul_tn(&at, &b).unwrap(), nn);
    }
}
