//! 2-D convolution and its two backprop kernels (NCHW / OIHW layout).
//!
//! Above a size cutoff all three kernels lower to im2col/col2im plus the
//! blocked GEMM engine in [`super::gemm`]; tiny shapes fall back to the
//! direct loops in [`super::reference`]. The dispatch depends only on the
//! problem size, and each batch image is processed wholly inside one pool
//! task, so results are deterministic and independent of the thread count.

use crate::{pool, tensor_err, Result, Tensor};

use super::gemm::{gemm_f32, Layout};
use super::{observe, reference};

pub(crate) fn conv_out_dim(
    input: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Result<usize> {
    let padded = input + 2 * padding;
    if padded < kernel {
        return Err(tensor_err!("conv kernel {} larger than padded input {}", kernel, padded));
    }
    Ok((padded - kernel) / stride + 1)
}

pub(crate) fn check(input: &Tensor, filters: &Tensor, stride: usize) -> Result<()> {
    if input.rank() != 4 {
        return Err(tensor_err!("conv2d input must be [b,c,h,w], found {:?}", input.shape()));
    }
    if filters.rank() != 4 {
        return Err(tensor_err!("conv2d filters must be [o,c,kh,kw], found {:?}", filters.shape()));
    }
    if input.shape()[1] != filters.shape()[1] {
        return Err(tensor_err!(
            "conv2d channel mismatch: input {:?} vs filters {:?}",
            input.shape(),
            filters.shape()
        ));
    }
    if stride == 0 {
        return Err(tensor_err!("conv2d stride must be positive"));
    }
    Ok(())
}

pub(crate) fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3])
}

/// Below this many per-image multiply-adds the direct loop beats
/// im2col+GEMM (the column buffer costs more than it saves).
const GEMM_MIN_WORK: usize = 8 * 1024;

/// Geometry of one conv problem, shared by the three kernels.
#[derive(Clone, Copy)]
struct Geom {
    b: usize,
    c: usize,
    h: usize,
    w: usize,
    o: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
    stride: usize,
    padding: usize,
}

impl Geom {
    fn resolve(input: &Tensor, filters: &Tensor, stride: usize, padding: usize) -> Result<Geom> {
        check(input, filters, stride)?;
        let (b, c, h, w) = dims4(input);
        let (o, _, kh, kw) = dims4(filters);
        let oh = conv_out_dim(h, kh, stride, padding)?;
        let ow = conv_out_dim(w, kw, stride, padding)?;
        Ok(Geom { b, c, h, w, o, kh, kw, oh, ow, stride, padding })
    }

    /// Rows of the im2col matrix: `c * kh * kw`.
    fn col_rows(&self) -> usize {
        self.c * self.kh * self.kw
    }

    /// Columns of the im2col matrix: `oh * ow`.
    fn col_cols(&self) -> usize {
        self.oh * self.ow
    }

    /// Per-image GEMM multiply-adds.
    fn work(&self) -> usize {
        self.o * self.col_rows() * self.col_cols()
    }

    fn check_grad(&self, grad_out: &Tensor, against: &str) -> Result<()> {
        let (gb, go, goh, gow) = dims4(grad_out);
        if gb != self.b || go != self.o || goh != self.oh || gow != self.ow {
            return Err(tensor_err!(
                "{} grad shape {:?} inconsistent with expected [{}, {}, {}, {}]",
                against,
                grad_out.shape(),
                self.b,
                self.o,
                self.oh,
                self.ow
            ));
        }
        Ok(())
    }
}

/// Writes the im2col matrix `[c*kh*kw, oh*ow]` for one `[c,h,w]` image.
fn im2col(x: &[f32], g: &Geom, col: &mut [f32]) {
    debug_assert_eq!(col.len(), g.col_rows() * g.col_cols());
    let mut r = 0;
    for ci in 0..g.c {
        let plane = &x[ci * g.h * g.w..(ci + 1) * g.h * g.w];
        for ky in 0..g.kh {
            for kx in 0..g.kw {
                let row = &mut col[r * g.col_cols()..(r + 1) * g.col_cols()];
                for oy in 0..g.oh {
                    let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                    let dst = &mut row[oy * g.ow..(oy + 1) * g.ow];
                    if iy < 0 || iy as usize >= g.h {
                        dst.fill(0.0);
                        continue;
                    }
                    let src_row = &plane[iy as usize * g.w..(iy as usize + 1) * g.w];
                    for (ox, d) in dst.iter_mut().enumerate() {
                        let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                        *d = if ix < 0 || ix as usize >= g.w { 0.0 } else { src_row[ix as usize] };
                    }
                }
                r += 1;
            }
        }
    }
}

/// Scatter-adds a `[c*kh*kw, oh*ow]` column-gradient matrix back into one
/// `[c,h,w]` image gradient.
fn col2im(colg: &[f32], g: &Geom, img: &mut [f32]) {
    debug_assert_eq!(img.len(), g.c * g.h * g.w);
    let mut r = 0;
    for ci in 0..g.c {
        let plane = &mut img[ci * g.h * g.w..(ci + 1) * g.h * g.w];
        for ky in 0..g.kh {
            for kx in 0..g.kw {
                let row = &colg[r * g.col_cols()..(r + 1) * g.col_cols()];
                for oy in 0..g.oh {
                    let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                    if iy < 0 || iy as usize >= g.h {
                        continue;
                    }
                    let dst_row = &mut plane[iy as usize * g.w..(iy as usize + 1) * g.w];
                    let src = &row[oy * g.ow..(oy + 1) * g.ow];
                    for (ox, &v) in src.iter().enumerate() {
                        let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                        if ix >= 0 && (ix as usize) < g.w {
                            dst_row[ix as usize] += v;
                        }
                    }
                }
                r += 1;
            }
        }
    }
}

/// Forward convolution: input `[b,c,h,w]`, filters `[o,c,kh,kw]` →
/// `[b,o,h',w']`. Dispatches between the direct loop and im2col+GEMM by
/// problem size.
pub fn conv2d(input: &Tensor, filters: &Tensor, stride: usize, padding: usize) -> Result<Tensor> {
    let g = Geom::resolve(input, filters, stride, padding)?;
    if g.work() < GEMM_MIN_WORK {
        return reference::conv2d(input, filters, stride, padding);
    }
    conv2d_im2col(input, filters, stride, padding)
}

/// Forward convolution via im2col + blocked GEMM (always; exported for
/// parity tests and benchmarks).
pub fn conv2d_im2col(
    input: &Tensor,
    filters: &Tensor,
    stride: usize,
    padding: usize,
) -> Result<Tensor> {
    let g = Geom::resolve(input, filters, stride, padding)?;
    let x = input.as_f32()?;
    let f = filters.as_f32()?;
    observe::record_conv(g.b * g.work());
    let mut out = vec![0.0f32; g.b * g.o * g.col_cols()];
    let image = g.c * g.h * g.w;
    let out_image = g.o * g.col_cols();
    let batch_par = pool::current_threads() > 1 && g.b > 1;
    let obase = out.as_mut_ptr() as usize;
    let per_image = |bi: usize| {
        let mut col = vec![0.0f32; g.col_rows() * g.col_cols()];
        im2col(&x[bi * image..(bi + 1) * image], &g, &mut col);
        // SAFETY: per-image output slices are disjoint and `out` outlives
        // the dispatch.
        let out_b = unsafe {
            std::slice::from_raw_parts_mut((obase as *mut f32).add(bi * out_image), out_image)
        };
        // out_b [o, oh*ow] = filters [o, c*kh*kw] @ col
        gemm_f32(Layout::NN, g.o, g.col_cols(), g.col_rows(), f, &col, out_b, false, !batch_par);
    };
    if batch_par {
        pool::parallel_for(g.b, &per_image);
    } else {
        for bi in 0..g.b {
            per_image(bi);
        }
    }
    Tensor::from_vec(out, &[g.b, g.o, g.oh, g.ow])
}

/// Gradient of [`conv2d`] w.r.t. the input.
///
/// Arguments: `filters [o,c,kh,kw]`, `grad_out [b,o,h',w']`, and the
/// original input (only its shape is read).
pub fn conv2d_backprop_input(
    filters: &Tensor,
    grad_out: &Tensor,
    input_ref: &Tensor,
    stride: usize,
    padding: usize,
) -> Result<Tensor> {
    let g = Geom::resolve(input_ref, filters, stride, padding)?;
    if g.work() < GEMM_MIN_WORK {
        return reference::conv2d_backprop_input(filters, grad_out, input_ref, stride, padding);
    }
    conv2d_backprop_input_im2col(filters, grad_out, input_ref, stride, padding)
}

/// Input gradient via GEMM + col2im (always; exported for parity tests).
pub fn conv2d_backprop_input_im2col(
    filters: &Tensor,
    grad_out: &Tensor,
    input_ref: &Tensor,
    stride: usize,
    padding: usize,
) -> Result<Tensor> {
    let g = Geom::resolve(input_ref, filters, stride, padding)?;
    g.check_grad(grad_out, "conv2d_backprop_input")?;
    let f = filters.as_f32()?;
    let gv = grad_out.as_f32()?;
    observe::record_conv(g.b * g.work());
    let mut out = vec![0.0f32; g.b * g.c * g.h * g.w];
    let image = g.c * g.h * g.w;
    let out_image = g.o * g.col_cols();
    let batch_par = pool::current_threads() > 1 && g.b > 1;
    let obase = out.as_mut_ptr() as usize;
    let per_image = |bi: usize| {
        // colg [c*kh*kw, oh*ow] = filters [o, c*kh*kw]ᵀ @ grad_b [o, oh*ow]
        let mut colg = vec![0.0f32; g.col_rows() * g.col_cols()];
        gemm_f32(
            Layout::TN,
            g.col_rows(),
            g.col_cols(),
            g.o,
            f,
            &gv[bi * out_image..(bi + 1) * out_image],
            &mut colg,
            false,
            !batch_par,
        );
        // SAFETY: per-image gradient slices are disjoint and `out`
        // outlives the dispatch.
        let img =
            unsafe { std::slice::from_raw_parts_mut((obase as *mut f32).add(bi * image), image) };
        col2im(&colg, &g, img);
    };
    if batch_par {
        pool::parallel_for(g.b, &per_image);
    } else {
        for bi in 0..g.b {
            per_image(bi);
        }
    }
    Tensor::from_vec(out, &[g.b, g.c, g.h, g.w])
}

/// Gradient of [`conv2d`] w.r.t. the filters.
///
/// Arguments: `input [b,c,h,w]`, `grad_out [b,o,h',w']`, and the original
/// filters (only their shape is read).
pub fn conv2d_backprop_filter(
    input: &Tensor,
    grad_out: &Tensor,
    filter_ref: &Tensor,
    stride: usize,
    padding: usize,
) -> Result<Tensor> {
    let g = Geom::resolve(input, filter_ref, stride, padding)?;
    if g.work() < GEMM_MIN_WORK {
        return reference::conv2d_backprop_filter(input, grad_out, filter_ref, stride, padding);
    }
    conv2d_backprop_filter_im2col(input, grad_out, filter_ref, stride, padding)
}

/// Filter gradient via im2col + GEMM (always; exported for parity tests).
///
/// Batches accumulate sequentially in ascending batch order, so the result
/// is independent of the thread count (row blocks inside the GEMM are
/// disjoint).
pub fn conv2d_backprop_filter_im2col(
    input: &Tensor,
    grad_out: &Tensor,
    filter_ref: &Tensor,
    stride: usize,
    padding: usize,
) -> Result<Tensor> {
    let g = Geom::resolve(input, filter_ref, stride, padding)?;
    g.check_grad(grad_out, "conv2d_backprop_filter")?;
    let x = input.as_f32()?;
    let gv = grad_out.as_f32()?;
    observe::record_conv(g.b * g.work());
    let mut gf = vec![0.0f32; g.o * g.col_rows()];
    let image = g.c * g.h * g.w;
    let out_image = g.o * g.col_cols();
    let mut col = vec![0.0f32; g.col_rows() * g.col_cols()];
    for bi in 0..g.b {
        im2col(&x[bi * image..(bi + 1) * image], &g, &mut col);
        // gf [o, c*kh*kw] += grad_b [o, oh*ow] @ col [c*kh*kw, oh*ow]ᵀ
        gemm_f32(
            Layout::NT,
            g.o,
            g.col_rows(),
            g.col_cols(),
            &gv[bi * out_image..(bi + 1) * out_image],
            &col,
            &mut gf,
            bi > 0,
            true,
        );
    }
    Tensor::from_vec(gf, &[g.o, g.c, g.kh, g.kw])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel() {
        // 1x1 kernel of value 1 reproduces the input.
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let f = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]).unwrap();
        let y = conv2d(&x, &f, 1, 0).unwrap();
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        assert_eq!(y.as_f32().unwrap(), x.as_f32().unwrap());
    }

    #[test]
    fn box_filter() {
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let f = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv2d(&x, &f, 1, 0).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_f32().unwrap(), &[4.0; 4]);
    }

    #[test]
    fn stride_and_padding() {
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let f = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv2d(&x, &f, 2, 0).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        let yp = conv2d(&x, &f, 1, 1).unwrap();
        assert_eq!(yp.shape(), &[1, 1, 5, 5]);
        // corner sees only one input element
        assert_eq!(yp.get_f32(&[0, 0, 0, 0]).unwrap(), 1.0);
        // interior sees four
        assert_eq!(yp.get_f32(&[0, 0, 2, 2]).unwrap(), 4.0);
    }

    #[test]
    fn multi_channel_sum() {
        // 2 input channels, each filter sums both channels.
        let x = Tensor::from_vec(vec![1.0; 2 * 2 * 2], &[1, 2, 2, 2]).unwrap();
        let f = Tensor::from_vec(vec![1.0; 2], &[1, 2, 1, 1]).unwrap();
        let y = conv2d(&x, &f, 1, 0).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[2.0; 4]);
    }

    #[test]
    fn shape_checks() {
        let x3 = Tensor::ones(&[1, 2, 2]);
        let f = Tensor::ones(&[1, 1, 1, 1]);
        assert!(conv2d(&x3, &f, 1, 0).is_err());
        let x = Tensor::ones(&[1, 2, 2, 2]);
        assert!(conv2d(&x, &f, 1, 0).is_err()); // channel mismatch
        let f2 = Tensor::ones(&[1, 2, 1, 1]);
        assert!(conv2d(&x, &f2, 0, 0).is_err()); // zero stride
        let fbig = Tensor::ones(&[1, 2, 5, 5]);
        assert!(conv2d(&x, &fbig, 1, 0).is_err()); // kernel too large
    }

    #[test]
    fn im2col_path_matches_direct() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let x = Tensor::rand_uniform(&[2, 3, 6, 5], -1.0, 1.0, &mut rng);
        let f = Tensor::rand_uniform(&[4, 3, 3, 2], -1.0, 1.0, &mut rng);
        for (stride, padding) in [(1, 0), (1, 1), (2, 1), (2, 2)] {
            let direct = reference::conv2d(&x, &f, stride, padding).unwrap();
            let lowered = conv2d_im2col(&x, &f, stride, padding).unwrap();
            assert!(lowered.allclose(&direct, 1e-4), "stride {} pad {}", stride, padding);
            let g = Tensor::ones(direct.shape());
            let gi_d = reference::conv2d_backprop_input(&f, &g, &x, stride, padding).unwrap();
            let gi_l = conv2d_backprop_input_im2col(&f, &g, &x, stride, padding).unwrap();
            assert!(gi_l.allclose(&gi_d, 1e-4));
            let gf_d = reference::conv2d_backprop_filter(&x, &g, &f, stride, padding).unwrap();
            let gf_l = conv2d_backprop_filter_im2col(&x, &g, &f, stride, padding).unwrap();
            assert!(gf_l.allclose(&gf_d, 1e-4));
        }
    }

    /// Finite-difference check of both backprop kernels.
    #[test]
    fn backprops_match_finite_difference() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let x = Tensor::rand_uniform(&[2, 2, 4, 4], -1.0, 1.0, &mut rng);
        let f = Tensor::rand_uniform(&[3, 2, 2, 2], -1.0, 1.0, &mut rng);
        let (stride, padding) = (1, 1);
        let y = conv2d(&x, &f, stride, padding).unwrap();
        // Loss = sum(y); so grad_out = ones.
        let g = Tensor::ones(y.shape());
        let gx = conv2d_backprop_input(&f, &g, &x, stride, padding).unwrap();
        let gf = conv2d_backprop_filter(&x, &g, &f, stride, padding).unwrap();
        let eps = 1e-2f32;
        let loss = |x: &Tensor, f: &Tensor| -> f32 {
            conv2d(x, f, stride, padding).unwrap().as_f32().unwrap().iter().sum()
        };
        // Spot-check a few coordinates of each gradient.
        for idx in [0usize, 7, 31] {
            let mut xp = x.clone();
            xp.as_f32_mut().unwrap()[idx] += eps;
            let num = (loss(&xp, &f) - loss(&x, &f)) / eps;
            let ana = gx.as_f32().unwrap()[idx];
            assert!((num - ana).abs() < 0.05, "input grad {}: {} vs {}", idx, num, ana);
        }
        for idx in [0usize, 5, 23] {
            let mut fp = f.clone();
            fp.as_f32_mut().unwrap()[idx] += eps;
            let num = (loss(&x, &fp) - loss(&x, &f)) / eps;
            let ana = gf.as_f32().unwrap()[idx];
            assert!((num - ana).abs() < 0.05, "filter grad {}: {} vs {}", idx, num, ana);
        }
    }
}
