//! 2-D convolution and its two backprop kernels (NCHW / OIHW layout).

use crate::{tensor_err, Result, Tensor};

fn conv_out_dim(input: usize, kernel: usize, stride: usize, padding: usize) -> Result<usize> {
    let padded = input + 2 * padding;
    if padded < kernel {
        return Err(tensor_err!("conv kernel {} larger than padded input {}", kernel, padded));
    }
    Ok((padded - kernel) / stride + 1)
}

fn check(input: &Tensor, filters: &Tensor, stride: usize) -> Result<()> {
    if input.rank() != 4 {
        return Err(tensor_err!("conv2d input must be [b,c,h,w], found {:?}", input.shape()));
    }
    if filters.rank() != 4 {
        return Err(tensor_err!("conv2d filters must be [o,c,kh,kw], found {:?}", filters.shape()));
    }
    if input.shape()[1] != filters.shape()[1] {
        return Err(tensor_err!(
            "conv2d channel mismatch: input {:?} vs filters {:?}",
            input.shape(),
            filters.shape()
        ));
    }
    if stride == 0 {
        return Err(tensor_err!("conv2d stride must be positive"));
    }
    Ok(())
}

/// Forward convolution: input `[b,c,h,w]`, filters `[o,c,kh,kw]` →
/// `[b,o,h',w']`.
pub fn conv2d(input: &Tensor, filters: &Tensor, stride: usize, padding: usize) -> Result<Tensor> {
    check(input, filters, stride)?;
    let (b, c, h, w) = dims4(input);
    let (o, _, kh, kw) = dims4(filters);
    let oh = conv_out_dim(h, kh, stride, padding)?;
    let ow = conv_out_dim(w, kw, stride, padding)?;
    let x = input.as_f32()?;
    let f = filters.as_f32()?;
    let mut out = vec![0.0f32; b * o * oh * ow];
    for bi in 0..b {
        for oi in 0..o {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ci in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let xi = ((bi * c + ci) * h + iy as usize) * w + ix as usize;
                                let fi = ((oi * c + ci) * kh + ky) * kw + kx;
                                acc += x[xi] * f[fi];
                            }
                        }
                    }
                    out[((bi * o + oi) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, &[b, o, oh, ow])
}

/// Gradient of [`conv2d`] w.r.t. the input.
///
/// Arguments: `filters [o,c,kh,kw]`, `grad_out [b,o,h',w']`, and the original
/// input (only its shape is read).
pub fn conv2d_backprop_input(
    filters: &Tensor,
    grad_out: &Tensor,
    input_ref: &Tensor,
    stride: usize,
    padding: usize,
) -> Result<Tensor> {
    check(input_ref, filters, stride)?;
    let (b, c, h, w) = dims4(input_ref);
    let (o, _, kh, kw) = dims4(filters);
    let (gb, go, oh, ow) = dims4(grad_out);
    if gb != b || go != o {
        return Err(tensor_err!(
            "conv2d_backprop_input grad shape {:?} inconsistent with input {:?} filters {:?}",
            grad_out.shape(),
            input_ref.shape(),
            filters.shape()
        ));
    }
    let g = grad_out.as_f32()?;
    let f = filters.as_f32()?;
    let mut out = vec![0.0f32; b * c * h * w];
    for bi in 0..b {
        for oi in 0..o {
            for oy in 0..oh {
                for ox in 0..ow {
                    let gval = g[((bi * o + oi) * oh + oy) * ow + ox];
                    if gval == 0.0 {
                        continue;
                    }
                    for ci in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let xi = ((bi * c + ci) * h + iy as usize) * w + ix as usize;
                                let fi = ((oi * c + ci) * kh + ky) * kw + kx;
                                out[xi] += gval * f[fi];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[b, c, h, w])
}

/// Gradient of [`conv2d`] w.r.t. the filters.
///
/// Arguments: `input [b,c,h,w]`, `grad_out [b,o,h',w']`, and the original
/// filters (only their shape is read).
pub fn conv2d_backprop_filter(
    input: &Tensor,
    grad_out: &Tensor,
    filter_ref: &Tensor,
    stride: usize,
    padding: usize,
) -> Result<Tensor> {
    check(input, filter_ref, stride)?;
    let (b, c, h, w) = dims4(input);
    let (o, _, kh, kw) = dims4(filter_ref);
    let (gb, go, oh, ow) = dims4(grad_out);
    if gb != b || go != o {
        return Err(tensor_err!(
            "conv2d_backprop_filter grad shape {:?} inconsistent with input {:?} filters {:?}",
            grad_out.shape(),
            input.shape(),
            filter_ref.shape()
        ));
    }
    let x = input.as_f32()?;
    let g = grad_out.as_f32()?;
    let mut out = vec![0.0f32; o * c * kh * kw];
    for bi in 0..b {
        for oi in 0..o {
            for oy in 0..oh {
                for ox in 0..ow {
                    let gval = g[((bi * o + oi) * oh + oy) * ow + ox];
                    if gval == 0.0 {
                        continue;
                    }
                    for ci in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let xi = ((bi * c + ci) * h + iy as usize) * w + ix as usize;
                                let fi = ((oi * c + ci) * kh + ky) * kw + kx;
                                out[fi] += gval * x[xi];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[o, c, kh, kw])
}

fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel() {
        // 1x1 kernel of value 1 reproduces the input.
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let f = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]).unwrap();
        let y = conv2d(&x, &f, 1, 0).unwrap();
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        assert_eq!(y.as_f32().unwrap(), x.as_f32().unwrap());
    }

    #[test]
    fn box_filter() {
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let f = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv2d(&x, &f, 1, 0).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_f32().unwrap(), &[4.0; 4]);
    }

    #[test]
    fn stride_and_padding() {
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let f = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv2d(&x, &f, 2, 0).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        let yp = conv2d(&x, &f, 1, 1).unwrap();
        assert_eq!(yp.shape(), &[1, 1, 5, 5]);
        // corner sees only one input element
        assert_eq!(yp.get_f32(&[0, 0, 0, 0]).unwrap(), 1.0);
        // interior sees four
        assert_eq!(yp.get_f32(&[0, 0, 2, 2]).unwrap(), 4.0);
    }

    #[test]
    fn multi_channel_sum() {
        // 2 input channels, each filter sums both channels.
        let x = Tensor::from_vec(vec![1.0; 2 * 2 * 2], &[1, 2, 2, 2]).unwrap();
        let f = Tensor::from_vec(vec![1.0; 2], &[1, 2, 1, 1]).unwrap();
        let y = conv2d(&x, &f, 1, 0).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[2.0; 4]);
    }

    #[test]
    fn shape_checks() {
        let x3 = Tensor::ones(&[1, 2, 2]);
        let f = Tensor::ones(&[1, 1, 1, 1]);
        assert!(conv2d(&x3, &f, 1, 0).is_err());
        let x = Tensor::ones(&[1, 2, 2, 2]);
        assert!(conv2d(&x, &f, 1, 0).is_err()); // channel mismatch
        let f2 = Tensor::ones(&[1, 2, 1, 1]);
        assert!(conv2d(&x, &f2, 0, 0).is_err()); // zero stride
        let fbig = Tensor::ones(&[1, 2, 5, 5]);
        assert!(conv2d(&x, &fbig, 1, 0).is_err()); // kernel too large
    }

    /// Finite-difference check of both backprop kernels.
    #[test]
    fn backprops_match_finite_difference() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let x = Tensor::rand_uniform(&[2, 2, 4, 4], -1.0, 1.0, &mut rng);
        let f = Tensor::rand_uniform(&[3, 2, 2, 2], -1.0, 1.0, &mut rng);
        let (stride, padding) = (1, 1);
        let y = conv2d(&x, &f, stride, padding).unwrap();
        // Loss = sum(y); so grad_out = ones.
        let g = Tensor::ones(y.shape());
        let gx = conv2d_backprop_input(&f, &g, &x, stride, padding).unwrap();
        let gf = conv2d_backprop_filter(&x, &g, &f, stride, padding).unwrap();
        let eps = 1e-2f32;
        let loss = |x: &Tensor, f: &Tensor| -> f32 {
            conv2d(x, f, stride, padding).unwrap().as_f32().unwrap().iter().sum()
        };
        // Spot-check a few coordinates of each gradient.
        for idx in [0usize, 7, 31] {
            let mut xp = x.clone();
            xp.as_f32_mut().unwrap()[idx] += eps;
            let num = (loss(&xp, &f) - loss(&x, &f)) / eps;
            let ana = gx.as_f32().unwrap()[idx];
            assert!((num - ana).abs() < 0.05, "input grad {}: {} vs {}", idx, num, ana);
        }
        for idx in [0usize, 5, 23] {
            let mut fp = f.clone();
            fp.as_f32_mut().unwrap()[idx] += eps;
            let num = (loss(&x, &fp) - loss(&x, &f)) / eps;
            let ana = gf.as_f32().unwrap()[idx];
            assert!((num - ana).abs() < 0.05, "filter grad {}: {} vs {}", idx, num, ana);
        }
    }
}
