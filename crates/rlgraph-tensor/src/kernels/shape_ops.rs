//! Shape-manipulation kernels (dtype-generic): reshape, transpose, concat,
//! stack, slice, tile, and their gradient helpers.

use crate::shape::{num_elements, ravel, resolve_reshape, strides, unravel};
use crate::{tensor_err, DType, Result, Tensor};

/// Builds an output of `out_shape` where element `i` is input element
/// `map(i)`. Preserves dtype.
fn remap(t: &Tensor, out_shape: &[usize], map: impl Fn(usize) -> usize) -> Result<Tensor> {
    let n = num_elements(out_shape);
    match t.dtype() {
        DType::F32 => {
            let x = t.as_f32()?;
            Tensor::from_vec((0..n).map(|i| x[map(i)]).collect(), out_shape)
        }
        DType::I64 => {
            let x = t.as_i64()?;
            Tensor::from_vec_i64((0..n).map(|i| x[map(i)]).collect(), out_shape)
        }
        DType::Bool => {
            let x = t.as_bool()?;
            Tensor::from_vec_bool((0..n).map(|i| x[map(i)]).collect(), out_shape)
        }
    }
}

/// Reshape with an optional `-1` wildcard.
pub fn reshape(t: &Tensor, spec: &[isize]) -> Result<Tensor> {
    let shape = resolve_reshape(spec, t.len())?;
    t.reshaped(&shape)
}

/// Splits `a`'s leading dimension into `shape_ref`'s first `n` dims.
///
/// `a` must have shape `[prod(ref[..n]), rest...]`; the result has shape
/// `[ref[0], .., ref[n-1], rest...]`. Together with a `[-1, rest]` reshape
/// this implements rlgraph's batch/time fold–unfold utilities.
pub fn unfold_like(a: &Tensor, shape_ref: &Tensor, n: usize) -> Result<Tensor> {
    if n > shape_ref.rank() {
        return Err(tensor_err!(
            "unfold_like: n {} exceeds reference rank {}",
            n,
            shape_ref.rank()
        ));
    }
    if a.rank() == 0 {
        return Err(tensor_err!("unfold_like: cannot unfold a scalar"));
    }
    let lead: usize = shape_ref.shape()[..n].iter().product();
    let mut shape: Vec<usize> = shape_ref.shape()[..n].to_vec();
    if a.shape()[0] == lead {
        shape.extend_from_slice(&a.shape()[1..]);
    } else if a.rank() == 1 && lead > 0 && a.len().is_multiple_of(lead) {
        // Rank-1 fallback: distribute the remaining elements into a single
        // trailing dimension (used to flatten-after-batch with a runtime
        // batch size).
        shape.push(a.len() / lead);
    } else {
        return Err(tensor_err!(
            "unfold_like: shape {:?} incompatible with leading product {} of reference dims {:?}",
            a.shape(),
            lead,
            &shape_ref.shape()[..n]
        ));
    }
    a.reshaped(&shape)
}

/// Sums `a` over its broadcast axes so the result has `shape_ref`'s shape
/// (the gradient helper for broadcasting binary ops).
pub fn reduce_to_like(a: &Tensor, shape_ref: &Tensor) -> Result<Tensor> {
    let target = shape_ref.shape();
    if a.shape() == target {
        return Ok(a.clone());
    }
    let rank_a = a.rank();
    let rank_t = target.len();
    if rank_t > rank_a {
        return Err(tensor_err!(
            "reduce_to_like: cannot reduce {:?} to larger-rank {:?}",
            a.shape(),
            target
        ));
    }
    // Axes introduced by broadcasting (leading) are summed away; axes where
    // the target had size 1 are summed with keep_dims.
    let offset = rank_a - rank_t;
    let lead: Vec<usize> = (0..offset).collect();
    let x = a.as_f32()?;
    let mut keep_axes: Vec<usize> = Vec::new();
    for i in 0..rank_t {
        if target[i] == 1 && a.shape()[offset + i] != 1 {
            keep_axes.push(offset + i);
        } else if target[i] != a.shape()[offset + i] {
            return Err(tensor_err!(
                "reduce_to_like: {:?} is not a broadcast of {:?}",
                a.shape(),
                target
            ));
        }
    }
    let mut out = vec![0.0f32; num_elements(target)];
    let t_strides = strides(target);
    for (flat, &v) in x.iter().enumerate() {
        let coords = unravel(flat, a.shape());
        let mut tc = Vec::with_capacity(rank_t);
        for i in 0..rank_t {
            let c = coords[offset + i];
            tc.push(if keep_axes.contains(&(offset + i)) { 0 } else { c });
        }
        let _ = &lead;
        out[ravel(&tc, &t_strides)] += v;
    }
    Tensor::from_vec(out, target)
}

/// Permutes axes by `perm`.
pub fn transpose(t: &Tensor, perm: &[usize]) -> Result<Tensor> {
    let rank = t.rank();
    if perm.len() != rank {
        return Err(tensor_err!("transpose perm {:?} must have rank {}", perm, rank));
    }
    let mut seen = vec![false; rank];
    for &p in perm {
        if p >= rank || seen[p] {
            return Err(tensor_err!("invalid transpose permutation {:?}", perm));
        }
        seen[p] = true;
    }
    let out_shape: Vec<usize> = perm.iter().map(|&p| t.shape()[p]).collect();
    let in_strides = strides(t.shape());
    remap(t, &out_shape.clone(), |flat| {
        let oc = unravel(flat, &out_shape);
        let mut ic = vec![0usize; rank];
        for (k, &p) in perm.iter().enumerate() {
            ic[p] = oc[k];
        }
        ravel(&ic, &in_strides)
    })
}

/// Inserts a size-1 axis at `axis`.
pub fn expand_dims(t: &Tensor, axis: usize) -> Result<Tensor> {
    if axis > t.rank() {
        return Err(tensor_err!("expand_dims axis {} out of range for rank {}", axis, t.rank()));
    }
    let mut shape = t.shape().to_vec();
    shape.insert(axis, 1);
    t.reshaped(&shape)
}

/// Removes the size-1 axis at `axis`.
pub fn squeeze(t: &Tensor, axis: usize) -> Result<Tensor> {
    if axis >= t.rank() {
        return Err(tensor_err!("squeeze axis {} out of range for rank {}", axis, t.rank()));
    }
    if t.shape()[axis] != 1 {
        return Err(tensor_err!(
            "cannot squeeze axis {} of size {} in {:?}",
            axis,
            t.shape()[axis],
            t.shape()
        ));
    }
    let mut shape = t.shape().to_vec();
    shape.remove(axis);
    t.reshaped(&shape)
}

/// Concatenates along `axis`.
pub fn concat(inputs: &[&Tensor], axis: usize) -> Result<Tensor> {
    let first = inputs[0];
    let rank = first.rank();
    if axis >= rank {
        return Err(tensor_err!("concat axis {} out of range for rank {}", axis, rank));
    }
    let mut axis_total = 0usize;
    for t in inputs {
        if t.rank() != rank || t.dtype() != first.dtype() {
            return Err(tensor_err!("concat inputs must share rank and dtype"));
        }
        for d in 0..rank {
            if d != axis && t.shape()[d] != first.shape()[d] {
                return Err(tensor_err!(
                    "concat shape mismatch at axis {}: {:?} vs {:?}",
                    d,
                    t.shape(),
                    first.shape()
                ));
            }
        }
        axis_total += t.shape()[axis];
    }
    let mut out_shape = first.shape().to_vec();
    out_shape[axis] = axis_total;
    let outer: usize = first.shape()[..axis].iter().product();
    let inner: usize = first.shape()[axis + 1..].iter().product();

    // Hoist dtype validation / slice extraction out of the copy loops: the
    // per-input block sizes and data slices are loop-invariant.
    let blocks: Vec<usize> = inputs.iter().map(|t| t.shape()[axis] * inner).collect();
    match first.dtype() {
        DType::F32 => {
            let xs: Vec<&[f32]> = inputs.iter().map(|t| t.as_f32()).collect::<Result<_>>()?;
            let mut out = Vec::with_capacity(num_elements(&out_shape));
            for o in 0..outer {
                for (x, &block) in xs.iter().zip(&blocks) {
                    out.extend_from_slice(&x[o * block..(o + 1) * block]);
                }
            }
            Tensor::from_vec(out, &out_shape)
        }
        DType::I64 => {
            let xs: Vec<&[i64]> = inputs.iter().map(|t| t.as_i64()).collect::<Result<_>>()?;
            let mut out = Vec::with_capacity(num_elements(&out_shape));
            for o in 0..outer {
                for (x, &block) in xs.iter().zip(&blocks) {
                    out.extend_from_slice(&x[o * block..(o + 1) * block]);
                }
            }
            Tensor::from_vec_i64(out, &out_shape)
        }
        DType::Bool => {
            let xs: Vec<&[bool]> = inputs.iter().map(|t| t.as_bool()).collect::<Result<_>>()?;
            let mut out = Vec::with_capacity(num_elements(&out_shape));
            for o in 0..outer {
                for (x, &block) in xs.iter().zip(&blocks) {
                    out.extend_from_slice(&x[o * block..(o + 1) * block]);
                }
            }
            Tensor::from_vec_bool(out, &out_shape)
        }
    }
}

/// Gradient of [`concat`] for input `index`: inputs are
/// `(grad, in_0, .., in_{n-1})`; extracts the slice of `grad` matching that
/// input's extent.
pub fn concat_grad(inputs: &[&Tensor], axis: usize, index: usize) -> Result<Tensor> {
    if inputs.len() < 2 {
        return Err(tensor_err!("concat_grad needs the grad plus the original inputs"));
    }
    let grad = inputs[0];
    let originals = &inputs[1..];
    if index >= originals.len() {
        return Err(tensor_err!("concat_grad index {} out of range", index));
    }
    let start: usize = originals[..index].iter().map(|t| t.shape()[axis]).sum();
    let len = originals[index].shape()[axis];
    slice(grad, axis, start, len)
}

/// Stacks same-shaped inputs along a new `axis`.
pub fn stack(inputs: &[&Tensor], axis: usize) -> Result<Tensor> {
    let first = inputs[0];
    if axis > first.rank() {
        return Err(tensor_err!("stack axis {} out of range for rank {}", axis, first.rank()));
    }
    // Stack = expand_dims on each input, then concat.
    let expanded: Vec<Tensor> =
        inputs.iter().map(|t| expand_dims(t, axis)).collect::<Result<_>>()?;
    let refs: Vec<&Tensor> = expanded.iter().collect();
    concat(&refs, axis)
}

/// Static slice `[start, start+len)` along `axis`.
pub fn slice(t: &Tensor, axis: usize, start: usize, len: usize) -> Result<Tensor> {
    let rank = t.rank();
    if axis >= rank {
        return Err(tensor_err!("slice axis {} out of range for rank {}", axis, rank));
    }
    if start + len > t.shape()[axis] {
        return Err(tensor_err!(
            "slice [{}, {}) out of range for axis {} of size {}",
            start,
            start + len,
            axis,
            t.shape()[axis]
        ));
    }
    let mut out_shape = t.shape().to_vec();
    out_shape[axis] = len;
    let in_strides = strides(t.shape());
    let shape_for_map = out_shape.clone();
    remap(t, &out_shape, move |flat| {
        let mut c = unravel(flat, &shape_for_map);
        c[axis] += start;
        ravel(&c, &in_strides)
    })
}

/// Gradient of [`slice`]: zero-pads `grad` back to `input_ref`'s shape.
pub fn slice_grad(
    grad: &Tensor,
    input_ref: &Tensor,
    axis: usize,
    start: usize,
    len: usize,
) -> Result<Tensor> {
    let mut expect = input_ref.shape().to_vec();
    if axis >= expect.len() || start + len > expect[axis] {
        return Err(tensor_err!("slice_grad parameters out of range"));
    }
    expect[axis] = len;
    if grad.shape() != expect.as_slice() {
        return Err(tensor_err!("slice_grad: grad shape {:?} expected {:?}", grad.shape(), expect));
    }
    let g = grad.as_f32()?;
    let out_strides = strides(input_ref.shape());
    let mut out = vec![0.0f32; input_ref.len()];
    for (flat, &v) in g.iter().enumerate() {
        let mut c = unravel(flat, grad.shape());
        c[axis] += start;
        out[ravel(&c, &out_strides)] = v;
    }
    Tensor::from_vec(out, input_ref.shape())
}

/// Repeats the tensor `reps[d]` times along each axis `d`.
pub fn tile(t: &Tensor, reps: &[usize]) -> Result<Tensor> {
    if reps.len() != t.rank() {
        return Err(tensor_err!("tile reps {:?} must match rank {}", reps, t.rank()));
    }
    if reps.contains(&0) {
        return Err(tensor_err!("tile repetitions must be positive"));
    }
    let out_shape: Vec<usize> = t.shape().iter().zip(reps).map(|(d, r)| d * r).collect();
    let in_shape = t.shape().to_vec();
    let in_strides = strides(&in_shape);
    let shape_for_map = out_shape.clone();
    remap(t, &out_shape, move |flat| {
        let oc = unravel(flat, &shape_for_map);
        let ic: Vec<usize> = oc.iter().zip(&in_shape).map(|(&c, &d)| c % d).collect();
        ravel(&ic, &in_strides)
    })
}

/// Gradient of [`tile`]: sums all repeats back onto the input shape.
pub fn tile_grad(grad: &Tensor, input_ref: &Tensor, reps: &[usize]) -> Result<Tensor> {
    if reps.len() != input_ref.rank() {
        return Err(tensor_err!("tile_grad reps {:?} must match rank {}", reps, input_ref.rank()));
    }
    let expect: Vec<usize> = input_ref.shape().iter().zip(reps).map(|(d, r)| d * r).collect();
    if grad.shape() != expect.as_slice() {
        return Err(tensor_err!("tile_grad: grad shape {:?} expected {:?}", grad.shape(), expect));
    }
    let g = grad.as_f32()?;
    let in_strides = strides(input_ref.shape());
    let mut out = vec![0.0f32; input_ref.len()];
    for (flat, &v) in g.iter().enumerate() {
        let oc = unravel(flat, grad.shape());
        let ic: Vec<usize> = oc.iter().zip(input_ref.shape()).map(|(&c, &d)| c % d).collect();
        out[ravel(&ic, &in_strides)] += v;
    }
    Tensor::from_vec(out, input_ref.shape())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn reshape_wildcard() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let r = reshape(&x, &[-1]).unwrap();
        assert_eq!(r.shape(), &[6]);
        let r2 = reshape(&x, &[3, -1]).unwrap();
        assert_eq!(r2.shape(), &[3, 2]);
    }

    #[test]
    fn transpose_2d() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let r = transpose(&x, &[1, 0]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.as_f32().unwrap(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert!(transpose(&x, &[0, 0]).is_err());
        assert!(transpose(&x, &[0]).is_err());
    }

    #[test]
    fn transpose_3d_roundtrip() {
        let x = t(&(0..24).map(|v| v as f32).collect::<Vec<_>>(), &[2, 3, 4]);
        let r = transpose(&x, &[2, 0, 1]).unwrap();
        assert_eq!(r.shape(), &[4, 2, 3]);
        let back = transpose(&r, &[1, 2, 0]).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn expand_squeeze_roundtrip() {
        let x = t(&[1.0, 2.0], &[2]);
        let e = expand_dims(&x, 0).unwrap();
        assert_eq!(e.shape(), &[1, 2]);
        let s = squeeze(&e, 0).unwrap();
        assert_eq!(s, x);
        assert!(squeeze(&x, 0).is_err());
        assert!(expand_dims(&x, 2).is_err());
    }

    #[test]
    fn concat_axis0_and_1() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[3.0, 4.0], &[1, 2]);
        let c0 = concat(&[&a, &b], 0).unwrap();
        assert_eq!(c0.shape(), &[2, 2]);
        assert_eq!(c0.as_f32().unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        let c1 = concat(&[&a, &b], 1).unwrap();
        assert_eq!(c1.shape(), &[1, 4]);
        assert_eq!(c1.as_f32().unwrap(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn concat_i64_and_bool() {
        let a = Tensor::from_vec_i64(vec![1, 2], &[2]).unwrap();
        let b = Tensor::from_vec_i64(vec![3], &[1]).unwrap();
        assert_eq!(concat(&[&a, &b], 0).unwrap().as_i64().unwrap(), &[1, 2, 3]);
        let c = Tensor::from_vec_bool(vec![true], &[1]).unwrap();
        let d = Tensor::from_vec_bool(vec![false], &[1]).unwrap();
        assert_eq!(concat(&[&c, &d], 0).unwrap().as_bool().unwrap(), &[true, false]);
    }

    #[test]
    fn concat_grad_extracts_slice() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[3.0, 4.0, 5.0], &[1, 3]);
        let g = t(&[10.0, 20.0, 30.0, 40.0, 50.0], &[1, 5]);
        let ga = concat_grad(&[&g, &a, &b], 1, 0).unwrap();
        assert_eq!(ga.as_f32().unwrap(), &[10.0, 20.0]);
        let gb = concat_grad(&[&g, &a, &b], 1, 1).unwrap();
        assert_eq!(gb.as_f32().unwrap(), &[30.0, 40.0, 50.0]);
    }

    #[test]
    fn stack_new_axis() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 4.0], &[2]);
        let s = stack(&[&a, &b], 0).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        let s1 = stack(&[&a, &b], 1).unwrap();
        assert_eq!(s1.shape(), &[2, 2]);
        assert_eq!(s1.as_f32().unwrap(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn slice_and_grad() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0], &[5]);
        let s = slice(&x, 0, 1, 3).unwrap();
        assert_eq!(s.as_f32().unwrap(), &[2.0, 3.0, 4.0]);
        assert!(slice(&x, 0, 3, 3).is_err());
        let g = t(&[10.0, 20.0, 30.0], &[3]);
        let r = slice_grad(&g, &x, 0, 1, 3).unwrap();
        assert_eq!(r.as_f32().unwrap(), &[0.0, 10.0, 20.0, 30.0, 0.0]);
    }

    #[test]
    fn tile_and_grad() {
        let x = t(&[1.0, 2.0], &[2]);
        let r = tile(&x, &[3]).unwrap();
        assert_eq!(r.as_f32().unwrap(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        let g = t(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0], &[6]);
        let tg = tile_grad(&g, &x, &[3]).unwrap();
        assert_eq!(tg.as_f32().unwrap(), &[3.0, 3.0]);
        assert!(tile(&x, &[0]).is_err());
        assert!(tile(&x, &[1, 1]).is_err());
    }

    #[test]
    fn reduce_to_like_broadcast_axes() {
        // grad of a [3] bias broadcast into [2,3]
        let g = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let bias = t(&[0.0, 0.0, 0.0], &[3]);
        let r = reduce_to_like(&g, &bias).unwrap();
        assert_eq!(r.as_f32().unwrap(), &[5.0, 7.0, 9.0]);
        // keep-dims style: [2,1] target
        let col = t(&[0.0, 0.0], &[2, 1]);
        let r2 = reduce_to_like(&g, &col).unwrap();
        assert_eq!(r2.as_f32().unwrap(), &[6.0, 15.0]);
        // same shape: identity
        let same = reduce_to_like(&g, &g).unwrap();
        assert_eq!(same, g);
        // not a broadcast
        let bad = t(&[0.0, 0.0], &[2]);
        assert!(reduce_to_like(&g, &bad).is_err());
    }
}
