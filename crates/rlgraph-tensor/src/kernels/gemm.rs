//! Cache-blocked, register-tiled f32 GEMM with packed panels.
//!
//! The kernel follows the classic three-level blocking scheme (Goto/BLIS):
//! the k dimension is split into `KC`-deep slabs whose B panel is packed
//! once and reused by every row block; rows are split into `ROW_BLOCK`
//! bands (the unit of parallelism) whose A panel is packed into a
//! thread-local buffer; the inner loop is an `MR x NR` register tile fed
//! from the packed panels.
//!
//! # Determinism contract
//!
//! Every output element is accumulated strictly in ascending-k order as a
//! chain of single-rounding fused multiply-adds, and each element is
//! computed wholly inside one row block whose boundaries depend only on
//! the shape. The result is a pure function of the operands: *bit-identical*
//! at any thread count and across runs. All three layout variants feed the
//! same micro-kernel in the same k order, so `NT`/`TN` are bitwise equal to
//! materialize-the-transpose-then-multiply through this kernel.
//!
//! The naive reference loops use separate multiply and add, so blocked
//! results differ from [`super::reference`] within ordinary FMA rounding;
//! the parity suite bounds the difference at 1e-4.

use std::cell::RefCell;

use crate::{pool, tensor_err, Result, Tensor};

use super::observe;

/// Operand layouts: `NN` multiplies `[m,k] x [k,n]`, `NT` multiplies
/// `[m,k] x [n,k]ᵀ`, `TN` multiplies `[k,m]ᵀ x [k,n]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// `a [m,k] @ b [k,n]`
    NN,
    /// `a [m,k] @ b [n,k]ᵀ`
    NT,
    /// `a [k,m]ᵀ @ b [k,n]`
    TN,
}

impl Layout {
    fn name(self) -> &'static str {
        match self {
            Layout::NN => "nn",
            Layout::NT => "nt",
            Layout::TN => "tn",
        }
    }
}

// Register tile: sized so the MR x NR accumulator fits the vector register
// file. With AVX2/AVX-512 enabled (e.g. -C target-cpu=native) an 8x16 tile
// of f32 fills 8 256-bit (or 8 512-bit half-filled) registers; on the
// bare x86-64 SSE2 baseline a 4x8 tile keeps the accumulator in 8 of the
// 16 xmm registers.
#[cfg(target_feature = "avx2")]
mod tile {
    pub const MR: usize = 8;
    pub const NR: usize = 16;
}
#[cfg(not(target_feature = "avx2"))]
mod tile {
    pub const MR: usize = 4;
    pub const NR: usize = 8;
}
use tile::{MR, NR};

/// Depth of one packed k slab (A micro-panel `MR*KC` and B micro-panel
/// `NR*KC` both stay L1/L2 resident).
const KC: usize = 256;

/// Rows per parallel task; a multiple of `MR` for both tile configurations.
const ROW_BLOCK: usize = 32;

/// Below this many multiply-adds a parallel dispatch costs more than it
/// saves and the row loop runs on the calling thread.
const PAR_MIN_WORK: usize = 64 * 1024;

thread_local! {
    static APACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static BPACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `f(32)`-slice GEMM entry: `c = a @ b` (or `+=` when `accumulate`).
///
/// `par` gates the internal row-block parallelism so callers that already
/// parallelise an outer loop (e.g. conv over the batch) can run the inner
/// GEMM sequentially.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_f32(
    layout: Layout,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
    par: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    observe::record_gemm(layout.name(), m, n, k);
    let blocks = m.div_ceil(ROW_BLOCK);
    let par = par && blocks > 1 && 2 * m * n * k >= PAR_MIN_WORK && pool::current_threads() > 1;
    BPACK.with(|buf| {
        let mut bpack = buf.borrow_mut();
        let mut k0 = 0;
        while k0 < k {
            let kc = KC.min(k - k0);
            pack_b(layout, n, k, b, k0, kc, &mut bpack);
            let acc_this = accumulate || k0 > 0;
            let cbase = c.as_mut_ptr() as usize;
            let bpack: &[f32] = &bpack;
            let run_block = |blk: usize| {
                let i0 = blk * ROW_BLOCK;
                let rows = ROW_BLOCK.min(m - i0);
                // SAFETY: row bands are disjoint slices of `c`, and the
                // dispatch below completes before `c`'s borrow ends.
                let c_band = unsafe {
                    std::slice::from_raw_parts_mut((cbase as *mut f32).add(i0 * n), rows * n)
                };
                gemm_band(layout, a, m, k, i0, rows, n, k0, kc, bpack, c_band, acc_this);
            };
            if par {
                pool::parallel_for(blocks, &run_block);
            } else {
                for blk in 0..blocks {
                    run_block(blk);
                }
            }
            k0 += kc;
        }
    });
}

/// One `rows x n` band of C against the packed B slab.
#[allow(clippy::too_many_arguments)]
fn gemm_band(
    layout: Layout,
    a: &[f32],
    m: usize,
    k: usize,
    i0: usize,
    rows: usize,
    n: usize,
    k0: usize,
    kc: usize,
    bpack: &[f32],
    c_band: &mut [f32],
    accumulate: bool,
) {
    APACK.with(|buf| {
        let mut apack = buf.borrow_mut();
        pack_a(layout, a, m, k, i0, rows, k0, kc, &mut apack);
        let row_panels = rows.div_ceil(MR);
        let col_panels = n.div_ceil(NR);
        for jp in 0..col_panels {
            let bpanel = &bpack[jp * kc * NR..(jp + 1) * kc * NR];
            let j0 = jp * NR;
            let cols = NR.min(n - j0);
            for ip in 0..row_panels {
                let apanel = &apack[ip * kc * MR..(ip + 1) * kc * MR];
                let r0 = ip * MR;
                let tile_rows = MR.min(rows - r0);
                if tile_rows == MR && cols == NR {
                    micro_kernel_direct(kc, apanel, bpanel, c_band, r0, j0, n, accumulate);
                } else {
                    let mut acc = [[0.0f32; NR]; MR];
                    load_tile(&mut acc, c_band, r0, j0, n, tile_rows, cols, accumulate);
                    micro_kernel(kc, apanel, bpanel, &mut acc);
                    store_tile(&acc, c_band, r0, j0, n, tile_rows, cols);
                }
            }
        }
    });
}

/// One accumulator row: `acc[c] = fma(av, b[c], acc[c])` across the tile
/// width. The explicit `mul_add` is deliberate: it is a single-rounding
/// fused multiply-add, deterministic for given inputs, and doubles peak
/// throughput over separate mul+add on every FMA-capable target. The
/// reference kernels use separate mul and add, so blocked results differ
/// from the naive loops within ordinary rounding (the parity suite bounds
/// this at 1e-4) — but the blocked result itself is a pure function of the
/// inputs, never of the thread count.
#[inline(always)]
fn axpy_row(acc: &mut [f32; NR], av: f32, brow: &[f32]) {
    for (a, &bv) in acc.iter_mut().zip(brow) {
        *a = av.mul_add(bv, *a);
    }
}

/// The register tile: `acc[r][c] = fma(a[r], b[c], acc[r][c])` for each
/// packed k step, in ascending-k order.
///
/// Every accumulator row is a distinct local so the whole `MR x NR` tile
/// stays register-resident and the compiler vectorizes along the NR axis
/// (broadcast `a[r]`, wide mul/add against the packed B row). Leaving the
/// rows in an indexed array makes LLVM vectorize across *rows* instead,
/// gathering and scattering the accumulator through memory on every k step
/// — about 4x slower than the naive loops.
#[inline(always)]
#[cfg(target_feature = "avx2")]
fn micro_kernel(kc: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    let [mut c0, mut c1, mut c2, mut c3, mut c4, mut c5, mut c6, mut c7] = *acc;
    for (arow, brow) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)).take(kc) {
        axpy_row(&mut c0, arow[0], brow);
        axpy_row(&mut c1, arow[1], brow);
        axpy_row(&mut c2, arow[2], brow);
        axpy_row(&mut c3, arow[3], brow);
        axpy_row(&mut c4, arow[4], brow);
        axpy_row(&mut c5, arow[5], brow);
        axpy_row(&mut c6, arow[6], brow);
        axpy_row(&mut c7, arow[7], brow);
    }
    *acc = [c0, c1, c2, c3, c4, c5, c6, c7];
}

/// Narrow-tile variant of [`micro_kernel`] for targets without AVX2.
#[inline(always)]
#[cfg(not(target_feature = "avx2"))]
fn micro_kernel(kc: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    let [mut c0, mut c1, mut c2, mut c3] = *acc;
    for (arow, brow) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)).take(kc) {
        axpy_row(&mut c0, arow[0], brow);
        axpy_row(&mut c1, arow[1], brow);
        axpy_row(&mut c2, arow[2], brow);
        axpy_row(&mut c3, arow[3], brow);
    }
    *acc = [c0, c1, c2, c3];
}

/// Reads one full accumulator row out of the C band.
#[inline(always)]
fn c_row(c_band: &[f32], start: usize) -> [f32; NR] {
    let mut r = [0.0f32; NR];
    r.copy_from_slice(&c_band[start..start + NR]);
    r
}

/// Full-tile micro-kernel operating directly on the C band: loads the tile
/// rows (or zeros), runs the k loop, and stores back — skipping the
/// intermediate accumulator array the ragged-edge path needs. Same
/// arithmetic, same order as [`micro_kernel`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
#[cfg(target_feature = "avx2")]
fn micro_kernel_direct(
    kc: usize,
    apanel: &[f32],
    bpanel: &[f32],
    c_band: &mut [f32],
    r0: usize,
    j0: usize,
    ldc: usize,
    accumulate: bool,
) {
    let base = r0 * ldc + j0;
    let z = [0.0f32; NR];
    let (mut c0, mut c1, mut c2, mut c3, mut c4, mut c5, mut c6, mut c7) = if accumulate {
        (
            c_row(c_band, base),
            c_row(c_band, base + ldc),
            c_row(c_band, base + 2 * ldc),
            c_row(c_band, base + 3 * ldc),
            c_row(c_band, base + 4 * ldc),
            c_row(c_band, base + 5 * ldc),
            c_row(c_band, base + 6 * ldc),
            c_row(c_band, base + 7 * ldc),
        )
    } else {
        (z, z, z, z, z, z, z, z)
    };
    for (arow, brow) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)).take(kc) {
        axpy_row(&mut c0, arow[0], brow);
        axpy_row(&mut c1, arow[1], brow);
        axpy_row(&mut c2, arow[2], brow);
        axpy_row(&mut c3, arow[3], brow);
        axpy_row(&mut c4, arow[4], brow);
        axpy_row(&mut c5, arow[5], brow);
        axpy_row(&mut c6, arow[6], brow);
        axpy_row(&mut c7, arow[7], brow);
    }
    for (r, row) in [c0, c1, c2, c3, c4, c5, c6, c7].iter().enumerate() {
        c_band[base + r * ldc..base + r * ldc + NR].copy_from_slice(row);
    }
}

/// Narrow-tile variant of [`micro_kernel_direct`] for targets without AVX2.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
#[cfg(not(target_feature = "avx2"))]
fn micro_kernel_direct(
    kc: usize,
    apanel: &[f32],
    bpanel: &[f32],
    c_band: &mut [f32],
    r0: usize,
    j0: usize,
    ldc: usize,
    accumulate: bool,
) {
    let base = r0 * ldc + j0;
    let z = [0.0f32; NR];
    let (mut c0, mut c1, mut c2, mut c3) = if accumulate {
        (
            c_row(c_band, base),
            c_row(c_band, base + ldc),
            c_row(c_band, base + 2 * ldc),
            c_row(c_band, base + 3 * ldc),
        )
    } else {
        (z, z, z, z)
    };
    for (arow, brow) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)).take(kc) {
        axpy_row(&mut c0, arow[0], brow);
        axpy_row(&mut c1, arow[1], brow);
        axpy_row(&mut c2, arow[2], brow);
        axpy_row(&mut c3, arow[3], brow);
    }
    for (r, row) in [c0, c1, c2, c3].iter().enumerate() {
        c_band[base + r * ldc..base + r * ldc + NR].copy_from_slice(row);
    }
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn load_tile(
    acc: &mut [[f32; NR]; MR],
    c_band: &[f32],
    r0: usize,
    j0: usize,
    ldc: usize,
    rows: usize,
    cols: usize,
    accumulate: bool,
) {
    if accumulate {
        for r in 0..rows {
            let src = &c_band[(r0 + r) * ldc + j0..(r0 + r) * ldc + j0 + cols];
            acc[r][..cols].copy_from_slice(src);
            acc[r][cols..].fill(0.0);
        }
        for row in acc.iter_mut().take(MR).skip(rows) {
            row.fill(0.0);
        }
    } else {
        for row in acc.iter_mut() {
            row.fill(0.0);
        }
    }
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn store_tile(
    acc: &[[f32; NR]; MR],
    c_band: &mut [f32],
    r0: usize,
    j0: usize,
    ldc: usize,
    rows: usize,
    cols: usize,
) {
    for r in 0..rows {
        let dst = &mut c_band[(r0 + r) * ldc + j0..(r0 + r) * ldc + j0 + cols];
        dst.copy_from_slice(&acc[r][..cols]);
    }
}

/// Packs `rows` rows of A starting at `i0` into `MR`-row panels, zero
/// padding the ragged edge.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    layout: Layout,
    a: &[f32],
    m: usize,
    k: usize,
    i0: usize,
    rows: usize,
    k0: usize,
    kc: usize,
    out: &mut Vec<f32>,
) {
    let panels = rows.div_ceil(MR);
    resize_no_zero(out, panels * kc * MR);
    for ip in 0..panels {
        let base = ip * kc * MR;
        let r0 = i0 + ip * MR;
        let tile_rows = MR.min(i0 + rows - r0);
        if tile_rows < MR {
            // Ragged edge panel: the writes below leave rows
            // `tile_rows..MR` untouched, so clear stale buffer contents.
            out[base..base + kc * MR].fill(0.0);
        }
        match layout {
            Layout::NN | Layout::NT => {
                for ii in 0..tile_rows {
                    let arow = &a[(r0 + ii) * k + k0..(r0 + ii) * k + k0 + kc];
                    for (p, &v) in arow.iter().enumerate() {
                        out[base + p * MR + ii] = v;
                    }
                }
            }
            Layout::TN => {
                // a is [k, m]: row p of a holds column p of A'.
                for p in 0..kc {
                    let src = &a[(k0 + p) * m + r0..(k0 + p) * m + r0 + tile_rows];
                    out[base + p * MR..base + p * MR + tile_rows].copy_from_slice(src);
                }
            }
        }
    }
}

/// Grows or shrinks `out` to `len` without the full memset `resize` from
/// empty would do; callers overwrite every slot they read (ragged edge
/// panels are cleared explicitly).
fn resize_no_zero(out: &mut Vec<f32>, len: usize) {
    if out.len() < len {
        out.resize(len, 0.0);
    } else {
        out.truncate(len);
    }
}

/// Packs the `kc`-deep B slab into `NR`-column panels, zero padding the
/// ragged edge.
fn pack_b(layout: Layout, n: usize, k: usize, b: &[f32], k0: usize, kc: usize, out: &mut Vec<f32>) {
    let panels = n.div_ceil(NR);
    resize_no_zero(out, panels * kc * NR);
    for jp in 0..panels {
        let base = jp * kc * NR;
        let j0 = jp * NR;
        let cols = NR.min(n - j0);
        if cols < NR {
            // Ragged edge panel: columns `cols..NR` are never written below.
            out[base..base + kc * NR].fill(0.0);
        }
        match layout {
            Layout::NN | Layout::TN => {
                for p in 0..kc {
                    let src = &b[(k0 + p) * n + j0..(k0 + p) * n + j0 + cols];
                    out[base + p * NR..base + p * NR + cols].copy_from_slice(src);
                }
            }
            Layout::NT => {
                // b is [n, k]: row j of b holds column j of B'.
                for jj in 0..cols {
                    let brow = &b[(j0 + jj) * k + k0..(j0 + jj) * k + k0 + kc];
                    for (p, &v) in brow.iter().enumerate() {
                        out[base + p * NR + jj] = v;
                    }
                }
            }
        }
    }
}

fn dims2(t: &Tensor, what: &str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(tensor_err!("{} requires rank-2 tensors, found {:?}", what, t.shape()));
    }
    Ok((t.shape()[0], t.shape()[1]))
}

/// Blocked `[m,k] x [k,n] -> [m,n]`.
pub fn matmul_nn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = dims2(a, "matmul")?;
    let (k2, n) = dims2(b, "matmul")?;
    if k != k2 {
        return Err(tensor_err!("shape mismatch in matmul: {:?} x {:?}", a.shape(), b.shape()));
    }
    let mut out = vec![0.0f32; m * n];
    gemm_f32(Layout::NN, m, n, k, a.as_f32()?, b.as_f32()?, &mut out, false, true);
    Tensor::from_vec(out, &[m, n])
}

/// Blocked `[m,k] x [n,k]ᵀ -> [m,n]` (no transposed operand materialized).
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = dims2(a, "matmul_nt")?;
    let (n, k2) = dims2(b, "matmul_nt")?;
    if k != k2 {
        return Err(tensor_err!("shape mismatch in matmul_nt: {:?} x {:?}", a.shape(), b.shape()));
    }
    let mut out = vec![0.0f32; m * n];
    gemm_f32(Layout::NT, m, n, k, a.as_f32()?, b.as_f32()?, &mut out, false, true);
    Tensor::from_vec(out, &[m, n])
}

/// Blocked `[k,m]ᵀ x [k,n] -> [m,n]` (no transposed operand materialized).
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = dims2(a, "matmul_tn")?;
    let (k2, n) = dims2(b, "matmul_tn")?;
    if k != k2 {
        return Err(tensor_err!("shape mismatch in matmul_tn: {:?} x {:?}", a.shape(), b.shape()));
    }
    let mut out = vec![0.0f32; m * n];
    gemm_f32(Layout::TN, m, n, k, a.as_f32()?, b.as_f32()?, &mut out, false, true);
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: Vec<f32>, shape: &[usize]) -> Tensor {
        Tensor::from_vec(data, shape).unwrap()
    }

    #[test]
    fn blocked_matches_known_product() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let r = matmul_nn(&a, &b).unwrap();
        assert_eq!(r.as_f32().unwrap(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn nt_tn_match_explicit_transpose() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (m, k, n) = (37, 65, 19); // ragged on purpose
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let bt = Tensor::rand_uniform(&[n, k], -1.0, 1.0, &mut rng);
        let at = Tensor::rand_uniform(&[k, m], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
        let b_full = crate::kernels::shape_ops::transpose(&bt, &[1, 0]).unwrap();
        let a_full = crate::kernels::shape_ops::transpose(&at, &[1, 0]).unwrap();
        assert_eq!(matmul_nt(&a, &bt).unwrap(), matmul_nn(&a, &b_full).unwrap());
        assert_eq!(matmul_tn(&at, &b).unwrap(), matmul_nn(&a_full, &b).unwrap());
    }

    #[test]
    fn deep_k_spans_multiple_slabs() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (m, k, n) = (5, 2 * KC + 17, 7);
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
        let blocked = matmul_nn(&a, &b).unwrap();
        let naive = crate::kernels::reference::matmul(&a, &b).unwrap();
        // FMA vs mul+add rounding: close, not bitwise.
        assert!(blocked.allclose(&naive, 1e-4));
    }

    #[test]
    fn shape_errors() {
        let a = t(vec![1.0, 2.0], &[2]);
        assert!(matmul_nn(&a, &a).is_err());
        let a2 = t(vec![1.0, 2.0], &[1, 2]);
        let b2 = t(vec![1.0, 2.0, 3.0], &[3, 1]);
        assert!(matmul_nn(&a2, &b2).is_err());
        assert!(matmul_nt(&a2, &b2).is_err());
        assert!(matmul_tn(&a2, &b2).is_err());
    }
}
